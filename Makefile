# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-fast examples lint clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Skip the heavy circuits (rot, e64, C499, ...).
bench-fast:
	REPRO_BENCH_FAST=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/dontcare_symmetry.py
	$(PYTHON) examples/two_level_flow.py
	$(PYTHON) examples/netlist_flow.py
	$(PYTHON) examples/adder_synthesis.py 2 4
	$(PYTHON) examples/multiplier_scheme.py 3
	$(PYTHON) examples/ecc_decoder.py
	$(PYTHON) examples/fpga_flow.py rd73 rd84 z4ml

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .benchmarks benchmarks/out
