"""Tests for symmetry detection on completely specified functions."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.bdd import symmetry


@pytest.fixture
def bdd():
    return BDD(6)


def weight_function(bdd, variables, accept):
    """Symmetric function: true iff the input weight is in `accept`."""
    table = []
    n = len(variables)
    for k in range(1 << n):
        w = bin(k).count("1")
        table.append(1 if w in accept else 0)
    return bdd.from_truth_table(table, variables)


class TestPairwiseSymmetry:
    def test_and_is_symmetric(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert symmetry.symmetric_in(bdd, f, 0, 1)

    def test_xor_is_symmetric(self, bdd):
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        assert symmetry.symmetric_in(bdd, f, 0, 1)

    def test_implication_not_symmetric(self, bdd):
        f = bdd.apply_implies(bdd.var(0), bdd.var(1))
        assert not symmetry.symmetric_in(bdd, f, 0, 1)

    def test_same_variable(self, bdd):
        f = bdd.var(0)
        assert symmetry.symmetric_in(bdd, f, 0, 0)

    def test_symmetry_under_renaming_bruteforce(self, bdd):
        from repro.bdd.ops import swap_vars
        rng = random.Random(4)
        for _ in range(15):
            table = [rng.randint(0, 1) for _ in range(16)]
            f = bdd.from_truth_table(table, [0, 1, 2, 3])
            for i in range(4):
                for j in range(i + 1, 4):
                    expected = swap_vars(bdd, f, i, j) == f
                    assert symmetry.symmetric_in(bdd, f, i, j) == expected


class TestEquivalenceSymmetry:
    def test_xnor_under_negated_swap(self, bdd):
        # f = x0 XOR x1 satisfies f|00 == f|11, so it is equivalence
        # symmetric as well as nonequivalence symmetric.
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        assert symmetry.equivalence_symmetric_in(bdd, f, 0, 1)

    def test_and_not_equivalence_symmetric(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert not symmetry.equivalence_symmetric_in(bdd, f, 0, 1)

    def test_a_and_not_b(self, bdd):
        # f = x0 & ~x1: f|00 = 0, f|11 = 0 -> equivalence symmetric.
        f = bdd.apply_and(bdd.var(0), bdd.apply_not(bdd.var(1)))
        assert symmetry.equivalence_symmetric_in(bdd, f, 0, 1)
        assert not symmetry.symmetric_in(bdd, f, 0, 1)


class TestGroups:
    def test_totally_symmetric_single_group(self, bdd):
        f = weight_function(bdd, [0, 1, 2, 3], {2, 3})
        groups = symmetry.symmetry_groups(bdd, [f], [0, 1, 2, 3])
        assert groups == [[0, 1, 2, 3]]
        assert symmetry.is_totally_symmetric(bdd, f, [0, 1, 2, 3])

    def test_two_groups(self, bdd):
        # f = (x0 | x1) & (x2 ^ x3): groups {0,1} and {2,3}.
        f = bdd.apply_and(
            bdd.apply_or(bdd.var(0), bdd.var(1)),
            bdd.apply_xor(bdd.var(2), bdd.var(3)))
        groups = symmetry.symmetry_groups(bdd, [f], [0, 1, 2, 3])
        as_sets = [set(g) for g in groups]
        assert {0, 1} in as_sets
        assert {2, 3} in as_sets

    def test_multi_output_common_groups(self, bdd):
        # f1 symmetric in (0,1); f2 only symmetric in (2,3):
        # common groups must be singletons for 0 and 1.
        f1 = bdd.apply_and(bdd.var(0), bdd.var(1))
        f2 = bdd.apply_or(bdd.apply_xor(bdd.var(2), bdd.var(3)), bdd.var(0))
        groups = symmetry.symmetry_groups(bdd, [f1, f2], [0, 1, 2, 3])
        as_sets = [set(g) for g in groups]
        assert {0} in as_sets
        assert {1} in as_sets
        assert {2, 3} in as_sets

    def test_symmetric_pairs(self, bdd):
        f = weight_function(bdd, [0, 1, 2], {1})
        pairs = symmetry.symmetric_pairs(bdd, f, [0, 1, 2])
        assert set(pairs) == {(0, 1), (0, 2), (1, 2)}

    def test_not_symmetric(self, bdd):
        f = bdd.apply_or(bdd.apply_and(bdd.var(0), bdd.var(1)), bdd.var(2))
        assert not symmetry.is_totally_symmetric(bdd, f, [0, 1, 2])
