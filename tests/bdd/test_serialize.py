"""Tests for BDD / MultiFunction serialisation."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.bdd.serialize import (
    dump_functions,
    dump_multifunction,
    load_functions,
    load_multifunction,
)
from repro.boolfunc.spec import MultiFunction


class TestDumpLoadFunctions:
    def test_roundtrip_random(self):
        rng = random.Random(809)
        for _ in range(10):
            bdd = BDD(5)
            table = [rng.randint(0, 1) for _ in range(32)]
            f = bdd.from_truth_table(table, [0, 1, 2, 3, 4])
            data = dump_functions(bdd, [f])
            bdd2, [g] = load_functions(data)
            assert bdd2.to_truth_table(g, [0, 1, 2, 3, 4]) == table

    def test_shared_structure_preserved(self):
        bdd = BDD(4)
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        g = bdd.apply_and(f, bdd.var(2))
        data = dump_functions(bdd, [f, g])
        bdd2, [f2, g2] = load_functions(data)
        # g2 still contains f2's structure: canonical AND recovers it.
        assert bdd2.apply_and(f2, bdd2.var(2)) == g2

    def test_constants(self):
        bdd = BDD(2)
        data = dump_functions(bdd, [BDD.TRUE, BDD.FALSE])
        _, roots = load_functions(data)
        assert roots == [BDD.TRUE, BDD.FALSE]

    def test_load_into_existing_manager(self):
        bdd = BDD(3)
        f = bdd.apply_or(bdd.var(0), bdd.var(2))
        data = dump_functions(bdd, [f])
        _, [g] = load_functions(data, bdd)
        assert g == f  # canonicity: same manager, same node

    def test_load_missing_vars_rejected(self):
        bdd = BDD(4)
        f = bdd.var(3)
        data = dump_functions(bdd, [f])
        with pytest.raises(ValueError):
            load_functions(data, BDD(2))

    def test_order_preserved(self):
        bdd = BDD(4)
        bdd.set_order([3, 1, 0, 2])
        f = bdd.apply_and(bdd.var(0), bdd.var(3))
        data = dump_functions(bdd, [f])
        bdd2, _ = load_functions(data)
        assert bdd2.order() == [3, 1, 0, 2]


class TestMultiFunctionRoundtrip:
    def test_complete(self):
        rng = random.Random(811)
        bdd = BDD(4)
        tables = [[rng.randint(0, 1) for _ in range(16)]
                  for _ in range(2)]
        func = MultiFunction.from_truth_tables(bdd, [0, 1, 2, 3], tables)
        text = dump_multifunction(func)
        loaded = load_multifunction(text)
        assert loaded.input_names == func.input_names
        assert loaded.output_names == func.output_names
        for k in range(16):
            bits = [(k >> (3 - i)) & 1 for i in range(4)]
            assert loaded.eval(dict(zip(loaded.inputs, bits))) == \
                func.eval(dict(zip(func.inputs, bits)))

    def test_incomplete(self):
        rng = random.Random(821)
        bdd = BDD(4)
        spec = [rng.choice([0, 1, None]) for _ in range(16)]
        onset = [1 if v == 1 else 0 for v in spec]
        dcset = [1 if v is None else 0 for v in spec]
        func = MultiFunction.from_truth_tables(
            bdd, [0, 1, 2, 3], [onset], dc_tables=[dcset])
        loaded = load_multifunction(dump_multifunction(func))
        for k in range(16):
            bits = [(k >> (3 - i)) & 1 for i in range(4)]
            assert loaded.eval(dict(zip(loaded.inputs, bits))) == \
                func.eval(dict(zip(func.inputs, bits)))
