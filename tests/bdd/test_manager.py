"""Unit tests for the core BDD manager."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from tests.helpers import all_assignments, bdd_from_callable, functions_equal


@pytest.fixture
def bdd():
    return BDD(4)


class TestBasics:
    def test_terminals(self, bdd):
        assert BDD.FALSE == 0
        assert BDD.TRUE == 1
        assert bdd.eval(BDD.TRUE, {}) is True
        assert bdd.eval(BDD.FALSE, {}) is False

    def test_var_projection(self, bdd):
        x0 = bdd.var(0)
        assert bdd.eval(x0, {0: 1}) is True
        assert bdd.eval(x0, {0: 0}) is False

    def test_nvar(self, bdd):
        nx = bdd.nvar(2)
        assert bdd.eval(nx, {2: 0}) is True
        assert bdd.eval(nx, {2: 1}) is False

    def test_var_out_of_range(self, bdd):
        with pytest.raises(ValueError):
            bdd.var(99)

    def test_add_var(self):
        bdd = BDD(0)
        v = bdd.add_var("a")
        assert v == 0
        assert bdd.var_name(v) == "a"
        assert bdd.num_vars == 1

    def test_default_names(self, bdd):
        assert bdd.var_name(3) == "x3"

    def test_canonicity_same_function_same_node(self, bdd):
        x0, x1 = bdd.var(0), bdd.var(1)
        f = bdd.apply_or(bdd.apply_and(x0, x1), bdd.apply_and(x1, x0))
        g = bdd.apply_and(x1, x0)
        assert f == g

    def test_reduction_no_redundant_node(self, bdd):
        x0 = bdd.var(0)
        # ite(x0, f, f) == f
        f = bdd.var(1)
        assert bdd.ite(x0, f, f) == f


class TestBooleanOps:
    def test_and_truth(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert functions_equal(bdd, f, lambda a, b: a and b, [0, 1])

    def test_or_truth(self, bdd):
        f = bdd.apply_or(bdd.var(0), bdd.var(1))
        assert functions_equal(bdd, f, lambda a, b: a or b, [0, 1])

    def test_xor_truth(self, bdd):
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        assert functions_equal(bdd, f, lambda a, b: a ^ b, [0, 1])

    def test_xnor_truth(self, bdd):
        f = bdd.apply_xnor(bdd.var(0), bdd.var(1))
        assert functions_equal(bdd, f, lambda a, b: 1 - (a ^ b), [0, 1])

    def test_not_involution(self, bdd):
        f = bdd.apply_xor(bdd.var(0), bdd.var(2))
        assert bdd.apply_not(bdd.apply_not(f)) == f

    def test_implies(self, bdd):
        f = bdd.apply_implies(bdd.var(0), bdd.var(1))
        assert functions_equal(bdd, f, lambda a, b: (not a) or b, [0, 1])

    def test_diff(self, bdd):
        f = bdd.apply_diff(bdd.var(0), bdd.var(1))
        assert functions_equal(bdd, f, lambda a, b: a and not b, [0, 1])

    def test_demorgan(self, bdd):
        a, b = bdd.var(0), bdd.var(1)
        lhs = bdd.apply_not(bdd.apply_and(a, b))
        rhs = bdd.apply_or(bdd.apply_not(a), bdd.apply_not(b))
        assert lhs == rhs

    def test_conjoin_disjoin(self, bdd):
        xs = [bdd.var(i) for i in range(4)]
        f = bdd.conjoin(xs)
        g = bdd.disjoin(xs)
        assert bdd.eval(f, {0: 1, 1: 1, 2: 1, 3: 1})
        assert not bdd.eval(f, {0: 1, 1: 1, 2: 0, 3: 1})
        assert bdd.eval(g, {0: 0, 1: 0, 2: 1, 3: 0})
        assert not bdd.eval(g, {0: 0, 1: 0, 2: 0, 3: 0})

    def test_conjoin_empty(self, bdd):
        assert bdd.conjoin([]) == BDD.TRUE
        assert bdd.disjoin([]) == BDD.FALSE

    def test_leq(self, bdd):
        a, b = bdd.var(0), bdd.var(1)
        f = bdd.apply_and(a, b)
        g = bdd.apply_or(a, b)
        assert bdd.leq(f, g)
        assert not bdd.leq(g, f)
        assert bdd.leq(f, f)


class TestIte:
    def test_ite_terminal_cases(self, bdd):
        f = bdd.var(0)
        g = bdd.var(1)
        assert bdd.ite(BDD.TRUE, f, g) == f
        assert bdd.ite(BDD.FALSE, f, g) == g
        assert bdd.ite(f, g, g) == g
        assert bdd.ite(f, BDD.TRUE, BDD.FALSE) == f

    def test_ite_mux_semantics(self, bdd):
        s, a, b = bdd.var(0), bdd.var(1), bdd.var(2)
        f = bdd.ite(s, a, b)
        assert functions_equal(bdd, f,
                               lambda sv, av, bv: av if sv else bv,
                               [0, 1, 2])


class TestCofactorComposeQuantify:
    def test_restrict(self, bdd):
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        f0 = bdd.restrict(f, 0, 0)
        f1 = bdd.restrict(f, 0, 1)
        assert f0 == bdd.var(1)
        assert f1 == bdd.apply_not(bdd.var(1))

    def test_restrict_independent_var(self, bdd):
        f = bdd.var(1)
        assert bdd.restrict(f, 0, 0) == f
        assert bdd.restrict(f, 3, 1) == f

    def test_cofactor_multi(self, bdd):
        f = bdd.conjoin([bdd.var(i) for i in range(4)])
        g = bdd.cofactor(f, {0: 1, 2: 1})
        assert g == bdd.apply_and(bdd.var(1), bdd.var(3))

    def test_shannon_expansion(self, bdd):
        # f == ite(x, f|x=1, f|x=0) for random functions.
        rng = random.Random(1)
        for _ in range(10):
            table = [rng.randint(0, 1) for _ in range(16)]
            f = bdd.from_truth_table(table, [0, 1, 2, 3])
            for var in range(4):
                recon = bdd.ite(bdd.var(var),
                                bdd.restrict(f, var, 1),
                                bdd.restrict(f, var, 0))
                assert recon == f

    def test_compose(self, bdd):
        # f(x0, x1) = x0 & x1; compose x0 := x2 | x3
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        g = bdd.apply_or(bdd.var(2), bdd.var(3))
        h = bdd.compose(f, 0, g)
        assert functions_equal(
            bdd, h, lambda a, b, c, d: (c or d) and b, [0, 1, 2, 3])

    def test_vector_compose_simultaneous(self, bdd):
        # Swap x0 and x1 inside f = x0 & ~x1; sequential compose would be
        # wrong, vector compose must be simultaneous.
        f = bdd.apply_and(bdd.var(0), bdd.apply_not(bdd.var(1)))
        swapped = bdd.vector_compose(f, {0: bdd.var(1), 1: bdd.var(0)})
        assert functions_equal(bdd, swapped,
                               lambda a, b: b and not a, [0, 1])

    def test_rename(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        g = bdd.rename(f, {0: 2, 1: 3})
        assert g == bdd.apply_and(bdd.var(2), bdd.var(3))

    def test_exists(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert bdd.exists(f, [0]) == bdd.var(1)
        assert bdd.exists(f, [0, 1]) == BDD.TRUE

    def test_forall(self, bdd):
        f = bdd.apply_or(bdd.var(0), bdd.var(1))
        assert bdd.forall(f, [0]) == bdd.var(1)
        assert bdd.forall(f, [0, 1]) == BDD.FALSE


class TestInspection:
    def test_support(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(3))
        assert bdd.support(f) == {0, 3}
        assert bdd.support(BDD.TRUE) == set()

    def test_support_is_true_support(self, bdd):
        # x1 XOR x1 contributes nothing.
        f = bdd.apply_or(bdd.var(0),
                         bdd.apply_xor(bdd.var(1), bdd.var(1)))
        assert bdd.support(f) == {0}

    def test_node_count(self, bdd):
        x0 = bdd.var(0)
        assert bdd.node_count(x0) == 3  # node + two terminals
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert bdd.node_count(f) == 4

    def test_sat_count(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert bdd.sat_count(f, 4) == 4  # x2, x3 free
        assert bdd.sat_count(BDD.TRUE, 4) == 16
        assert bdd.sat_count(BDD.FALSE, 4) == 0
        g = bdd.apply_xor(bdd.var(0), bdd.var(1))
        assert bdd.sat_count(g, 2) == 2

    def test_sat_count_matches_bruteforce(self, bdd):
        rng = random.Random(7)
        for _ in range(10):
            table = [rng.randint(0, 1) for _ in range(16)]
            f = bdd.from_truth_table(table, [0, 1, 2, 3])
            assert bdd.sat_count(f, 4) == sum(table)

    def test_pick(self, bdd):
        f = bdd.apply_and(bdd.var(1), bdd.apply_not(bdd.var(2)))
        model = bdd.pick(f)
        assert model is not None
        full = {v: 0 for v in range(4)}
        full.update(model)
        assert bdd.eval(f, full)
        assert bdd.pick(BDD.FALSE) is None

    def test_cube(self, bdd):
        c = bdd.cube({0: 1, 2: 0})
        assert functions_equal(bdd, c,
                               lambda a, b, c_: a and not c_, [0, 1, 2])


class TestTruthTables:
    def test_roundtrip(self, bdd):
        rng = random.Random(3)
        for _ in range(20):
            table = [rng.randint(0, 1) for _ in range(8)]
            f = bdd.from_truth_table(table, [0, 1, 2])
            assert bdd.to_truth_table(f, [0, 1, 2]) == table

    def test_roundtrip_scrambled_variable_order(self):
        bdd = BDD(3)
        bdd_ref = BDD(3)
        rng = random.Random(5)
        table = [rng.randint(0, 1) for _ in range(8)]
        # Build under a non-identity order; semantics must be unchanged.
        f_ref = bdd_ref.from_truth_table(table, [0, 1, 2])
        bdd.set_order([2, 0, 1])
        f = bdd.from_truth_table(table, [0, 1, 2])
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assignment = {0: a, 1: b, 2: c}
                    assert (bdd.eval(f, assignment)
                            == bdd_ref.eval(f_ref, assignment))

    def test_bad_table_length(self, bdd):
        with pytest.raises(ValueError):
            bdd.from_truth_table([0, 1, 0], [0, 1])


class TestOrdering:
    def test_set_order_validation(self, bdd):
        with pytest.raises(ValueError):
            bdd.set_order([0, 1])
        with pytest.raises(ValueError):
            bdd.set_order([0, 1, 2, 2])

    def test_order_roundtrip(self, bdd):
        bdd.set_order([3, 1, 0, 2])
        assert bdd.order() == [3, 1, 0, 2]
        assert bdd.var_level(3) == 0
        assert bdd.var_level(2) == 3


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255),
       st.sampled_from(["and", "or", "xor"]))
def test_apply_matches_bitwise(table_f, table_g, op):
    """Property: BDD apply agrees with bitwise truth-table combination."""
    bdd = BDD(3)
    bits_f = [(table_f >> k) & 1 for k in range(8)]
    bits_g = [(table_g >> k) & 1 for k in range(8)]
    f = bdd.from_truth_table(bits_f, [0, 1, 2])
    g = bdd.from_truth_table(bits_g, [0, 1, 2])
    if op == "and":
        h = bdd.apply_and(f, g)
        bits_h = [a & b for a, b in zip(bits_f, bits_g)]
    elif op == "or":
        h = bdd.apply_or(f, g)
        bits_h = [a | b for a, b in zip(bits_f, bits_g)]
    else:
        h = bdd.apply_xor(f, g)
        bits_h = [a ^ b for a, b in zip(bits_f, bits_g)]
    assert bdd.to_truth_table(h, [0, 1, 2]) == bits_h


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1),
                min_size=16, max_size=16))
def test_truth_table_roundtrip_property(table):
    bdd = BDD(4)
    f = bdd.from_truth_table(table, [0, 1, 2, 3])
    assert bdd.to_truth_table(f, [0, 1, 2, 3]) == table


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1),
                min_size=16, max_size=16),
       st.integers(min_value=0, max_value=3))
def test_restrict_property(table, var):
    """Property: restrict agrees with slicing the truth table."""
    bdd = BDD(4)
    f = bdd.from_truth_table(table, [0, 1, 2, 3])
    for val in (0, 1):
        g = bdd.restrict(f, var, val)
        expected = []
        for k in range(16):
            bit = (k >> (3 - var)) & 1
            if bit == val:
                expected.append(table[k])
        remaining = [v for v in (0, 1, 2, 3) if v != var]
        assert bdd.to_truth_table(g, remaining) == expected
