"""Property-based tests for quantifiers, composition and counting."""

import random

from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD


def build(table):
    bdd = BDD(4)
    return bdd, bdd.from_truth_table(table, [0, 1, 2, 3])


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=16,
                max_size=16),
       st.integers(min_value=0, max_value=3))
def test_exists_forall_duality(table, var):
    bdd, f = build(table)
    lhs = bdd.exists(f, [var])
    rhs = bdd.apply_not(bdd.forall(bdd.apply_not(f), [var]))
    assert lhs == rhs


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=16,
                max_size=16),
       st.integers(min_value=0, max_value=3))
def test_quantifier_sandwich(table, var):
    """forall <= f <= exists (as functions)."""
    bdd, f = build(table)
    fa = bdd.forall(f, [var])
    ex = bdd.exists(f, [var])
    assert bdd.leq(fa, f)
    assert bdd.leq(f, ex)
    # And neither quantified result depends on the variable.
    assert var not in bdd.support(fa)
    assert var not in bdd.support(ex)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=16,
                max_size=16),
       st.integers(min_value=0, max_value=3))
def test_satcount_shannon(table, var):
    """|f| = |f|x=0| + |f|x=1| over the remaining variables."""
    bdd, f = build(table)
    total = bdd.sat_count(f, 4)
    lo = bdd.sat_count(bdd.restrict(f, var, 0), 4)
    hi = bdd.sat_count(bdd.restrict(f, var, 1), 4)
    assert total == (lo + hi) // 2


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=16,
                max_size=16),
       st.lists(st.integers(min_value=0, max_value=1), min_size=16,
                max_size=16),
       st.integers(min_value=0, max_value=3))
def test_compose_restrict_consistency(table_f, table_g, var):
    """compose(f, x, g) restricted where g is constant equals plain
    restriction."""
    bdd = BDD(4)
    f = bdd.from_truth_table(table_f, [0, 1, 2, 3])
    g = bdd.from_truth_table(table_g, [0, 1, 2, 3])
    composed = bdd.compose(f, var, g)
    # Pointwise check (the definitive semantics).
    for k in range(16):
        bits = {v: (k >> (3 - v)) & 1 for v in range(4)}
        gval = bdd.eval(g, bits)
        fbits = dict(bits)
        fbits[var] = 1 if gval else 0
        assert bdd.eval(composed, bits) == bdd.eval(f, fbits)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=16,
                max_size=16))
def test_negation_satcount(table):
    bdd, f = build(table)
    assert bdd.sat_count(f, 4) + bdd.sat_count(bdd.apply_not(f), 4) == 16
