"""Tests for reordering: rebuild, sifting, symmetric sifting."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.bdd import reorder


@pytest.fixture
def bdd():
    return BDD(6)


def interleaved_equality(bdd, pairs):
    """f = AND over pairs (a_i <-> b_i) — classic order-sensitive function."""
    f = BDD.TRUE
    for a, b in pairs:
        f = bdd.apply_and(f, bdd.apply_xnor(bdd.var(a), bdd.var(b)))
    return f


class TestRebuild:
    def test_semantics_preserved(self, bdd):
        rng = random.Random(9)
        table = [rng.randint(0, 1) for _ in range(16)]
        f = bdd.from_truth_table(table, [0, 1, 2, 3])
        [g] = reorder.rebuild(bdd, [f], [3, 2, 1, 0, 4, 5])
        assert bdd.to_truth_table(g, [0, 1, 2, 3]) == table

    def test_multiple_roots(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        g = bdd.apply_xor(bdd.var(2), bdd.var(3))
        nf, ng = reorder.rebuild(bdd, [f, g], [5, 4, 3, 2, 1, 0])
        assert bdd.to_truth_table(nf, [0, 1]) == [0, 0, 0, 1]
        assert bdd.to_truth_table(ng, [2, 3]) == [0, 1, 1, 0]

    def test_order_changes_size(self, bdd):
        # (a0<->b0)&(a1<->b1)&(a2<->b2): interleaved order is linear,
        # separated order is exponential.
        f = interleaved_equality(bdd, [(0, 3), (1, 4), (2, 5)])
        [f_sep] = reorder.rebuild(bdd, [f], [0, 1, 2, 3, 4, 5])
        size_sep = bdd.node_count(f_sep)
        [f_int] = reorder.rebuild(bdd, [f_sep], [0, 3, 1, 4, 2, 5])
        size_int = bdd.node_count(f_int)
        assert size_int < size_sep


class TestSift:
    def test_sift_improves_equality_function(self, bdd):
        f = interleaved_equality(bdd, [(0, 3), (1, 4), (2, 5)])
        [f] = reorder.rebuild(bdd, [f], [0, 1, 2, 3, 4, 5])
        before = bdd.node_count(f)
        [f] = reorder.sift(bdd, [f])
        after = bdd.node_count(f)
        assert after <= before
        # Optimal interleaved size for 3 pairs is 3*3 + 2 terminals + root
        # structure; just check we got close to the interleaved size.
        [f_best] = reorder.rebuild(bdd, [f], [0, 3, 1, 4, 2, 5])
        assert after <= bdd.node_count(f_best) + 2

    def test_sift_preserves_semantics(self, bdd):
        rng = random.Random(21)
        table = [rng.randint(0, 1) for _ in range(64)]
        f = bdd.from_truth_table(table, [0, 1, 2, 3, 4, 5])
        [g] = reorder.sift(bdd, [f])
        assert bdd.to_truth_table(g, [0, 1, 2, 3, 4, 5]) == table

    def test_sift_skips_large_managers(self):
        bdd = BDD(20)
        f = bdd.var(0)
        assert reorder.sift(bdd, [f], max_vars=16) == [f]


class TestSymmetricSift:
    def test_groups_contiguous(self, bdd):
        # f = (x0 sym x2 sym x4 via AND) | (x1 sym x3 via XOR)
        f = bdd.apply_or(
            bdd.conjoin([bdd.var(0), bdd.var(2), bdd.var(4)]),
            bdd.apply_xor(bdd.var(1), bdd.var(3)))
        roots, groups = reorder.symmetric_sift(bdd, [f])
        as_sets = [set(g) for g in groups]
        assert {0, 2, 4} in as_sets
        assert {1, 3} in as_sets
        # Each group occupies contiguous levels in the final order.
        order = bdd.order()
        for group in groups:
            positions = sorted(order.index(v) for v in group)
            assert positions == list(range(positions[0],
                                           positions[0] + len(group)))

    def test_semantics_preserved(self, bdd):
        rng = random.Random(13)
        table = [rng.randint(0, 1) for _ in range(32)]
        f = bdd.from_truth_table(table, [0, 1, 2, 3, 4])
        [g], _ = reorder.symmetric_sift(bdd, [f])
        assert bdd.to_truth_table(g, [0, 1, 2, 3, 4]) == table

    def test_empty_roots(self, bdd):
        roots, groups = reorder.symmetric_sift(bdd, [])
        assert roots == []
        assert groups == []

    def test_constant_roots(self, bdd):
        roots, groups = reorder.symmetric_sift(bdd, [BDD.TRUE])
        assert roots == [BDD.TRUE]


class TestGroupContiguousOrder:
    def test_largest_group_first(self, bdd):
        order = reorder.group_contiguous_order(bdd, [[0], [1, 2, 3], [4, 5]])
        assert order[:3] == [1, 2, 3]
        assert order[3:5] == [4, 5]
        assert set(order) == set(range(6))


class TestWindowPermute:
    def test_semantics_preserved(self, bdd):
        rng = random.Random(521)
        table = [rng.randint(0, 1) for _ in range(64)]
        f = bdd.from_truth_table(table, [0, 1, 2, 3, 4, 5])
        [g] = reorder.window_permute(bdd, [f], window=3)
        assert bdd.to_truth_table(g, [0, 1, 2, 3, 4, 5]) == table

    def test_improves_or_keeps_size(self, bdd):
        f = interleaved_equality(bdd, [(0, 3), (1, 4), (2, 5)])
        [f] = reorder.rebuild(bdd, [f], [0, 1, 2, 3, 4, 5])
        before = bdd.node_count(f)
        [f] = reorder.window_permute(bdd, [f], window=3, passes=2)
        assert bdd.node_count(f) <= before

    def test_degenerate_windows(self):
        small = reorder.window_permute(BDD(1), [], window=3)
        assert small == []
