"""Additional manager coverage: caches, reprs, iterators."""

import pytest

from repro.bdd.manager import BDD


class TestCachesAndRepr:
    def test_clear_cache_preserves_semantics(self):
        bdd = BDD(3)
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        bdd.clear_cache()
        g = bdd.apply_xor(bdd.var(0), bdd.var(1))
        assert f == g  # unique table survives, canonicity intact

    def test_repr(self):
        bdd = BDD(2)
        text = repr(bdd)
        assert "vars=2" in text

    def test_support_cache_consistency(self):
        bdd = BDD(4)
        f = bdd.apply_and(bdd.var(0), bdd.var(2))
        s1 = bdd.support(f)
        s2 = bdd.support(f)  # cached path
        assert s1 == s2 == {0, 2}
        s1.add(99)  # mutating the returned set must not poison the cache
        assert bdd.support(f) == {0, 2}


class TestCubesAndMinterms:
    def test_empty_cube(self):
        bdd = BDD(2)
        assert bdd.cube({}) == BDD.TRUE

    def test_iter_minterms(self):
        bdd = BDD(3)
        f = bdd.apply_and(bdd.var(0), bdd.apply_not(bdd.var(2)))
        ms = list(bdd.iter_minterms(f, [0, 1, 2]))
        assert set(ms) == {(1, 0, 0), (1, 1, 0)}

    def test_iter_minterms_constant(self):
        bdd = BDD(2)
        assert len(list(bdd.iter_minterms(BDD.TRUE, [0, 1]))) == 4
        assert list(bdd.iter_minterms(BDD.FALSE, [0, 1])) == []


class TestVarOfErrors:
    def test_terminal_var_raises(self):
        bdd = BDD(1)
        with pytest.raises(ValueError):
            bdd.var_of(BDD.TRUE)
