"""Tests for higher-level BDD operations."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.bdd import ops
from tests.helpers import functions_equal


@pytest.fixture
def bdd():
    return BDD(5)


class TestBoundCofactors:
    def test_count(self, bdd):
        f = bdd.conjoin([bdd.var(i) for i in range(5)])
        cofs = ops.bound_cofactors(bdd, f, [0, 1, 2])
        assert len(cofs) == 8

    def test_values(self, bdd):
        # f = x0 & x1 | x2; bound set {x0, x1}.
        f = bdd.apply_or(bdd.apply_and(bdd.var(0), bdd.var(1)), bdd.var(2))
        cofs = ops.bound_cofactors(bdd, f, [0, 1])
        # vertices 00, 01, 10 -> x2 ; vertex 11 -> TRUE
        assert cofs[0] == bdd.var(2)
        assert cofs[1] == bdd.var(2)
        assert cofs[2] == bdd.var(2)
        assert cofs[3] == BDD.TRUE

    def test_index_convention_msb_first(self, bdd):
        # f = x0 (only MSB matters): vertices 10 and 11 are TRUE.
        f = bdd.var(0)
        cofs = ops.bound_cofactors(bdd, f, [0, 1])
        assert cofs == [BDD.FALSE, BDD.FALSE, BDD.TRUE, BDD.TRUE]

    def test_matches_explicit_cofactor(self, bdd):
        rng = random.Random(11)
        table = [rng.randint(0, 1) for _ in range(32)]
        f = bdd.from_truth_table(table, [0, 1, 2, 3, 4])
        bound = [1, 3]
        cofs = ops.bound_cofactors(bdd, f, bound)
        for k in range(4):
            bits = ops.vertex_bits(k, 2)
            expected = bdd.cofactor(f, dict(zip(bound, bits)))
            assert cofs[k] == expected


class TestVertexHelpers:
    def test_vertex_bits(self):
        assert ops.vertex_bits(0b101, 3) == (1, 0, 1)
        assert ops.vertex_bits(0, 3) == (0, 0, 0)

    def test_vertex_index_roundtrip(self):
        for k in range(16):
            assert ops.vertex_index(ops.vertex_bits(k, 4)) == k


class TestBooleanDifference:
    def test_xor_depends_everywhere(self, bdd):
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        assert ops.boolean_difference(bdd, f, 0) == BDD.TRUE

    def test_independent_var(self, bdd):
        f = bdd.var(0)
        assert ops.boolean_difference(bdd, f, 1) == BDD.FALSE

    def test_depends_on(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(2))
        assert ops.depends_on(bdd, f, 0)
        assert not ops.depends_on(bdd, f, 1)


class TestSwapAndVertexSets:
    def test_swap_vars(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.apply_not(bdd.var(1)))
        g = ops.swap_vars(bdd, f, 0, 1)
        assert functions_equal(bdd, g, lambda a, b: b and not a, [0, 1])

    def test_swap_involution(self, bdd):
        rng = random.Random(2)
        table = [rng.randint(0, 1) for _ in range(16)]
        f = bdd.from_truth_table(table, [0, 1, 2, 3])
        assert ops.swap_vars(bdd, ops.swap_vars(bdd, f, 0, 2), 0, 2) == f

    def test_from_vertex_set(self, bdd):
        g = ops.from_vertex_set(bdd, [0b00, 0b11], [0, 1])
        assert functions_equal(bdd, g,
                               lambda a, b: a == b, [0, 1])

    def test_build_from_vertex_function(self, bdd):
        # XOR truth table over two bound vars.
        g = ops.build_from_vertex_function(bdd, [0, 1, 1, 0], [0, 1])
        assert g == bdd.apply_xor(bdd.var(0), bdd.var(1))


class TestMintermCount:
    def test_basic(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert ops.minterm_count(bdd, f, [0, 1]) == 1
        assert ops.minterm_count(bdd, f, [0, 1, 2]) == 2

    def test_rejects_wrong_support(self, bdd):
        f = bdd.var(4)
        with pytest.raises(ValueError):
            ops.minterm_count(bdd, f, [0, 1])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1),
                min_size=16, max_size=16),
       st.integers(min_value=1, max_value=3))
def test_bound_cofactors_partition_property(table, p):
    """Property: gluing the bound cofactors back together recovers f."""
    bdd = BDD(4)
    f = bdd.from_truth_table(table, [0, 1, 2, 3])
    bound = list(range(p))
    cofs = ops.bound_cofactors(bdd, f, bound)
    glued = BDD.FALSE
    for k, cof in enumerate(cofs):
        bits = ops.vertex_bits(k, p)
        cube = bdd.cube(dict(zip(bound, bits)))
        glued = bdd.apply_or(glued, bdd.apply_and(cube, cof))
    assert glued == f
