"""Bounded computed table and hot-path counters of the BDD manager."""

from repro.bdd.manager import DEFAULT_CACHE_LIMIT, BDD


class TestCacheBound:
    def test_default_limit_installed(self):
        assert BDD(2).cache_limit == DEFAULT_CACHE_LIMIT

    def test_eviction_at_threshold(self):
        bdd = BDD(12, cache_limit=50)
        f = BDD.FALSE
        for i in range(12):
            f = bdd.apply_xor(f, bdd.var(i))
        metrics = bdd.metrics()
        assert metrics.computed_evictions >= 1
        assert metrics.computed_table_size <= 50

    def test_unbounded_when_none(self):
        bdd = BDD(12, cache_limit=None)
        for i in range(0, 12, 2):
            bdd.apply_xor(bdd.var(i), bdd.var(i + 1))
        assert bdd.metrics().computed_evictions == 0

    def test_results_correct_across_evictions(self):
        """Clearing the memo table must never change function values."""
        small = BDD(8, cache_limit=8)
        big = BDD(8, cache_limit=None)
        fs, fb = BDD.FALSE, BDD.FALSE
        for i in range(8):
            fs = small.apply_xor(fs, small.var(i))
            fb = big.apply_xor(fb, big.var(i))
        assert small.metrics().computed_evictions > 0
        for k in range(256):
            assignment = {i: (k >> i) & 1 for i in range(8)}
            assert small.eval(fs, assignment) == big.eval(fb, assignment)

    def test_limit_setter_trims_immediately(self):
        bdd = BDD(10)
        for i in range(0, 10, 2):
            bdd.apply_and(bdd.var(i), bdd.var(i + 1))
        assert len(bdd._cache) > 4
        bdd.cache_limit = 4
        assert len(bdd._cache) == 0
        assert bdd.metrics().computed_evictions == 1


class TestCounters:
    def test_hits_and_misses_counted(self):
        bdd = BDD(4)
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        before = bdd.metrics()
        assert before.computed_misses > 0
        # Same operation again: served from the computed table.
        assert bdd.apply_and(bdd.var(0), bdd.var(1)) == f
        after = bdd.metrics()
        assert after.computed_hits > before.computed_hits
        assert after.computed_misses == before.computed_misses

    def test_hit_rate_bounds(self):
        bdd = BDD(4)
        assert bdd.metrics().computed_hit_rate == 0.0
        bdd.apply_or(bdd.var(0), bdd.var(1))
        bdd.apply_or(bdd.var(0), bdd.var(1))
        assert 0.0 < bdd.metrics().computed_hit_rate <= 1.0

    def test_peak_nodes_monotone(self):
        bdd = BDD(6)
        f = BDD.FALSE
        for i in range(6):
            f = bdd.apply_xor(f, bdd.var(i))
        peak = bdd.metrics().peak_nodes
        assert peak == len(bdd)
        bdd.clear_cache()
        assert bdd.metrics().peak_nodes == peak

    def test_restrict_and_ite_call_counts(self):
        bdd = BDD(3)
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        bdd.restrict(f, 0, 1)
        metrics = bdd.metrics()
        assert metrics.ite_calls > 0
        assert metrics.restrict_calls == 1

    def test_reset_counters(self):
        bdd = BDD(4)
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        bdd.restrict(f, 0, 0)
        bdd.reset_counters()
        metrics = bdd.metrics()
        assert metrics.ite_calls == 0
        assert metrics.restrict_calls == 0
        assert metrics.computed_hits == 0
        assert metrics.computed_misses == 0
        assert metrics.peak_nodes == len(bdd)

    def test_metrics_as_dict_has_hit_rate(self):
        data = BDD(2).metrics().as_dict()
        assert "computed_hit_rate" in data
        assert "peak_nodes" in data
        assert "unique_table_size" in data
