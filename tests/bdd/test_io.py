"""Tests for BDD export helpers."""

import pytest

from repro.bdd.manager import BDD
from repro.bdd import io


@pytest.fixture
def bdd():
    return BDD(3)


class TestDot:
    def test_contains_nodes_and_edges(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        dot = io.to_dot(bdd, {"f": f})
        assert "digraph BDD" in dot
        assert '"r_f"' in dot
        assert "style=dashed" in dot
        assert "x0" in dot and "x1" in dot

    def test_terminal_only(self, bdd):
        dot = io.to_dot(bdd, {"t": BDD.TRUE})
        assert '"n1"' in dot


class TestExpr:
    def test_constants(self, bdd):
        assert io.to_expr(bdd, BDD.FALSE) == "0"
        assert io.to_expr(bdd, BDD.TRUE) == "1"

    def test_simple_and(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert io.to_expr(bdd, f) == "x0 & x1"

    def test_or_of_literals(self, bdd):
        f = bdd.apply_or(bdd.var(0), bdd.var(1))
        expr = io.to_expr(bdd, f)
        # One-paths of the OR BDD: ~x0&x1 and x0.
        assert "x0" in expr and "|" in expr

    def test_expr_evaluates_back(self, bdd):
        import itertools
        f = bdd.apply_xor(bdd.var(0), bdd.apply_and(bdd.var(1), bdd.var(2)))
        expr = io.to_expr(bdd, f)
        for bits in itertools.product((0, 1), repeat=3):
            env = {"x0": bits[0], "x1": bits[1], "x2": bits[2]}
            # Translate to Python: ~a -> (1-a), & -> and, | -> or.
            py = expr.replace("~", "1-").replace("&", "and").replace("|", "or")
            value = bool(eval(py, {}, env))
            assert value == bdd.eval(f, {0: bits[0], 1: bits[1], 2: bits[2]})
