"""Golden regression values for the deterministic flows.

Everything in the engine is deterministic (no randomness at run time),
so fixed inputs must produce fixed LUT/CLB/gate counts.  These goldens
catch accidental behavioural drift; if a deliberate algorithm change
moves them, update the constants alongside the change.
"""

import pytest

from repro.arith.adders import adder_function, conditional_sum_adder
from repro.arith.multipliers import partial_multiplier_function
from repro.bench.registry import benchmark
from repro.core import map_to_xc3000, synthesize_two_input_gates


class TestArithmeticGoldens:
    def test_conditional_sum_adder_counts(self):
        assert conditional_sum_adder(4).gate_count == 26
        assert conditional_sum_adder(8).gate_count == 74

    def test_adder_decomposition_beats_baseline(self):
        gates = synthesize_two_input_gates(adder_function(8)).gate_count
        assert gates < conditional_sum_adder(8).gate_count
        # Near the paper's 49 (give head-room for heuristic changes).
        assert gates <= 60

    def test_pm4_dc_penalty(self):
        func = partial_multiplier_function(4)
        with_dc = synthesize_two_input_gates(func).gate_count
        without = synthesize_two_input_gates(
            func, use_dontcares=False).gate_count
        assert without > with_dc * 1.25


class TestBenchmarkGoldens:
    @pytest.mark.parametrize("name,max_clbs", [
        ("rd73", 6), ("rd84", 10), ("9sym", 7), ("z4ml", 5),
        ("misex1", 9), ("clip", 8),
    ])
    def test_small_circuit_budgets(self, name, max_clbs):
        # Upper bounds, not exact counts: the numbers may improve, but a
        # regression past these budgets signals a real quality loss
        # (paper-era tools land in the same region for these circuits).
        result = map_to_xc3000(benchmark(name))
        assert result.clb_count <= max_clbs, (
            f"{name}: {result.clb_count} CLBs exceeds budget {max_clbs}")

    def test_dc_never_hurts_on_reference_set(self):
        for name in ("rd84", "clip", "f51m", "sao2"):
            func = benchmark(name)
            with_dc = map_to_xc3000(func, use_dontcares=True).clb_count
            without = map_to_xc3000(func, use_dontcares=False).clb_count
            assert with_dc <= without, name
