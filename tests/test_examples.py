"""The examples must run and verify themselves (fast ones executed
directly; the heavier ones are smoke-tested with reduced arguments)."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, args=()):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "0 mismatches" in result.stdout
        assert "mulop-dc" in result.stdout

    def test_dontcare_symmetry(self):
        result = run_example("dontcare_symmetry.py")
        assert result.returncode == 0, result.stderr
        assert "common decomposition functions" in result.stdout
        assert "step 1" in result.stdout

    def test_fpga_flow_selected(self):
        result = run_example("fpga_flow.py", ["rd73", "z4ml"])
        assert result.returncode == 0, result.stderr
        assert "rd73" in result.stdout
        assert "total" in result.stdout

    def test_adder_synthesis_small(self):
        result = run_example("adder_synthesis.py", ["2", "4"])
        assert result.returncode == 0, result.stderr
        assert "cond-sum" in result.stdout

    def test_multiplier_scheme_small(self):
        result = run_example("multiplier_scheme.py", ["3"])
        assert result.returncode == 0, result.stderr
        assert "Wallace" in result.stdout
        assert "paper: +75%" in result.stdout

    def test_two_level_flow(self):
        result = run_example("two_level_flow.py")
        assert result.returncode == 0, result.stderr
        assert "espresso" in result.stdout
        assert "0 care-set mismatches" in result.stdout

    def test_ecc_decoder(self):
        result = run_example("ecc_decoder.py")
        assert result.returncode == 0, result.stderr
        assert "40/40" in result.stdout

    def test_netlist_flow(self):
        result = run_example("netlist_flow.py")
        assert result.returncode == 0, result.stderr
        assert "EQUIVALENT" in result.stdout
        assert "0 mismatches" in result.stdout
