"""Weighted-fair queue semantics: interleaving, weights, admission."""

import pytest

from repro.serve.queueing import FairQueue, QueueFull


def drain(queue):
    out = []
    while True:
        item = queue.pop()
        if item is None:
            return out
        out.append(item)


class TestFairness:
    def test_equal_tenants_interleave_despite_deep_backlog(self):
        queue = FairQueue(depth=100)
        for i in range(6):
            queue.push("hog", f"hog-{i}")
        queue.push("mouse", "mouse-0")
        order = drain(queue)
        # The mouse's single request does not wait behind the hog's six.
        assert order.index("mouse-0") <= 1

    def test_round_robin_between_equal_backlogs(self):
        queue = FairQueue(depth=100)
        for i in range(3):
            queue.push("a", f"a{i}")
        for i in range(3):
            queue.push("b", f"b{i}")
        order = drain(queue)
        # Strict 1:1 alternation once both are backlogged.
        tenants = [item[0] for item in order]
        assert tenants.count("a") == tenants.count("b") == 3
        assert all(tenants[i] != tenants[i + 1]
                   for i in range(len(tenants) - 1))

    def test_weight_two_drains_twice_as_fast(self):
        queue = FairQueue(depth=100)
        queue.set_weight("vip", 2.0)
        for i in range(4):
            queue.push("vip", f"v{i}")
            queue.push("std", f"s{i}")
        first_six = drain(queue)[:6]
        vips = sum(1 for item in first_six if item.startswith("v"))
        assert vips == 4  # all vip items fit in the first six slots

    def test_idle_tenant_gets_no_banked_credit(self):
        queue = FairQueue(depth=100)
        for i in range(4):
            queue.push("busy", f"busy-{i}")
        assert queue.pop() == "busy-0"
        assert queue.pop() == "busy-1"
        # A late arrival starts at the current virtual time, not at 0 —
        # it interleaves from now on instead of jumping the whole line.
        queue.push("late", "late-0")
        queue.push("late", "late-1")
        rest = drain(queue)
        assert rest[0] in ("late-0", "busy-2")
        assert set(rest) == {"late-0", "late-1", "busy-2", "busy-3"}
        tenants = ["late" if r.startswith("late") else "busy"
                   for r in rest]
        assert tenants != ["late", "late", "busy", "busy"]


class TestAdmission:
    def test_depth_is_per_tenant(self):
        queue = FairQueue(depth=2)
        queue.push("a", 1)
        queue.push("a", 2)
        with pytest.raises(QueueFull) as excinfo:
            queue.push("a", 3)
        assert excinfo.value.tenant == "a"
        assert excinfo.value.depth == 2
        queue.push("b", 1)  # another tenant is unaffected
        assert queue.rejected == 1

    def test_pop_frees_capacity(self):
        queue = FairQueue(depth=1)
        queue.push("a", 1)
        with pytest.raises(QueueFull):
            queue.push("a", 2)
        assert queue.pop() == 1
        queue.push("a", 2)
        assert queue.pop() == 2

    def test_bad_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            FairQueue(depth=0)
        with pytest.raises(ValueError):
            FairQueue().set_weight("t", 0)


class TestStats:
    def test_counters_and_depths(self):
        queue = FairQueue(depth=4)
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push("b", 3)
        queue.pop()
        stats = queue.stats()
        assert stats["pushed"] == 3 and stats["popped"] == 1
        assert stats["queued"] == 2 == len(queue)
        assert sum(stats["tenants"].values()) == 2

    def test_empty_queue_pops_none(self):
        queue = FairQueue()
        assert queue.pop() is None
        assert len(queue) == 0
