"""DecompositionService semantics, driven directly on an event loop:
cache read-through, single-flight, admission control, the retry/degrade
ladder, and bit-identical parity with the synchronous ``repro map``.
"""

import asyncio

import pytest

from repro.bench.registry import benchmark
from repro.core.api import map_to_xc3000
from repro.runtime.cache import ResultCache
from repro.serve import DecompositionService, Overloaded, ShuttingDown
from repro.serve.protocol import parse_request

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12


def run_with_service(coro_fn, **kwargs):
    """Run ``coro_fn(service)`` on a fresh loop, always draining."""
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("timeout", 120.0)
    kwargs.setdefault("retry_backoff_s", 0.01)
    kwargs.setdefault("heartbeat_s", 0.2)

    async def main():
        service = DecompositionService(**kwargs)
        try:
            return await coro_fn(service)
        finally:
            await service.drain(timeout=15)

    return asyncio.run(main())


def req(obj, **parse_kwargs):
    parse_kwargs.setdefault("allow_test_hooks", True)
    return parse_request(obj, **parse_kwargs)


class TestHappyPath:
    def test_result_is_bit_identical_to_repro_map(self):
        async def scenario(service):
            return await service.handle(
                req({"source": "xor5", "include_blif": True}),
                lambda frame: None)

        final = run_with_service(scenario)
        assert final["status"] == "ok" and final["cache_hit"] is False
        record = final["result"]
        assert record["verified"] is True
        # The acceptance bar: a served result equals what the
        # synchronous `repro map` path produces, bit for bit.
        ref = map_to_xc3000(benchmark("xor5")).to_record()
        assert record["blif"] == ref["blif"]
        assert record["lut_count"] == ref["lut_count"]
        assert record["clb_count"] == ref["clb_count"]
        assert record["depth"] == ref["depth"]
        assert record["engine"] == ref["engine"]

    def test_blif_dropped_unless_requested(self):
        async def scenario(service):
            return await service.handle(req({"source": "xor5"}),
                                        lambda frame: None)

        final = run_with_service(scenario)
        assert final["status"] == "ok"
        assert "blif" not in final["result"]

    def test_bad_source_is_typed_not_fatal(self):
        from repro.serve.protocol import BadSource

        async def scenario(service):
            body = ".model m\n.inputs a\n.outputs y\n"  # y undefined
            with pytest.raises(BadSource):
                await service.handle(
                    req({"source": {"kind": "blif", "body": body}}),
                    lambda frame: None)
            # The service is still healthy after the typed failure.
            final = await service.handle(req({"source": "rd53"}),
                                         lambda frame: None)
            return final

        final = run_with_service(scenario)
        assert final["status"] == "ok"


class TestCacheReadThrough:
    def test_repeat_request_never_touches_a_worker(self, tmp_path):
        frames = []

        async def scenario(service):
            first = await service.handle(req({"source": "rd53"}),
                                         lambda frame: None)
            dispatched = service.pool.stats()["dispatched"]
            second = await service.handle(
                req({"source": "rd53", "stream": True, "id": "r2"}),
                frames.append)
            return first, second, dispatched, \
                service.pool.stats()["dispatched"]

        first, second, before, after = run_with_service(
            scenario, cache=ResultCache(tmp_path / "cache"))
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True
        assert second["result"] == first["result"]
        assert after == before, "cache hit must not dispatch a worker"
        assert any(frame["event"] == "cache" for frame in frames)
        assert all(frame["id"] == "r2" for frame in frames)

    def test_only_ok_results_are_cached(self, tmp_path):
        async def scenario(service):
            degraded = await service.handle(
                req({"source": "rd53", "test_hook": "hang:60",
                     "timeout": 0.5}),
                lambda frame: None)
            # Same cache key as a clean request for the same job —
            # the degraded record must not have poisoned it.
            clean = await service.handle(req({"source": "rd53"}),
                                         lambda frame: None)
            return degraded, clean

        degraded, clean = run_with_service(
            scenario, cache=ResultCache(tmp_path / "cache"), workers=1)
        assert degraded["status"] == "degraded"
        assert clean["status"] == "ok" and clean["cache_hit"] is False
        assert "degraded" not in clean["result"]


class TestSingleFlight:
    def test_identical_concurrent_requests_share_one_computation(self):
        async def scenario(service):
            a, b, c = await asyncio.gather(
                service.handle(req({"source": "rd84"}), lambda f: None),
                service.handle(req({"source": "rd84"}), lambda f: None),
                service.handle(req({"source": "rd84"}), lambda f: None))
            return a, b, c, service.counters["coalesced"], \
                service.pool.stats()["dispatched"]

        a, b, c, coalesced, dispatched = run_with_service(scenario,
                                                          workers=1)
        assert a["status"] == b["status"] == c["status"] == "ok"
        assert a["result"] == b["result"] == c["result"]
        assert coalesced == 2
        assert dispatched == 1, "three riders, one worker dispatch"

    def test_chaos_requests_fly_alone(self):
        # A test_hook request must never be coalesced with (or serve
        # as the flight for) an innocent identical request.
        async def scenario(service):
            a, b = await asyncio.gather(
                service.handle(req({"source": "rd53",
                                    "test_hook": "crash"}),
                               lambda f: None),
                service.handle(req({"source": "rd53",
                                    "test_hook": "crash"}),
                               lambda f: None))
            return a, b, service.counters["coalesced"]

        a, b, coalesced = run_with_service(scenario, retries=0)
        assert coalesced == 0
        assert a["status"] == b["status"] == "degraded"


class TestAdmissionControl:
    @staticmethod
    async def _fill(service):
        """Occupy the single worker and the depth-1 queue."""
        hog = asyncio.ensure_future(service.handle(
            req({"source": "rd53", "test_hook": "hang:2"}),
            lambda f: None))
        while service._busy < 1:
            await asyncio.sleep(0.01)
        queued = asyncio.ensure_future(service.handle(
            req({"source": "xor5"}), lambda f: None))
        while len(service.queue) < 1:
            await asyncio.sleep(0.01)
        return hog, queued

    def test_overflow_sheds_to_verified_degraded_result(self):
        frames = []

        async def scenario(service):
            hog, queued = await self._fill(service)
            shed = await service.handle(
                req({"source": "rd73", "stream": True}), frames.append)
            results = await asyncio.gather(hog, queued)
            return shed, results, dict(service.counters)

        shed, results, counters = run_with_service(
            scenario, workers=1, queue_depth=1, shed="degrade")
        assert shed["status"] == "degraded"
        assert "load shed" in shed["error"]
        # Degraded-but-verified: the fallback is still a correct
        # mapping of the requested function.
        assert shed["result"]["verified"] is True
        assert shed["result"]["degraded"] is True
        assert counters["shed"] == 1
        assert any(frame["event"] == "shed" for frame in frames)
        assert all(r["status"] in ("ok", "degraded") for r in results)

    def test_reject_policy_raises_typed_overloaded(self):
        async def scenario(service):
            hog, queued = await self._fill(service)
            with pytest.raises(Overloaded):
                await service.handle(req({"source": "rd73"}),
                                     lambda f: None)
            await asyncio.gather(hog, queued)
            return dict(service.counters)

        counters = run_with_service(scenario, workers=1, queue_depth=1,
                                    shed="reject")
        assert counters["rejected"] == 1


class TestFailureLadder:
    def test_crash_is_retried_then_succeeds(self):
        frames = []

        async def scenario(service):
            final = await service.handle(
                req({"source": "rd53", "test_hook": "crash:1",
                     "stream": True}),
                frames.append)
            return final, dict(service.counters), \
                service.pool.stats()["dispatched"]

        final, counters, dispatched = run_with_service(scenario,
                                                       retries=2)
        assert final["status"] == "ok"
        assert counters["retries"] == 1
        assert dispatched == 2  # attempt 1 crashed, attempt 2 ran
        kinds = [frame["event"] for frame in frames]
        assert "retry" in kinds
        assert kinds.index("dispatch") < kinds.index("retry")

    def test_retries_exhausted_degrades(self):
        async def scenario(service):
            return await service.handle(
                req({"source": "rd53", "test_hook": "crash",
                     "retries": 1}),
                lambda f: None)

        final = run_with_service(scenario)
        assert final["status"] == "degraded"
        assert "retries exhausted" in final["error"]
        assert final["result"]["degraded"] is True

    def test_timeout_degrades_without_retry(self):
        async def scenario(service):
            final = await service.handle(
                req({"source": "rd53", "test_hook": "hang:60",
                     "timeout": 0.5}),
                lambda f: None)
            return final, service.pool.stats()["dispatched"]

        final, dispatched = run_with_service(scenario, workers=1,
                                             retries=3)
        assert final["status"] == "degraded"
        assert dispatched == 1, "timeouts are deterministic: no retry"
        assert final["result"]["verified"] is True

    def test_degraded_result_matches_batch_fallback(self):
        from repro.runtime import make_job, source_from_name
        from repro.runtime.scheduler import degraded_record

        async def scenario(service):
            return await service.handle(
                req({"source": "xor5", "test_hook": "crash",
                     "retries": 0, "include_blif": True}),
                lambda f: None)

        final = run_with_service(scenario)
        ref = degraded_record(make_job(source_from_name("xor5")))
        assert final["result"] == ref


class TestLifecycle:
    def test_draining_service_refuses_new_work(self):
        async def scenario(service):
            service._draining = True
            with pytest.raises(ShuttingDown):
                await service.handle(req({"source": "rd53"}),
                                     lambda f: None)
            return dict(service.counters)

        counters = run_with_service(scenario)
        assert counters["ok"] == 0

    def test_stats_document_shape(self, tmp_path):
        async def scenario(service):
            await service.handle(req({"source": "rd53"}),
                                 lambda f: None)
            return service.stats()

        stats = run_with_service(
            scenario, cache=ResultCache(tmp_path / "cache"))
        assert stats["counters"]["requests"] == 1
        assert stats["counters"]["ok"] == 1
        assert stats["pool"]["completed"] == 1
        assert stats["queue"]["pushed"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["uptime_s"] >= 0

    def test_stats_surface_latency_and_warm_hits(self, tmp_path):
        # The /metrics document carries the cache latency percentiles
        # (counter_stats — no disk walk on a poll) and the pool's
        # warm-function hit counter.
        async def scenario(service):
            for _ in range(2):  # second request: cache hit
                await service.handle(req({"source": "rd53"}),
                                     lambda f: None)
            return service.stats()

        stats = run_with_service(
            scenario, cache=ResultCache(tmp_path / "cache"))
        cache = stats["cache"]
        assert cache["hit_latency"]["samples"] == 1
        assert cache["miss_latency"]["samples"] == 1
        assert cache["hit_latency"]["p50_ms"] > 0.0
        assert "entries" not in cache  # no disk walk on a poll
        assert "warm_hits" in stats["pool"]
