"""Fixtures for the service-tier tests.

There is no async test plugin in the toolchain, so async service tests
run under ``asyncio.run`` and daemon tests host the real daemon on a
background thread (its own event loop) while the test drives it over
real sockets — which is also the more honest test: the client side
exercises the same code paths an external caller would.
"""

import asyncio
import json
import socket
import threading
import urllib.request

import pytest

from repro.runtime.cache import ResultCache
from repro.serve import DecompositionService, ServeDaemon


class DaemonHarness:
    """A live daemon plus a tiny NDJSON/HTTP client for the tests."""

    def __init__(self, daemon, service, thread, socket_path):
        self.daemon = daemon
        self.service = service
        self.thread = thread
        self.socket_path = socket_path

    # -- unix NDJSON client ---------------------------------------------

    def raw(self, payload: bytes, timeout: float = 120.0) -> bytes:
        sock = socket.socket(socket.AF_UNIX)
        sock.connect(self.socket_path)
        sock.settimeout(timeout)
        try:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            buf = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    return buf
                buf += chunk
        finally:
            sock.close()

    def ask(self, *objs, timeout: float = 120.0):
        """Send request objects on one connection; return all frames."""
        payload = b"".join(
            (json.dumps(obj) + "\n").encode() for obj in objs)
        return [json.loads(line)
                for line in self.raw(payload, timeout).splitlines()
                if line.strip()]

    # -- HTTP client ----------------------------------------------------

    def http(self, path, body=None, method=None, timeout=120.0):
        host, port = self.daemon.http_address
        url = f"http://{host}:{port}{path}"
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            url, data=data, method=method or ("POST" if data else "GET"))
        try:
            with urllib.request.urlopen(request,
                                        timeout=timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def stop(self, timeout: float = 30.0) -> None:
        self.daemon.request_stop()
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "daemon failed to drain"


def start_daemon(tmp_path, **overrides):
    service_kwargs = dict(workers=2, timeout=120.0, retries=1,
                          heartbeat_s=0.2, retry_backoff_s=0.01,
                          cache=ResultCache(tmp_path / "cache"))
    daemon_kwargs = dict(allow_test_hooks=True, port=0)
    for key in list(overrides):
        if key in ("queue_depth", "shed", "workers", "timeout",
                   "retries", "hang_grace_s", "heartbeat_s", "cache",
                   "warm_limit", "weights"):
            service_kwargs[key] = overrides.pop(key)
    daemon_kwargs.update(overrides)
    socket_path = str(tmp_path / "repro.sock")
    service = DecompositionService(**service_kwargs)
    daemon = ServeDaemon(service, socket_path=socket_path,
                         **daemon_kwargs)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.run(lambda d: ready.set())),
        daemon=True)
    thread.start()
    assert ready.wait(30), "daemon failed to start"
    return DaemonHarness(daemon, service, thread, socket_path)


@pytest.fixture
def daemon(tmp_path):
    harness = start_daemon(tmp_path)
    yield harness
    if harness.thread.is_alive():
        harness.stop()
