"""Request-parsing hardening: every malformed shape maps to a typed
error, and nothing a client sends can raise an untyped exception.

This is the fuzz-style suite behind the daemon's "nothing a client
sends may take the daemon down" contract — `parse_request` is the
single choke point all front-ends go through.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.protocol import (
    BadFrame,
    BadRequest,
    BadSource,
    Overloaded,
    ServeError,
    ShuttingDown,
    TooLarge,
    parse_request,
    strip_record,
)


class TestHappyPath:
    def test_minimal_request(self):
        req = parse_request({"source": "rd84"})
        assert req.source == {"kind": "benchmark", "name": "rd84"}
        assert req.flow == "map" and req.tenant == "default"
        assert req.stream is False and req.id is None

    def test_full_request(self):
        req = parse_request({
            "id": "q1", "tenant": "ci", "flow": "compare",
            "source": {"kind": "synthetic", "name": "mux",
                       "inputs": 6, "outputs": 2, "seed": 3},
            "config": {"verify": False}, "stream": True,
            "timeout": 30, "retries": 2,
        })
        assert req.flow == "compare" and req.tenant == "ci"
        assert req.source["seed"] == "3"
        assert req.timeout == 30.0 and req.retries == 2

    def test_inline_blif_body(self):
        body = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"
        req = parse_request({"source": {"kind": "blif", "body": body}})
        assert req.source == {"kind": "blif", "body": body}

    def test_synth_string_spec(self):
        req = parse_request({"source": "synth:mux:6:2:42"})
        assert req.source["kind"] == "synthetic"
        assert req.source["inputs"] == 6

    def test_job_config_matches_batch_cli_normalization(self):
        # Same keys as `_parse_batch_jobs`, so serve and batch requests
        # share cache entries for identical work.
        assert parse_request({"source": "rd84"}).job_config() \
            == {"use_dontcares": True}
        assert parse_request({"source": "rd84",
                              "flow": "compare"}).job_config() == {}
        assert parse_request(
            {"source": "rd84", "config": {"verify": False}}
        ).job_config() == {"use_dontcares": True, "verify": False}


class TestTypedRejections:
    @pytest.mark.parametrize("obj, exc", [
        (None, BadRequest),
        ([], BadRequest),
        ("rd84", BadRequest),
        (42, BadRequest),
        ({}, BadRequest),                                # no source
        ({"source": "rd84", "bogus": 1}, BadRequest),    # unknown field
        ({"source": 5}, BadRequest),
        ({"source": ""}, BadRequest),
        ({"source": "x" * 600}, BadRequest),
        ({"source": "rd84!crash"}, BadRequest),          # hook smuggling
        ({"source": "no-such-circuit"}, BadSource),
        ({"source": {"kind": "warp"}}, BadRequest),
        ({"source": {"kind": "benchmark"}}, BadRequest),  # no name
        ({"source": {"kind": "synthetic", "name": "m",
                     "inputs": "six", "outputs": 2}}, BadRequest),
        ({"source": {"kind": "synthetic", "name": "m",
                     "inputs": 99, "outputs": 2}}, BadRequest),
        ({"source": "synth:m:bad:2"}, BadSource),        # manifest grammar
        ({"source": "rd84", "flow": "fastest"}, BadRequest),
        ({"source": "rd84", "tenant": ""}, BadRequest),
        ({"source": "rd84", "tenant": 7}, BadRequest),
        ({"source": "rd84", "id": ""}, BadRequest),
        ({"source": "rd84", "id": "x" * 200}, BadRequest),
        ({"source": "rd84", "config": ["verify"]}, BadRequest),
        ({"source": "rd84", "config": {"nope": 1}}, BadRequest),
        ({"source": "rd84", "config": {"verify": "yes"}}, BadRequest),
        ({"source": "rd84", "config": {"time_budget": -1}}, BadRequest),
        ({"source": "rd84", "stream": "yes"}, BadRequest),
        ({"source": "rd84", "timeout": 0}, BadRequest),
        ({"source": "rd84", "timeout": -5}, BadRequest),
        ({"source": "rd84", "timeout": 1e9}, BadRequest),
        ({"source": "rd84", "retries": -1}, BadRequest),
        ({"source": "rd84", "retries": 99}, BadRequest),
        ({"source": "rd84", "retries": 1.5}, BadRequest),
    ])
    def test_malformed_requests_are_typed(self, obj, exc):
        with pytest.raises(exc):
            parse_request(obj)

    def test_file_sources_refused_unless_enabled(self):
        with pytest.raises(BadSource):
            parse_request({"source": "pla:/etc/passwd"})
        with pytest.raises(BadSource):
            parse_request({"source": {"kind": "blif",
                                      "path": "/tmp/x.blif"}})
        req = parse_request({"source": "pla:/tmp/x.pla"},
                            allow_files=True)
        assert req.source == {"kind": "pla", "path": "/tmp/x.pla"}

    def test_test_hooks_refused_unless_enabled(self):
        with pytest.raises(BadRequest):
            parse_request({"source": "rd84", "test_hook": "crash"})
        req = parse_request({"source": "rd84", "test_hook": "crash:2"},
                            allow_test_hooks=True)
        assert req.test_hook == "crash:2"
        with pytest.raises(BadRequest):
            parse_request({"source": "rd84", "test_hook": "rm -rf /"},
                          allow_test_hooks=True)

    def test_oversized_inline_body_is_too_large(self):
        body = "x" * 2048
        with pytest.raises(TooLarge):
            parse_request({"source": {"kind": "blif", "body": body}},
                          max_body_bytes=1024)
        # Under the ceiling the same shape parses.
        parse_request({"source": {"kind": "blif", "body": "ok"}},
                      max_body_bytes=1024)

    def test_error_taxonomy_is_stable(self):
        # Codes and statuses are wire contract — clients key on them.
        assert BadFrame.code == "bad-frame"
        assert BadRequest("x").http_status == 400
        assert BadSource("x").http_status == 422
        assert TooLarge("x").http_status == 413
        assert Overloaded("x").http_status == 503
        assert ShuttingDown("x").http_status == 503
        frame = BadRequest("nope").as_frame("req-1")
        assert frame == {"event": "error", "error": "bad-request",
                         "message": "nope", "id": "req-1"}


class TestFuzzNeverUntypedErrors:
    """Arbitrary JSON documents either parse or raise ServeError —
    never KeyError/TypeError/AttributeError."""

    json_values = st.recursive(
        st.none() | st.booleans() | st.integers() | st.floats(
            allow_nan=False) | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=10), children, max_size=4),
        max_leaves=12)

    @settings(max_examples=200, deadline=None)
    @given(obj=json_values)
    def test_arbitrary_json(self, obj):
        try:
            parse_request(obj)
        except ServeError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(fields=st.dictionaries(
        st.sampled_from(["id", "tenant", "flow", "source", "config",
                         "stream", "timeout", "retries", "test_hook",
                         "include_blif", "junk"]),
        json_values, max_size=6))
    def test_plausible_request_shapes(self, fields):
        try:
            parse_request(fields, allow_test_hooks=True)
        except ServeError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(body=st.text(max_size=200))
    def test_garbage_blif_bodies_parse_or_reject(self, body):
        # Parsing only validates shape here; building the function is
        # where a bad body fails (as BadSource, service-side).  The
        # protocol layer must accept any string body under the ceiling.
        try:
            req = parse_request({"source": {"kind": "blif",
                                            "body": body}})
            assert req.source["body"] == body
        except ServeError:
            pass


class TestTruncatedFramesDecodeAsBadFrame:
    """The daemon's _decode path: truncated/binary frames are bad-frame
    (exercised end-to-end in test_daemon; here the pure parse)."""

    @pytest.mark.parametrize("raw", [
        b'{"source": "rd84"',            # truncated JSON
        b'{"source": ',                  # more truncation
        b"\x00\xff\xfe binary",          # not UTF-8 JSON
        b"",                             # empty frame
        b"source=rd84",                  # not JSON at all
    ])
    def test_bad_bytes(self, raw):
        try:
            obj = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return  # the daemon maps this to BadFrame; nothing escapes
        with pytest.raises(ServeError):
            parse_request(obj)


class TestStripRecord:
    def test_drops_blif_unless_requested(self):
        record = {"lut_count": 3, "blif": ".model ...",
                  "mulopII": {"clb_count": 2, "blif": "..."}}
        slim = strip_record(record, include_blif=False)
        assert "blif" not in slim
        assert "blif" not in slim["mulopII"]
        assert slim["lut_count"] == 3
        full = strip_record(record, include_blif=True)
        assert full["blif"] == ".model ..."
        assert strip_record(None, include_blif=False) is None
