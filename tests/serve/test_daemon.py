"""End-to-end daemon tests over real sockets.

The daemon runs on a background thread with its own event loop; the
tests are the client.  This exercises the full stack — framing, fault
sites, the service core, the worker pool — exactly the way an external
caller would, including the acceptance bar: a SIGKILLed worker
mid-request never takes the daemon down.
"""

import json
import os
import signal
import socket
import time

import multiprocessing

import pytest

from tests.serve.conftest import start_daemon

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12


class TestUnixFrontend:
    def test_roundtrip_ok(self, daemon):
        frames = daemon.ask({"source": "rd53"})
        assert len(frames) == 1
        final = frames[0]
        assert final["event"] == "result" and final["status"] == "ok"
        assert final["cache_hit"] is False
        assert final["result"]["verified"] is True
        assert "blif" not in final["result"]

    def test_streaming_emits_progress_then_result(self, daemon):
        frames = daemon.ask({"source": "rd84", "stream": True,
                             "id": "s1"})
        kinds = [frame["event"] for frame in frames]
        assert kinds[0] == "queued"
        assert "dispatch" in kinds
        assert kinds[-1] == "result"
        assert kinds.index("queued") < kinds.index("dispatch")
        assert all(frame["id"] == "s1" for frame in frames)
        assert frames[-1]["status"] == "ok"

    def test_repeat_request_is_a_cache_hit_with_zero_dispatches(
            self, daemon):
        first = daemon.ask({"source": "rd53"})[0]
        dispatched = daemon.service.pool.stats()["dispatched"]
        second = daemon.ask({"source": "rd53"})[0]
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True
        assert second["status"] == "ok"
        assert second["result"] == first["result"]
        assert daemon.service.pool.stats()["dispatched"] == dispatched
        assert daemon.service.counters["cache_hits"] == 1

    def test_pipelined_requests_on_one_connection(self, daemon):
        frames = daemon.ask({"source": "rd53", "id": "a"},
                            {"source": "xor5", "id": "b"})
        by_id = {frame["id"]: frame for frame in frames}
        assert set(by_id) == {"a", "b"}
        assert all(frame["status"] == "ok" for frame in by_id.values())

    def test_served_result_matches_repro_map(self, daemon):
        from repro.bench.registry import benchmark
        from repro.core.api import map_to_xc3000
        final = daemon.ask({"source": "xor5",
                            "include_blif": True})[0]
        ref = map_to_xc3000(benchmark("xor5")).to_record()
        assert final["result"]["blif"] == ref["blif"]
        assert final["result"]["clb_count"] == ref["clb_count"]


class TestClientsCannotKillTheDaemon:
    BAD_LINES = [
        b'{"source": "rd84"',            # truncated JSON
        b"\xff\xfe binary garbage",      # not UTF-8
        b"source=rd84",                  # not JSON
        b'["not", "an", "object"]',      # wrong JSON shape
        b'{"source": "rd53", "bogus": 1}',  # unknown field
        b'{"source": "no-such-circuit"}',   # unknown benchmark
        b'{"source": "pla:/etc/passwd"}',   # files not enabled
    ]

    def test_malformed_frames_get_typed_errors(self, daemon):
        for raw in self.BAD_LINES:
            frames = [json.loads(line) for line in
                      daemon.raw(raw + b"\n").splitlines()]
            assert len(frames) == 1, raw
            assert frames[0]["event"] == "error", raw
            assert frames[0]["error"] in (
                "bad-frame", "bad-request", "bad-source"), raw
        # After all of that abuse, the daemon still serves real work.
        assert daemon.ask({"source": "rd53"})[0]["status"] == "ok"
        assert daemon.daemon.bad_frames == len(self.BAD_LINES)

    def test_mixed_good_and_bad_lines_on_one_connection(self, daemon):
        frames = daemon.ask({"source": "rd53", "id": "good"},
                            {"source": "nope", "id": "bad"})
        by_id = {frame.get("id"): frame for frame in frames}
        assert by_id["good"]["status"] == "ok"
        assert by_id["bad"]["event"] == "error"
        assert by_id["bad"]["error"] == "bad-source"

    def test_oversized_frame_is_typed_and_closes(self, tmp_path):
        harness = start_daemon(tmp_path, max_frame_bytes=4096)
        try:
            huge = json.dumps(
                {"source": {"kind": "blif",
                            "body": "x" * 8192}}).encode()
            frames = [json.loads(line) for line in
                      harness.raw(huge + b"\n").splitlines()]
            assert frames[-1]["event"] == "error"
            assert frames[-1]["error"] == "too-large"
            # A fresh connection still works.
            assert harness.ask({"source": "rd53"})[0]["status"] == "ok"
        finally:
            harness.stop()

    def test_abrupt_disconnect_leaves_daemon_alive(self, daemon):
        sock = socket.socket(socket.AF_UNIX)
        sock.connect(daemon.socket_path)
        sock.sendall(b'{"source": "rd84", "stream": true}\n')
        sock.close()  # walk away mid-request
        time.sleep(0.2)
        assert daemon.ask({"source": "rd53"})[0]["status"] == "ok"


class TestWorkerCrashContainment:
    def test_sigkilled_worker_mid_request_never_kills_the_daemon(
            self, daemon):
        # Occupy a worker with a slow request, SIGKILL that worker
        # mid-flight, and require (a) the daemon survives, (b) the
        # client still gets a settled, verified reply.
        sock = socket.socket(socket.AF_UNIX)
        sock.connect(daemon.socket_path)
        sock.settimeout(120)
        sock.sendall(json.dumps(
            {"source": "rd53", "test_hook": "hang:30",
             "timeout": 5, "retries": 0, "stream": True}).encode()
            + b"\n")
        sock.shutdown(socket.SHUT_WR)
        # Wait until the job is dispatched to a worker, then shoot it.
        deadline = time.monotonic() + 30
        while daemon.service.pool.stats()["dispatched"] < 1:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        # Workers spawn lazily; find the one actually running the job.
        victim = None
        while victim is None:
            assert time.monotonic() < deadline
            victim = next((w.process.pid
                           for w in daemon.service.pool._pool
                           if w.busy and w.process.pid is not None),
                          None)
            time.sleep(0.02)
        time.sleep(0.2)
        os.kill(victim, signal.SIGKILL)

        buf = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
        sock.close()
        frames = [json.loads(line) for line in buf.splitlines()]
        final = frames[-1]
        assert final["event"] == "result"
        # retries=0: the crash degrades to the verified fallback.
        assert final["status"] == "degraded"
        assert final["result"]["verified"] is True
        # The daemon survived and replaced the dead worker.
        assert daemon.thread.is_alive()
        assert daemon.ask({"source": "xor5"})[0]["status"] == "ok"
        pids_after = set(daemon.service.pool.stats()["pids"])
        assert victim not in pids_after

    def test_crash_hook_retries_to_ok_over_the_wire(self, daemon):
        frames = daemon.ask({"source": "rd53", "test_hook": "crash:1",
                             "retries": 2, "stream": True})
        kinds = [frame["event"] for frame in frames]
        assert "retry" in kinds
        assert frames[-1]["status"] == "ok"
        assert daemon.thread.is_alive()


class TestHttpFrontend:
    def test_post_decompose(self, daemon):
        status, body = daemon.http("/decompose", {"source": "rd53"})
        assert status == 200
        final = json.loads(body)
        assert final["status"] == "ok"
        assert final["result"]["verified"] is True

    def test_streaming_chunked_ndjson(self, daemon):
        status, body = daemon.http("/decompose",
                                   {"source": "rd53", "stream": True})
        assert status == 200
        frames = [json.loads(line) for line in body.splitlines()
                  if line.strip()]
        kinds = [frame["event"] for frame in frames]
        assert kinds[0] == "queued" and kinds[-1] == "result"

    def test_typed_http_statuses(self, daemon):
        cases = [
            ({"source": "no-such-circuit"}, 422),
            ({"source": "rd53", "bogus": 1}, 400),
            ({}, 400),
        ]
        for payload, expected in cases:
            status, body = daemon.http("/decompose", payload)
            assert status == expected, payload
            assert json.loads(body)["event"] == "error"

    def test_routes_and_methods(self, daemon):
        status, _ = daemon.http("/nope")
        assert status == 404
        status, _ = daemon.http("/decompose", method="GET")
        assert status == 405

    def test_healthz_and_metrics(self, daemon):
        daemon.ask({"source": "rd53"})
        status, body = daemon.http("/healthz")
        assert status == 200 and json.loads(body)["ok"] is True
        status, body = daemon.http("/metrics")
        assert status == 200
        metrics = json.loads(body)
        assert metrics["command"] == "serve"
        assert metrics["counters"]["requests"] >= 1
        assert metrics["server"]["connections"] >= 1
        assert metrics["pool"]["workers"] == 2


class TestGracefulDrain:
    def test_stop_drains_cleanly(self, tmp_path):
        harness = start_daemon(tmp_path)
        assert harness.ask({"source": "rd53"})[0]["status"] == "ok"
        harness.stop()
        assert not os.path.exists(harness.socket_path)
        assert multiprocessing.active_children() == []

    def test_draining_daemon_refuses_new_work(self, tmp_path):
        harness = start_daemon(tmp_path)
        try:
            harness.service._draining = True
            final = harness.ask({"source": "rd53"})[0]
            assert final["event"] == "error"
            assert final["error"] == "shutting-down"
        finally:
            harness.service._draining = False
            harness.stop()
