"""Tests for the greedy symmetry-maximising DC assignment (paper step 1)."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.symmetry.groups import (
    assign_for_symmetry,
    assign_for_symmetry_multi,
    isf_symmetry_groups,
)
from repro.symmetry.isf_symmetry import SymmetryKind, strongly_symmetric


@pytest.fixture
def bdd():
    return BDD(5)


def isf_from_spec(bdd, spec, variables):
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    return ISF.create(bdd,
                      bdd.from_truth_table(onset, variables),
                      bdd.from_truth_table(upper, variables))


class TestIsfSymmetryGroups:
    def test_complete_symmetric(self, bdd):
        # weight-2 function on 3 vars: totally symmetric.
        spec = [1 if bin(k).count("1") == 2 else 0 for k in range(8)]
        isf = isf_from_spec(bdd, spec, [0, 1, 2])
        groups = isf_symmetry_groups(bdd, isf, [0, 1, 2])
        assert groups == [[0, 1, 2]]

    def test_no_symmetry(self, bdd):
        isf = ISF.complete(
            bdd.apply_or(bdd.apply_and(bdd.var(0), bdd.var(1)), bdd.var(2)))
        groups = isf_symmetry_groups(bdd, isf, [0, 1, 2])
        assert [0, 1] in groups  # AND part is symmetric
        assert [2] in groups


class TestAssignForSymmetry:
    def test_single_dc_unlocks_total_symmetry(self, bdd):
        # Weight function with one corrupted minterm marked DC: the
        # assignment must recover total symmetry.
        spec = [1 if bin(k).count("1") >= 2 else 0 for k in range(8)]
        spec[0b011] = None
        isf = isf_from_spec(bdd, spec, [0, 1, 2])
        fixed, groups = assign_for_symmetry(bdd, isf, [0, 1, 2])
        assert groups == [[0, 1, 2]]
        assert bdd.eval(fixed.lo, {0: 0, 1: 1, 2: 1})

    def test_result_refines_input(self, bdd):
        rng = random.Random(41)
        for _ in range(10):
            spec = [rng.choice([0, 1, None]) for _ in range(16)]
            isf = isf_from_spec(bdd, spec, [0, 1, 2, 3])
            fixed, _ = assign_for_symmetry(bdd, isf, [0, 1, 2, 3])
            assert fixed.refines(bdd, isf)

    def test_groups_are_strongly_symmetric(self, bdd):
        rng = random.Random(43)
        for _ in range(10):
            spec = [rng.choice([0, 1, None]) for _ in range(16)]
            isf = isf_from_spec(bdd, spec, [0, 1, 2, 3])
            fixed, groups = assign_for_symmetry(bdd, isf, [0, 1, 2, 3])
            for group in groups:
                for i in range(len(group)):
                    for j in range(i + 1, len(group)):
                        assert strongly_symmetric(bdd, fixed, group[i],
                                                  group[j])

    def test_all_dc_becomes_fully_symmetric(self, bdd):
        isf = ISF.create(bdd, BDD.FALSE, BDD.TRUE)
        fixed, groups = assign_for_symmetry(bdd, isf, [0, 1, 2])
        # Fully unspecified function has empty support -> nothing to do.
        assert groups == []

    def test_protected_groups_respected(self, bdd):
        # Craft an ISF where symmetrising (1,2) would break symmetry in
        # the protected pair (0,1); the assignment must refuse.
        rng = random.Random(47)
        for _ in range(20):
            spec = [rng.choice([0, 1, None]) for _ in range(8)]
            isf = isf_from_spec(bdd, spec, [0, 1, 2])
            if not strongly_symmetric(bdd, isf, 0, 1):
                continue
            fixed, _ = assign_for_symmetry(
                bdd, isf, [0, 1, 2], protected_groups=[[0, 1]])
            assert strongly_symmetric(bdd, fixed, 0, 1)


class TestAssignMulti:
    def test_common_groups_created(self, bdd):
        # Two outputs, both potentially symmetric in (0,1) via DCs.
        spec1 = [0, 1, None, 1]          # over vars 0,1
        spec2 = [1, None, 0, 0]
        isf1 = isf_from_spec(bdd, spec1, [0, 1])
        isf2 = isf_from_spec(bdd, spec2, [0, 1])
        outputs, groups = assign_for_symmetry_multi(bdd, [isf1, isf2],
                                                    [0, 1])
        as_sets = [set(g) for g in groups]
        assert {0, 1} in as_sets
        for out in outputs:
            assert strongly_symmetric(bdd, out, 0, 1)

    def test_outputs_refine_inputs(self, bdd):
        rng = random.Random(53)
        specs = [[rng.choice([0, 1, None]) for _ in range(8)]
                 for _ in range(3)]
        isfs = [isf_from_spec(bdd, s, [0, 1, 2]) for s in specs]
        outputs, _ = assign_for_symmetry_multi(bdd, isfs, [0, 1, 2])
        for before, after in zip(isfs, outputs):
            assert after.refines(bdd, before)

    def test_empty_support(self, bdd):
        isfs = [ISF.complete(BDD.TRUE)]
        outputs, groups = assign_for_symmetry_multi(bdd, isfs, [0, 1])
        assert outputs[0].lo == BDD.TRUE


class TestPotentialPairs:
    def test_counts(self, bdd):
        from repro.symmetry.groups import potential_pairs
        from repro.boolfunc.spec import ISF
        # AND is symmetric -> its only pair is potentially symmetric.
        isf = ISF.complete(bdd.apply_and(bdd.var(0), bdd.var(1)))
        assert potential_pairs(bdd, isf, [0, 1]) == 1
        # Implication is not.
        isf2 = ISF.complete(bdd.apply_implies(bdd.var(0), bdd.var(1)))
        assert potential_pairs(bdd, isf2, [0, 1]) == 0
