"""Tests for ISF symmetry notions and the make-symmetric assignment."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.symmetry.isf_symmetry import (
    SymmetryKind,
    make_symmetric,
    potentially_symmetric,
    strongly_symmetric,
)


@pytest.fixture
def bdd():
    return BDD(4)


def isf_from_spec(bdd, spec, variables):
    """spec: list over minterms with entries 0, 1 or None (DC)."""
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    return ISF.create(bdd,
                      bdd.from_truth_table(onset, variables),
                      bdd.from_truth_table(upper, variables))


class TestStrongSymmetry:
    def test_complete_symmetric(self, bdd):
        isf = ISF.complete(bdd.apply_and(bdd.var(0), bdd.var(1)))
        assert strongly_symmetric(bdd, isf, 0, 1)

    def test_complete_asymmetric(self, bdd):
        isf = ISF.complete(bdd.apply_implies(bdd.var(0), bdd.var(1)))
        assert not strongly_symmetric(bdd, isf, 0, 1)

    def test_equivalence_kind(self, bdd):
        isf = ISF.complete(bdd.apply_and(bdd.var(0),
                                         bdd.apply_not(bdd.var(1))))
        assert strongly_symmetric(bdd, isf, 0, 1,
                                  SymmetryKind.EQUIVALENCE)
        assert not strongly_symmetric(bdd, isf, 0, 1,
                                      SymmetryKind.NONEQUIVALENCE)

    def test_same_var(self, bdd):
        isf = ISF.complete(bdd.var(0))
        assert strongly_symmetric(bdd, isf, 0, 0)


class TestPotentialSymmetry:
    def test_dc_enables_symmetry(self, bdd):
        # f(0,1) = 1, f(1,0) = DC: potentially but not strongly symmetric.
        spec = [0, 1, None, 0]  # minterms 00,01,10,11 over vars (0,1)
        isf = isf_from_spec(bdd, spec, [0, 1])
        assert potentially_symmetric(bdd, isf, 0, 1)
        assert not strongly_symmetric(bdd, isf, 0, 1)

    def test_conflict_is_detected(self, bdd):
        # f(0,1) = 1, f(1,0) = 0: no extension is symmetric.
        spec = [0, 1, 0, 0]
        isf = isf_from_spec(bdd, spec, [0, 1])
        assert not potentially_symmetric(bdd, isf, 0, 1)

    def test_strong_implies_potential(self, bdd):
        rng = random.Random(17)
        for _ in range(30):
            spec = [rng.choice([0, 1, None]) for _ in range(8)]
            isf = isf_from_spec(bdd, spec, [0, 1, 2])
            for i in range(3):
                for j in range(i + 1, 3):
                    for kind in SymmetryKind:
                        if strongly_symmetric(bdd, isf, i, j, kind):
                            assert potentially_symmetric(bdd, isf, i, j,
                                                         kind)

    def test_potential_matches_bruteforce(self, bdd):
        """Potential symmetry iff some extension is symmetric (exhaustive)."""
        from repro.bdd.ops import swap_vars
        rng = random.Random(23)
        for _ in range(12):
            spec = [rng.choice([0, 1, None]) for _ in range(8)]
            isf = isf_from_spec(bdd, spec, [0, 1, 2])
            dc_positions = [k for k, v in enumerate(spec) if v is None]
            for i in range(3):
                for j in range(i + 1, 3):
                    found = False
                    for fill in range(1 << len(dc_positions)):
                        concrete = list(spec)
                        for t, pos in enumerate(dc_positions):
                            concrete[pos] = (fill >> t) & 1
                        f = bdd.from_truth_table(concrete, [0, 1, 2])
                        if swap_vars(bdd, f, i, j) == f:
                            found = True
                            break
                    assert potentially_symmetric(bdd, isf, i, j) == found


class TestMakeSymmetric:
    def test_creates_strong_symmetry(self, bdd):
        spec = [0, 1, None, 0]
        isf = isf_from_spec(bdd, spec, [0, 1])
        fixed = make_symmetric(bdd, isf, 0, 1)
        assert strongly_symmetric(bdd, fixed, 0, 1)
        # The forced value: f(1,0) must become 1.
        assert bdd.eval(fixed.lo, {0: 1, 1: 0})

    def test_refines_interval(self, bdd):
        rng = random.Random(31)
        for _ in range(20):
            spec = [rng.choice([0, 1, None]) for _ in range(16)]
            isf = isf_from_spec(bdd, spec, [0, 1, 2, 3])
            for i in range(4):
                for j in range(i + 1, 4):
                    for kind in SymmetryKind:
                        if potentially_symmetric(bdd, isf, i, j, kind):
                            fixed = make_symmetric(bdd, isf, i, j, kind)
                            assert fixed.refines(bdd, isf)
                            assert strongly_symmetric(bdd, fixed, i, j,
                                                      kind)

    def test_untouched_cofactors_preserved(self, bdd):
        spec = [None, 1, None, 0]
        isf = isf_from_spec(bdd, spec, [0, 1])
        fixed = make_symmetric(bdd, isf, 0, 1)
        # 00 cofactor stays DC, 11 cofactor stays 0.
        assert not bdd.eval(fixed.lo, {0: 0, 1: 0})
        assert bdd.eval(fixed.hi, {0: 0, 1: 0})
        assert not bdd.eval(fixed.hi, {0: 1, 1: 1})

    def test_raises_on_conflict(self, bdd):
        spec = [0, 1, 0, 0]
        isf = isf_from_spec(bdd, spec, [0, 1])
        with pytest.raises(ValueError):
            make_symmetric(bdd, isf, 0, 1)

    def test_equivalence_assignment(self, bdd):
        # f(0,0)=1, f(1,1)=DC -> equivalence symmetrisation forces f(1,1)=1.
        spec = [1, 0, 0, None]
        isf = isf_from_spec(bdd, spec, [0, 1])
        fixed = make_symmetric(bdd, isf, 0, 1, SymmetryKind.EQUIVALENCE)
        assert bdd.eval(fixed.lo, {0: 1, 1: 1})
        assert strongly_symmetric(bdd, fixed, 0, 1,
                                  SymmetryKind.EQUIVALENCE)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from([0, 1, None]), min_size=8, max_size=8),
       st.sampled_from([(0, 1), (0, 2), (1, 2)]),
       st.sampled_from(list(SymmetryKind)))
def test_make_symmetric_least_committing(spec, pair, kind):
    """Property: make_symmetric only narrows where it must — the result
    still admits every symmetric extension of the original ISF."""
    from repro.bdd.ops import swap_vars
    bdd = BDD(3)
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    isf = ISF.create(bdd, bdd.from_truth_table(onset, [0, 1, 2]),
                     bdd.from_truth_table(upper, [0, 1, 2]))
    i, j = pair
    if not potentially_symmetric(bdd, isf, i, j, kind):
        return
    fixed = make_symmetric(bdd, isf, i, j, kind)
    dc_positions = [k for k, v in enumerate(spec) if v is None]
    for fill in range(1 << len(dc_positions)):
        concrete = list(spec)
        for t, pos in enumerate(dc_positions):
            concrete[pos] = (fill >> t) & 1
        f = bdd.from_truth_table(concrete, [0, 1, 2])
        if kind is SymmetryKind.NONEQUIVALENCE:
            symmetric = swap_vars(bdd, f, i, j) == f
        else:
            from repro.symmetry.isf_symmetry import _cof
            symmetric = (_cof(bdd, f, i, j, 0, 0)
                         == _cof(bdd, f, i, j, 1, 1))
        if symmetric:
            assert fixed.admits(bdd, f)
