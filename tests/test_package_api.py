"""Package-surface checks: exports exist, are documented, and import
cleanly from a cold interpreter."""

import importlib
import subprocess
import sys

import pytest

PACKAGES = [
    "repro",
    "repro.bdd",
    "repro.boolfunc",
    "repro.symmetry",
    "repro.decomp",
    "repro.mapping",
    "repro.network",
    "repro.twolevel",
    "repro.verify",
    "repro.arith",
    "repro.bench",
    "repro.core",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"
        obj = getattr(module, symbol)
        if callable(obj) and not isinstance(obj, type(importlib)):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_cold_import_is_fast_and_clean():
    code = "import repro; print(repro.__version__)"
    result = subprocess.run([sys.executable, "-c", code],
                            capture_output=True, text=True, timeout=60)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "1.0.0"
    assert result.stderr.strip() == ""


def test_no_circular_import_traps():
    # Importing leaf modules directly must work without importing the
    # whole world first.
    for name in ("repro.decomp.cut_count", "repro.mapping.flowmap",
                 "repro.twolevel.primes", "repro.network.bitsim"):
        code = f"import {name}"
        result = subprocess.run([sys.executable, "-c", code],
                                capture_output=True, text=True,
                                timeout=60)
        assert result.returncode == 0, (name, result.stderr)
