"""Shared test utilities: brute-force reference implementations."""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Sequence

from repro.bdd.manager import BDD


def all_assignments(variables: Sequence[int]):
    """Iterate all total assignments {var: 0/1} over the variables."""
    for bits in itertools.product((0, 1), repeat=len(variables)):
        yield dict(zip(variables, bits))


def bdd_from_callable(bdd: BDD, fn: Callable[..., int],
                      variables: Sequence[int]) -> int:
    """Build a BDD for a Python callable over the given variables."""
    table = []
    for bits in itertools.product((0, 1), repeat=len(variables)):
        table.append(1 if fn(*bits) else 0)
    return bdd.from_truth_table(table, variables)


def functions_equal(bdd: BDD, f: int, fn: Callable[..., int],
                    variables: Sequence[int]) -> bool:
    """Compare a BDD against a Python callable pointwise."""
    for assignment in all_assignments(variables):
        expected = bool(fn(*[assignment[v] for v in variables]))
        if bdd.eval(f, assignment) != expected:
            return False
    return True


def random_truth_table(rng, nvars: int) -> List[int]:
    """Random truth table over nvars variables."""
    return [rng.randint(0, 1) for _ in range(1 << nvars)]


def truth_table_of(bdd: BDD, f: int, variables: Sequence[int]) -> List[int]:
    """Truth table via eval (independent check of to_truth_table)."""
    out = []
    for assignment in all_assignments(variables):
        full = {v: 0 for v in bdd.support(f)}
        full.update(assignment)
        out.append(1 if bdd.eval(f, full) else 0)
    return out
