"""The exclusive-time phase profiler and its context-variable hookup."""

import time

from repro.obs import (
    PhaseProfiler,
    activate_profiler,
    current_profiler,
    profile_phase,
)


class TestPhaseProfiler:
    def test_counts_and_times(self):
        prof = PhaseProfiler()
        with prof.phase("a"):
            time.sleep(0.01)
        with prof.phase("a"):
            pass
        assert prof.counts["a"] == 2
        assert prof.times["a"] >= 0.01

    def test_nested_time_is_exclusive(self):
        prof = PhaseProfiler()
        with prof.phase("outer"):
            time.sleep(0.01)
            with prof.phase("inner"):
                time.sleep(0.02)
            time.sleep(0.01)
        assert prof.times["inner"] >= 0.02
        # Outer must NOT include inner's sleep.
        assert prof.times["outer"] < 0.02 + 0.015
        assert abs(prof.total()
                   - (prof.times["outer"] + prof.times["inner"])) < 1e-9

    def test_as_dict_shape(self):
        prof = PhaseProfiler()
        with prof.phase("x"):
            pass
        data = prof.as_dict()
        assert data["x"]["calls"] == 1
        assert data["x"]["time_s"] >= 0.0

    def test_exception_still_closes_phase(self):
        prof = PhaseProfiler()
        try:
            with prof.phase("boom"):
                raise RuntimeError()
        except RuntimeError:
            pass
        assert prof._stack == []
        assert prof.counts["boom"] == 1


class TestActivation:
    def test_profile_phase_noop_when_inactive(self):
        assert current_profiler() is None
        with profile_phase("ignored"):
            pass  # must not raise

    def test_profile_phase_reports_to_active(self):
        prof = PhaseProfiler()
        with activate_profiler(prof):
            assert current_profiler() is prof
            with profile_phase("work"):
                pass
        assert current_profiler() is None
        assert prof.counts["work"] == 1

    def test_engine_run_fills_phase_stats(self):
        from repro.bench.registry import benchmark
        from repro.decomp.recursive import DecompositionEngine
        engine = DecompositionEngine()
        engine.run(benchmark("rd53"))
        stats = engine.stats
        assert stats.phase_times
        assert stats.phase_counts
        assert stats.bdd_metrics is not None
        assert stats.bdd_metrics.peak_nodes > 2
        profile = stats.phase_profile()
        assert set(profile) == set(stats.phase_times)
        # The don't-care pipeline phases of the paper must be visible.
        assert "cofactors" in profile or "leaf_emit" in profile

    def test_report_includes_phases(self):
        from repro.bench.registry import benchmark
        from repro.decomp.recursive import DecompositionEngine
        engine = DecompositionEngine()
        engine.run(benchmark("rd53"))
        assert "phase " in engine.stats.report()
