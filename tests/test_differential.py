"""Differential testing: all mapping flows must agree functionally.

For random functions, the decomposition drivers (both modes, balanced
mode), the mux-tree baseline and the structural cut baseline are all
evaluated against each other and against the specification.
"""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.decomp.recursive import decompose
from repro.mapping.baselines import mux_tree_map, structural_cut_map
from repro.mapping.gatelevel import to_gates


def build(seed, n, m):
    rng = random.Random(seed)
    bdd = BDD(n)
    tables = [[rng.randint(0, 1) for _ in range(1 << n)]
              for _ in range(m)]
    return MultiFunction.from_truth_tables(bdd, list(range(n)), tables), \
        tables


@pytest.mark.parametrize("seed", range(6))
def test_all_flows_agree(seed):
    n, m = 6, 2
    func, tables = build(seed, n, m)
    nets = {
        "mulop-dc": decompose(func, n_lut=4, use_dontcares=True),
        "mulopII": decompose(func, n_lut=4, use_dontcares=False),
        "balanced": decompose(func, n_lut=4, balanced=True),
        "mux-tree": mux_tree_map(func, n_lut=4),
        "cut-map": structural_cut_map(func, n_lut=4),
    }
    for k in range(1 << n):
        bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
        named = dict(zip(func.input_names, bits))
        for label, net in nets.items():
            out = net.eval_outputs(named)
            for j in range(m):
                assert out[f"f{j}"] == tables[j][k], (label, k, j)


@pytest.mark.parametrize("seed", range(4))
def test_gate_conversion_agrees(seed):
    n = 5
    func, tables = build(seed + 100, n, 1)
    lut_net = decompose(func, n_lut=3)
    gate_net = to_gates(lut_net)
    for k in range(1 << n):
        bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
        named = dict(zip(func.input_names, bits))
        assert (gate_net.eval_outputs(named)["f0"]
                == lut_net.eval_outputs(named)["f0"]
                == tables[0][k])


def test_incomplete_spec_all_flows_extend():
    rng = random.Random(777)
    bdd = BDD(6)
    spec = [rng.choice([0, 1, None]) for _ in range(64)]
    onset = [1 if v == 1 else 0 for v in spec]
    dcset = [1 if v is None else 0 for v in spec]
    func = MultiFunction.from_truth_tables(bdd, list(range(6)), [onset],
                                           dc_tables=[dcset])
    nets = {
        "mulop-dc": decompose(func, n_lut=4, use_dontcares=True),
        "mulopII": decompose(func, n_lut=4, use_dontcares=False),
        "mux-tree": mux_tree_map(func, n_lut=4),
    }
    for k in range(64):
        if spec[k] is None:
            continue
        bits = [(k >> (5 - i)) & 1 for i in range(6)]
        named = dict(zip(func.input_names, bits))
        for label, net in nets.items():
            assert net.eval_outputs(named)["f0"] == spec[k], (label, k)
