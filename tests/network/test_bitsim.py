"""Tests for bit-parallel LUT-network simulation."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.decomp.recursive import decompose
from repro.network.bitsim import random_vectors, sample_check, \
    simulate_words


def build(seed, n, m):
    rng = random.Random(seed)
    bdd = BDD(n)
    tables = [[rng.randint(0, 1) for _ in range(1 << n)]
              for _ in range(m)]
    func = MultiFunction.from_truth_tables(bdd, list(range(n)), tables)
    return func, decompose(func, n_lut=4), tables


class TestSimulateWords:
    def test_matches_scalar_simulation(self):
        func, net, tables = build(701, 6, 2)
        words = random_vectors(func.input_names, 64, seed=1)
        out = simulate_words(net, words, 64)
        for t in range(64):
            named = {name: (words[name] >> t) & 1
                     for name in func.input_names}
            scalar = net.eval_outputs(named)
            for name in func.output_names:
                assert ((out[name] >> t) & 1) == scalar[name]

    def test_constants(self):
        from repro.mapping.lutnet import LutNetwork
        net = LutNetwork()
        net.add_input("a")
        net.set_output("one", "const1")
        net.set_output("zero", "const0")
        out = simulate_words(net, {"a": 0b1010}, 4)
        assert out["one"] == 0b1111
        assert out["zero"] == 0

    def test_width_masking(self):
        func, net, _ = build(703, 4, 1)
        words = {name: (1 << 70) - 1 for name in func.input_names}
        out = simulate_words(net, words, 8)
        assert out[func.output_names[0]] < (1 << 8)


class TestSampleCheck:
    def test_correct_network_passes(self):
        func, net, _ = build(709, 6, 2)
        assert sample_check(func, net, patterns=256)

    def test_broken_network_fails(self):
        from repro.mapping.lutnet import LutNetwork
        func, net, tables = build(719, 5, 1)
        broken = LutNetwork()
        for name in net.inputs:
            broken.add_input(name)
        broken.set_output(func.output_names[0], "const1")
        if 0 in tables[0]:
            assert not sample_check(func, broken, patterns=128)
