"""Tests for the structural network IR."""

import itertools
import random

import pytest

from repro.network.netlist import NetNode, Network
from repro.network.passes import constant_propagate, sweep

BLIF = """\
.model demo
.inputs a b c
.outputs y z
.names a b t
11 1
.names t c y
1- 1
-1 1
.names a z
0 1
.end
"""


class TestNetNode:
    def test_eval_onset(self):
        node = NetNode("y", ["a", "b"], [("11", "1"), ("00", "1")])
        assert node.eval({"a": 1, "b": 1}) == 1
        assert node.eval({"a": 0, "b": 0}) == 1
        assert node.eval({"a": 1, "b": 0}) == 0

    def test_eval_offset_polarity(self):
        node = NetNode("y", ["a"], [("1", "0")])
        assert node.eval({"a": 1}) == 0
        assert node.eval({"a": 0}) == 1

    def test_mixed_polarity_rejected(self):
        with pytest.raises(ValueError):
            NetNode("y", ["a"], [("1", "1"), ("0", "0")])

    def test_constant(self):
        assert NetNode("k", [], [("", "1")]).is_constant() == 1
        assert NetNode("k", [], []).is_constant() == 0
        assert NetNode("k", ["a"], [("1", "1")]).is_constant() is None


class TestNetwork:
    def test_parse_and_eval(self):
        net = Network.from_blif(BLIF)
        assert net.name == "demo"
        assert len(net.nodes) == 3
        for a, b, c in itertools.product((0, 1), repeat=3):
            out = net.eval_outputs({"a": a, "b": b, "c": c})
            assert out["y"] == (1 if (a and b) or c else 0)
            assert out["z"] == 1 - a

    def test_depth_and_levels(self):
        net = Network.from_blif(BLIF)
        assert net.depth() == 2
        levels = net.levels()
        assert levels["t"] == 1
        assert levels["y"] == 2

    def test_fanout(self):
        net = Network.from_blif(BLIF)
        counts = net.fanout_counts()
        assert counts["a"] == 2  # t and z
        assert counts["t"] == 1
        assert counts["y"] == 1  # the output itself

    def test_cycle_detection(self):
        net = Network()
        net.add_input("a")
        net.add_node("u", ["v"], [("1", "1")])
        net.add_node("v", ["u"], [("1", "1")])
        net.set_output("u")
        with pytest.raises(ValueError):
            net.check()

    def test_unknown_reference(self):
        net = Network()
        net.add_input("a")
        net.add_node("u", ["ghost"], [("1", "1")])
        net.set_output("u")
        with pytest.raises(ValueError):
            net.check()

    def test_collapse_matches_simulation(self):
        net = Network.from_blif(BLIF)
        func = net.collapse()
        for a, b, c in itertools.product((0, 1), repeat=3):
            sim = net.eval_outputs({"a": a, "b": b, "c": c})
            sym = func.eval(dict(zip(func.inputs, [a, b, c])))
            assert sym == [sim["y"], sim["z"]]

    def test_blif_roundtrip(self):
        net = Network.from_blif(BLIF)
        net2 = Network.from_blif(net.to_blif())
        for a, b, c in itertools.product((0, 1), repeat=3):
            assignment = {"a": a, "b": b, "c": c}
            assert net.eval_outputs(assignment) == \
                net2.eval_outputs(assignment)

    def test_collapse_then_decompose(self):
        from repro.core import map_to_xc3000
        from repro.verify.equiv import check_extension
        net = Network.from_blif(BLIF)
        func = net.collapse()
        result = map_to_xc3000(func)
        assert check_extension(func, result.network)


class TestPasses:
    def test_sweep_removes_dangling(self):
        net = Network.from_blif(BLIF)
        net.add_node("dead", ["a", "b"], [("10", "1")])
        removed = sweep(net)
        assert removed == 1
        assert "dead" not in net.nodes
        net.check()

    def test_sweep_keeps_live(self):
        net = Network.from_blif(BLIF)
        assert sweep(net) == 0
        assert len(net.nodes) == 3

    def test_constant_propagation(self):
        net = Network()
        net.add_input("a")
        net.add_node("k1", [], [("", "1")])
        net.add_node("y", ["a", "k1"], [("11", "1")])  # a AND 1 == a
        net.set_output("y")
        folds = constant_propagate(net)
        assert folds >= 1
        assert "k1" not in net.nodes
        assert net.eval_outputs({"a": 1})["y"] == 1
        assert net.eval_outputs({"a": 0})["y"] == 0

    def test_constant_zero_kills_and(self):
        net = Network()
        net.add_input("a")
        net.add_node("k0", [], [])
        net.add_node("y", ["a", "k0"], [("11", "1")])  # a AND 0 == 0
        net.set_output("y")
        constant_propagate(net)
        assert net.eval_outputs({"a": 1})["y"] == 0
        assert net.eval_outputs({"a": 0})["y"] == 0

    def test_constant_output_preserved(self):
        net = Network()
        net.add_input("a")
        net.add_node("k1", [], [("", "1")])
        net.set_output("k1")
        constant_propagate(net)
        assert "k1" in net.nodes
        assert net.eval_outputs({"a": 0})["k1"] == 1


class TestFromLutNetwork:
    def test_roundtrip_semantics(self):
        import random
        from repro.bdd.manager import BDD
        from repro.boolfunc.spec import MultiFunction
        from repro.decomp.recursive import decompose
        rng = random.Random(541)
        bdd = BDD(6)
        tables = [[rng.randint(0, 1) for _ in range(64)]
                  for _ in range(2)]
        func = MultiFunction.from_truth_tables(bdd, list(range(6)),
                                               tables)
        lut_net = decompose(func, n_lut=4)
        net = Network.from_lut_network(lut_net)
        for k in range(64):
            bits = [(k >> (5 - i)) & 1 for i in range(6)]
            named = dict(zip(func.input_names, bits))
            assert net.eval_outputs(named) == lut_net.eval_outputs(named)

    def test_constant_output(self):
        from repro.mapping.lutnet import LutNetwork
        lut_net = LutNetwork()
        lut_net.add_input("a")
        lut_net.set_output("y", "const1")
        net = Network.from_lut_network(lut_net)
        assert net.eval_outputs({"a": 0})["y"] == 1

    def test_passthrough_output(self):
        from repro.mapping.lutnet import LutNetwork
        lut_net = LutNetwork()
        lut_net.add_input("a")
        lut_net.set_output("y", "a")
        net = Network.from_lut_network(lut_net)
        assert net.eval_outputs({"a": 1})["y"] == 1
        assert net.eval_outputs({"a": 0})["y"] == 0


class TestParserConsistency:
    def test_structural_vs_flattening_parser(self):
        """The structural Network parser and the flattening BLIF parser
        must agree on semantics."""
        from repro.boolfunc.blif import parse_blif
        flat = parse_blif(BLIF)
        net = Network.from_blif(BLIF)
        for a, b, c in itertools.product((0, 1), repeat=3):
            sim = net.eval_outputs({"a": a, "b": b, "c": c})
            sym = flat.eval(dict(zip(flat.inputs, [a, b, c])))
            assert sym == [sim["y"], sim["z"]]


class TestMinimizeNodes:
    def test_redundant_rows_removed(self):
        from repro.network.passes import minimize_nodes
        net = Network()
        for s in ("a", "b", "c"):
            net.add_input(s)
        # Four minterm rows that collapse to one cube (a AND b).
        net.add_node("y", ["a", "b", "c"],
                     [("110", "1"), ("111", "1"),
                      ("11-", "1"), ("1-1", "1")])
        net.set_output("y")
        reference = {}
        import itertools
        for bits in itertools.product((0, 1), repeat=3):
            reference[bits] = net.eval_outputs(
                dict(zip(net.inputs, bits)))
        removed = minimize_nodes(net)
        assert removed >= 1
        for bits, expected in reference.items():
            assert net.eval_outputs(dict(zip(net.inputs, bits))) == \
                expected

    def test_offset_polarity_preserved(self):
        from repro.network.passes import minimize_nodes
        net = Network()
        net.add_input("a")
        net.add_input("b")
        net.add_node("y", ["a", "b"], [("00", "0"), ("01", "0")])
        net.set_output("y")
        minimize_nodes(net)
        # y = NOT(a'=0 rows...) — semantics: offset {00,01} -> y=0 when
        # a=0 — minimises to a single row "0-".
        assert net.eval_outputs({"a": 0, "b": 1})["y"] == 0
        assert net.eval_outputs({"a": 1, "b": 1})["y"] == 1

    def test_random_networks_preserved(self):
        from repro.network.passes import minimize_nodes
        from tests.network.test_random_networks import random_network
        import itertools
        for seed in range(5):
            net = random_network(seed + 400)
            reference = {}
            for bits in itertools.product((0, 1), repeat=4):
                reference[bits] = net.eval_outputs(
                    dict(zip(net.inputs, bits)))
            minimize_nodes(net)
            net.check()
            for bits, expected in reference.items():
                assert net.eval_outputs(
                    dict(zip(net.inputs, bits))) == expected
