"""Randomised structural-network invariants."""

import itertools
import random

import pytest

from repro.network.netlist import Network
from repro.network.passes import constant_propagate, sweep


def random_network(seed, num_inputs=4, num_nodes=6):
    rng = random.Random(seed)
    net = Network(f"rand{seed}")
    signals = []
    for i in range(num_inputs):
        signals.append(net.add_input(f"i{i}"))
    for j in range(num_nodes):
        k = rng.randint(1, min(3, len(signals)))
        fanins = rng.sample(signals, k)
        rows = []
        polarity = rng.choice("01")
        for _ in range(rng.randint(1, 3)):
            pattern = "".join(rng.choice("01-") for _ in range(k))
            rows.append((pattern, polarity))
        name = net.add_node(f"n{j}", fanins, rows)
        signals.append(name)
    # Choose a couple of outputs among the later signals.
    for name in rng.sample(signals[num_inputs:], 2):
        net.set_output(name)
    net.check()
    return net


@pytest.mark.parametrize("seed", range(10))
def test_collapse_equals_simulation(seed):
    net = random_network(seed)
    func = net.collapse()
    for bits in itertools.product((0, 1), repeat=4):
        assignment = dict(zip(net.inputs, bits))
        sim = net.eval_outputs(assignment)
        sym = func.eval(dict(zip(func.inputs, bits)))
        assert sym == [sim[o] for o in net.outputs], (seed, bits)


@pytest.mark.parametrize("seed", range(10))
def test_passes_preserve_semantics(seed):
    net = random_network(seed + 100)
    reference = {}
    for bits in itertools.product((0, 1), repeat=4):
        reference[bits] = net.eval_outputs(dict(zip(net.inputs, bits)))
    sweep(net)
    constant_propagate(net)
    net.check()
    for bits, expected in reference.items():
        assert net.eval_outputs(dict(zip(net.inputs, bits))) == expected


@pytest.mark.parametrize("seed", range(6))
def test_blif_roundtrip_random(seed):
    net = random_network(seed + 200)
    net2 = Network.from_blif(net.to_blif())
    for bits in itertools.product((0, 1), repeat=4):
        assignment = dict(zip(net.inputs, bits))
        assert net.eval_outputs(assignment) == \
            net2.eval_outputs(assignment)
