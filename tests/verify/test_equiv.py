"""Tests for the formal equivalence checker."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.decomp.recursive import decompose
from repro.mapping.baselines import mux_tree_map
from repro.mapping.gatelevel import to_gates
from repro.mapping.lutnet import LutNetwork
from repro.verify.equiv import (
    check_equivalence,
    check_extension,
    lut_network_bdds,
)


def random_mf(seed, n, m, dc_prob=0.0):
    rng = random.Random(seed)
    bdd = BDD(n)
    tables = []
    dc_tables = [] if dc_prob else None
    for _ in range(m):
        tables.append([rng.randint(0, 1) for _ in range(1 << n)])
        if dc_prob:
            dc_tables.append([1 if rng.random() < dc_prob else 0
                              for _ in range(1 << n)])
    return MultiFunction.from_truth_tables(bdd, list(range(n)), tables,
                                           dc_tables=dc_tables)


class TestCheckExtension:
    def test_decomposed_networks_verify(self):
        for seed in range(5):
            func = random_mf(seed, 6, 2)
            net = decompose(func, n_lut=4)
            assert check_extension(func, net)

    def test_incomplete_spec_verifies(self):
        func = random_mf(31, 6, 1, dc_prob=0.4)
        net = decompose(func, n_lut=4)
        result = check_extension(func, net)
        assert result.equivalent

    def test_detects_broken_network(self):
        func = random_mf(7, 4, 1)
        net = decompose(func, n_lut=3)
        # Sabotage: rewire the output to a constant.
        broken = LutNetwork()
        for name in net.inputs:
            broken.add_input(name)
        broken.set_output(func.output_names[0], "const0")
        result = check_extension(func, broken)
        if func.outputs[0].lo != BDD.FALSE:
            assert not result.equivalent
            assert result.failing_output == func.output_names[0]
            # The counterexample must actually expose the difference.
            cx = result.counterexample
            bits = [cx[name] for name in func.input_names]
            expected = func.eval(dict(zip(func.inputs, bits)))[0]
            assert expected == 1  # const0 misses an onset point

    def test_gate_network_supported(self):
        func = random_mf(13, 5, 1)
        lut_net = decompose(func, n_lut=3)
        gnet = to_gates(lut_net)
        assert check_extension(func, gnet)

    def test_rejects_unknown_type(self):
        func = random_mf(17, 3, 1)
        with pytest.raises(TypeError):
            check_extension(func, object())


class TestCheckEquivalence:
    def test_mux_tree_equivalent_to_completion(self):
        func = random_mf(19, 6, 2, dc_prob=0.3)
        net = mux_tree_map(func, n_lut=4)
        # The baseline maps the 0-completion exactly.
        assert check_equivalence(func, net)

    def test_counterexample_is_concrete(self):
        func = random_mf(23, 4, 1)
        other = random_mf(24, 4, 1)
        net = mux_tree_map(other, n_lut=3)
        # Give the net the right port names for comparison.
        result = check_equivalence(func, net)
        if not result.equivalent:
            cx = result.counterexample
            assert set(cx) == set(func.input_names)


class TestSymbolicSimulation:
    def test_lut_bdds_match_eval(self):
        func = random_mf(29, 5, 2)
        net = decompose(func, n_lut=3)
        bdd = func.bdd
        outs = lut_network_bdds(net, bdd,
                                dict(zip(func.input_names, func.inputs)))
        for k in range(32):
            bits = [(k >> (4 - i)) & 1 for i in range(5)]
            named = dict(zip(func.input_names, bits))
            sim = net.eval_outputs(named)
            for name in func.output_names:
                assignment = dict(zip(func.inputs, bits))
                assert bdd.eval(outs[name], assignment) == bool(sim[name])


class TestArithmeticFormal:
    def test_conditional_sum_adder_formally_correct(self):
        """The gate-level conditional-sum adder equals the symbolic
        adder specification — formally, for n = 6 (no sampling)."""
        from repro.arith.adders import adder_function, \
            conditional_sum_adder
        func = adder_function(6)
        net = conditional_sum_adder(6)
        from repro.verify.equiv import check_extension
        assert check_extension(func, net)

    def test_wallace_formally_correct(self):
        from repro.arith.multipliers import multiplier_function, \
            wallace_tree_multiplier
        from repro.verify.equiv import check_extension
        func = multiplier_function(4)
        net = wallace_tree_multiplier(4)
        assert check_extension(func, net)

    def test_decomposed_adder_formally_correct(self):
        from repro.arith.adders import adder_function
        from repro.core import synthesize_two_input_gates
        from repro.verify.equiv import check_extension
        func = adder_function(5)
        net = synthesize_two_input_gates(func)
        assert check_extension(func, net)


class TestStructuralNetworkSupport:
    def test_network_extension_check(self):
        from repro.network.netlist import Network
        blif = """\
.model t
.inputs a b c
.outputs y
.names a b t1
11 1
.names t1 c y
1- 1
-1 1
.end
"""
        net = Network.from_blif(blif)
        func = net.collapse()
        assert check_extension(func, net)

    def test_network_mismatch_detected(self):
        from repro.network.netlist import Network
        net = Network.from_blif(
            ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n")
        other = Network.from_blif(
            ".model t\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n")
        func = net.collapse()
        result = check_extension(func, other)
        assert not result.equivalent
        assert result.counterexample is not None
