"""Tier configuration under degenerate env overrides and CLI precedence.

``tier_for`` must honour ``0 <= tier1 <= max`` for *any* environment:
negative caps clamp to 0 (kernel never serves — the narrowest reading
of what the user asked for), unparsable values fall back to defaults,
and a tier-1 override above the overall cap is clamped down, never up.
"""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

from repro.cli import main
from repro.kernel import (
    DEFAULT_MAX_VARS,
    DEFAULT_TIER1_MAX_VARS,
    kernel_max_vars,
    kernel_tier1_max_vars,
    tier_for,
)


class TestDegenerateOverrides:
    @pytest.mark.parametrize("raw,expected", [
        ("-5", 0), ("-1", 0), ("0", 0), ("7", 7),
        ("garbage", DEFAULT_MAX_VARS), ("", DEFAULT_MAX_VARS),
        ("  12  ", 12),
    ])
    def test_max_vars_clamp(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_KERNEL_MAX_VARS", raw)
        assert kernel_max_vars() == expected

    def test_tier1_above_max_clamps_down(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_MAX_VARS", "8")
        monkeypatch.setenv("REPRO_KERNEL_TIER1_MAX_VARS", "99")
        assert kernel_tier1_max_vars() == 8
        assert tier_for(8) == 1
        assert tier_for(9) == 0

    def test_negative_tier1_forces_tier2(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER1_MAX_VARS", "-3")
        assert kernel_tier1_max_vars() == 0
        assert tier_for(1) == 2

    def test_negative_max_disables_dispatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_MAX_VARS", "-7")
        for n in (1, 5, 16, 24):
            assert tier_for(n) == 0

    def test_unparsable_tier1_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER1_MAX_VARS", "four")
        assert kernel_tier1_max_vars() == DEFAULT_TIER1_MAX_VARS


if HAVE_HYPOTHESIS:
    class TestTierForProperties:
        # hypothesis cannot use function-scoped monkeypatch; drive the
        # environment directly instead.
        @settings(max_examples=200, deadline=None)
        @given(max_raw=st.integers(-40, 40),
               tier1_raw=st.integers(-40, 40),
               n=st.integers(0, 48))
        def test_tier_boundaries(self, max_raw, tier1_raw, n):
            import os
            old = {k: os.environ.get(k)
                   for k in ("REPRO_KERNEL_MAX_VARS",
                             "REPRO_KERNEL_TIER1_MAX_VARS")}
            os.environ["REPRO_KERNEL_MAX_VARS"] = str(max_raw)
            os.environ["REPRO_KERNEL_TIER1_MAX_VARS"] = str(tier1_raw)
            try:
                max_vars = kernel_max_vars()
                tier1 = kernel_tier1_max_vars()
                assert 0 <= tier1 <= max_vars
                assert max_vars == max(0, max_raw)
                tier = tier_for(n)
                if n <= tier1:
                    assert tier == 1
                elif n <= max_vars:
                    assert tier == 2
                else:
                    assert tier == 0
            finally:
                for key, value in old.items():
                    if value is None:
                        os.environ.pop(key, None)
                    else:
                        os.environ[key] = value


class TestCliPrecedence:
    def test_cli_flag_beats_env(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_KERNEL_MAX_VARS", "4")
        assert main(["map", "rd73", "--kernel-max-vars", "20"]) == 0
        import os
        assert os.environ["REPRO_KERNEL_MAX_VARS"] == "20"
        assert kernel_max_vars() == 20

    def test_env_used_without_flag(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_KERNEL_MAX_VARS", "6")
        assert main(["map", "rd73"]) == 0
        assert kernel_max_vars() == 6

    def test_negative_cli_value_is_a_clean_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_MAX_VARS", raising=False)
        with pytest.raises(SystemExit) as exc:
            main(["map", "rd73", "--kernel-max-vars", "-5"])
        assert "--kernel-max-vars" in str(exc.value)
        assert "REPRO_KERNEL_MAX_VARS" not in __import__("os").environ

    def test_no_dsd_flag_sets_env(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_DSD", raising=False)
        assert main(["map", "rd73", "--no-dsd"]) == 0
        import os
        assert os.environ["REPRO_DSD"] == "off"
