"""Kernel dispatch must degrade, not crash, on stale orderings.

A caller can hand the kernel a *DC-shrunk* variable ordering — a
support list computed from a narrowed interval that no longer covers
the raw node being converted.  ``bdd_to_bools`` reports that as
:class:`TableMismatchError`; every dispatch site catches it, records a
miss and falls back to the BDD route, so the run completes with
identical results.
"""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.bound_set import greedy_bound_set, rank_bound_sets
from repro.decomp.compat import classes_for
from repro.kernel import STATS, reset_kernel_stats
from repro.kernel import compat as kcompat
from repro.kernel import refine as krefine
from repro.kernel.compat import (
    kernel_classes_for,
    kernel_reduction_score,
)
from repro.kernel.convert import TableMismatchError, bdd_to_bools


def random_isfs(bdd, rng, n, m):
    out = []
    for _ in range(m):
        table = [rng.randint(0, 1) for _ in range(1 << n)]
        out.append(ISF.complete(bdd.from_truth_table(table,
                                                     list(range(n)))))
    return out


class TestConvertRaisesTyped:
    def test_shrunk_ordering_raises_table_mismatch(self):
        bdd = BDD(4)
        f = bdd.apply_or(bdd.var(0), bdd.var(3))
        # A DC-shrunk support that dropped variable 3.
        with pytest.raises(TableMismatchError):
            bdd_to_bools(bdd, f, [0, 1])

    def test_is_a_value_error(self):
        # Pre-existing callers catching ValueError keep working.
        assert issubclass(TableMismatchError, ValueError)


class TestDispatchDegrades:
    def _poison(self, monkeypatch):
        def boom(*args, **kwargs):
            raise TableMismatchError("stale ordering")
        monkeypatch.setattr(kcompat, "_vertex_masks", boom)

    def test_classes_for_returns_none_and_counts_miss(self, monkeypatch):
        bdd = BDD(6)
        rng = random.Random(31)
        outputs = random_isfs(bdd, rng, 6, 2)
        reset_kernel_stats()
        self._poison(monkeypatch)
        assert kernel_classes_for(bdd, outputs, (0, 1, 2)) is None
        assert STATS.op_misses.get("classes_for", 0) == 1
        # The public wrapper silently takes the BDD route.
        joint = classes_for(bdd, outputs, (0, 1, 2))
        assert joint.ncc >= 1

    def test_reduction_score_returns_none_and_counts_miss(
            self, monkeypatch):
        bdd = BDD(6)
        rng = random.Random(37)
        outputs = random_isfs(bdd, rng, 6, 2)
        reset_kernel_stats()
        self._poison(monkeypatch)
        assert kernel_reduction_score(bdd, outputs, (0, 1, 2)) is None
        assert STATS.op_misses.get("reduction_score", 0) == 1


class TestPartitionCacheDegrades:
    """Mid-flight staleness inside the incremental scorer degrades to
    from-scratch scoring with identical results."""

    def _reference(self, bdd, outputs, variables, p):
        from repro.kernel import _OFF_VALUES  # noqa: F401
        import os
        old = os.environ.get("REPRO_KERNEL")
        os.environ["REPRO_KERNEL"] = "off"
        try:
            ranked = rank_bound_sets(bdd, outputs, variables, p)
            greedy = greedy_bound_set(bdd, outputs, variables, p)
        finally:
            if old is None:
                del os.environ["REPRO_KERNEL"]
            else:
                os.environ["REPRO_KERNEL"] = old
        return ranked, greedy

    def test_rank_and_greedy_survive_stale_cache(self, monkeypatch):
        bdd = BDD(7)
        rng = random.Random(41)
        outputs = random_isfs(bdd, rng, 7, 2)
        variables = list(range(7))
        ref_ranked, ref_greedy = self._reference(bdd, outputs,
                                                 variables, 3)

        def boom(self, bound):
            raise TableMismatchError("stale ordering")
        monkeypatch.setattr(krefine.PartitionCache, "partition_for",
                            boom)
        reset_kernel_stats()
        ranked = rank_bound_sets(bdd, outputs, variables, 3)
        greedy = greedy_bound_set(bdd, outputs, variables, 3)
        assert ranked == ref_ranked
        assert greedy == ref_greedy
        assert STATS.op_misses.get("reduction_score", 0) >= 1
        assert STATS.op_misses.get("classes_for", 0) >= 1
        assert STATS.scratch > 0
