"""The kernel suite measures the live search (kernel on vs off, tier
vs tier), so the sub-ISF memo must not splice past the code under
test: a warm hit legitimately skips the kernel entirely, which is
correct behaviour but zeroes the ``kernel_hits`` counters these
differentials assert on."""

import pytest


@pytest.fixture(autouse=True)
def _no_submemo(monkeypatch):
    monkeypatch.setenv("REPRO_SUBMEMO", "off")
