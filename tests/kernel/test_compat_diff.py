"""Differential tests: kernel compatible-class pipeline == BDD path.

The kernel must be *bit-identical*: same classes, same vertex
assignment, same merged-interval node ids, across DC densities and on
either side of the support threshold.
"""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.bound_set import reduction_score
from repro.decomp.compat import (
    LazyClasses,
    _intersect_vectors,
    assign_by_classes,
    classes_for,
    vertex_cofactors,
)
from repro.kernel import STATS, reset_kernel_stats


def random_isf(bdd, rng, variables, dc_density):
    lo_bits, hi_bits = [], []
    for _ in range(1 << len(variables)):
        if rng.random() < dc_density:
            lo_bits.append(0)
            hi_bits.append(1)
        else:
            bit = rng.randint(0, 1)
            lo_bits.append(bit)
            hi_bits.append(bit)
    return ISF.create(bdd,
                      bdd.from_truth_table(lo_bits, variables),
                      bdd.from_truth_table(hi_bits, variables))


def isf_pairs(classes):
    return [[(isf.lo, isf.hi) for isf in row] for row in classes.merged]


@pytest.mark.parametrize("density", [0.0, 0.25, 0.75, 1.0])
def test_classes_for_differential(density, monkeypatch):
    rng = random.Random(int(density * 100) + 7)
    bdd = BDD(7)
    variables = list(range(7))
    for _ in range(4):
        outputs = [random_isf(bdd, rng, variables, density)
                   for _ in range(2)]
        for p in (2, 3):
            bound = tuple(rng.sample(variables, p))  # unsorted on purpose
            monkeypatch.setenv("REPRO_KERNEL", "off")
            ref = classes_for(bdd, outputs, bound)
            monkeypatch.setenv("REPRO_KERNEL", "on")
            hit = classes_for(bdd, outputs, bound)
            assert isinstance(hit, LazyClasses)
            assert not isinstance(ref, LazyClasses)
            assert hit.bound == ref.bound
            assert hit.classes == ref.classes
            assert hit.class_of == ref.class_of
            assert isf_pairs(hit) == isf_pairs(ref)


@pytest.mark.parametrize("density", [0.25, 0.75])
def test_assign_by_classes_differential(density, monkeypatch):
    rng = random.Random(int(density * 100) + 13)
    bdd = BDD(6)
    variables = list(range(6))
    for _ in range(4):
        outputs = [random_isf(bdd, rng, variables, density)
                   for _ in range(2)]
        bound = tuple(rng.sample(variables, 2))
        monkeypatch.setenv("REPRO_KERNEL", "off")
        ref_cls = classes_for(bdd, outputs, bound)
        ref = assign_by_classes(bdd, outputs, ref_cls)
        monkeypatch.setenv("REPRO_KERNEL", "on")
        hit_cls = classes_for(bdd, outputs, bound)
        hit = assign_by_classes(bdd, outputs, hit_cls)
        assert [(i.lo, i.hi) for i in hit] == [(i.lo, i.hi) for i in ref]
        # The narrowing refines every output's interval.
        for before, after in zip(outputs, hit):
            assert after.refines(bdd, before)


@pytest.mark.parametrize("density", [0.25, 0.75])
def test_cover_satisfies_running_intersection(density):
    # Clique validity: pairwise compatibility is NOT enough for ISFs;
    # each class's running interval intersection must be non-empty and
    # equal the merged interval the kernel reports.
    rng = random.Random(int(density * 100) + 29)
    bdd = BDD(6)
    variables = list(range(6))
    for _ in range(4):
        outputs = [random_isf(bdd, rng, variables, density)
                   for _ in range(2)]
        bound = tuple(rng.sample(variables, 3))
        cls = classes_for(bdd, outputs, bound)
        assert isinstance(cls, LazyClasses)
        cofactors = vertex_cofactors(bdd, outputs, bound)
        for c, members in enumerate(cls.classes):
            running = list(cofactors[members[0]])
            for v in members[1:]:
                running = _intersect_vectors(bdd, running,
                                             list(cofactors[v]))
                assert running is not None, "cover built an invalid clique"
            assert [(i.lo, i.hi) for i in running] == \
                [(i.lo, i.hi) for i in cls.merged[c]]


def test_reduction_score_differential(monkeypatch):
    rng = random.Random(41)
    bdd = BDD(7)
    variables = list(range(7))
    for density in (0.0, 0.5):
        outputs = [random_isf(bdd, rng, variables, density)
                   for _ in range(3)]
        for p in (2, 3):
            bound = tuple(rng.sample(variables, p))
            monkeypatch.setenv("REPRO_KERNEL", "off")
            ref = reduction_score(bdd, outputs, bound)
            monkeypatch.setenv("REPRO_KERNEL", "on")
            assert reduction_score(bdd, outputs, bound) == ref


def sparse_full_support_isf(bdd, rng, variables, with_dc):
    """Cube-built ISF whose support covers all ``variables`` (small BDD
    even for wide supports, so the threshold tests stay fast)."""
    n = len(variables)
    lo = BDD.FALSE
    for i in range(0, n, 3):
        cube = {variables[(i + k) % n]: rng.randint(0, 1) for k in range(5)}
        lo = bdd.apply_or(lo, bdd.cube(cube))
    parity = BDD.FALSE
    for v in variables:  # parity term forces every variable live
        parity = bdd.apply_xor(parity, bdd.var(v))
    lo = bdd.apply_and(lo, parity)
    hi = lo
    if with_dc:
        dc = bdd.cube({variables[0]: 1, variables[-1]: 0})
        hi = bdd.apply_or(lo, dc)
    isf = ISF.create(bdd, lo, hi)
    assert isf.support(bdd) == set(variables)
    return isf


@pytest.mark.parametrize("nvars,served", [(15, True), (16, True),
                                          (17, True), (24, True),
                                          (25, False)])
def test_support_threshold_straddle(nvars, served, monkeypatch):
    """15/16 hit tier 1, 17/24 hit tier 2, 25 exceeds the cap.

    The cost model is pinned off: these sparse cube functions have tiny
    BDDs, so profitability (tested separately below) would keep the
    wide rows on the BDD path regardless of the width boundary.
    """
    monkeypatch.setenv("REPRO_KERNEL", "on")
    monkeypatch.setenv("REPRO_KERNEL_COST_MODEL", "off")
    monkeypatch.delenv("REPRO_KERNEL_MAX_VARS", raising=False)
    monkeypatch.delenv("REPRO_KERNEL_TIER1_MAX_VARS", raising=False)
    rng = random.Random(nvars)
    bdd = BDD(nvars)
    variables = list(range(nvars))
    isf = sparse_full_support_isf(bdd, rng, variables, with_dc=True)
    bound = tuple(variables[:3])
    reset_kernel_stats()
    monkeypatch.setenv("REPRO_KERNEL", "off")
    ref = classes_for(bdd, [isf], bound)
    monkeypatch.setenv("REPRO_KERNEL", "on")
    hit = classes_for(bdd, [isf], bound)
    assert isinstance(hit, LazyClasses) == served
    if served:
        assert STATS.hits > 0 and STATS.misses == 0
    else:
        assert STATS.hits == 0 and STATS.misses > 0
    assert hit.classes == ref.classes
    assert hit.class_of == ref.class_of
    assert isf_pairs(hit) == isf_pairs(ref)


def test_cost_model_declines_sparse_wide(monkeypatch):
    """A 20-var function with a tiny BDD stays on the BDD path (tier-2
    tables would be orders of magnitude slower), counted as a miss;
    ``REPRO_KERNEL_COST_MODEL=off`` forces dense service."""
    monkeypatch.setenv("REPRO_KERNEL", "on")
    monkeypatch.delenv("REPRO_KERNEL_MAX_VARS", raising=False)
    rng = random.Random(20)
    bdd = BDD(20)
    variables = list(range(20))
    isf = sparse_full_support_isf(bdd, rng, variables, with_dc=True)
    bound = tuple(variables[:3])
    reset_kernel_stats()
    monkeypatch.setenv("REPRO_KERNEL_COST_MODEL", "on")
    ref = classes_for(bdd, [isf], bound)
    assert not isinstance(ref, LazyClasses)
    assert STATS.misses > 0
    reset_kernel_stats()
    monkeypatch.setenv("REPRO_KERNEL_COST_MODEL", "off")
    hit = classes_for(bdd, [isf], bound)
    assert isinstance(hit, LazyClasses)
    assert STATS.misses == 0
    assert hit.classes == ref.classes
    assert hit.class_of == ref.class_of
    assert isf_pairs(hit) == isf_pairs(ref)


def test_max_vars_override(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "on")
    monkeypatch.setenv("REPRO_KERNEL_MAX_VARS", "4")
    rng = random.Random(51)
    bdd = BDD(6)
    variables = list(range(6))
    isf = random_isf(bdd, rng, variables, 0.5)
    reset_kernel_stats()
    cls = classes_for(bdd, [isf], (0, 1))
    assert not isinstance(cls, LazyClasses)
    assert STATS.misses > 0


def test_escape_hatch_disables_kernel(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "off")
    rng = random.Random(61)
    bdd = BDD(5)
    isf = random_isf(bdd, rng, list(range(5)), 0.5)
    reset_kernel_stats()
    cls = classes_for(bdd, [isf], (0, 1))
    assert not isinstance(cls, LazyClasses)
    # Disabled (as opposed to too-wide) dispatch is not counted a miss.
    assert STATS.hits == 0 and STATS.misses == 0
