"""End-to-end differential: full mapping flow, kernel on vs off.

Every Table 1 circuit whose input count fits the kernel threshold must
map to a byte-identical network either way — the kernel is a pure
performance substitution, never a behaviour change.
"""

import pytest

from repro.bench.registry import BENCHMARKS, benchmark
from repro.core.api import map_to_xc3000
from repro.kernel import DEFAULT_MAX_VARS

SMALL_CIRCUITS = sorted(
    name for name, spec in BENCHMARKS.items()
    if spec.num_inputs <= DEFAULT_MAX_VARS)


def test_expected_coverage():
    # All Table 1 circuits at or below the default 16-var threshold.
    assert set(SMALL_CIRCUITS) >= {
        "5xp1", "9sym", "alu2", "clip", "f51m", "misex1", "rd73",
        "rd84", "sao2", "z4ml", "rd53", "sym10", "t481", "xor5",
    }


@pytest.mark.parametrize("name", SMALL_CIRCUITS)
def test_mapping_identical(name, monkeypatch):
    func = benchmark(name)
    monkeypatch.setenv("REPRO_KERNEL", "off")
    ref = map_to_xc3000(func)
    assert ref.stats.kernel_metrics["kernel_hits"] == 0
    monkeypatch.setenv("REPRO_KERNEL", "on")
    hit = map_to_xc3000(func)
    if func.num_inputs > 5:  # wider than one LUT => decomposition ran
        assert hit.stats.kernel_metrics["kernel_hits"] > 0
    assert (hit.lut_count, hit.clb_count, hit.depth) == \
        (ref.lut_count, ref.clb_count, ref.depth)
    assert hit.network.to_blif() == ref.network.to_blif()
