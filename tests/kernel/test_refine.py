"""Property tests: incremental partition refinement == from-scratch.

The bound-set search derives ``B ∪ {v}`` partitions by splitting the
cached partition of ``B`` (one ``kernel_refine`` op per new variable)
instead of re-extracting the full table.  These tests pin the refined
partition *equal* to a from-scratch dedup across DC densities, pin the
search results identical kernel on/off, and pin the profiler counters:
a served greedy search performs O(1) refinements per candidate and zero
``classes_from_scratch`` fallbacks.
"""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.bound_set import (
    greedy_bound_set,
    rank_bound_sets,
    reduction_score,
)
from repro.kernel import STATS, reset_kernel_stats
from repro.kernel.compat import _dedup, _fit_variables, _vertex_masks
from repro.kernel.refine import PartitionCache


def random_isf(bdd, rng, variables, dc_density):
    lo_bits, hi_bits = [], []
    for _ in range(1 << len(variables)):
        if rng.random() < dc_density:
            lo_bits.append(0)
            hi_bits.append(1)
        else:
            bit = rng.randint(0, 1)
            lo_bits.append(bit)
            hi_bits.append(bit)
    return ISF.create(bdd,
                      bdd.from_truth_table(lo_bits, variables),
                      bdd.from_truth_table(hi_bits, variables))


def scratch_partition(bdd, outputs, bound, variables):
    """From-scratch dedup over the same table the cache refines."""
    fit = _fit_variables(bdd, outputs, variables, "test")
    assert fit is not None
    table_vars, tier = fit
    vectors = _vertex_masks(bdd, outputs, tuple(bound), table_vars, tier)
    return _dedup(vectors)


@pytest.mark.parametrize("density", [0.0, 0.3, 0.7])
@pytest.mark.parametrize("tier1_max", ["16", "0"])
def test_refined_partition_equals_scratch(density, tier1_max, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "on")
    monkeypatch.setenv("REPRO_KERNEL_TIER1_MAX_VARS", tier1_max)
    monkeypatch.setenv("REPRO_KERNEL_COST_MODEL", "off")
    rng = random.Random(int(density * 100) + int(tier1_max))
    bdd = BDD(7)
    variables = list(range(7))
    for _ in range(3):
        outputs = [random_isf(bdd, rng, variables, density)
                   for _ in range(2)]
        cache = PartitionCache.for_call(bdd, outputs, variables, "test")
        assert cache is not None
        for p in (1, 2, 3, 4):
            bound = tuple(rng.sample(variables, p))
            part = cache.partition_for(bound)
            uniq, mem, complete = scratch_partition(
                bdd, outputs, bound, variables)
            assert part.members == mem
            assert part.unique_vectors == uniq
            assert part.all_complete == complete


@pytest.mark.parametrize("density", [0.0, 0.3, 0.7])
def test_refined_scores_equal_reduction_score(density, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "on")
    rng = random.Random(int(density * 100) + 59)
    bdd = BDD(6)
    variables = list(range(6))
    outputs = [random_isf(bdd, rng, variables, density) for _ in range(2)]
    cache = PartitionCache.for_call(bdd, outputs, variables, "test")
    monkeypatch.setenv("REPRO_KERNEL", "off")
    for _ in range(6):
        bound = tuple(rng.sample(variables, rng.randint(2, 4)))
        assert cache.score_for(bound) == \
            reduction_score(bdd, outputs, bound)


@pytest.mark.parametrize("density", [0.2, 0.6])
def test_greedy_bound_set_differential(density, monkeypatch):
    rng = random.Random(int(density * 100) + 67)
    bdd = BDD(7)
    variables = list(range(7))
    for _ in range(3):
        outputs = [random_isf(bdd, rng, variables, density)
                   for _ in range(2)]
        monkeypatch.setenv("REPRO_KERNEL", "off")
        ref = greedy_bound_set(bdd, outputs, variables, 4)
        ref_rank = rank_bound_sets(bdd, outputs, variables, 3)
        monkeypatch.setenv("REPRO_KERNEL", "on")
        assert greedy_bound_set(bdd, outputs, variables, 4) == ref
        assert rank_bound_sets(bdd, outputs, variables, 3) == ref_rank


def test_served_search_counts_refines_not_scratch(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "on")
    rng = random.Random(73)
    bdd = BDD(7)
    variables = list(range(7))
    outputs = [random_isf(bdd, rng, variables, 0.3) for _ in range(2)]
    reset_kernel_stats()
    bound = greedy_bound_set(bdd, outputs, variables, 4)
    assert bound is not None
    refines = STATS.op_hits.get("kernel_refine", 0)
    assert refines > 0
    assert STATS.scratch == 0
    # O(1) refinements per candidate evaluation: the greedy search
    # scores at most |pool| candidates per growth round, each candidate
    # one refinement off its round's shared prefix, plus the prefix
    # itself — never the O(p) rebuild a from-scratch call would do.
    rounds = len(bound)
    candidates = rounds * len(variables)
    assert refines <= candidates + rounds


def test_score_memo_short_circuits_ranking(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "on")
    rng = random.Random(79)
    bdd = BDD(6)
    variables = list(range(6))
    outputs = [random_isf(bdd, rng, variables, 0.4) for _ in range(2)]
    memo = {}
    key = (tuple((o.lo, o.hi) for o in outputs), 3)
    first = rank_bound_sets(bdd, outputs, variables, 3,
                            score_memo=memo, memo_key=key)
    assert memo
    reset_kernel_stats()
    second = rank_bound_sets(bdd, outputs, variables, 3,
                             score_memo=memo, memo_key=key)
    assert second == first
    # Every score came out of the memo; the only remaining table work
    # is the greedy candidate's own ncc growth (not score-memoizable —
    # its intermediate prefixes never produce ranking scores).
    assert STATS.op_hits.get("reduction_score", 0) == 0
