"""Canonicity of the BDD <-> truth-table conversions."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.bdd.reorder import rebuild
from repro.kernel.convert import bdd_to_bools, bools_to_bdd


def random_node(bdd, rng, variables):
    table = [rng.randint(0, 1) for _ in range(1 << len(variables))]
    return bdd.from_truth_table(table, variables), table


class TestBddToBools:
    def test_matches_to_truth_table(self):
        bdd = BDD(5)
        rng = random.Random(1)
        variables = [0, 1, 2, 3, 4]
        f, table = random_node(bdd, rng, variables)
        assert bdd_to_bools(bdd, f, variables).astype(int).tolist() == table
        assert bdd.to_truth_table(f, variables) == table

    def test_non_identity_variable_order(self):
        bdd = BDD(4)
        rng = random.Random(2)
        f, _ = random_node(bdd, rng, [0, 1, 2, 3])
        shuffled = [2, 0, 3, 1]
        got = bdd_to_bools(bdd, f, shuffled).astype(int).tolist()
        assert got == bdd.to_truth_table(f, shuffled)

    def test_variables_superset_of_support(self):
        bdd = BDD(4)
        f = bdd.apply_and(bdd.var(1), bdd.var(3))
        got = bdd_to_bools(bdd, f, [0, 1, 2, 3]).astype(int).tolist()
        assert got == bdd.to_truth_table(f, [0, 1, 2, 3])

    def test_rejects_uncovered_support(self):
        bdd = BDD(3)
        f = bdd.apply_or(bdd.var(0), bdd.var(2))
        with pytest.raises(ValueError):
            bdd_to_bools(bdd, f, [0, 1])

    def test_terminals(self):
        bdd = BDD(3)
        assert bdd_to_bools(bdd, BDD.FALSE, [0, 1]).sum() == 0
        assert bdd_to_bools(bdd, BDD.TRUE, [0, 1]).sum() == 4

    def test_cached_and_read_only(self):
        bdd = BDD(3)
        f = bdd.var(1)
        a = bdd_to_bools(bdd, f, (0, 1, 2))
        b = bdd_to_bools(bdd, f, (0, 1, 2))
        assert a is b
        with pytest.raises(ValueError):
            a[0] = True


class TestBoolsToBdd:
    def test_canonical_node_ids(self):
        bdd = BDD(5)
        rng = random.Random(3)
        variables = [0, 1, 2, 3, 4]
        for _ in range(10):
            table = [rng.randint(0, 1) for _ in range(32)]
            ref = bdd.from_truth_table(table, variables)
            assert bools_to_bdd(bdd, table, variables) == ref

    def test_roundtrip(self):
        bdd = BDD(4)
        rng = random.Random(4)
        f, _ = random_node(bdd, rng, [0, 1, 2, 3])
        table = bdd_to_bools(bdd, f, [0, 1, 2, 3])
        assert bools_to_bdd(bdd, table, [0, 1, 2, 3]) == f

    def test_non_identity_order(self):
        bdd = BDD(4)
        rng = random.Random(5)
        variables = [3, 1, 0, 2]
        table = [rng.randint(0, 1) for _ in range(16)]
        assert bools_to_bdd(bdd, table, variables) == \
            bdd.from_truth_table(table, variables)

    def test_wide_table_uses_numpy_levels(self):
        # > 2048 entries exercises the np.unique level loop.
        bdd = BDD(12)
        rng = random.Random(6)
        variables = list(range(12))
        table = [rng.randint(0, 1) for _ in range(1 << 12)]
        f = bools_to_bdd(bdd, table, variables)
        got = bdd_to_bools(bdd, f, variables).astype(int).tolist()
        assert got == table

    def test_rejects_bad_length(self):
        bdd = BDD(3)
        with pytest.raises(ValueError):
            bools_to_bdd(bdd, [0, 1, 0], [0, 1])


class TestCacheInvalidation:
    def test_set_order_clears_kernel_cache(self):
        bdd = BDD(3)
        f = bdd.apply_or(bdd.var(0), bdd.var(1))
        bdd_to_bools(bdd, f, (0, 1, 2))
        assert bdd._kernel_cache
        bdd.set_order([2, 1, 0])
        assert not bdd._kernel_cache

    def test_conversion_correct_after_reorder(self):
        bdd = BDD(3)
        f = bdd.apply_or(bdd.apply_and(bdd.var(0), bdd.var(1)), bdd.var(2))
        before = bdd_to_bools(bdd, f, (0, 1, 2)).astype(int).tolist()
        [f2] = rebuild(bdd, [f], [1, 2, 0])
        after = bdd_to_bools(bdd, f2, (0, 1, 2)).astype(int).tolist()
        assert after == before
