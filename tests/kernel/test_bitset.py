"""Packed-table primitives vs the pure-Python reference layout."""

import random

import numpy as np
import pytest

from repro.boolfunc.truthtable import pack64, unpack64
from repro.kernel.bitset import (
    Bits,
    mask_rows,
    mask_to_bools,
    pack_bools,
    pack_rows,
    popcount_words,
    unpack_words,
)


def random_table(rng, nbits):
    return [rng.randint(0, 1) for _ in range(nbits)]


class TestPack64Reference:
    @pytest.mark.parametrize("nbits", [1, 7, 63, 64, 65, 128, 200, 1024])
    def test_numpy_packing_matches_pure_python(self, nbits):
        rng = random.Random(nbits)
        table = random_table(rng, nbits)
        words = pack_bools(table)
        assert [int(w) for w in words] == pack64(table)

    def test_unpack_roundtrip(self):
        rng = random.Random(5)
        table = random_table(rng, 300)
        words = pack_bools(table)
        assert unpack_words(words, 300).astype(int).tolist() == table
        assert unpack64(pack64(table), 300) == table

    def test_unpack64_rejects_overflow(self):
        with pytest.raises(ValueError):
            unpack64([0], 65)

    def test_popcount(self):
        rng = random.Random(9)
        table = random_table(rng, 500)
        assert popcount_words(pack_bools(table)) == sum(table)


class TestMaskIntegers:
    @pytest.mark.parametrize("nbits", [1, 8, 64, 100])
    def test_mask_rows_matches_pack64(self, nbits):
        rng = random.Random(nbits + 1)
        rows = [random_table(rng, nbits) for _ in range(4)]
        masks = mask_rows(np.array(rows, dtype=bool))
        for row, mask in zip(rows, masks):
            words = pack64(row)
            assert mask == sum(w << (64 * i) for i, w in enumerate(words))

    def test_mask_to_bools_roundtrip(self):
        rng = random.Random(3)
        row = random_table(rng, 77)
        mask = mask_rows(np.array([row], dtype=bool))[0]
        assert mask_to_bools(mask, 77).astype(int).tolist() == row


class TestBits:
    def test_algebra(self):
        rng = random.Random(11)
        a_t = random_table(rng, 130)
        b_t = random_table(rng, 130)
        a = Bits.from_bools(a_t)
        b = Bits.from_bools(b_t)
        assert (a & b).to_bools().astype(int).tolist() == \
            [x & y for x, y in zip(a_t, b_t)]
        assert (a | b).to_bools().astype(int).tolist() == \
            [x | y for x, y in zip(a_t, b_t)]
        assert a.invert().to_bools().astype(int).tolist() == \
            [1 - x for x in a_t]
        assert a.popcount() == sum(a_t)

    def test_invert_keeps_tail_zero(self):
        a = Bits.from_bools([1, 0, 1])  # nbits not a multiple of 64
        inv = a.invert()
        assert int(inv.words[0]) == 0b010
        assert inv.invert() == a

    def test_subset_and_key(self):
        a = Bits.from_bools([1, 0, 1, 0])
        b = Bits.from_bools([1, 1, 1, 0])
        assert a.subset_of(b)
        assert not b.subset_of(a)
        assert a.key() != b.key()
        assert Bits.from_bools([1, 0, 1, 0]) == a
        assert hash(Bits.from_bools([1, 0, 1, 0])) == hash(a)

    def test_pack_rows_matches_pack_bools(self):
        rng = random.Random(2)
        rows = [random_table(rng, 70) for _ in range(3)]
        packed = pack_rows(np.array(rows, dtype=bool))
        for i, row in enumerate(rows):
            assert packed[i].tolist() == pack_bools(row).tolist()
