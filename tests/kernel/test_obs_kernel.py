"""Observability wiring for the kernel: counters, metrics, fallbacks."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.bdd.symmetry import equivalence_symmetric_in, symmetric_in
from repro.bench.registry import benchmark
from repro.boolfunc.spec import ISF
from repro.core.api import map_to_xc3000
from repro.decomp import cover
from repro.kernel import (
    STATS,
    KernelStats,
    kernel_enabled,
    kernel_max_vars,
    reset_kernel_stats,
)
from repro.obs.metrics import profile_report, run_metrics
from repro.obs.profiler import (
    PhaseProfiler,
    activate_profiler,
    record_event,
)


class TestKernelStats:
    def test_record_and_snapshot(self):
        stats = KernelStats()
        stats.record_hit("classes_for", 0.25)
        stats.record_hit("classes_for", 0.25)
        stats.record_miss("symmetry_assign")
        snap = stats.snapshot()
        assert snap["kernel_hits"] == 2
        assert snap["kernel_misses"] == 1
        assert snap["ops"]["classes_for"]["hits"] == 2
        assert snap["ops"]["classes_for"]["time_s"] == 0.5
        assert snap["ops"]["symmetry_assign"]["misses"] == 1

    def test_reset(self):
        STATS.record_hit("x", 1.0)
        reset_kernel_stats()
        assert STATS.hits == 0 and not STATS.op_time

    def test_env_switches(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "off")
        assert not kernel_enabled()
        monkeypatch.setenv("REPRO_KERNEL", "on")
        assert kernel_enabled()
        monkeypatch.setenv("REPRO_KERNEL_MAX_VARS", "9")
        assert kernel_max_vars() == 9
        monkeypatch.setenv("REPRO_KERNEL_MAX_VARS", "junk")
        assert kernel_max_vars() == 24


class TestMetricsDocument:
    def test_kernel_block_and_fallback_counter(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "on")
        result = map_to_xc3000(benchmark("rd73"))
        doc = run_metrics(command="map", source="rd73",
                          stats=result.stats)
        assert doc["schema_version"] == 1
        assert doc["kernel"]["kernel_hits"] > 0
        assert doc["kernel"]["enabled"] is True
        assert "classes_for" in doc["kernel"]["ops"]
        assert doc["engine"]["exact_cover_fallbacks"] == 0

    def test_profile_report_mentions_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "on")
        result = map_to_xc3000(benchmark("rd73"))
        report = profile_report(result.stats)
        assert "kernel (word-parallel, on" in report
        assert "classes_for" in report

    def test_duck_typed_stats_tolerated(self):
        class Stats:
            def phase_profile(self):
                return {}
        report = profile_report(Stats())
        assert "kernel" not in report

    def test_off_run_reports_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "off")
        result = map_to_xc3000(benchmark("rd53"))
        assert result.stats.kernel_metrics["enabled"] is False
        assert result.stats.kernel_metrics["kernel_hits"] == 0
        assert "kernel (word-parallel, off" in profile_report(result.stats)


class TestExactCoverFallback:
    def test_event_recorded_on_budget_exhaustion(self, monkeypatch):
        rng = random.Random(5)
        bdd = BDD(4)
        variables = list(range(4))
        lo_bits = [0 if rng.random() < 0.5 else rng.randint(0, 1)
                   for _ in range(16)]
        hi_bits = [max(lo_bits[k], rng.randint(0, 1)) for k in range(16)]
        isf = ISF.create(bdd,
                         bdd.from_truth_table(lo_bits, variables),
                         bdd.from_truth_table(hi_bits, variables))
        monkeypatch.setattr(cover, "exact_cover",
                            lambda *args, **kwargs: None)
        profiler = PhaseProfiler()
        with activate_profiler(profiler):
            cover.classes_for_exact(bdd, [isf], (0, 1))
        assert profiler.events["exact_cover_fallback"] == 1

    def test_record_event_noop_without_profiler(self):
        record_event("exact_cover_fallback")  # must not raise

    def test_profiler_event_counter(self):
        profiler = PhaseProfiler()
        profiler.event("thing")
        profiler.event("thing", 2)
        assert profiler.events == {"thing": 3}


class TestMemoisedSymmetryChecks:
    def brute_symmetric(self, bdd, f, i, j, pairs):
        (ai, aj), (bi, bj) = pairs
        return bdd.restrict(bdd.restrict(f, i, ai), j, aj) == \
            bdd.restrict(bdd.restrict(f, i, bi), j, bj)

    def test_symmetric_in_memoised(self):
        bdd = BDD(4)
        f = bdd.apply_or(bdd.apply_and(bdd.var(0), bdd.var(1)),
                         bdd.var(2))
        assert symmetric_in(bdd, f, 0, 1) == \
            self.brute_symmetric(bdd, f, 0, 1, ((0, 1), (1, 0)))
        hits_before = bdd._cache_hits
        # Second call (and the swapped pair) must hit the computed table.
        symmetric_in(bdd, f, 0, 1)
        symmetric_in(bdd, f, 1, 0)
        assert bdd._cache_hits >= hits_before + 2

    def test_equivalence_symmetric_in_memoised(self):
        bdd = BDD(4)
        f = bdd.apply_xnor(bdd.var(1), bdd.var(3))
        assert equivalence_symmetric_in(bdd, f, 1, 3) == \
            self.brute_symmetric(bdd, f, 1, 3, ((0, 0), (1, 1)))
        hits_before = bdd._cache_hits
        equivalence_symmetric_in(bdd, f, 3, 1)
        assert bdd._cache_hits >= hits_before + 1

    def test_memoised_results_correct_randomised(self):
        rng = random.Random(8)
        bdd = BDD(4)
        variables = list(range(4))
        for _ in range(10):
            table = [rng.randint(0, 1) for _ in range(16)]
            f = bdd.from_truth_table(table, variables)
            for i in range(4):
                for j in range(i + 1, 4):
                    assert symmetric_in(bdd, f, i, j) == \
                        self.brute_symmetric(bdd, f, i, j,
                                             ((0, 1), (1, 0)))
                    assert equivalence_symmetric_in(bdd, f, i, j) == \
                        self.brute_symmetric(bdd, f, i, j,
                                             ((0, 0), (1, 1)))
