"""Differential tests: kernel symmetry ops == BDD symmetry ops."""

import itertools
import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.kernel.symmetry import bits_domain
from repro.symmetry.groups import (
    assign_for_symmetry,
    assign_for_symmetry_multi,
    isf_symmetry_groups,
)
from repro.symmetry.isf_symmetry import BddIsfOps, SymmetryKind

KINDS = (SymmetryKind.NONEQUIVALENCE, SymmetryKind.EQUIVALENCE)


def random_isf(bdd, rng, variables, dc_density):
    lo_bits, hi_bits = [], []
    for _ in range(1 << len(variables)):
        if rng.random() < dc_density:
            lo_bits.append(0)
            hi_bits.append(1)
        else:
            bit = rng.randint(0, 1)
            lo_bits.append(bit)
            hi_bits.append(bit)
    return ISF.create(bdd,
                      bdd.from_truth_table(lo_bits, variables),
                      bdd.from_truth_table(hi_bits, variables))


def symmetric_isf(bdd, rng, variables, pair, dc_density):
    """An ISF built symmetric in ``pair`` (so strong checks hit True)."""
    i, j = pair
    lo_bits, hi_bits = [], []
    n = len(variables)
    seen = {}
    for k in range(1 << n):
        bits = [(k >> (n - 1 - a)) & 1 for a in range(n)]
        key_bits = list(bits)
        # Canonicalise the pair (sorted values) => symmetric table.
        key_bits[i], key_bits[j] = sorted((bits[i], bits[j]))
        key = tuple(key_bits)
        if key not in seen:
            if rng.random() < dc_density:
                seen[key] = (0, 1)
            else:
                bit = rng.randint(0, 1)
                seen[key] = (bit, bit)
        lo_bits.append(seen[key][0])
        hi_bits.append(seen[key][1])
    return ISF.create(bdd,
                      bdd.from_truth_table(lo_bits, variables),
                      bdd.from_truth_table(hi_bits, variables))


class TestOpsDifferential:
    @pytest.mark.parametrize("density", [0.0, 0.3, 0.8])
    def test_predicates_and_narrowing(self, density, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "on")
        rng = random.Random(int(density * 10) + 3)
        bdd = BDD(5)
        variables = list(range(5))
        bops = BddIsfOps(bdd)
        for trial in range(4):
            if trial % 2:
                isf = symmetric_isf(bdd, rng, variables, (1, 3), density)
            else:
                isf = random_isf(bdd, rng, variables, density)
            domain = bits_domain(bdd, [isf], variables, "test")
            assert domain is not None
            kops, (f,) = domain
            assert kops.support(f) == isf.support(bdd)
            lowered = kops.lower(f)
            assert (lowered.lo, lowered.hi) == (isf.lo, isf.hi)
            for kind in KINDS:
                for i, j in itertools.combinations(variables, 2):
                    assert kops.strongly_symmetric(f, i, j, kind) == \
                        bops.strongly_symmetric(isf, i, j, kind), \
                        (kind, i, j)
                    pot_k = kops.potentially_symmetric(f, i, j, kind)
                    assert pot_k == \
                        bops.potentially_symmetric(isf, i, j, kind), \
                        (kind, i, j)
                    if pot_k:
                        m_k = kops.lower(
                            kops.make_symmetric(f, i, j, kind))
                        m_b = bops.make_symmetric(isf, i, j, kind)
                        assert (m_k.lo, m_k.hi) == (m_b.lo, m_b.hi)
                    else:
                        with pytest.raises(ValueError):
                            kops.make_symmetric(f, i, j, kind)

    def test_pair_order_irrelevant(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "on")
        rng = random.Random(77)
        bdd = BDD(4)
        variables = list(range(4))
        isf = random_isf(bdd, rng, variables, 0.4)
        kops, (f,) = bits_domain(bdd, [isf], variables, "test")
        for kind in KINDS:
            for i, j in itertools.combinations(variables, 2):
                assert kops.strongly_symmetric(f, i, j, kind) == \
                    kops.strongly_symmetric(f, j, i, kind)
                assert kops.potentially_symmetric(f, i, j, kind) == \
                    kops.potentially_symmetric(f, j, i, kind)


class TestWrapperDifferential:
    def run_both(self, monkeypatch, fn):
        monkeypatch.setenv("REPRO_KERNEL", "off")
        ref = fn()
        monkeypatch.setenv("REPRO_KERNEL", "on")
        # Defeat the measured crossover: these supports are far below
        # the default symmetry minimum, and the point here is the
        # kernel-vs-BDD differential, not the dispatch policy.
        monkeypatch.setenv("REPRO_KERNEL_SYMMETRY_MIN_VARS", "0")
        hit = fn()
        monkeypatch.delenv("REPRO_KERNEL_SYMMETRY_MIN_VARS", raising=False)
        return ref, hit

    @pytest.mark.parametrize("density", [0.0, 0.4])
    def test_isf_symmetry_groups(self, density, monkeypatch):
        rng = random.Random(int(density * 10) + 5)
        bdd = BDD(5)
        variables = list(range(5))
        for trial in range(3):
            isf = symmetric_isf(bdd, rng, variables, (0, 2), density)
            for kind in KINDS:
                ref, hit = self.run_both(
                    monkeypatch,
                    lambda: isf_symmetry_groups(bdd, isf, variables, kind))
                assert hit == ref

    @pytest.mark.parametrize("density", [0.3, 0.7])
    def test_assign_for_symmetry(self, density, monkeypatch):
        rng = random.Random(int(density * 10) + 17)
        bdd = BDD(5)
        variables = list(range(5))
        for trial in range(3):
            isf = random_isf(bdd, rng, variables, density)
            ref, hit = self.run_both(
                monkeypatch,
                lambda: assign_for_symmetry(bdd, isf, variables))
            assert (hit[0].lo, hit[0].hi) == (ref[0].lo, ref[0].hi)
            assert hit[1] == ref[1]
            assert hit[0].refines(bdd, isf)

    @pytest.mark.parametrize("density", [0.3, 0.7])
    def test_assign_for_symmetry_multi(self, density, monkeypatch):
        rng = random.Random(int(density * 10) + 23)
        bdd = BDD(5)
        variables = list(range(5))
        for trial in range(3):
            outputs = [random_isf(bdd, rng, variables, density)
                       for _ in range(2)]
            ref, hit = self.run_both(
                monkeypatch,
                lambda: assign_for_symmetry_multi(bdd, outputs, variables))
            assert [(i.lo, i.hi) for i in hit[0]] == \
                [(i.lo, i.hi) for i in ref[0]]
            assert hit[1] == ref[1]
