"""Differential tests pinning tier 2 against tier 1 and the BDD path.

Tier 2 (``repro.kernel.bitset2.Words``) exists for supports past the
bignum cliff, but its correctness contract is checked where exhaustive
comparison is cheap: forcing ``REPRO_KERNEL_TIER1_MAX_VARS=0`` routes
*every* served support through the word-array representation, so small
circuits and random ISFs exercise the identical code path tier-2 uses
at 17-24 variables — and must match the tier-1 and BDD answers bit for
bit.
"""

import itertools
import random

import pytest

from repro.bdd.manager import BDD
from repro.bench.registry import benchmark
from repro.boolfunc.spec import ISF
from repro.core.api import map_to_xc3000
from repro.decomp.bound_set import reduction_score
from repro.decomp.compat import LazyClasses, assign_by_classes, classes_for
from repro.kernel import STATS, reset_kernel_stats
from repro.kernel.symmetry import bits_domain
from repro.symmetry.isf_symmetry import BddIsfOps, SymmetryKind

#: Table 1 circuits small enough for a three-way end-to-end run but wide
#: enough that decomposition does real work.
THREE_WAY_CIRCUITS = ["rd73", "misex1", "5xp1"]


def force_tier2(monkeypatch):
    """Route every served support through the tier-2 word path."""
    monkeypatch.setenv("REPRO_KERNEL", "on")
    monkeypatch.setenv("REPRO_KERNEL_TIER1_MAX_VARS", "0")
    monkeypatch.setenv("REPRO_KERNEL_COST_MODEL", "off")


def random_isf(bdd, rng, variables, dc_density):
    lo_bits, hi_bits = [], []
    for _ in range(1 << len(variables)):
        if rng.random() < dc_density:
            lo_bits.append(0)
            hi_bits.append(1)
        else:
            bit = rng.randint(0, 1)
            lo_bits.append(bit)
            hi_bits.append(bit)
    return ISF.create(bdd,
                      bdd.from_truth_table(lo_bits, variables),
                      bdd.from_truth_table(hi_bits, variables))


def isf_pairs(classes):
    return [[(isf.lo, isf.hi) for isf in row] for row in classes.merged]


@pytest.mark.parametrize("name", THREE_WAY_CIRCUITS)
def test_three_way_blif_identical(name, monkeypatch):
    func = benchmark(name)
    monkeypatch.setenv("REPRO_KERNEL", "off")
    ref = map_to_xc3000(func)
    ref_blif = ref.network.to_blif()

    monkeypatch.setenv("REPRO_KERNEL", "on")
    monkeypatch.delenv("REPRO_KERNEL_TIER1_MAX_VARS", raising=False)
    tier1 = map_to_xc3000(func)
    assert tier1.stats.kernel_metrics["kernel_hits"] > 0
    assert tier1.network.to_blif() == ref_blif

    force_tier2(monkeypatch)
    tier2 = map_to_xc3000(func)
    assert tier2.stats.kernel_metrics["kernel_hits"] > 0
    assert tier2.network.to_blif() == ref_blif
    assert (tier2.lut_count, tier2.clb_count, tier2.depth) == \
        (ref.lut_count, ref.clb_count, ref.depth)


@pytest.mark.parametrize("density", [0.0, 0.3, 0.8])
def test_tier2_classes_and_assign(density, monkeypatch):
    rng = random.Random(int(density * 100) + 71)
    bdd = BDD(7)
    variables = list(range(7))
    for _ in range(3):
        outputs = [random_isf(bdd, rng, variables, density)
                   for _ in range(2)]
        bound = tuple(rng.sample(variables, 3))
        monkeypatch.setenv("REPRO_KERNEL", "off")
        ref_cls = classes_for(bdd, outputs, bound)
        ref = assign_by_classes(bdd, outputs, ref_cls)
        force_tier2(monkeypatch)
        reset_kernel_stats()
        hit_cls = classes_for(bdd, outputs, bound)
        # TIER1_MAX_VARS=0 means a served call *is* a tier-2 call.
        assert isinstance(hit_cls, LazyClasses)
        assert STATS.hits > 0 and STATS.misses == 0
        hit = assign_by_classes(bdd, outputs, hit_cls)
        assert hit_cls.classes == ref_cls.classes
        assert hit_cls.class_of == ref_cls.class_of
        assert isf_pairs(hit_cls) == isf_pairs(ref_cls)
        assert [(i.lo, i.hi) for i in hit] == [(i.lo, i.hi) for i in ref]


def test_tier2_reduction_score(monkeypatch):
    rng = random.Random(83)
    bdd = BDD(7)
    variables = list(range(7))
    for density in (0.0, 0.5):
        outputs = [random_isf(bdd, rng, variables, density)
                   for _ in range(3)]
        for p in (2, 3):
            bound = tuple(rng.sample(variables, p))
            monkeypatch.setenv("REPRO_KERNEL", "off")
            ref = reduction_score(bdd, outputs, bound)
            force_tier2(monkeypatch)
            assert reduction_score(bdd, outputs, bound) == ref


@pytest.mark.parametrize("density", [0.0, 0.4])
def test_tier2_symmetry_predicates(density, monkeypatch):
    force_tier2(monkeypatch)
    rng = random.Random(int(density * 10) + 11)
    bdd = BDD(5)
    variables = list(range(5))
    bops = BddIsfOps(bdd)
    kinds = (SymmetryKind.NONEQUIVALENCE, SymmetryKind.EQUIVALENCE)
    for _ in range(3):
        isf = random_isf(bdd, rng, variables, density)
        domain = bits_domain(bdd, [isf], variables, "test")
        assert domain is not None
        kops, (f,) = domain
        assert kops.tier == 2
        assert kops.support(f) == isf.support(bdd)
        lowered = kops.lower(f)
        assert (lowered.lo, lowered.hi) == (isf.lo, isf.hi)
        for kind in kinds:
            for i, j in itertools.combinations(variables, 2):
                assert kops.strongly_symmetric(f, i, j, kind) == \
                    bops.strongly_symmetric(isf, i, j, kind), (kind, i, j)
                pot = kops.potentially_symmetric(f, i, j, kind)
                assert pot == \
                    bops.potentially_symmetric(isf, i, j, kind), (kind, i, j)
                if pot:
                    m_k = kops.lower(kops.make_symmetric(f, i, j, kind))
                    m_b = bops.make_symmetric(isf, i, j, kind)
                    assert (m_k.lo, m_k.hi) == (m_b.lo, m_b.hi)
