"""Remote result cache: read-through, write-behind, failure = miss.

A :class:`RemoteCache` must behave exactly like a local
:class:`ResultCache` from the scheduler's point of view — same keys,
same get/put surface, and above all the same failure contract: any
store problem (server down, torn frame, injected fault) serves as a
cache *miss*, never as an exception reaching a job.
"""

import socket
import struct
import time

import pytest

from repro.dist.cachenet import CacheServer, RemoteCache
from repro.dist.wire import recv_frame, send_frame
from repro.runtime.cache import ResultCache

KEY = "ab" * 32
OTHER = "cd" * 32
PAYLOAD = {"lut_count": 4, "verified": True}


@pytest.fixture
def server(tmp_path):
    backing = ResultCache(tmp_path / "cache", memory_limit=0)
    srv = CacheServer(backing).start()
    yield srv
    srv.close()


def client(server, **kwargs):
    return RemoteCache(server.host, server.port, **kwargs)


class TestReadThrough:
    def test_miss_then_hit(self, server):
        rc = client(server)
        try:
            assert rc.get(KEY) is None
            assert rc.remote_misses == 1
            server.cache.put(KEY, PAYLOAD)
            assert rc.get(KEY) == PAYLOAD
            assert rc.remote_hits == 1
        finally:
            rc.close()

    def test_second_get_served_from_memory(self, server):
        rc = client(server)
        try:
            server.cache.put(KEY, PAYLOAD)
            assert rc.get(KEY) == PAYLOAD
            gets_before = server.counters["gets"]
            assert rc.get(KEY) == PAYLOAD
            assert server.counters["gets"] == gets_before
        finally:
            rc.close()

    def test_keys_shared_with_local_cache(self, server, tmp_path):
        # The remote store IS a ResultCache directory: a single-host
        # run against the same root sees entries a node wrote.
        rc = client(server)
        try:
            rc.put(KEY, PAYLOAD)
            assert rc.flush()
        finally:
            rc.close()
        local = ResultCache(tmp_path / "cache", memory_limit=0)
        assert local.get(KEY) == PAYLOAD


class TestWriteBehind:
    def test_put_reaches_server(self, server):
        rc = client(server)
        try:
            rc.put(KEY, PAYLOAD)
            assert rc.flush()
            assert server.cache.get(KEY) == PAYLOAD
            assert server.counters["puts"] == 1
        finally:
            rc.close()

    def test_put_visible_to_other_client(self, server):
        writer, reader = client(server), client(server)
        try:
            writer.put(KEY, PAYLOAD)
            assert writer.flush()
            assert reader.get(KEY) == PAYLOAD
        finally:
            writer.close()
            reader.close()

    def test_put_never_blocks_on_dead_server(self, server):
        rc = client(server)
        server.close()
        try:
            t0 = time.perf_counter()
            rc.put(KEY, PAYLOAD)
            assert time.perf_counter() - t0 < 0.5
            rc.flush(timeout=2.0)
            # The write was skipped and counted, same contract as a
            # local disk write error.
            assert rc.write_errors >= 1
            # The local memory tier still remembers it.
            assert rc.get(KEY) == PAYLOAD
        finally:
            rc.close()


class TestFailureIsMiss:
    def test_server_down_get_is_miss(self):
        # Bind then close: a port with nothing listening.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = RemoteCache("127.0.0.1", port, timeout=1.0)
        try:
            assert rc.get(KEY) is None
            assert rc.fetch_errors == 1
            assert rc.misses == 1
        finally:
            rc.close()

    def test_server_restart_recovers(self, server):
        rc = client(server)
        try:
            assert rc.get(KEY) is None
            server.close()
            assert rc.get(OTHER) is None       # error -> miss
            assert rc.fetch_errors >= 1
            revived = CacheServer(server.cache, port=server.port).start()
            try:
                revived.cache.put(KEY, PAYLOAD)
                assert rc.get(KEY) == PAYLOAD  # fresh socket, fresh luck
            finally:
                revived.close()
        finally:
            rc.close()

    def test_torn_request_poisons_only_that_connection(self, server):
        raw = socket.create_connection((server.host, server.port),
                                       timeout=5.0)
        raw.sendall(struct.pack(">I", 64) + b"torn")
        raw.close()
        deadline = time.monotonic() + 5.0
        while server.counters["errors"] == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.counters["errors"] == 1
        rc = client(server)
        try:
            server.cache.put(KEY, PAYLOAD)
            assert rc.get(KEY) == PAYLOAD  # the server is still serving
        finally:
            rc.close()

    def test_unknown_op_is_an_error_reply_not_a_hang(self, server):
        raw = socket.create_connection((server.host, server.port),
                                       timeout=5.0)
        try:
            send_frame(raw, {"op": "launch-missiles"})
            reply = recv_frame(raw)
            assert reply["ok"] is False
        finally:
            raw.close()


class TestObservability:
    def test_counter_stats_shape(self, server):
        rc = client(server)
        try:
            rc.get(KEY)
            rc.put(KEY, PAYLOAD)
            rc.flush()
            stats = rc.counter_stats()
            for field in ("hits", "misses", "remote_hits",
                          "remote_misses", "fetch_errors",
                          "pending_writes", "hit_latency",
                          "miss_latency"):
                assert field in stats
            assert stats["pending_writes"] == 0
            assert stats["miss_latency"]["samples"] == 1
        finally:
            rc.close()

    def test_server_stats_op(self, server):
        server.cache.put(KEY, PAYLOAD)
        raw = socket.create_connection((server.host, server.port),
                                       timeout=5.0)
        try:
            send_frame(raw, {"op": "get", "key": KEY})
            assert recv_frame(raw)["payload"] == PAYLOAD
            send_frame(raw, {"op": "stats"})
            reply = recv_frame(raw)
            assert reply["ok"] is True
            assert reply["served"]["gets"] == 1
            assert reply["served"]["hits"] == 1
            assert "hits" in reply["stats"]
        finally:
            raw.close()
