"""Frame protocol invariants: length-prefixed JSON over a socket.

The contract is binary: a frame either arrives whole and decodes to a
dict, or the receiver gets a clean ``None`` (EOF between frames) or a
:class:`WireError` (torn, oversized or undecodable) — never a partial
message and never a silent truncation.
"""

import socket
import struct
import threading

import pytest

from repro.dist.wire import (
    MAX_FRAME_BYTES,
    WireError,
    recv_frame,
    send_frame,
)


def pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestRoundtrip:
    def test_single_frame(self):
        a, b = pair()
        try:
            send_frame(a, {"op": "ping", "n": 1})
            assert recv_frame(b) == {"op": "ping", "n": 1}
        finally:
            a.close()
            b.close()

    def test_many_frames_in_order(self):
        a, b = pair()
        try:
            for i in range(50):
                send_frame(a, {"i": i, "payload": "x" * i})
            for i in range(50):
                assert recv_frame(b)["i"] == i
        finally:
            a.close()
            b.close()

    def test_unicode_payload_survives(self):
        a, b = pair()
        try:
            send_frame(a, {"label": "pla:é€/circuit"})
            assert recv_frame(b) == {"label": "pla:é€/circuit"}
        finally:
            a.close()
            b.close()

    def test_concurrent_senders_do_not_interleave(self):
        # send_frame itself is a single sendall; frames from two
        # threads may order arbitrarily but never tear.
        a, b = pair()
        try:
            def blast(tag):
                for i in range(25):
                    send_frame(a, {"tag": tag, "i": i,
                                   "pad": tag * 300})
            seen = []

            def drain():
                for _ in range(50):
                    seen.append(recv_frame(b))

            threads = [threading.Thread(target=blast, args=(t,))
                       for t in ("x", "y")]
            reader = threading.Thread(target=drain)
            reader.start()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            reader.join()
            assert len(seen) == 50
            assert all(f["pad"] == f["tag"] * 300 for f in seen)
        finally:
            a.close()
            b.close()


class TestEdges:
    def test_clean_eof_is_none(self):
        a, b = pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_eof_between_frames_is_none(self):
        a, b = pair()
        try:
            send_frame(a, {"op": "bye"})
            a.close()
            assert recv_frame(b) == {"op": "bye"}
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_torn_frame_raises(self):
        a, b = pair()
        try:
            # Announce 100 bytes, deliver 10, hang up.
            a.sendall(struct.pack(">I", 100) + b"x" * 10)
            a.close()
            with pytest.raises(WireError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_header_raises(self):
        a, b = pair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(WireError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_undecodable_body_raises(self):
        a, b = pair()
        try:
            body = b"\xff\xfe not json"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(WireError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_dict_body_raises(self):
        a, b = pair()
        try:
            body = b"[1, 2, 3]"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(WireError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_send_refused(self):
        a, b = pair()
        try:
            with pytest.raises(WireError):
                send_frame(a, {"blob": "x" * (MAX_FRAME_BYTES + 16)})
            # Nothing hit the wire: the peer still sees silence, not a
            # truncated frame.
            b.setblocking(False)
            with pytest.raises(BlockingIOError):
                b.recv(1)
        finally:
            a.close()
            b.close()
