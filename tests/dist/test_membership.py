"""Dynamic membership: late join, reconnect, duplicate refusal, redial.

The PR 8 topology was fixed at ``_connect_all`` time; these tests pin
the replacement contract:

* a node joining mid-batch (``serve_join`` against the coordinator's
  membership listener) becomes an immediate steal target and executes
  real work;
* a node whose session drops re-registers under the same ``node_id``
  and the batch completes with exactly one row per index (duplicates
  are deduped by the first-claim-wins index map);
* a second live registration under the same ``node_id`` is refused
  with a typed ``ok: false`` hello;
* a transient session loss on a *dialed* node is absorbed by bounded
  seeded-jitter redial (``rpc_retries``) instead of the loss ladder.

Byte-identity remains the acceptance bar throughout: whatever joined,
dropped, or reconnected, the merged rows equal a single-host run's.
"""

import json
import os
import queue
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import faults
from repro.dist.coordinator import DistCoordinator
from repro.dist.node import NodeServer
from repro.dist.wire import connect, recv_frame, send_frame
from repro.runtime.jobspec import make_job, source_from_name
from repro.runtime.scheduler import BatchScheduler

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12

CIRCUITS = ("xor5", "rd53", "majority", "misex1", "rd73", "rd84")


def make_jobs(names=CIRCUITS):
    return [make_job(source_from_name(name)) for name in names]


def stable(rows):
    out = []
    for row in sorted(rows, key=lambda r: r["index"]):
        row = dict(row)
        row["queue_wait_s"] = 0.0
        row["exec_s"] = 0.0
        row["beats"] = 0
        out.append(row)
    return out


def single_host_rows(names=CIRCUITS):
    with faults.suppressed():
        scheduler = BatchScheduler(workers=2, heartbeat_s=0.5)
        return [r.as_dict() for r in scheduler.run(make_jobs(names))]


def start_joiner(address_queue, **node_kw):
    """A joiner thread that waits for the coordinator's listener
    address, then serves it; returns (node, thread, outcome dict)."""
    node_kw.setdefault("workers", 2)
    node_kw.setdefault("heartbeat_s", 0.5)
    joiner = NodeServer(**node_kw)
    outcome = {}

    def run():
        try:
            host, port = address_queue.get(timeout=30.0)
        except queue.Empty:
            outcome["clean"] = False
            return
        outcome["clean"] = joiner.serve_join(host, port)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return joiner, thread, outcome


def spawn_node():
    """A clean-env subprocess worker node (accept mode)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    env.pop(faults.ENV_VAR, None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "dist", "serve-node",
         "--port", "0", "--workers", "2", "--heartbeat", "0.5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    deadline = time.monotonic() + 30.0
    while True:
        line = proc.stdout.readline()
        if "node serving on" in line:
            addr = line.split("node serving on", 1)[1].split()[0]
            host, _, port = addr.rpartition(":")
            return proc, (host, int(port))
        if not line or time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("node failed to become ready")


class TestLateJoin:
    def test_mid_batch_joiner_steals_work(self, tmp_path):
        static = NodeServer(port=0, workers=1, heartbeat_s=0.5).start()
        threading.Thread(target=static.serve_forever,
                         daemon=True).start()
        addresses = queue.Queue()
        joiner, thread, outcome = start_joiner(addresses)
        try:
            coordinator = DistCoordinator(
                [(static.host, static.port)],
                on_listen=lambda host, port: addresses.put((host, port)))
            rows = coordinator.run(make_jobs())
        finally:
            static.close()
            thread.join(timeout=10.0)
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.joins == 1
        joined = [n for n in coordinator.stats()["nodes"] if n["joined"]]
        assert len(joined) == 1
        # The whole point of joining mid-batch: it got real work, all
        # of it stolen (a joiner has no home shard).
        assert joined[0]["executed"] > 0
        assert coordinator.steals >= joined[0]["executed"]
        # The coordinator said bye at drain; the join loop ended clean.
        assert outcome.get("clean") is True
        assert json.dumps(stable(rows)) == \
            json.dumps(stable(single_host_rows()))

    def test_listener_can_be_disabled(self):
        static = NodeServer(port=0, workers=2, heartbeat_s=0.5).start()
        threading.Thread(target=static.serve_forever,
                         daemon=True).start()
        try:
            coordinator = DistCoordinator(
                [(static.host, static.port)], join_port=None)
            rows = coordinator.run(make_jobs(("xor5", "rd53")))
        finally:
            static.close()
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator._join_sock is None


class TestReconnect:
    def test_dropped_joiner_reregisters_without_duplicate_rows(
            self, monkeypatch):
        # The static executor is a clean-env subprocess so the armed
        # node.loss fault only fires in the in-process joiner: its
        # first job receipt kills its session, the coordinator
        # reassigns its claims, and the joiner re-registers in place
        # under the same node_id.
        static_proc, static_addr = spawn_node()
        monkeypatch.setenv(faults.ENV_VAR, "node.loss:raise:1:1")
        addresses = queue.Queue()
        joiner, thread, outcome = start_joiner(
            addresses, node_id="rejoiner", join_backoff_s=0.05,
            join_tries=20)
        try:
            coordinator = DistCoordinator(
                [static_addr],
                on_listen=lambda host, port: addresses.put((host, port)))
            rows = coordinator.run(make_jobs())
        finally:
            monkeypatch.delenv(faults.ENV_VAR)
            static_proc.terminate()
            try:
                static_proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                static_proc.kill()
            thread.join(timeout=10.0)
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.joins == 1
        assert coordinator.reconnects >= 1
        # One row per index, whatever raced: the first-claim-wins map
        # accounts for every duplicate.
        assert sorted(r["index"] for r in rows) == \
            list(range(len(CIRCUITS)))
        assert json.dumps(stable(rows)) == \
            json.dumps(stable(single_host_rows()))

    def test_duplicate_live_node_id_is_refused(self):
        coordinator = DistCoordinator([("127.0.0.1", 1)])
        coordinator._jobs = []
        coordinator._start_join_listener()
        first = second = None
        try:
            first = connect("127.0.0.1", coordinator.join_port,
                            timeout=5.0)
            send_frame(first, {"op": "join", "workers": 1,
                               "node_id": "dup"})
            hello = recv_frame(first)
            assert hello["ok"] is True
            deadline = time.monotonic() + 5.0
            while coordinator.joins < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            second = connect("127.0.0.1", coordinator.join_port,
                             timeout=5.0)
            send_frame(second, {"op": "join", "workers": 1,
                                "node_id": "dup"})
            refusal = recv_frame(second)
            assert refusal["ok"] is False
            assert "already registered" in refusal["error"]
            assert coordinator.joins == 1
            assert coordinator.reconnects == 0
        finally:
            for sock in (first, second):
                if sock is not None:
                    sock.close()
            coordinator._teardown()
        # Satellite regression: shutdown-before-close must wake the
        # accept thread — a listener that only close()s leaves it
        # parked in accept() past teardown.
        assert not coordinator._join_thread.is_alive()


class TestRedial:
    def test_transient_session_loss_is_absorbed(self, monkeypatch,
                                                tmp_path):
        # nth=2: the node's hello reply (frame 1) survives; its next
        # frame dies, tearing the session while the node itself lives.
        # The coordinator must redial the same node and finish there —
        # no loss ladder, no reassignment to nowhere.
        node = NodeServer(port=0, workers=2, heartbeat_s=0.5).start()
        thread = threading.Thread(target=node.serve_forever,
                                  daemon=True)
        thread.start()
        monkeypatch.setenv(faults.ENV_VAR, "shard.rpc:raise:1:2")
        names = ("xor5", "rd53", "majority")
        try:
            coordinator = DistCoordinator(
                [(node.host, node.port)], rpc_backoff_s=0.05)
            rows = coordinator.run(make_jobs(names))
        finally:
            monkeypatch.delenv(faults.ENV_VAR)
            node.close()
            thread.join(timeout=5.0)
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.rpc_retries >= 1
        assert coordinator.node_losses == 0
        assert coordinator.local_fallback_jobs == 0
        assert coordinator.stats()["nodes"][0]["sessions"] >= 2
        assert json.dumps(stable(rows)) == \
            json.dumps(stable(single_host_rows(names)))

    def test_redial_budget_exhaustion_runs_the_loss_ladder(
            self, tmp_path):
        # A node that dies for real (socket gone) burns the redial
        # budget, then the loss ladder reassigns as before.
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)
        port = sock.getsockname()[1]

        def one_shot():
            conn, _ = sock.accept()
            try:
                hello = recv_frame(conn)
                assert hello["op"] == "hello"
                send_frame(conn, {"op": "hello", "ok": True,
                                  "workers": 2})
                recv_frame(conn)  # swallow one job, then vanish
            finally:
                conn.close()
                sock.close()

        threading.Thread(target=one_shot, daemon=True).start()
        real = NodeServer(port=0, workers=2, heartbeat_s=0.5).start()
        threading.Thread(target=real.serve_forever, daemon=True).start()
        try:
            coordinator = DistCoordinator(
                [("127.0.0.1", port), (real.host, real.port)],
                rpc_tries=2, rpc_backoff_s=0.05, connect_timeout_s=2.0)
            rows = coordinator.run(make_jobs(("xor5", "rd53",
                                              "majority", "rd73")))
        finally:
            real.close()
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.rpc_retries >= 1
        assert coordinator.node_losses == 1
