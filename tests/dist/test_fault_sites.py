"""Containment for the distributed tier's fault sites.

``cache.fetch`` — client-side store I/O: any injected failure serves as
a cache miss and the job executes.  ``shard.rpc`` — node->coordinator
frames: injected failure means the coordinator can no longer hear the
node, which reads as node loss and the work reroutes.  ``node.loss`` —
whole-node death on job receipt: the crash kind is a real ``os._exit``
(exercised through subprocess nodes), the raise kind kills the session
in-process; either way the batch completes with every row intact.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import faults
from repro.dist.cachenet import CacheServer, RemoteCache
from repro.dist.coordinator import DistCoordinator
from repro.dist.node import NodeServer
from repro.runtime.cache import ResultCache
from repro.runtime.jobspec import make_job, source_from_name
from repro.runtime.scheduler import BatchScheduler

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12

KEY = "ab" * 32
PAYLOAD = {"lut_count": 4}


def test_dist_sites_registered():
    for site in ("cache.fetch", "shard.rpc", "node.loss"):
        assert site in faults.SITES


def make_jobs(names):
    return [make_job(source_from_name(name)) for name in names]


def stable(rows):
    out = []
    for row in sorted(rows, key=lambda r: r["index"]):
        row = dict(row)
        row["queue_wait_s"] = 0.0
        row["exec_s"] = 0.0
        row["beats"] = 0
        out.append(row)
    return out


class TestCacheFetchSite:
    @pytest.fixture
    def server(self, tmp_path):
        backing = ResultCache(tmp_path / "cache", memory_limit=0)
        srv = CacheServer(backing).start()
        yield srv
        srv.close()

    @pytest.mark.parametrize("kind", ["raise", "oom"])
    def test_failure_is_miss_then_recovers(self, server, monkeypatch,
                                           kind):
        server.cache.put(KEY, PAYLOAD)
        monkeypatch.setenv(faults.ENV_VAR, f"cache.fetch:{kind}:1:1")
        rc = RemoteCache(server.host, server.port, timeout=2.0)
        try:
            assert rc.get(KEY) is None          # miss, not an exception
            assert rc.fetch_errors == 1
            assert rc.get(KEY) == PAYLOAD       # nth=1 consumed
        finally:
            rc.close()

    def test_corrupt_request_is_miss_server_survives(self, server,
                                                     monkeypatch):
        # The corrupt kind poisons the outgoing get frame's bytes; the
        # server drops that connection, the client reads it as a miss.
        server.cache.put(KEY, PAYLOAD)
        monkeypatch.setenv(faults.ENV_VAR, "cache.fetch:corrupt:1:1")
        rc = RemoteCache(server.host, server.port, timeout=2.0)
        try:
            assert rc.get(KEY) in (None, PAYLOAD)  # flip may be benign
            assert rc.get(KEY) == PAYLOAD          # reconnect serves
        finally:
            rc.close()


class TestShardRpcSite:
    def test_node_blackout_falls_back_locally(self, monkeypatch,
                                              tmp_path):
        # prob=1: every node->coordinator frame dies, including the
        # hello reply, so the node never counts as alive and the whole
        # manifest runs through the local ladder. The batch completes.
        node = NodeServer(port=0, workers=1, heartbeat_s=0.5).start()
        thread = threading.Thread(target=node.serve_forever, daemon=True)
        thread.start()
        monkeypatch.setenv(faults.ENV_VAR, "shard.rpc:raise:1")
        try:
            coordinator = DistCoordinator(
                [(node.host, node.port)],
                cache=ResultCache(tmp_path / "cache"),
                connect_timeout_s=2.0)
            rows = coordinator.run(make_jobs(("xor5", "rd53")))
        finally:
            monkeypatch.delenv(faults.ENV_VAR)
            node.close()
            thread.join(timeout=5.0)
        assert [r["status"] for r in rows] == ["ok", "ok"]
        assert coordinator.local_fallback_jobs == 2

    def test_mid_session_rpc_fault_reads_as_node_loss(self, monkeypatch,
                                                      tmp_path):
        # nth=2: the hello reply (frame 1) survives, the next frame the
        # node sends dies — the coordinator sees the link drop and
        # reroutes; no row is lost.
        node = NodeServer(port=0, workers=1, heartbeat_s=0.5).start()
        thread = threading.Thread(target=node.serve_forever, daemon=True)
        thread.start()
        monkeypatch.setenv(faults.ENV_VAR, "shard.rpc:raise:1:2")
        try:
            coordinator = DistCoordinator(
                [(node.host, node.port)],
                cache=ResultCache(tmp_path / "cache"),
                connect_timeout_s=2.0)
            rows = coordinator.run(make_jobs(("xor5", "rd53")))
        finally:
            monkeypatch.delenv(faults.ENV_VAR)
            node.close()
            thread.join(timeout=5.0)
        assert [r["status"] for r in rows] == ["ok", "ok"]


class TestNodeLossSite:
    def test_raise_kills_session_batch_completes(self, monkeypatch,
                                                 tmp_path):
        # nth=1: exactly one job receipt raises inside one node's
        # session loop; that session dies, the survivor absorbs the
        # shard, and the merged rows match a single-host run.
        nodes, threads = [], []
        for _ in range(2):
            srv = NodeServer(port=0, workers=2, heartbeat_s=0.5).start()
            thread = threading.Thread(target=srv.serve_forever,
                                      daemon=True)
            thread.start()
            nodes.append(srv)
            threads.append(thread)
        monkeypatch.setenv(faults.ENV_VAR, "node.loss:raise:1:1")
        names = ("xor5", "rd53", "majority", "rd73")
        try:
            # rpc_tries=1: no redial grace, so the torn session reads
            # as an immediate loss (the redial/reconnect path is
            # covered in test_membership.py).
            coordinator = DistCoordinator(
                [(n.host, n.port) for n in nodes],
                cache=ResultCache(tmp_path / "cache"), rpc_tries=1)
            rows = coordinator.run(make_jobs(names))
        finally:
            monkeypatch.delenv(faults.ENV_VAR)
            for srv in nodes:
                srv.close()
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.node_losses == 1
        assert coordinator.reassigned >= 1
        with faults.suppressed():
            scheduler = BatchScheduler(
                workers=2, cache=ResultCache(tmp_path / "single"),
                heartbeat_s=0.5)
            reference = [r.as_dict() for r in
                         scheduler.run(make_jobs(names))]
        assert json.dumps(stable(rows)) == json.dumps(stable(reference))


class TestNodeCrashSubprocess:
    """The real thing: ``node.loss:crash`` is ``os._exit`` in a
    subprocess node, a true mid-shard process death."""

    @staticmethod
    def _spawn(inject=None):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + os.pathsep + existing if existing \
            else src
        env.pop(faults.ENV_VAR, None)
        argv = [sys.executable, "-m", "repro.cli", "dist", "serve-node",
                "--port", "0", "--workers", "2", "--heartbeat", "0.5"]
        if inject:
            argv += ["--inject", inject]
        proc = subprocess.Popen(argv, stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True,
                                env=env)
        deadline = time.monotonic() + 30.0
        while True:
            line = proc.stdout.readline()
            if "node serving on" in line:
                addr = line.split("node serving on", 1)[1].split()[0]
                host, _, port = addr.rpartition(":")
                return proc, (host, int(port))
            if not line or time.monotonic() > deadline:
                proc.kill()
                raise RuntimeError("node failed to become ready")

    def test_process_death_mid_shard_is_survived(self, tmp_path):
        healthy, healthy_addr = self._spawn()
        doomed, doomed_addr = self._spawn(inject="node.loss:crash:1:1")
        names = ("xor5", "rd53", "majority", "rd73")
        try:
            coordinator = DistCoordinator(
                [doomed_addr, healthy_addr],
                cache=ResultCache(tmp_path / "cache"), rpc_tries=1)
            rows = coordinator.run(make_jobs(names))
            assert doomed.wait(timeout=15.0) == faults.CRASH_EXIT_CODE
        finally:
            for proc in (healthy, doomed):
                proc.terminate()
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.node_losses == 1
        assert coordinator.reassigned >= 1
        scheduler = BatchScheduler(
            workers=2, cache=ResultCache(tmp_path / "single"),
            heartbeat_s=0.5)
        reference = [r.as_dict() for r in scheduler.run(make_jobs(names))]
        assert json.dumps(stable(rows)) == json.dumps(stable(reference))

    def test_sigterm_is_a_clean_shutdown(self):
        proc, (host, port) = self._spawn()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=10.0) == 0
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2.0)
