"""Coordinator journaling and resumable shards.

Two layers of coverage:

* record semantics — a journaled distributed run writes the single-host
  ``header``/``start``/``done`` grammar plus ``claim`` records binding
  every dispatched index to a node, in WAL order (claim durable before
  the job can execute anywhere);
* resume byte-identity, property-style over kill points — the journal
  of an uninterrupted run is truncated at k ∈ {during prepare, after
  first claim, mid-shard, during merge} (exactly the journal states a
  SIGKILL at those moments leaves behind — the real-process SIGKILL is
  ``tests/faults/dist_kill_resume_smoke.py``), and resuming each
  truncated journal must splice the recorded ``done`` rows verbatim and
  produce rows identical (modulo timing fields) to the uninterrupted
  run.  A dist journal must also resume on the *single-host* tier:
  claim records imply dispatch, everything else is the PR 5 grammar.
"""

import json
import threading

import pytest

from repro.dist.coordinator import DistCoordinator
from repro.dist.node import NodeServer
from repro.runtime.jobspec import make_job, source_from_name
from repro.runtime.journal import BatchJournal, load_journal
from repro.runtime.scheduler import BatchScheduler

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12

CIRCUITS = ("xor5", "rd53", "majority", "rd73")


def make_jobs(names=CIRCUITS):
    return [make_job(source_from_name(name)) for name in names]


def stable(rows):
    out = []
    for row in sorted(rows, key=lambda r: r["index"]):
        row = dict(row)
        row["queue_wait_s"] = 0.0
        row["exec_s"] = 0.0
        row["beats"] = 0
        out.append(row)
    return out


@pytest.fixture
def two_nodes():
    nodes, threads = [], []
    for _ in range(2):
        srv = NodeServer(port=0, workers=2, heartbeat_s=0.5).start()
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        nodes.append(srv)
        threads.append(thread)
    yield nodes
    for srv in nodes:
        srv.close()
    for thread in threads:
        thread.join(timeout=5.0)


def run_dist(nodes, jobs, journal=None, presettled=None):
    coordinator = DistCoordinator(
        [(n.host, n.port) for n in nodes], journal=journal)
    rows = coordinator.run(jobs, presettled=presettled)
    return coordinator, rows


def read_records(path):
    return [json.loads(line) for line in open(path)]


class TestJournalRecords:
    def test_claims_bind_every_index_to_a_node(self, two_nodes,
                                               tmp_path):
        jobs = make_jobs()
        path = str(tmp_path / "dist.jnl")
        journal = BatchJournal.create(path, jobs, site="coord.journal")
        _, rows = run_dist(two_nodes, jobs, journal=journal)
        journal.close()
        assert all(r["status"] == "ok" for r in rows)
        records = read_records(path)
        assert records[0]["kind"] == "header"
        everything = set(range(len(jobs)))
        by_kind = {}
        for record in records[1:]:
            by_kind.setdefault(record["kind"], []).append(record)
        assert {r["index"] for r in by_kind["start"]} == everything
        assert {r["index"] for r in by_kind["done"]} == everything
        claims = by_kind["claim"]
        assert {r["index"] for r in claims} == everything
        labels = {f"{n.host}:{n.port}" for n in two_nodes}
        assert {r["node"] for r in claims} <= labels

    def test_wal_order_claim_precedes_done(self, two_nodes, tmp_path):
        jobs = make_jobs(("xor5", "rd53"))
        path = str(tmp_path / "dist.jnl")
        journal = BatchJournal.create(path, jobs, site="coord.journal")
        run_dist(two_nodes, jobs, journal=journal)
        journal.close()
        first_claim, first_done = {}, {}
        for pos, record in enumerate(read_records(path)):
            if record.get("kind") == "claim":
                first_claim.setdefault(record["index"], pos)
            elif record.get("kind") == "done":
                first_done.setdefault(record["index"], pos)
        assert set(first_claim) == set(first_done)
        for index, claimed_at in first_claim.items():
            assert claimed_at < first_done[index]

    def test_reassign_recorded_on_node_loss(self, two_nodes, tmp_path):
        # One node address is a dead port: its shard reassigns, and
        # every moved index leaves a reassign record behind.
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        jobs = make_jobs()
        path = str(tmp_path / "dist.jnl")
        journal = BatchJournal.create(path, jobs, site="coord.journal")
        real = two_nodes[0]
        coordinator = DistCoordinator(
            [("127.0.0.1", dead_port), (real.host, real.port)],
            connect_timeout_s=2.0, rpc_tries=1, journal=journal)
        rows = coordinator.run(jobs)
        journal.close()
        assert all(r["status"] == "ok" for r in rows)
        reassigns = [r for r in read_records(path)
                     if r.get("kind") == "reassign"]
        if coordinator.reassigned:
            assert len(reassigns) == coordinator.reassigned
            assert all(r["node"] == f"127.0.0.1:{dead_port}"
                       for r in reassigns)


class TestResumeByteIdentity:
    """Kill-point property: truncating the journal where a SIGKILL at
    moment k would have, then resuming, reproduces the uninterrupted
    rows."""

    KILL_POINTS = ("during_prepare", "after_first_claim", "mid_shard",
                   "during_merge")

    def _truncate_at(self, lines, point):
        if point == "during_prepare":
            return lines[:1]  # header fsync'd, no dispatch yet
        if point == "after_first_claim":
            for pos, line in enumerate(lines):
                if json.loads(line).get("kind") == "claim":
                    return lines[:pos + 1]
            pytest.fail("journal holds no claim records")
        if point == "mid_shard":
            seen = 0
            for pos, line in enumerate(lines):
                if json.loads(line).get("kind") == "done":
                    seen += 1
                    if seen == 2:
                        return lines[:pos + 1]
            pytest.fail("journal holds fewer than 2 done records")
        return list(lines)  # during_merge: all recorded, died at exit

    def _reference(self, two_nodes, tmp_path):
        jobs = make_jobs()
        path = tmp_path / "full.jnl"
        journal = BatchJournal.create(str(path), jobs,
                                      site="coord.journal")
        _, rows = run_dist(two_nodes, jobs, journal=journal)
        journal.close()
        assert all(r["status"] == "ok" for r in rows)
        return path, rows

    @pytest.mark.parametrize("point", KILL_POINTS)
    def test_resume_matches_uninterrupted(self, two_nodes, tmp_path,
                                          point):
        full, reference = self._reference(two_nodes, tmp_path)
        lines = full.read_text().splitlines(keepends=True)
        cut = tmp_path / f"{point}.jnl"
        cut.write_text("".join(self._truncate_at(lines, point)))
        header, done_rows, started, corrupt = load_journal(str(cut))
        assert corrupt == 0
        journal = BatchJournal.resume(str(cut), site="coord.journal")
        coordinator, rows = run_dist(
            two_nodes, [dict(job) for job in header["jobs"]],
            journal=journal, presettled=done_rows)
        journal.close()
        # Spliced verbatim: recorded rows were not re-executed.
        assert coordinator.stats()["spliced_rows"] == len(done_rows)
        assert json.dumps(stable(rows)) == json.dumps(stable(reference))
        # The journal after resume is complete: every index done.
        _, done_after, _, _ = load_journal(str(cut))
        assert set(done_after) == set(range(len(reference)))

    def test_torn_tail_is_skipped_and_rerun(self, two_nodes, tmp_path):
        full, reference = self._reference(two_nodes, tmp_path)
        lines = full.read_text().splitlines(keepends=True)
        seen = 0
        for pos, line in enumerate(lines):
            if json.loads(line).get("kind") == "done":
                seen += 1
                if seen == 2:
                    break
        # Keep 2 done records, then half of the next line — the torn
        # append a SIGKILL mid-write leaves behind.
        torn = tmp_path / "torn.jnl"
        torn.write_text("".join(lines[:pos + 1])
                        + lines[pos + 1][:len(lines[pos + 1]) // 2])
        header, done_rows, _, corrupt = load_journal(str(torn))
        assert corrupt == 1
        assert len(done_rows) == 2
        journal = BatchJournal.resume(str(torn), site="coord.journal")
        _, rows = run_dist(
            two_nodes, [dict(job) for job in header["jobs"]],
            journal=journal, presettled=done_rows)
        journal.close()
        assert json.dumps(stable(rows)) == json.dumps(stable(reference))

    def test_single_host_resumes_a_dist_journal(self, two_nodes,
                                                tmp_path):
        # Cross-tier: the claim records a coordinator writes must not
        # confuse the single-host loader — a claim without a done is
        # in-flight and reruns, exactly like a torn start.
        full, reference = self._reference(two_nodes, tmp_path)
        lines = full.read_text().splitlines(keepends=True)
        cut = tmp_path / "cross.jnl"
        cut.write_text("".join(self._truncate_at(lines, "mid_shard")))
        header, done_rows, started, corrupt = load_journal(str(cut))
        assert corrupt == 0
        assert started  # claims imply dispatch
        remaining = [i for i in range(len(header["jobs"]))
                     if i not in done_rows]
        scheduler = BatchScheduler(workers=2, heartbeat_s=0.5)
        results = scheduler.run(
            [dict(header["jobs"][i]) for i in remaining])
        merged = dict(done_rows)
        for local, result in zip(remaining, results):
            row = result.as_dict()
            row["index"] = local
            merged[local] = row
        rows = [merged[i] for i in sorted(merged)]
        assert json.dumps(stable(rows)) == json.dumps(stable(reference))
