"""Distributed coordinator semantics: sharding, stealing, loss.

The acceptance bar for every scenario is the same: the merged rows are
what a single-host :class:`BatchScheduler` run over the same manifest
produces, byte-identically (up to the volatile timing fields), no
matter which nodes executed what or died when.
"""

import json
import socket
import threading

import pytest

from repro.dist.coordinator import DistCoordinator, parse_nodes
from repro.dist.node import NodeServer
from repro.dist.wire import recv_frame, send_frame
from repro.runtime import jobspec
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.jobspec import make_job, source_from_name
from repro.runtime.scheduler import BatchScheduler

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12

CIRCUITS = ("xor5", "rd53", "majority", "rd73")


def make_jobs(names=CIRCUITS):
    return [make_job(source_from_name(name)) for name in names]


def stable(rows):
    out = []
    for row in sorted(rows, key=lambda r: r["index"]):
        row = dict(row)
        row["queue_wait_s"] = 0.0
        row["exec_s"] = 0.0
        row["beats"] = 0
        out.append(row)
    return out


def single_host_rows(names=CIRCUITS, cache=None):
    scheduler = BatchScheduler(workers=2, cache=cache, heartbeat_s=0.5)
    return [r.as_dict() for r in scheduler.run(make_jobs(names))]


@pytest.fixture
def two_nodes():
    nodes, threads = [], []
    for _ in range(2):
        srv = NodeServer(port=0, workers=2, heartbeat_s=0.5).start()
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        nodes.append(srv)
        threads.append(thread)
    yield nodes
    for srv in nodes:
        srv.close()
    for thread in threads:
        thread.join(timeout=5.0)


class TestByteIdentity:
    def test_two_nodes_match_single_host(self, two_nodes, tmp_path):
        coordinator = DistCoordinator(
            [(n.host, n.port) for n in two_nodes],
            cache=ResultCache(tmp_path / "dist-cache"))
        rows = coordinator.run(make_jobs())
        assert [r["status"] for r in rows] == ["ok"] * len(CIRCUITS)
        reference = single_host_rows(
            cache=ResultCache(tmp_path / "single-cache"))
        assert json.dumps(stable(rows)) == json.dumps(stable(reference))

    def test_rows_arrive_in_submission_order(self, two_nodes):
        coordinator = DistCoordinator(
            [(n.host, n.port) for n in two_nodes])
        rows = coordinator.run(make_jobs())
        assert [r["index"] for r in rows] == list(range(len(CIRCUITS)))

    def test_warm_second_run_settles_without_nodes(self, two_nodes,
                                                   tmp_path):
        cache = ResultCache(tmp_path / "cache")
        addresses = [(n.host, n.port) for n in two_nodes]
        first = DistCoordinator(addresses, cache=cache)
        first.run(make_jobs())
        for srv in two_nodes:
            srv.close()  # the store alone must carry the second run
        second = DistCoordinator(addresses, cache=cache)
        rows = second.run(make_jobs())
        assert all(r["cache_hit"] for r in rows)
        assert all(r["status"] == "ok" for r in rows)

    def test_event_stream_relayed(self, two_nodes):
        events = []
        lock = threading.Lock()
        coordinator = DistCoordinator(
            [(n.host, n.port) for n in two_nodes])

        def on_event(event):
            with lock:
                events.append(event)

        coordinator.run(make_jobs(("xor5", "rd53")), on_event=on_event)
        kinds = {e.kind for e in events}
        assert "dispatch" in kinds and "result" in kinds
        assert {e.index for e in events} == {0, 1}


class TestStealing:
    def _skewed_names(self, count=4):
        """Benchmark circuits whose cache keys all shard to node 0 of
        2 — computed, not guessed, so the test is deterministic."""
        picked = []
        for name in ("xor5", "rd53", "majority", "rd73", "rd84", "9sym",
                     "con1", "misex1", "squar5", "z4ml"):
            job = make_job(source_from_name(name))
            func = jobspec.build_function(job["source"])
            key = cache_key(func.canonical_key(), job["flow"],
                            job["config"])
            if int(key[:8], 16) % 2 == 0:
                picked.append(name)
            if len(picked) == count:
                return picked
        pytest.skip("fewer than %d circuits shard to node 0" % count)

    def test_idle_node_steals_from_skewed_shard(self, tmp_path):
        names = self._skewed_names()
        nodes = []
        for _ in range(2):
            srv = NodeServer(port=0, workers=1, heartbeat_s=0.5).start()
            threading.Thread(target=srv.serve_forever,
                             daemon=True).start()
            nodes.append(srv)
        try:
            coordinator = DistCoordinator(
                [(n.host, n.port) for n in nodes],
                cache=ResultCache(tmp_path / "cache"))
            rows = coordinator.run(make_jobs(names))
        finally:
            for srv in nodes:
                srv.close()
        # Node 1's shard is empty by construction; its window refill
        # must have stolen from node 0's tail.
        assert coordinator.steals >= 1
        assert all(r["status"] == "ok" for r in rows)
        reference = single_host_rows(
            names, cache=ResultCache(tmp_path / "single-cache"))
        assert json.dumps(stable(rows)) == json.dumps(stable(reference))


def flaky_node(accepted_jobs=1):
    """A fake node that answers hello, swallows ``accepted_jobs`` job
    frames without ever producing rows, then drops the connection —
    the shape of a node dying mid-shard."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    port = sock.getsockname()[1]

    def serve():
        conn, _ = sock.accept()
        try:
            hello = recv_frame(conn)
            assert hello["op"] == "hello"
            send_frame(conn, {"op": "hello", "ok": True, "workers": 2})
            for _ in range(accepted_jobs):
                frame = recv_frame(conn)
                if frame is None:
                    return
        finally:
            conn.close()
            sock.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return ("127.0.0.1", port), thread


class TestNodeLoss:
    def test_mid_run_death_reassigns_and_completes(self, two_nodes,
                                                   tmp_path):
        flaky_addr, thread = flaky_node(accepted_jobs=2)
        real = two_nodes[0]
        # rpc_tries=1 pins the immediate loss ladder (no redial grace);
        # the redial path has its own suite in test_membership.py.
        coordinator = DistCoordinator(
            [flaky_addr, (real.host, real.port)],
            cache=ResultCache(tmp_path / "cache"), rpc_tries=1)
        rows = coordinator.run(make_jobs())
        thread.join(timeout=5.0)
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.node_losses == 1
        assert coordinator.reassigned >= 1
        reference = single_host_rows(
            cache=ResultCache(tmp_path / "single-cache"))
        assert json.dumps(stable(rows)) == json.dumps(stable(reference))

    def test_connect_refused_node_never_counts_as_alive(self, two_nodes,
                                                        tmp_path):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        real = two_nodes[0]
        coordinator = DistCoordinator(
            [("127.0.0.1", dead_port), (real.host, real.port)],
            cache=ResultCache(tmp_path / "cache"),
            connect_timeout_s=2.0)
        rows = coordinator.run(make_jobs())
        assert all(r["status"] == "ok" for r in rows)
        stats = coordinator.stats()
        dead, alive = stats["nodes"]
        assert dead["alive"] is False
        assert alive["executed"] == len(CIRCUITS)

    def test_all_nodes_dead_falls_back_to_local(self, tmp_path):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        coordinator = DistCoordinator(
            [("127.0.0.1", dead_port)],
            cache=ResultCache(tmp_path / "cache"),
            connect_timeout_s=2.0)
        names = ("xor5", "rd53")
        rows = coordinator.run(make_jobs(names))
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.local_fallback_jobs == len(names)
        reference = single_host_rows(
            names, cache=ResultCache(tmp_path / "single-cache"))
        assert json.dumps(stable(rows)) == json.dumps(stable(reference))


class TestClaims:
    def test_duplicate_result_is_counted_not_recorded_twice(self):
        coordinator = DistCoordinator([("127.0.0.1", 1)])
        coordinator._jobs = [make_job(source_from_name("xor5"))]
        link = coordinator._links[0]
        link.alive = False  # _refill must not touch the dead socket
        seen = []
        coordinator._on_row = seen.append
        row = {"index": 0, "status": "ok"}
        coordinator._claim(link, 0, dict(row))
        coordinator._claim(link, 0, dict(row, status="degraded"))
        assert coordinator.dup_results == 1
        assert len(seen) == 1
        assert coordinator._rows[0]["status"] == "ok"  # first row won


class TestParseNodes:
    def test_happy_path(self):
        assert parse_nodes("a:1, b:2,127.0.0.1:9000") == [
            ("a", 1), ("b", 2), ("127.0.0.1", 9000)]

    def test_default_host(self):
        assert parse_nodes(":7000") == [("127.0.0.1", 7000)]

    @pytest.mark.parametrize("bad", ["", " , ", "hostonly", "h:porty",
                                     "h:"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_nodes(bad)
