"""Integration tests across the whole stack.

These run the complete flows (PLA -> decomposition -> CLBs; function ->
gates) end-to-end on realistic inputs and verify functional equivalence
and feasibility invariants.
"""

import random

import pytest

from repro import BDD, MultiFunction, map_to_xc3000, \
    synthesize_two_input_gates
from repro.arith.adders import adder_function
from repro.bench.registry import benchmark
from repro.boolfunc.pla import parse_pla, write_pla
from repro.boolfunc.blif import parse_blif
from repro.mapping.clb import merge_luts_xc3000


def exhaustive_check(func, net):
    n = func.num_inputs
    for k in range(1 << n):
        bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
        expected = func.eval(dict(zip(func.inputs, bits)))
        got = net.eval_outputs(dict(zip(func.input_names, bits)))
        for name, value in zip(func.output_names, expected):
            if value is not None:
                assert got[name] == value


class TestPlaToClbFlow:
    PLA = """\
.i 6
.o 3
.ilb a b c d e f
.ob x y z
111--- 100
--1111 010
1----1 001
0-0-0- 11-
.e
"""

    def test_full_flow(self):
        func = parse_pla(self.PLA)
        result = map_to_xc3000(func)
        assert result.network.max_fanin() <= 5
        exhaustive_check(func, result.network)

    def test_pla_roundtrip_then_map(self):
        func = parse_pla(self.PLA)
        func2 = parse_pla(write_pla(func))
        result = map_to_xc3000(func2)
        exhaustive_check(func2, result.network)

    def test_blif_export_reimport(self):
        func = parse_pla(self.PLA)
        result = map_to_xc3000(func)
        text = result.network.to_blif()
        reparsed = parse_blif(text)
        n = func.num_inputs
        for k in range(1 << n):
            bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
            original = func.eval(dict(zip(func.inputs, bits)))
            rep = reparsed.eval(dict(zip(reparsed.inputs, bits)))
            for j, value in enumerate(original):
                if value is not None:
                    assert rep[j] == value


class TestBenchmarkFlows:
    @pytest.mark.parametrize("name", ["rd73", "z4ml", "9sym", "clip"])
    def test_exact_benchmarks_both_modes(self, name):
        func = benchmark(name)
        for dc in (True, False):
            result = map_to_xc3000(func, use_dontcares=dc)
            exhaustive_check(func, result.network)
            clbs = merge_luts_xc3000(result.network)
            assert len(clbs) == result.clb_count

    def test_synthetic_benchmark_sampled(self):
        func = benchmark("misex1")
        result = map_to_xc3000(func)
        exhaustive_check(func, result.network)


class TestGateFlow:
    def test_adder_gates_exhaustive(self):
        n = 3
        func = adder_function(n)
        net = synthesize_two_input_gates(func)
        for x in range(1 << n):
            for y in range(1 << n):
                bits = {f"x{i}": (x >> i) & 1 for i in range(n)}
                bits.update({f"y{i}": (y >> i) & 1 for i in range(n)})
                out = net.eval_outputs(bits)
                got = sum(out[f"s{i}"] << i for i in range(n + 1))
                assert got == x + y

    def test_gate_counts_reasonable(self):
        func = adder_function(4)
        net = synthesize_two_input_gates(func)
        # A 4-bit adder fits comfortably under 40 two-input gates.
        assert net.gate_count <= 40


class TestIncompleteSpecFlow:
    def test_dc_heavy_function(self):
        # A function specified on only a quarter of the input space: the
        # DC machinery has maximal freedom and must still produce a
        # network consistent with the spec.
        bdd = BDD(6)
        rng = random.Random(314)
        spec = [rng.randint(0, 1) if k % 4 == 0 else None
                for k in range(64)]
        onset = [1 if v == 1 else 0 for v in spec]
        dcset = [1 if v is None else 0 for v in spec]
        func = MultiFunction.from_truth_tables(
            bdd, list(range(6)), [onset], dc_tables=[dcset])
        result = map_to_xc3000(func)
        exhaustive_check(func, result.network)
        # With this much freedom the function should be tiny.
        assert result.lut_count <= 4

    def test_dc_mode_beats_or_ties_completion(self):
        # Statistically the DC flow should not lose to naive 0-completion
        # on DC-rich functions; assert over a small ensemble.
        wins = ties = losses = 0
        for seed in range(6):
            bdd = BDD(6)
            rng = random.Random(1000 + seed)
            spec = [rng.randint(0, 1) if rng.random() < 0.5 else None
                    for k in range(64)]
            onset = [1 if v == 1 else 0 for v in spec]
            dcset = [1 if v is None else 0 for v in spec]
            func = MultiFunction.from_truth_tables(
                bdd, list(range(6)), [onset], dc_tables=[dcset])
            a = map_to_xc3000(func, use_dontcares=True).lut_count
            b = map_to_xc3000(func, use_dontcares=False).lut_count
            if a < b:
                wins += 1
            elif a == b:
                ties += 1
            else:
                losses += 1
        assert wins + ties >= losses
