"""Tests for multiplier generators."""

import random

import pytest

from repro.arith.multipliers import (
    multiplier_function,
    partial_multiplier_function,
    wallace_tree_multiplier,
)


class TestPartialMultiplier:
    @pytest.mark.parametrize("n", [2, 3])
    def test_matches_sum_of_matrix(self, n):
        mf = partial_multiplier_function(n)
        rng = random.Random(239)
        for _ in range(100):
            matrix = [[rng.randint(0, 1) for _ in range(n)]
                      for _ in range(n)]
            bits = {}
            idx = 0
            for i in range(n):
                for j in range(n):
                    bits[mf.inputs[idx]] = matrix[i][j]
                    idx += 1
            expected = sum(matrix[i][j] << (i + j)
                           for i in range(n) for j in range(n))
            values = mf.eval(bits)
            got = sum(values[w] << w for w in range(2 * n))
            assert got == expected

    def test_pm4_signature(self):
        mf = partial_multiplier_function(4)
        assert mf.num_inputs == 16
        assert mf.num_outputs == 8

    def test_consistent_with_multiplier(self):
        # Feeding p_ij = a_i & b_j must reproduce a * b.
        n = 3
        pm = partial_multiplier_function(n)
        for a in range(1 << n):
            for b in range(1 << n):
                bits = {}
                idx = 0
                for i in range(n):
                    for j in range(n):
                        bits[pm.inputs[idx]] = ((a >> i) & 1) & ((b >> j) & 1)
                        idx += 1
                values = pm.eval(bits)
                got = sum(values[w] << w for w in range(2 * n))
                assert got == a * b

    def test_rejects_one(self):
        with pytest.raises(ValueError):
            partial_multiplier_function(1)


class TestMultiplierFunction:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_exhaustive(self, n):
        mf = multiplier_function(n)
        for a in range(1 << n):
            for b in range(1 << n):
                bits = {}
                for i in range(n):
                    bits[mf.inputs[i]] = (a >> i) & 1
                    bits[mf.inputs[n + i]] = (b >> i) & 1
                values = mf.eval(bits)
                got = sum(values[w] << w for w in range(2 * n))
                assert got == a * b


class TestWallace:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_correct(self, n):
        net = wallace_tree_multiplier(n)
        rng = random.Random(241)
        for _ in range(150):
            a = rng.randrange(1 << n)
            b = rng.randrange(1 << n)
            bits = {f"a{i}": (a >> i) & 1 for i in range(n)}
            bits.update({f"b{i}": (b >> i) & 1 for i in range(n)})
            out = net.eval_outputs(bits)
            got = sum(out[f"r{w}"] << w for w in range(2 * n))
            assert got == a * b

    def test_from_partial_products(self):
        n = 3
        net = wallace_tree_multiplier(n, from_partial_products=True)
        rng = random.Random(251)
        for _ in range(100):
            matrix = {(i, j): rng.randint(0, 1)
                      for i in range(n) for j in range(n)}
            bits = {f"p{i}_{j}": matrix[i, j]
                    for i in range(n) for j in range(n)}
            out = net.eval_outputs(bits)
            got = sum(out[f"r{w}"] << w for w in range(2 * n))
            expected = sum(v << (i + j) for (i, j), v in matrix.items())
            assert got == expected

    def test_gate_count_grows_quadratically(self):
        # ~10 n^2 - 20 n per the paper's accounting; check rough shape.
        g4 = wallace_tree_multiplier(4).gate_count
        g8 = wallace_tree_multiplier(8).gate_count
        assert 3.0 < g8 / g4 < 5.5  # quadratic-ish growth

    def test_log_depth(self):
        d4 = wallace_tree_multiplier(4).depth()
        d8 = wallace_tree_multiplier(8).depth()
        assert d8 < 2 * d4
