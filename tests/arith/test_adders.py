"""Tests for adder generators."""

import random

import pytest

from repro.arith.adders import (
    adder_function,
    conditional_sum_adder,
    ripple_carry_adder,
)


def eval_adder_function(mf, n, x, y, cin=None):
    bits = {}
    for i in range(n):
        bits[mf.inputs[i]] = (x >> i) & 1
        bits[mf.inputs[n + i]] = (y >> i) & 1
    if cin is not None:
        bits[mf.inputs[2 * n]] = cin
    values = mf.eval(bits)
    return sum(values[i] << i for i in range(n + 1))


def eval_gate_adder(net, n, x, y):
    a = {f"x{i}": (x >> i) & 1 for i in range(n)}
    a.update({f"y{i}": (y >> i) & 1 for i in range(n)})
    out = net.eval_outputs(a)
    return sum(out[f"s{i}"] << i for i in range(n + 1))


class TestAdderFunction:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_exhaustive(self, n):
        mf = adder_function(n)
        for x in range(1 << n):
            for y in range(1 << n):
                assert eval_adder_function(mf, n, x, y) == x + y

    def test_carry_in(self):
        mf = adder_function(3, carry_in=True)
        for x in range(8):
            for y in range(8):
                for c in (0, 1):
                    assert eval_adder_function(mf, 3, x, y, c) == x + y + c

    def test_wide_adder_random(self):
        mf = adder_function(12)
        rng = random.Random(227)
        for _ in range(50):
            x = rng.randrange(1 << 12)
            y = rng.randrange(1 << 12)
            assert eval_adder_function(mf, 12, x, y) == x + y

    def test_names(self):
        mf = adder_function(2)
        assert mf.input_names == ["x0", "x1", "y0", "y1"]
        assert mf.output_names == ["s0", "s1", "s2"]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            adder_function(0)


class TestRipple:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_correct(self, n):
        net = ripple_carry_adder(n)
        rng = random.Random(229)
        for _ in range(100):
            x = rng.randrange(1 << n)
            y = rng.randrange(1 << n)
            assert eval_gate_adder(net, n, x, y) == x + y

    def test_gate_count_formula(self):
        # half adder (2) + (n-1) full adders (5 each).
        for n in (2, 4, 8):
            net = ripple_carry_adder(n)
            assert net.gate_count == 5 * n - 3


class TestConditionalSum:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8])
    def test_correct(self, n):
        net = conditional_sum_adder(n)
        rng = random.Random(233)
        for _ in range(150):
            x = rng.randrange(1 << n)
            y = rng.randrange(1 << n)
            assert eval_gate_adder(net, n, x, y) == x + y

    def test_log_depth(self):
        # Depth grows logarithmically, unlike ripple.
        d8 = conditional_sum_adder(8).depth()
        d16 = conditional_sum_adder(16).depth()
        assert d16 <= d8 + 3
        assert ripple_carry_adder(16).depth() > d16

    def test_eight_bit_count_near_paper(self):
        # The paper quotes 90 two-input gates for the 8-bit
        # conditional-sum adder; our construction (with standard local
        # optimisations) lands in the same region.
        net = conditional_sum_adder(8)
        assert 60 <= net.gate_count <= 100

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            conditional_sum_adder(0)


class TestConditionalSumAddCore:
    def test_signal_level_reuse(self):
        """The extracted conditional_sum_add works on arbitrary signals
        (the Wallace final stage relies on this)."""
        from repro.arith.adders import conditional_sum_add
        from repro.mapping.gatelevel import GateNetwork
        import random
        net = GateNetwork()
        xs = [(net.add_input(f"p{i}"), False) for i in range(5)]
        ys = [(net.add_input(f"q{i}"), False) for i in range(5)]
        sums = conditional_sum_add(net, xs, ys)
        assert len(sums) == 6
        rng = random.Random(787)
        for _ in range(100):
            a = rng.randrange(32)
            b = rng.randrange(32)
            bits = {f"p{i}": (a >> i) & 1 for i in range(5)}
            bits.update({f"q{i}": (b >> i) & 1 for i in range(5)})
            values = net.evaluate(bits)
            total = 0
            for i, (sig, neg) in enumerate(sums):
                bit = values[sig] ^ (1 if neg else 0)
                total |= bit << i
            assert total == a + b

    def test_rejects_mismatched_width(self):
        from repro.arith.adders import conditional_sum_add
        from repro.mapping.gatelevel import GateNetwork
        net = GateNetwork()
        a = (net.add_input("a"), False)
        b = (net.add_input("b"), False)
        with pytest.raises(ValueError):
            conditional_sum_add(net, [a], [b, b])
        with pytest.raises(ValueError):
            conditional_sum_add(net, [], [])
