"""Tests for BDD prime generation and exact two-level minimisation."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.twolevel.cubes import PCover, PCube
from repro.twolevel.espresso import espresso
from repro.twolevel.primes import all_primes, essential_primes, \
    exact_minimize


def brute_force_primes(table, n):
    """Reference: enumerate all implicant cubes, keep the maximal ones."""
    cubes = []
    for pattern in itertools.product("01-", repeat=n):
        cube = PCube.from_string("".join(pattern))
        covered = [m for m in range(1 << n) if cube.covers_minterm(m)]
        if covered and all(table[m] for m in covered):
            cubes.append(cube)
    primes = []
    for c in cubes:
        if not any(o.contains(c) and o.bits != c.bits for o in cubes):
            primes.append(c)
    return {c.bits for c in primes}


class TestAllPrimes:
    def test_matches_bruteforce(self):
        rng = random.Random(739)
        for _ in range(20):
            n = 4
            table = [rng.randint(0, 1) for _ in range(16)]
            bdd = BDD(n)
            f = bdd.from_truth_table(table, list(range(n)))
            got = all_primes(bdd, f, list(range(n)))
            assert {c.bits for c in got.cubes} == \
                brute_force_primes(table, n)

    def test_constants(self):
        bdd = BDD(3)
        assert len(all_primes(bdd, BDD.FALSE, [0, 1, 2])) == 0
        taut = all_primes(bdd, BDD.TRUE, [0, 1, 2])
        assert len(taut) == 1
        assert str(taut.cubes[0]) == "---"

    def test_xor_primes(self):
        bdd = BDD(2)
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        primes = all_primes(bdd, f, [0, 1])
        assert {str(c) for c in primes.cubes} == {"01", "10"}

    def test_extra_support_rejected(self):
        bdd = BDD(3)
        f = bdd.var(2)
        with pytest.raises(ValueError):
            all_primes(bdd, f, [0, 1])


class TestEssentialPrimes:
    def test_known_example(self):
        # f = x0x1 + x1x2 + x0'x2' : classic — x0x1... compute directly.
        bdd = BDD(3)
        f = bdd.disjoin([
            bdd.apply_and(bdd.var(0), bdd.var(1)),
            bdd.apply_and(bdd.var(1), bdd.var(2)),
            bdd.apply_and(bdd.nvar(0), bdd.nvar(2)),
        ])
        primes = all_primes(bdd, f, [0, 1, 2])
        ess = essential_primes(bdd, f, [0, 1, 2], primes)
        # Essentials must be a subset of the primes and cover something
        # uniquely.
        assert 0 < len(ess) <= len(primes)

    def test_all_essential_for_xor(self):
        bdd = BDD(2)
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        ess = essential_primes(bdd, f, [0, 1])
        assert len(ess) == 2


class TestExactMinimize:
    def test_exact_is_a_cover(self):
        rng = random.Random(743)
        for _ in range(15):
            n = 4
            table = [rng.randint(0, 1) for _ in range(16)]
            if not any(table):
                continue
            bdd = BDD(n)
            f = bdd.from_truth_table(table, list(range(n)))
            cover = exact_minimize(bdd, f, BDD.FALSE, list(range(n)))
            assert cover is not None
            for m in range(16):
                assert cover.covers_minterm(m) == bool(table[m])

    def test_exact_at_most_espresso(self):
        rng = random.Random(751)
        worse = 0
        for _ in range(15):
            n = 4
            minterms = [m for m in range(16) if rng.random() < 0.45]
            if not minterms:
                continue
            bdd = BDD(n)
            f = bdd.disjoin([
                bdd.cube({v: (m >> (n - 1 - v)) & 1 for v in range(n)})
                for m in minterms])
            exact = exact_minimize(bdd, f, BDD.FALSE, list(range(n)))
            heuristic = espresso(PCover.from_minterms(minterms, n))
            assert exact is not None
            assert len(exact) <= len(heuristic)
            if len(exact) < len(heuristic):
                worse += 1
        # espresso should be near-exact on these sizes.
        assert worse <= 5

    def test_with_dontcares(self):
        bdd = BDD(3)
        onset = bdd.cube({0: 0, 1: 0, 2: 0})
        dc = bdd.apply_not(onset)  # everything else DC
        cover = exact_minimize(bdd, onset, dc, [0, 1, 2])
        assert len(cover) == 1
        assert str(cover.cubes[0]) == "---"

    def test_node_limit(self):
        bdd = BDD(4)
        rng = random.Random(757)
        table = [rng.randint(0, 1) for _ in range(16)]
        f = bdd.from_truth_table(table, [0, 1, 2, 3])
        assert exact_minimize(bdd, f, BDD.FALSE, [0, 1, 2, 3],
                              node_limit=0) is None
