"""Tests for multi-output minimisation with cube sharing."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.twolevel.cubes import PCover
from repro.twolevel.multi_output import (
    MOCover,
    minimize_multi,
    minimize_multifunction,
)


class TestMinimizeMulti:
    def test_shared_cube(self):
        # Both outputs contain the term x0&x1; it must be realised once.
        on0 = PCover.from_strings(["11-", "0-1"])
        on1 = PCover.from_strings(["11-", "1-0"])
        cover = minimize_multi([on0, on1])
        shared = [mc for mc in cover.cubes if mc.tags == 0b11]
        assert shared, "the common term should carry both output tags"
        # And the cover stays correct.
        for j, onset in enumerate((on0, on1)):
            for m in range(8):
                assert cover.covers_minterm(j, m) == \
                    onset.covers_minterm(m)

    def test_output_tag_raising(self):
        # Output 1's onset strictly contains output 0's cube, so the
        # cube can be shared even though output 1 never listed it.
        on0 = PCover.from_strings(["11"])
        on1 = PCover.from_strings(["1-"])
        cover = minimize_multi([on0, on1])
        for j, onset in enumerate((on0, on1)):
            for m in range(4):
                assert cover.covers_minterm(j, m) == \
                    onset.covers_minterm(m)

    def test_random_correctness(self):
        rng = random.Random(499)
        for _ in range(15):
            n = 4
            m = 3
            onsets = []
            for _ in range(m):
                minterms = [k for k in range(16) if rng.random() < 0.4]
                onsets.append(PCover.from_minterms(minterms, n))
            cover = minimize_multi(onsets)
            for j in range(m):
                for k in range(16):
                    assert cover.covers_minterm(j, k) == \
                        onsets[j].covers_minterm(k), (j, k)

    def test_cube_count_not_worse(self):
        rng = random.Random(503)
        for _ in range(10):
            n = 4
            onsets = []
            for _ in range(2):
                minterms = [k for k in range(16) if rng.random() < 0.5]
                onsets.append(PCover.from_minterms(minterms, n))
            total_before = sum(len(o) for o in onsets)
            cover = minimize_multi(onsets)
            assert cover.cube_count() <= total_before

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            minimize_multi([])


class TestMinimizeMultiFunction:
    def test_adder_slice(self):
        bdd = BDD(3)
        func = MultiFunction.from_callable(
            bdd, [0, 1, 2], 2,
            lambda a, b, c: [(a + b + c) & 1, (a + b + c) >> 1])
        cover = minimize_multifunction(func)
        for j in range(2):
            for k in range(8):
                bits = [(k >> (2 - i)) & 1 for i in range(3)]
                expected = func.eval(dict(zip(func.inputs, bits)))[j]
                assert cover.covers_minterm(j, k) == bool(expected)

    def test_sharing_beats_separate(self):
        # Two outputs that are near-duplicates: the shared cover should
        # use far fewer than 2x the cubes.
        bdd = BDD(4)
        table = [1 if bin(k).count("1") >= 2 else 0 for k in range(16)]
        table2 = list(table)
        func = MultiFunction.from_truth_tables(bdd, [0, 1, 2, 3],
                                               [table, table2])
        cover = minimize_multifunction(func)
        singles = sum(1 for mc in cover.cubes if mc.tags != 0b11)
        assert singles == 0  # fully shared


class TestPlaExport:
    def test_roundtrip_through_parser(self):
        from repro.boolfunc.pla import parse_pla
        on0 = PCover.from_strings(["11-", "0-1"])
        on1 = PCover.from_strings(["11-", "1-0"])
        cover = minimize_multi([on0, on1])
        func = parse_pla(cover.to_pla())
        for j, onset in enumerate((on0, on1)):
            for k in range(8):
                bits = [(k >> (2 - i)) & 1 for i in range(3)]
                got = func.eval(dict(zip(func.inputs, bits)))[j]
                assert got == (1 if onset.covers_minterm(k) else 0)
