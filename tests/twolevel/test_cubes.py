"""Tests for positional-cube algebra."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.twolevel.cubes import PCover, PCube


class TestPCube:
    def test_parse_and_str(self):
        cube = PCube.from_string("01-")
        assert str(cube) == "01-"
        assert cube.field(0) == 0b01
        assert cube.field(1) == 0b10
        assert cube.field(2) == 0b11

    def test_bad_literal(self):
        with pytest.raises(ValueError):
            PCube.from_string("0x1")

    def test_full(self):
        assert str(PCube.full(4)) == "----"

    def test_minterm(self):
        cube = PCube.from_minterm(0b101, 3)
        assert str(cube) == "101"

    def test_covers_minterm(self):
        cube = PCube.from_string("1-0")
        assert cube.covers_minterm(0b100)
        assert cube.covers_minterm(0b110)
        assert not cube.covers_minterm(0b101)

    def test_intersect(self):
        a = PCube.from_string("1--")
        b = PCube.from_string("-0-")
        both = a.intersect(b)
        assert str(both) == "10-"
        c = PCube.from_string("0--")
        assert a.intersect(c) is None

    def test_contains(self):
        big = PCube.from_string("1--")
        small = PCube.from_string("101")
        assert big.contains(small)
        assert not small.contains(big)
        assert big.contains(big)

    def test_cofactor(self):
        cover_cube = PCube.from_string("1-1")
        against = PCube.from_string("1--")
        cf = cover_cube.cofactor(against)
        assert str(cf) == "--1"
        disjoint = PCube.from_string("0--")
        assert cover_cube.cofactor(disjoint) is None

    def test_supercube(self):
        a = PCube.from_string("10-")
        b = PCube.from_string("11-")
        assert str(a.supercube(b)) == "1--"

    def test_literals(self):
        cube = PCube.from_string("0-1")
        assert list(cube.literals()) == [(0, 0), (2, 1)]
        assert cube.num_literals == 2


class TestTautology:
    def test_universal(self):
        assert PCover.from_strings(["---"]).is_tautology()

    def test_complementary_pair(self):
        assert PCover.from_strings(["0--", "1--"]).is_tautology()

    def test_not_tautology(self):
        assert not PCover.from_strings(["0--", "10-"]).is_tautology()

    def test_empty_cover(self):
        assert not PCover(3, []).is_tautology()

    def test_full_minterm_cover(self):
        cover = PCover.from_minterms(range(8), 3)
        assert cover.is_tautology()

    def test_matches_bruteforce(self):
        rng = random.Random(467)
        for _ in range(40):
            rows = []
            for _ in range(rng.randint(1, 6)):
                rows.append("".join(rng.choice("01-") for _ in range(4)))
            cover = PCover.from_strings(rows)
            expected = all(cover.covers_minterm(m) for m in range(16))
            assert cover.is_tautology() == expected

    def test_covers_cube(self):
        cover = PCover.from_strings(["1--", "01-"])
        assert cover.covers_cube(PCube.from_string("1-1"))
        assert not cover.covers_cube(PCube.from_string("0--"))


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.text(alphabet="01-", min_size=4, max_size=4), min_size=1,
    max_size=6))
def test_tautology_property(rows):
    cover = PCover.from_strings(rows)
    expected = all(cover.covers_minterm(m) for m in range(16))
    assert cover.is_tautology() == expected
