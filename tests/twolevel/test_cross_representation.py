"""Differential tests: cube covers vs BDDs.

The two function representations in the repository must agree — cube
covers are converted to BDDs and compared canonically against the
reference function.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.twolevel.cubes import PCover, PCube
from repro.twolevel.espresso import espresso


def cover_to_bdd(bdd: BDD, cover: PCover, variables) -> int:
    result = BDD.FALSE
    for cube in cover:
        term = BDD.TRUE
        for var, value in cube.literals():
            lit = bdd.var(variables[var]) if value \
                else bdd.nvar(variables[var])
            term = bdd.apply_and(term, lit)
        result = bdd.apply_or(result, term)
    return result


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=15), min_size=1))
def test_minimised_cover_equals_onset_bdd(onset_minterms):
    bdd = BDD(4)
    onset = PCover.from_minterms(sorted(onset_minterms), 4)
    minimised = espresso(onset)
    reference = bdd.disjoin([
        bdd.cube({v: (m >> (3 - v)) & 1 for v in range(4)})
        for m in onset_minterms])
    assert cover_to_bdd(bdd, minimised, list(range(4))) == reference


@settings(max_examples=25, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=15), min_size=1),
       st.sets(st.integers(min_value=0, max_value=15)))
def test_minimised_cover_within_interval(onset_raw, dc_raw):
    """With DCs, the minimised cover must be an extension: it contains
    the onset and avoids the offset."""
    bdd = BDD(4)
    dc_minterms = dc_raw - onset_raw
    onset = PCover.from_minterms(sorted(onset_raw), 4)
    dc = PCover.from_minterms(sorted(dc_minterms), 4)
    minimised = espresso(onset, dc)
    got = cover_to_bdd(bdd, minimised, list(range(4)))
    lo = bdd.disjoin([bdd.cube({v: (m >> (3 - v)) & 1
                                for v in range(4)})
                      for m in onset_raw])
    hi = bdd.apply_or(lo, bdd.disjoin([
        bdd.cube({v: (m >> (3 - v)) & 1 for v in range(4)})
        for m in dc_minterms]))
    assert bdd.leq(lo, got)
    assert bdd.leq(got, hi)


def test_cover_primes_are_prime():
    """After espresso, raising any literal of any cube must leave the
    onset+DC (primality — EXPAND's postcondition)."""
    rng = random.Random(661)
    for _ in range(10):
        onset_minterms = {m for m in range(16) if rng.random() < 0.45}
        if not onset_minterms:
            continue
        onset = PCover.from_minterms(sorted(onset_minterms), 4)
        minimised = espresso(onset)
        care = PCover(4, list(onset.cubes))
        for cube in minimised:
            for var, _value in cube.literals():
                raised = cube.with_field(var, 0b11)
                assert not care.covers_cube(raised), (
                    f"cube {cube} is not prime (can raise x{var})")
