"""Tests for cover complementation and the sharp operation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.twolevel.complement import complement, sharp
from repro.twolevel.cubes import PCover, PCube


class TestComplement:
    def test_empty_cover(self):
        comp = complement(PCover(3, []))
        assert comp.is_tautology()

    def test_universal_cover(self):
        comp = complement(PCover.from_strings(["---"]))
        assert len(comp) == 0

    def test_single_cube(self):
        comp = complement(PCover.from_strings(["11-"]))
        for m in range(8):
            covered = PCube.from_string("11-").covers_minterm(m)
            assert comp.covers_minterm(m) == (not covered)

    def test_matches_bruteforce(self):
        rng = random.Random(727)
        for _ in range(30):
            rows = ["".join(rng.choice("01-") for _ in range(4))
                    for _ in range(rng.randint(1, 5))]
            cover = PCover.from_strings(rows)
            comp = complement(cover)
            for m in range(16):
                assert comp.covers_minterm(m) == \
                    (not cover.covers_minterm(m)), (rows, m)

    def test_double_complement_same_function(self):
        rng = random.Random(733)
        for _ in range(10):
            rows = ["".join(rng.choice("01-") for _ in range(4))
                    for _ in range(rng.randint(1, 4))]
            cover = PCover.from_strings(rows)
            double = complement(complement(cover))
            for m in range(16):
                assert double.covers_minterm(m) == \
                    cover.covers_minterm(m)


class TestSharp:
    def test_sharp_semantics(self):
        a = PCover.from_strings(["1--"])
        b = PCover.from_strings(["11-"])
        result = sharp(a, b)
        for m in range(8):
            expected = a.covers_minterm(m) and not b.covers_minterm(m)
            assert result.covers_minterm(m) == expected

    def test_sharp_with_self_is_empty(self):
        a = PCover.from_strings(["1-0", "01-"])
        result = sharp(a, a)
        assert all(not result.covers_minterm(m) for m in range(8))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.text(alphabet="01-", min_size=4, max_size=4),
                min_size=1, max_size=5))
def test_complement_property(rows):
    cover = PCover.from_strings(rows)
    comp = complement(cover)
    for m in range(16):
        assert comp.covers_minterm(m) != cover.covers_minterm(m)
