"""Tests for the espresso-style minimiser."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.twolevel.cubes import PCover, PCube
from repro.twolevel.espresso import espresso, minimize_function


def cover_equals_on_care(original_on, dc_minterms, result, n):
    """result must cover exactly the onset over the care set."""
    dc = set(dc_minterms)
    for m in range(1 << n):
        if m in dc:
            continue
        expected = m in original_on
        if result.covers_minterm(m) != expected:
            return False
    return True


class TestEspresso:
    def test_classic_merge(self):
        # 0-1 and 1-1 merge to --1 ... here: minterms of x2: all four
        # cubes with x2=1 collapse into one.
        onset = PCover.from_minterms([0b001, 0b011, 0b101, 0b111], 3)
        result = espresso(onset)
        assert len(result) == 1
        assert str(result.cubes[0]) == "--1"

    def test_already_minimal(self):
        onset = PCover.from_strings(["01-", "10-"])
        result = espresso(onset)
        assert len(result) == 2

    def test_dc_enables_merge(self):
        # onset {00}, dc {01, 10, 11} over two vars: one universal cube.
        onset = PCover.from_minterms([0b00], 2)
        dc = PCover.from_minterms([0b01, 0b10, 0b11], 2)
        result = espresso(onset, dc)
        assert len(result) == 1
        assert str(result.cubes[0]) == "--"

    def test_random_functions_stay_correct(self):
        rng = random.Random(479)
        for _ in range(25):
            n = rng.randint(3, 5)
            onset_minterms = {m for m in range(1 << n)
                              if rng.random() < 0.4}
            if not onset_minterms:
                continue
            dc_minterms = {m for m in range(1 << n)
                           if m not in onset_minterms
                           and rng.random() < 0.2}
            onset = PCover.from_minterms(sorted(onset_minterms), n)
            dc = PCover.from_minterms(sorted(dc_minterms), n)
            result = espresso(onset, dc)
            assert len(result) <= len(onset)
            assert cover_equals_on_care(onset_minterms, dc_minterms,
                                        result, n)

    def test_cube_count_decreases_substantially(self):
        # Parity complement-ish structured function: espresso should
        # merge minterm covers well below the minterm count.
        n = 4
        onset_minterms = [m for m in range(16) if m % 4 != 3]
        onset = PCover.from_minterms(onset_minterms, n)
        result = espresso(onset)
        assert len(result) <= 4


class TestMinimizeFunction:
    def test_roundtrip(self):
        bdd = BDD(4)
        rng = random.Random(487)
        table = [rng.randint(0, 1) for _ in range(16)]
        func = MultiFunction.from_truth_tables(bdd, [0, 1, 2, 3],
                                               [table])
        cover = minimize_function(func)
        for m in range(16):
            assert cover.covers_minterm(m) == bool(table[m])

    def test_empty_onset(self):
        bdd = BDD(3)
        func = MultiFunction.from_truth_tables(bdd, [0, 1, 2],
                                               [[0] * 8])
        cover = minimize_function(func)
        assert len(cover) == 0

    def test_with_dontcares(self):
        bdd = BDD(3)
        onset = [1, 0, 0, 0, 0, 0, 0, 0]
        dcset = [0, 1, 1, 1, 1, 1, 1, 0]
        func = MultiFunction.from_truth_tables(bdd, [0, 1, 2], [onset],
                                               dc_tables=[dcset])
        cover = minimize_function(func)
        # minterm 0 must be covered, minterm 7 must not.
        assert cover.covers_minterm(0)
        assert not cover.covers_minterm(7)


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=15), min_size=1),
       st.sets(st.integers(min_value=0, max_value=15)))
def test_espresso_correctness_property(onset_minterms, dc_raw):
    dc_minterms = dc_raw - onset_minterms
    onset = PCover.from_minterms(sorted(onset_minterms), 4)
    dc = PCover.from_minterms(sorted(dc_minterms), 4)
    result = espresso(onset, dc)
    assert cover_equals_on_care(onset_minterms, dc_minterms, result, 4)
    assert len(result) <= len(onset)
