#!/usr/bin/env python
"""End-to-end crash-safety smoke: SIGKILL a journaled batch, resume it.

The scenario the journal exists for:

1. start an 8-job batch with ``--journal``,
2. ``kill -9`` the batch parent once at least 2 jobs have completed
   (and before the batch finishes),
3. ``repro batch --resume <journal>`` — must rerun only the jobs
   without a ``done`` record,
4. the resumed output must be byte-identical to an uninterrupted
   reference run modulo the timing/retry fields
   (``queue_wait_s``/``exec_s``/``retries``/``beats``).

Standalone (CI runs it directly; ``test_kill_resume.py`` wraps it for
pytest).  Exits 0 on success, 1 with a diagnostic on failure.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Small circuits first (so completions land fast), a multi-second one
#: last (so the kill reliably lands mid-batch).
MANIFEST = ("xor5", "rd53", "majority", "misex1",
            "rd73", "rd84", "5xp1", "duke2")

#: Row fields that legitimately differ between runs.
TIMING_FIELDS = ("queue_wait_s", "exec_s", "retries", "beats")


def fail(message, proc=None):
    print(f"FAIL: {message}", file=sys.stderr)
    if proc is not None:
        print(f"--- stdout ---\n{proc.stdout}", file=sys.stderr)
        print(f"--- stderr ---\n{proc.stderr}", file=sys.stderr)
    sys.exit(1)


def batch_env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def batch_cmd(*extra):
    return [sys.executable, "-m", "repro", "batch", "--jobs", "2",
            "--no-cache", *extra]


def count_done(journal):
    try:
        with open(journal) as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return 0
    done = 0
    for line in lines:
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and record.get("kind") == "done":
            done += 1
    return done


def normalize(path):
    rows = []
    for line in open(path):
        row = json.loads(line)
        rows.append(json.dumps(
            {k: v for k, v in row.items() if k not in TIMING_FIELDS},
            sort_keys=True))
    return rows


def main():
    tmp = Path(tempfile.mkdtemp(prefix="repro-kill-resume-"))
    manifest = tmp / "suite.txt"
    manifest.write_text("\n".join(MANIFEST) + "\n")
    journal = tmp / "batch.journal.jsonl"
    resumed_out = tmp / "resumed.jsonl"
    clean_out = tmp / "clean.jsonl"

    # 1. Journaled batch, killed -9 mid-run.
    victim = subprocess.Popen(
        batch_cmd("--manifest", str(manifest), "--journal", str(journal),
                  "--out", str(tmp / "interrupted.jsonl")),
        env=batch_env(), stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    deadline = time.monotonic() + 300
    while count_done(journal) < 2:
        if victim.poll() is not None:
            out, err = victim.communicate()
            fail(f"batch exited (rc={victim.returncode}) before the "
                 f"kill\n--- stdout ---\n{out}\n--- stderr ---\n{err}")
        if time.monotonic() > deadline:
            victim.kill()
            fail("timed out waiting for 2 completed jobs")
        time.sleep(0.05)
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait()
    victim.stdout.close()
    victim.stderr.close()
    survived = count_done(journal)
    if survived >= len(MANIFEST):
        fail(f"kill landed after all {survived} jobs completed — "
             f"the smoke proved nothing; is the machine overloaded?")
    print(f"killed batch parent with {survived}/{len(MANIFEST)} "
          f"job(s) journaled as done")

    # 2. Resume: only the incomplete jobs may rerun.
    resume = subprocess.run(
        batch_cmd("--resume", str(journal), "--out", str(resumed_out)),
        env=batch_env(), capture_output=True, text=True, timeout=300)
    if resume.returncode != 0:
        fail(f"resume exited {resume.returncode}", resume)
    if f"{survived} job(s) already done" not in resume.stdout:
        fail(f"resume did not report {survived} already-done job(s)",
             resume)
    reran = sum(f"] {name}:" in resume.stdout for name in MANIFEST)
    if reran != len(MANIFEST) - survived:
        fail(f"resume reran {reran} job(s), expected "
             f"{len(MANIFEST) - survived}", resume)

    # 3. Uninterrupted reference run.
    clean = subprocess.run(
        batch_cmd("--manifest", str(manifest), "--out", str(clean_out)),
        env=batch_env(), capture_output=True, text=True, timeout=300)
    if clean.returncode != 0:
        fail(f"reference run exited {clean.returncode}", clean)

    # 4. Byte-identical modulo timing fields.
    resumed_rows = normalize(resumed_out)
    clean_rows = normalize(clean_out)
    if resumed_rows != clean_rows:
        for index, (a, b) in enumerate(zip(resumed_rows, clean_rows)):
            if a != b:
                fail(f"row {index} differs after resume:\n"
                     f"resumed: {a}\nclean:   {b}")
        fail(f"row count differs: {len(resumed_rows)} resumed vs "
             f"{len(clean_rows)} clean")

    print(f"kill-resume smoke OK: {survived} journaled row(s) spliced "
          f"verbatim, {len(MANIFEST) - survived} rerun, merged output "
          f"identical to the uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
