"""Containment matrix for the crash-safe-dist fault sites.

Three sites landed with coordinator journaling and dynamic membership,
and each gets every fault kind:

``coord.journal``
    Coordinator-side journal appends (header, start, claim, reassign,
    done).  Any injected failure disables journaling for the rest of
    the run — the batch itself must complete journal-less; a corrupt
    append is skipped (and counted) at load time; a crash leaves a
    loadable journal behind for ``--resume``.

``node.join``
    A node's first registration against the membership listener.  The
    join loop's bounded backoff absorbs every non-crash kind (the
    retry re-registers and the batch completes); the crash kind is a
    real ``os._exit`` in a subprocess joiner.

``node.reconnect``
    The re-registration after a torn session.  Armed together with
    ``node.loss`` so a real session death forces the rejoin path; the
    batch must complete with exactly one row per index whatever the
    rejoin suffers.

Non-crash kinds run in-process (the coordinator, the static node, and
the joiner share the pytest interpreter; the spec's site filter keeps
them apart).  Crash kinds need a sacrificial process: a subprocess
joiner via ``repro dist serve-node --join --inject``, or
``chaos_util.run_python`` for the coordinator.
"""

import os
import queue
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import faults
from repro.dist.coordinator import DistCoordinator
from repro.dist.node import NodeServer
from repro.runtime.jobspec import make_job, source_from_name
from repro.runtime.journal import BatchJournal, load_journal

from tests.faults.chaos_util import REPO_ROOT, run_python

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12

CIRCUITS = ("xor5", "rd53", "majority", "misex1", "rd73", "rd84")
#: The joiner-vs-drain races need real runway: 5xp1 keeps the batch
#: alive well past any injected registration delay or rejoin backoff.
LONG_CIRCUITS = CIRCUITS + ("5xp1",)


def test_new_sites_registered():
    for site in ("coord.journal", "node.join", "node.reconnect"):
        assert site in faults.SITES


def make_jobs(names=CIRCUITS):
    return [make_job(source_from_name(name)) for name in names]


def start_static_node():
    server = NodeServer(port=0, workers=2, heartbeat_s=0.5).start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def start_joiner(address_queue, **node_kw):
    node_kw.setdefault("workers", 2)
    node_kw.setdefault("heartbeat_s", 0.5)
    node_kw.setdefault("join_backoff_s", 0.05)
    node_kw.setdefault("join_tries", 20)
    joiner = NodeServer(**node_kw)
    outcome = {}

    def run():
        try:
            host, port = address_queue.get(timeout=30.0)
        except queue.Empty:
            outcome["clean"] = False
            return
        outcome["clean"] = joiner.serve_join(host, port)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return joiner, thread, outcome


def spawn_subprocess_node(*extra_argv):
    """A subprocess node (clean fault env unless ``--inject`` given)."""
    env = dict(os.environ)
    src = str(Path(REPO_ROOT) / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env.pop(faults.ENV_VAR, None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "dist", "serve-node",
         "--workers", "2", "--heartbeat", "0.5", *extra_argv],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)


def wait_for_line(proc, needle, timeout=30.0):
    deadline = time.monotonic() + timeout
    while True:
        line = proc.stdout.readline()
        if needle in line:
            return line
        if not line or time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError(f"subprocess never printed {needle!r}")


def spawn_accept_node():
    proc = spawn_subprocess_node("--port", "0")
    line = wait_for_line(proc, "node serving on")
    addr = line.split("node serving on", 1)[1].split()[0]
    host, _, port = addr.rpartition(":")
    return proc, (host, int(port))


def terminate(proc):
    proc.terminate()
    try:
        proc.wait(timeout=10.0)
    except subprocess.TimeoutExpired:
        proc.kill()


class TestCoordJournalSite:
    """Journal I/O failure must cost the journal, never the batch."""

    def run_journaled(self, tmp_path):
        static, thread = start_static_node()
        path = str(tmp_path / "dist.jnl")
        jobs = make_jobs(("xor5", "rd53", "majority"))
        journal = BatchJournal.create(path, jobs, site="coord.journal")
        try:
            coordinator = DistCoordinator(
                [(static.host, static.port)], journal=journal)
            rows = coordinator.run(jobs)
        finally:
            journal.close()
            static.close()
            thread.join(timeout=5.0)
        return path, journal, rows

    @pytest.mark.parametrize("kind", ["raise", "oom"])
    def test_append_failure_degrades_to_journal_less(self, tmp_path,
                                                     monkeypatch,
                                                     capsys, kind):
        # nth=2: the header survives, the first dispatch record fails —
        # mid-batch is exactly when losing the journal must not matter.
        monkeypatch.setenv(faults.ENV_VAR, f"coord.journal:{kind}:1:2")
        path, journal, rows = self.run_journaled(tmp_path)
        assert all(r["status"] == "ok" for r in rows)
        assert journal.broken
        assert "journal append failed" in capsys.readouterr().err
        header, done, started, corrupt = load_journal(path)
        assert header is not None
        assert done == {} and corrupt == 0

    def test_corrupt_append_is_skipped_on_load(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "coord.journal:corrupt:1:2")
        # Seed 3 flips a structural character (same shape the
        # journal.append matrix pins), so the record fails to parse.
        monkeypatch.setenv(faults.SEED_ENV, "3")
        path, journal, rows = self.run_journaled(tmp_path)
        assert all(r["status"] == "ok" for r in rows)
        assert not journal.broken
        header, done, started, corrupt = load_journal(path)
        assert corrupt == 1
        # Everything around the poisoned line still loads.
        assert set(done) == {0, 1, 2}

    def test_hang_append_completes(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "coord.journal:hang:1:2")
        monkeypatch.setenv(faults.HANG_ENV, "0.05")
        path, journal, rows = self.run_journaled(tmp_path)
        assert all(r["status"] == "ok" for r in rows)
        _, done, _, corrupt = load_journal(path)
        assert set(done) == {0, 1, 2} and corrupt == 0

    def test_crash_leaves_loadable_journal(self, tmp_path):
        # The coordinator process dies mid-append (here during the
        # reassign burst for an unreachable node); whatever hit the
        # disk first must load, torn tail and all — that is the
        # --resume contract the SIGKILL smoke exercises end to end.
        path = tmp_path / "dist.jnl"
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        code = (
            "from repro.dist.coordinator import DistCoordinator\n"
            "from repro.runtime.jobspec import make_job, "
            "source_from_name\n"
            "from repro.runtime.journal import BatchJournal\n"
            "jobs = [make_job(source_from_name(n)) "
            "for n in ('xor5', 'rd53')]\n"
            f"journal = BatchJournal.create({str(path)!r}, jobs, "
            "site='coord.journal')\n"
            f"coordinator = DistCoordinator([('127.0.0.1', {dead_port})],"
            " rpc_tries=1, connect_timeout_s=2.0, journal=journal)\n"
            "coordinator.run(jobs)\n"
        )
        proc = run_python(code, env_extra={
            faults.ENV_VAR: "coord.journal:crash:1:3"})
        assert proc.returncode == faults.CRASH_EXIT_CODE
        header, done, started, corrupt = load_journal(str(path))
        assert header is not None
        assert done == {}
        assert corrupt <= 1  # at most the torn mid-append line


class TestNodeJoinSite:
    """A poisoned first registration is retried, never fatal to the
    batch (the static node carries it regardless)."""

    def run_with_joiner(self, monkeypatch, spec, hang_s=None):
        monkeypatch.setenv(faults.ENV_VAR, spec)
        if hang_s is not None:
            monkeypatch.setenv(faults.HANG_ENV, str(hang_s))
        static, thread = start_static_node()
        addresses = queue.Queue()
        joiner, jthread, outcome = start_joiner(addresses)
        try:
            coordinator = DistCoordinator(
                [(static.host, static.port)],
                on_listen=lambda h, p: addresses.put((h, p)))
            rows = coordinator.run(make_jobs(LONG_CIRCUITS))
            # Snapshot before delenv: the counters live on the plan
            # armed from the environment.
            fired = faults.counters()
        finally:
            monkeypatch.delenv(faults.ENV_VAR)
            static.close()
            thread.join(timeout=5.0)
            jthread.join(timeout=10.0)
        return coordinator, rows, fired

    @pytest.mark.parametrize("kind", ["raise", "oom"])
    def test_poisoned_join_is_retried(self, monkeypatch, kind):
        coordinator, rows, fired = self.run_with_joiner(
            monkeypatch, f"node.join:{kind}:1:1")
        assert all(r["status"] == "ok" for r in rows)
        # The first attempt burned the fault; the backoff retry joined.
        assert coordinator.joins == 1
        assert fired.get(f"node.join:{kind}") == 1

    def test_corrupt_join_frame_is_refused_then_retried(self,
                                                        monkeypatch):
        monkeypatch.setenv(faults.SEED_ENV, "3")
        coordinator, rows, _ = self.run_with_joiner(
            monkeypatch, "node.join:corrupt:1:1")
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.joins >= 1

    def test_hung_join_delays_but_registers(self, monkeypatch):
        coordinator, rows, _ = self.run_with_joiner(
            monkeypatch, "node.join:hang:1:1", hang_s=0.2)
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.joins == 1

    def test_crash_kills_the_joiner_only(self, tmp_path):
        # The joiner process os._exits mid-registration; the listener
        # (here a bare socket standing in for the coordinator) just
        # sees a dead connection.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        proc = spawn_subprocess_node(
            "--join", f"127.0.0.1:{port}", "--join-tries", "2",
            "--inject", "node.join:crash:1:1")
        try:
            assert proc.wait(timeout=30.0) == faults.CRASH_EXIT_CODE
        finally:
            proc.kill()
            listener.close()


class TestNodeReconnectSite:
    """node.loss tears the joiner's session for real; the armed
    reconnect kind then hits the rejoin itself.  The invariant is one
    row per index, all ok — the static node is the safety net."""

    @pytest.mark.parametrize("kind", ["raise", "oom", "corrupt", "hang"])
    def test_poisoned_rejoin_is_contained(self, monkeypatch, kind):
        static_proc, static_addr = spawn_accept_node()
        spec = f"node.loss:raise:1:1,node.reconnect:{kind}:1:1"
        monkeypatch.setenv(faults.ENV_VAR, spec)
        if kind == "corrupt":
            monkeypatch.setenv(faults.SEED_ENV, "3")
        if kind == "hang":
            monkeypatch.setenv(faults.HANG_ENV, "0.2")
        addresses = queue.Queue()
        joiner, thread, outcome = start_joiner(addresses,
                                               node_id="rejoiner")
        try:
            coordinator = DistCoordinator(
                [static_addr],
                on_listen=lambda h, p: addresses.put((h, p)))
            rows = coordinator.run(make_jobs(LONG_CIRCUITS))
            fired = faults.counters()
        finally:
            monkeypatch.delenv(faults.ENV_VAR)
            terminate(static_proc)
            thread.join(timeout=10.0)
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.joins == 1
        assert sorted(r["index"] for r in rows) == \
            list(range(len(LONG_CIRCUITS)))
        # The session really died and the rejoin really hit the site.
        assert fired.get("node.loss:raise") == 1
        assert fired.get(f"node.reconnect:{kind}", 0) >= 1

    def test_crash_on_rejoin_kills_the_joiner_only(self, tmp_path):
        # Pre-pick the join port so the subprocess joiner can start
        # dialing before the batch does (its interpreter start-up is
        # the slow part); it registers, loses its session to node.loss,
        # then os._exits inside the rejoin.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        join_port = probe.getsockname()[1]
        probe.close()
        proc = spawn_subprocess_node(
            "--join", f"127.0.0.1:{join_port}", "--join-tries", "60",
            "--join-backoff", "0.1", "--node-id", "crash-joiner",
            "--inject", "node.loss:raise:1:1,node.reconnect:crash:1:1")
        wait_for_line(proc, "joining coordinator")
        static, thread = start_static_node()
        try:
            coordinator = DistCoordinator(
                [(static.host, static.port)], join_port=join_port)
            rows = coordinator.run(make_jobs(
                ("xor5", "rd53", "majority", "misex1",
                 "rd73", "rd84", "5xp1", "duke2")))
            assert proc.wait(timeout=60.0) == faults.CRASH_EXIT_CODE
        finally:
            proc.kill()
            static.close()
            thread.join(timeout=5.0)
        assert all(r["status"] == "ok" for r in rows)
        assert coordinator.joins >= 1
        assert sorted(r["index"] for r in rows) == list(range(8))
