#!/usr/bin/env python
"""End-to-end crash-safety smoke for the *distributed* tier: SIGKILL a
journaled 2-node coordinator mid-batch, resume it.

The scenario ``repro batch --nodes --journal`` exists for:

1. start two ``repro dist serve-node`` workers,
2. start an 8-job batch with ``--nodes ... --journal`` and ``kill -9``
   the **coordinator** once at least 2 jobs are journaled done (and
   before the batch finishes) — the nodes survive,
3. ``repro batch --nodes ... --resume <journal>`` — journaled ``done``
   rows are spliced verbatim (no re-execution), only incomplete jobs
   are re-prepared and re-sharded by the same content-stable key hash,
4. under ``--stable-rows`` the resumed merged JSONL must be
   byte-identical (``cmp``) to BOTH an uninterrupted distributed run
   and a single-host run.

Runs ``--no-cache`` throughout: a node that finished a job in the kill
window would otherwise leave a cache entry behind, and the resumed row
would carry ``cache_hit: true`` where the uninterrupted runs executed.

Standalone (CI runs it directly; ``test_dist_kill_resume.py`` wraps it
for pytest).  Exits 0 on success, 1 with a diagnostic on failure.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Small circuits first (so completions land fast), heavier ones last
#: (so the kill reliably lands mid-batch).
MANIFEST = ("xor5", "rd53", "majority", "misex1",
            "rd73", "rd84", "5xp1", "duke2")


def fail(message, proc=None):
    print(f"FAIL: {message}", file=sys.stderr)
    if proc is not None:
        print(f"--- stdout ---\n{proc.stdout}", file=sys.stderr)
        print(f"--- stderr ---\n{proc.stderr}", file=sys.stderr)
    sys.exit(1)


def batch_env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def spawn_node():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "dist", "serve-node",
         "--port", "0", "--workers", "2", "--heartbeat", "0.5"],
        env=batch_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 30.0
    while True:
        line = proc.stdout.readline()
        if "node serving on" in line:
            addr = line.split("node serving on", 1)[1].split()[0]
            return proc, addr
        if not line or time.monotonic() > deadline:
            proc.kill()
            fail("worker node failed to become ready")


def dist_cmd(nodes, *extra):
    return [sys.executable, "-m", "repro", "batch", "--no-cache",
            "--stable-rows", "--nodes", nodes, *extra]


def count_records(journal, kind):
    try:
        with open(journal) as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return 0
    count = 0
    for line in lines:
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and record.get("kind") == kind:
            count += 1
    return count


def main():
    tmp = Path(tempfile.mkdtemp(prefix="repro-dist-kill-resume-"))
    manifest = tmp / "suite.txt"
    manifest.write_text("\n".join(MANIFEST) + "\n")
    journal = tmp / "dist.journal.jsonl"
    resumed_out = tmp / "resumed.jsonl"
    dist_out = tmp / "dist-clean.jsonl"
    single_out = tmp / "single.jsonl"

    node_a, addr_a = spawn_node()
    node_b, addr_b = spawn_node()
    nodes = f"{addr_a},{addr_b}"
    try:
        # 1. Journaled distributed batch, coordinator killed -9 mid-run.
        victim = subprocess.Popen(
            dist_cmd(nodes, "--manifest", str(manifest),
                     "--journal", str(journal),
                     "--out", str(tmp / "interrupted.jsonl")),
            env=batch_env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        deadline = time.monotonic() + 300
        while count_records(journal, "done") < 2:
            if victim.poll() is not None:
                out, err = victim.communicate()
                fail(f"batch exited (rc={victim.returncode}) before "
                     f"the kill\n--- stdout ---\n{out}\n--- stderr ---"
                     f"\n{err}")
            if time.monotonic() > deadline:
                victim.kill()
                fail("timed out waiting for 2 journaled done rows")
            time.sleep(0.05)
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait()
        victim.stdout.close()
        victim.stderr.close()
        survived = count_records(journal, "done")
        claims = count_records(journal, "claim")
        if survived >= len(MANIFEST):
            fail(f"kill landed after all {survived} jobs completed — "
                 f"the smoke proved nothing; is the machine overloaded?")
        if claims < 1:
            fail(f"journal holds no claim records ({survived} done) — "
                 f"the coordinator did not journal its dispatches")
        print(f"killed coordinator with {survived}/{len(MANIFEST)} "
              f"job(s) journaled done, {claims} claim(s) recorded")

        # 2. Resume against the surviving nodes: done rows splice, only
        # the incomplete jobs rerun.
        resume = subprocess.run(
            dist_cmd(nodes, "--resume", str(journal),
                     "--out", str(resumed_out)),
            env=batch_env(), capture_output=True, text=True, timeout=300)
        if resume.returncode != 0:
            fail(f"resume exited {resume.returncode}", resume)
        if f"{survived} job(s) already done" not in resume.stdout:
            fail(f"resume did not report {survived} already-done "
                 f"job(s)", resume)
        reran = sum(f"] {name}:" in resume.stdout for name in MANIFEST)
        if reran != len(MANIFEST) - survived:
            fail(f"resume reran {reran} job(s), expected "
                 f"{len(MANIFEST) - survived}", resume)

        # 3. Uninterrupted distributed reference run.
        clean = subprocess.run(
            dist_cmd(nodes, "--manifest", str(manifest),
                     "--out", str(dist_out)),
            env=batch_env(), capture_output=True, text=True, timeout=300)
        if clean.returncode != 0:
            fail(f"distributed reference exited {clean.returncode}",
                 clean)
    finally:
        for proc in (node_a, node_b):
            proc.terminate()
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()

    # 4. Single-host reference run.
    single = subprocess.run(
        [sys.executable, "-m", "repro", "batch", "--no-cache",
         "--stable-rows", "--jobs", "2", "--manifest", str(manifest),
         "--out", str(single_out)],
        env=batch_env(), capture_output=True, text=True, timeout=300)
    if single.returncode != 0:
        fail(f"single-host reference exited {single.returncode}", single)

    # 5. Byte-identical across all three (--stable-rows zeroed the
    # volatile timing fields, so this is a raw cmp).
    resumed_bytes = resumed_out.read_bytes()
    if resumed_bytes != dist_out.read_bytes():
        fail("resumed output differs from the uninterrupted "
             "distributed run")
    if resumed_bytes != single_out.read_bytes():
        fail("resumed output differs from the single-host run")

    print(f"dist kill-resume smoke OK: {survived} journaled row(s) "
          f"spliced verbatim, {len(MANIFEST) - survived} rerun across "
          f"2 nodes, merged output byte-identical to the uninterrupted "
          f"distributed AND single-host runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
