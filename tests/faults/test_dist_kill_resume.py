"""Pytest wrapper for the distributed kill -9 / resume smoke."""

import subprocess
import sys
from pathlib import Path

from tests.faults.chaos_util import REPO_ROOT


def test_dist_kill_resume_smoke():
    script = (Path(REPO_ROOT) / "tests" / "faults"
              / "dist_kill_resume_smoke.py")
    proc = subprocess.run([sys.executable, str(script)],
                          capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, (
        f"dist kill-resume smoke failed (rc={proc.returncode})\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}")
    assert "dist kill-resume smoke OK" in proc.stdout
