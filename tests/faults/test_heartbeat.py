"""Worker heartbeats: hung vs slow-but-alive discrimination.

A worker beats over the result pipe while its liveness pulse advances
(profiler phase transitions + coarse runtime checkpoints).  The
scheduler kills a worker that goes silent for ``hang_grace_s`` — well
before any wall-clock timeout — but must leave a slow, still-beating
worker alone.
"""

import time

import pytest

from repro.runtime import BatchScheduler, make_job, source_from_name

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12


class TestHangDetection:
    def test_hung_worker_killed_before_timeout(self):
        # The job sleeps 60 s; the wall-clock timeout is 30 s; only the
        # heartbeat grace can end this quickly.
        job = make_job(source_from_name("rd53"), test_hook="hang:60")
        sched = BatchScheduler(workers=1, timeout=30.0, retries=1,
                               heartbeat_s=0.2, hang_grace_s=1.0)
        started = time.monotonic()
        (res,) = sched.run([job])
        assert time.monotonic() - started < 15.0
        assert res.status == "degraded"
        assert res.hung is True
        assert "hung" in res.error and "no heartbeat" in res.error
        assert res.retries == 0  # hangs are deterministic: never retry
        assert res.result["degraded"] is True
        assert res.result["verified"] is True

    def test_slow_but_alive_worker_survives_grace(self):
        # duke2 runs for several seconds — far longer than the grace —
        # but keeps beating, so hang detection must not fire.
        job = make_job(source_from_name("duke2"))
        sched = BatchScheduler(workers=1, retries=0,
                               heartbeat_s=0.1, hang_grace_s=1.5)
        (res,) = sched.run([job])
        assert res.status == "ok"
        assert res.hung is False
        assert res.beats >= 5  # liveness actually flowed
        assert res.result["verified"] is True

    def test_heartbeat_zero_disables_hang_detection(self):
        # With beats off the grace must not fire (everything would look
        # silent); only the wall-clock timeout ends the hang.
        job = make_job(source_from_name("rd53"), test_hook="hang:60")
        sched = BatchScheduler(workers=1, timeout=1.0, retries=0,
                               heartbeat_s=0, hang_grace_s=0.3)
        (res,) = sched.run([job])
        assert res.status == "degraded"
        assert res.hung is False
        assert "timeout" in res.error

    def test_no_grace_means_no_hang_detection(self):
        # hang_grace_s=None (the default): beats are collected but never
        # acted on; the timeout path handles the hang as before.
        job = make_job(source_from_name("rd53"), test_hook="hang:60")
        sched = BatchScheduler(workers=1, timeout=1.0, retries=0,
                               heartbeat_s=0.2)
        (res,) = sched.run([job])
        assert res.status == "degraded"
        assert res.hung is False
        assert "timeout" in res.error


class TestObservability:
    def test_beats_and_hung_surface_in_rows_and_totals(self):
        from repro.runtime import summarize_rows
        jobs = [make_job(source_from_name("xor5")),
                make_job(source_from_name("rd53"), test_hook="hang:60")]
        sched = BatchScheduler(workers=2, retries=0,
                               heartbeat_s=0.2, hang_grace_s=1.0)
        results = sched.run(jobs)
        rows = [r.as_dict() for r in results]
        assert rows[0]["hung"] is False
        assert rows[1]["hung"] is True
        assert all("beats" in row for row in rows)
        totals = summarize_rows(rows)
        assert totals["hung"] == 1
        assert totals["ok"] == 1 and totals["degraded"] == 1
