"""Per-output quarantine inside the decomposition engine.

A containable failure (injected fault, recursion blow-up, memory
exhaustion) during the joint decomposition must never lose the whole
run: the engine re-runs per output, quarantines only the outputs that
still fail onto the verified MUX fallback, and re-verifies every
quarantined cone before returning.
"""

import sys

import pytest

from repro import faults
from repro.bench.registry import benchmark
from repro.core.api import map_to_xc3000
from repro.decomp.recursive import (
    DecompositionEngine,
    _required_recursion_limit,
)
from repro.obs.metrics import run_metrics
from repro.verify.equiv import check_extension


class TestQuarantine:
    def test_transient_fault_recovers_without_quarantine(self,
                                                         monkeypatch):
        # nth=1: the joint run dies once; the per-output rerun is clean,
        # so nothing is quarantined and nothing is degraded.
        monkeypatch.setenv(faults.ENV_VAR, "worker.mid_decomp:raise:1:1")
        func = benchmark("rd53")
        engine = DecompositionEngine()
        net = engine.run(func)
        assert engine.stats.quarantined_outputs == []
        assert engine.profiler.events.get("quarantine_rerun") == 1
        assert engine.profiler.events.get("quarantine_rerun_clean") == 1
        assert engine.stats.fault_metrics == {
            "worker.mid_decomp:raise": 1}
        assert check_extension(func, net)

    def test_persistent_fault_quarantines_every_output(self,
                                                       monkeypatch):
        # prob=1: the per-output reruns die too; every output lands on
        # the (fault-suppressed) MUX fallback and is re-verified.
        monkeypatch.setenv(faults.ENV_VAR, "worker.mid_decomp:raise:1")
        func = benchmark("rd53")
        engine = DecompositionEngine()
        net = engine.run(func)
        assert engine.stats.quarantined_outputs == list(func.output_names)
        for name in func.output_names:
            assert "FaultInjected" in engine.stats.quarantine_errors[name]
        assert check_extension(func, net)
        # Every output still has a realised cone.
        assert set(net.outputs) == set(func.output_names)

    def test_recursion_error_quarantines(self, monkeypatch):
        func = benchmark("rd53")
        engine = DecompositionEngine()

        def blow_up(*args, **kwargs):
            raise RecursionError("maximum recursion depth exceeded")

        monkeypatch.setattr(engine, "_decompose", blow_up)
        net = engine.run(func)
        assert engine.stats.quarantined_outputs == list(func.output_names)
        for error in engine.stats.quarantine_errors.values():
            assert "RecursionError" in error
        assert check_extension(func, net)

    def test_unrelated_exceptions_still_propagate(self, monkeypatch):
        engine = DecompositionEngine()

        def bug(*args, **kwargs):
            raise KeyError("a real bug, not a containable failure")

        monkeypatch.setattr(engine, "_decompose", bug)
        with pytest.raises(KeyError):
            engine.run(benchmark("rd53"))

    def test_sweep_leaves_no_dead_nodes(self, monkeypatch):
        # The aborted joint attempt and per-output retries leave partial
        # LUTs behind; after the sweep every node must be reachable from
        # some output (lut_count is len(nodes), so dead nodes would
        # inflate the reported cost).
        monkeypatch.setenv(faults.ENV_VAR,
                           "worker.mid_decomp:raise:0.4:2")
        func = benchmark("rd73")
        engine = DecompositionEngine()
        net = engine.run(func)
        reachable = set()
        frontier = [sig for sig in net.outputs.values()
                    if sig in net.nodes]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            frontier.extend(f for f in net.nodes[name].fanins
                            if f in net.nodes)
        assert reachable == set(net.nodes)
        assert check_extension(func, net)

    def test_quarantine_surfaces_in_metrics_and_records(self,
                                                        monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker.mid_decomp:raise:1")
        func = benchmark("rd53")
        result = map_to_xc3000(func)
        record = result.to_record()
        assert record["engine"]["quarantined_outputs"] == \
            list(func.output_names)
        doc = run_metrics(command="map", source="rd53",
                          stats=result.stats)
        assert doc["engine"]["quarantined_outputs"] == \
            list(func.output_names)
        assert doc["faults"]["worker.mid_decomp:raise"] >= 1
        report = result.stats.report()
        assert "quarantined" in report


class TestRecursionHeadroom:
    def test_limit_scales_with_vars(self):
        assert _required_recursion_limit(0) == 3000
        assert _required_recursion_limit(16) == 3000 + 200 * 16
        assert (_required_recursion_limit(64)
                > _required_recursion_limit(16))

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECURSION_LIMIT", "7777")
        assert _required_recursion_limit(5) == 7777
        monkeypatch.setenv("REPRO_RECURSION_LIMIT", "10")
        assert _required_recursion_limit(5) == 1000  # floor

    def test_run_raises_and_restores_limit(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECURSION_LIMIT", "50000")
        func = benchmark("xor5")
        engine = DecompositionEngine()
        seen = {}
        orig = engine._fresh_net

        def spy(f):
            seen["limit"] = sys.getrecursionlimit()
            return orig(f)

        monkeypatch.setattr(engine, "_fresh_net", spy)
        before = sys.getrecursionlimit()
        engine.run(func)
        assert seen["limit"] == 50000
        assert sys.getrecursionlimit() == before
