"""Write-ahead journal format and the ``batch --resume`` contract.

The crash-safety story: a journal records jobs as they start and finish,
fsync'd per record, so resuming after a ``kill -9`` reruns only the jobs
without a ``done`` record and splices the recorded rows back verbatim —
the merged output is byte-identical to an uninterrupted run modulo the
timing/retry fields.  (The actual SIGKILL end-to-end smoke lives in
``test_kill_resume.py`` / ``kill_resume_smoke.py``.)
"""

import json

import pytest

from repro.cli import main
from repro.runtime import (
    BatchJournal,
    JournalError,
    journal_binding,
    load_journal,
    make_job,
    source_from_name,
)
from repro.runtime.cache import CACHE_CODE_VERSION

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12

#: Fields that legitimately differ between an interrupted-then-resumed
#: batch and an uninterrupted one (wall-clock and scheduling noise).
TIMING_FIELDS = ("queue_wait_s", "exec_s", "retries", "beats")


def _jobs(*names):
    jobs = [make_job(source_from_name(n)) for n in names]
    for job in jobs:
        job["config"] = {"use_dontcares": True}
    return jobs


def _normalize(rows):
    out = []
    for row in rows:
        row = {k: v for k, v in row.items() if k not in TIMING_FIELDS}
        out.append(json.dumps(row, sort_keys=True))
    return out


class TestJournalFormat:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "b.jsonl")
        jobs = _jobs("rd53", "xor5", "majority")
        journal = BatchJournal.create(path, jobs)
        journal.record_start(0, "rd53", 1)
        journal.record_done(0, {"job_id": "rd53", "status": "ok"})
        journal.record_start(1, "xor5", 1)          # in flight, no done
        journal.close()
        header, done, started, corrupt = load_journal(path)
        assert header["jobs"] == jobs
        assert header["binding"] == journal_binding(jobs)
        assert done == {0: {"job_id": "rd53", "status": "ok"}}
        assert started == {0, 1}
        assert corrupt == 0

    def test_wire_payload_stripped_from_header(self, tmp_path):
        path = str(tmp_path / "b.jsonl")
        jobs = _jobs("rd53")
        jobs[0]["wire"] = {"huge": "derived state"}
        BatchJournal.create(path, jobs).close()
        header, _, _, _ = load_journal(path)
        assert "wire" not in header["jobs"][0]
        # ... and the binding still matches (wire is excluded from it).
        assert header["binding"] == journal_binding(header["jobs"])

    def test_torn_tail_skipped(self, tmp_path):
        path = str(tmp_path / "b.jsonl")
        journal = BatchJournal.create(path, _jobs("rd53"))
        journal.record_done(0, {"status": "ok"})
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "done", "index"')  # died mid-append
        _, done, _, corrupt = load_journal(path)
        assert done == {0: {"status": "ok"}}
        assert corrupt == 1

    def test_unknown_and_malformed_records_counted(self, tmp_path):
        path = str(tmp_path / "b.jsonl")
        journal = BatchJournal.create(path, _jobs("rd53"))
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b'"not a dict"\n')
            handle.write(b'{"kind": "mystery", "index": 0}\n')
            handle.write(b'{"kind": "start", "index": "zero"}\n')
        _, done, started, corrupt = load_journal(path)
        assert done == {} and started == set()
        assert corrupt == 3

    def test_out_of_range_index_dropped(self, tmp_path):
        path = str(tmp_path / "b.jsonl")
        journal = BatchJournal.create(path, _jobs("rd53"))
        journal.record_start(7, "ghost", 1)
        journal.record_done(7, {"status": "ok"})
        journal.close()
        _, done, started, corrupt = load_journal(path)
        assert done == {} and started == set()
        assert corrupt == 1  # the done row; starts are just filtered

    def test_missing_header_refused(self, tmp_path):
        path = tmp_path / "b.jsonl"
        path.write_text('{"kind": "start", "index": 0}\n')
        with pytest.raises(JournalError, match="header"):
            load_journal(str(path))
        path.write_text("")
        with pytest.raises(JournalError, match="empty"):
            load_journal(str(path))

    def test_code_version_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "b.jsonl")
        BatchJournal.create(path, _jobs("rd53")).close()
        with open(path) as handle:
            lines = handle.readlines()
        header = json.loads(lines[0])
        header["code_version"] = "repro-0.0.0/elsewhere"
        with open(path, "w") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.writelines(lines[1:])
        with pytest.raises(JournalError, match="code version"):
            load_journal(path)

    def test_tampered_job_list_refused(self, tmp_path):
        path = str(tmp_path / "b.jsonl")
        BatchJournal.create(path, _jobs("rd53")).close()
        with open(path) as handle:
            lines = handle.readlines()
        header = json.loads(lines[0])
        header["jobs"][0]["config"]["use_dontcares"] = False
        with open(path, "w") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.writelines(lines[1:])
        with pytest.raises(JournalError, match="binding mismatch"):
            load_journal(path)

    def test_binding_covers_code_version(self):
        jobs = _jobs("rd53")
        binding = journal_binding(jobs)
        assert binding == journal_binding([dict(j) for j in jobs])
        assert CACHE_CODE_VERSION  # the binding would change with it
        different = _jobs("xor5")
        assert binding != journal_binding(different)


class TestCliResume:
    def _run(self, argv):
        return main(["batch", "--no-cache"] + argv)

    def test_resume_skips_done_jobs(self, tmp_path, capsys):
        journal = str(tmp_path / "b.jsonl")
        full_out = str(tmp_path / "full.jsonl")
        # Uninterrupted journaled run: the reference output.
        assert self._run(["rd53", "xor5", "majority", "--jobs", "1",
                          "--journal", journal,
                          "--out", full_out]) == 0
        capsys.readouterr()
        # Simulate dying after the first two jobs completed: keep the
        # header, the first two start/done pairs, and a dangling start
        # for the third (it was in flight).
        header, done, started, corrupt = load_journal(journal)
        with open(journal) as handle:
            lines = handle.readlines()
        kept = [lines[0]]
        kept += [line for line in lines[1:]
                 if json.loads(line)["index"] in (0, 1)]
        kept.append(json.dumps({"kind": "start", "index": 2,
                                "job_id": "majority", "attempt": 1})
                    + "\n")
        truncated = str(tmp_path / "partial.jsonl")
        with open(truncated, "w") as handle:
            handle.writelines(kept)
        resumed_out = str(tmp_path / "resumed.jsonl")
        assert self._run(["--resume", truncated,
                          "--out", resumed_out]) == 0
        stdout = capsys.readouterr().out
        assert "2 job(s) already done, 1 in-flight replayed, 1 to run" \
            in stdout
        # Only the in-flight job reran.
        assert "[3/3] majority" in stdout
        assert "[1/3]" not in stdout.split("resuming")[1].split("\n")[1]
        full = [json.loads(l) for l in open(full_out)]
        resumed = [json.loads(l) for l in open(resumed_out)]
        assert _normalize(resumed) == _normalize(full)

    def test_resume_of_complete_journal_runs_nothing(self, tmp_path,
                                                     capsys):
        journal = str(tmp_path / "b.jsonl")
        out1 = str(tmp_path / "a.jsonl")
        out2 = str(tmp_path / "b-out.jsonl")
        assert self._run(["rd53", "xor5", "--journal", journal,
                          "--out", out1]) == 0
        capsys.readouterr()
        assert self._run(["--resume", journal, "--out", out2]) == 0
        stdout = capsys.readouterr().out
        assert "2 job(s) already done, 0 in-flight replayed, 0 to run" \
            in stdout
        # Replayed rows are the journal's rows *verbatim* — timing
        # fields included, because nothing reran.
        assert open(out2).read() == open(out1).read()

    def test_resume_then_another_resume(self, tmp_path, capsys):
        # The resumed run appends its own records to the same journal,
        # so a second resume finds everything done.
        journal = str(tmp_path / "b.jsonl")
        assert self._run(["rd53", "xor5", "--jobs", "1",
                          "--journal", journal]) == 0
        with open(journal) as handle:
            lines = handle.readlines()
        kept = [line for line in lines
                if json.loads(line).get("index") != 1]
        with open(journal, "w") as handle:
            handle.writelines(kept)
        capsys.readouterr()
        assert self._run(["--resume", journal]) == 0
        assert "1 to run" in capsys.readouterr().out
        assert self._run(["--resume", journal]) == 0
        assert "0 to run" in capsys.readouterr().out

    def test_resume_with_matching_manifest_ok(self, tmp_path, capsys):
        journal = str(tmp_path / "b.jsonl")
        manifest = tmp_path / "suite.txt"
        manifest.write_text("rd53\nxor5\n")
        assert self._run(["--manifest", str(manifest),
                          "--journal", journal]) == 0
        capsys.readouterr()
        assert self._run(["--manifest", str(manifest),
                          "--resume", journal]) == 0

    def test_resume_with_different_manifest_refused(self, tmp_path,
                                                    capsys):
        journal = str(tmp_path / "b.jsonl")
        assert self._run(["rd53", "xor5", "--journal", journal]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit,
                           match="does not match the given"):
            self._run(["rd53", "majority", "--resume", journal])

    def test_resume_plus_journal_refused(self, tmp_path):
        journal = str(tmp_path / "b.jsonl")
        assert self._run(["rd53", "--journal", journal]) == 0
        with pytest.raises(SystemExit, match="do not pass --journal"):
            self._run(["--resume", journal, "--journal",
                       str(tmp_path / "other.jsonl")])

    def test_resume_missing_journal_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            self._run(["--resume", str(tmp_path / "nope.jsonl")])

    def test_resume_corrupt_header_is_clean_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        with pytest.raises(SystemExit, match="journal"):
            self._run(["--resume", str(bad)])
