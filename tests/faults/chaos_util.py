"""Helpers for chaos tests that need real process deaths.

``crash`` faults call ``os._exit`` and so cannot be exercised in the
pytest process; :func:`run_python` runs a snippet in a fresh interpreter
with the repo's ``src/`` on ``PYTHONPATH`` and returns the completed
process for exit-code assertions.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_python(code: str, env_extra=None, timeout: float = 120.0):
    """Run ``code`` with ``python -c`` against the repo's ``src`` tree."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-c", code],
        env=env, capture_output=True, text=True, timeout=timeout)
