"""ResultCache under concurrent writers and corrupting chaos.

Two guarantees under test:

* **Atomicity** — concurrent writers (and readers racing them) never
  observe a half-written entry: writes go through a same-directory temp
  file + ``os.replace``, so a reader sees the old entry, the new entry,
  or a miss — never a torn one.
* **Self-healing** — entries poisoned on the way to disk (chaos
  ``cache.write:corrupt`` bit-flips) are detected by the read-side
  validation, dropped, and rebuilt by the next write; no cache failure
  ever escapes to the caller.
"""

import json
import multiprocessing

import pytest

from repro import faults
from repro.faults import FaultPlan, parse_fault_specs
from repro.runtime import ResultCache
from repro.runtime.cache import CACHE_FORMAT_VERSION

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12

KEY = "ee" * 32


def _writer(root, key, payload, rounds):
    cache = ResultCache(root, memory_limit=0)
    for _ in range(rounds):
        cache.put(key, payload)


class TestConcurrentWriters:
    def test_racing_writers_leave_one_valid_entry(self, tmp_path):
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        payloads = [{"writer": 0, "lut_count": 4},
                    {"writer": 1, "lut_count": 4}]
        procs = [ctx.Process(target=_writer,
                             args=(str(tmp_path), KEY, p, 200))
                 for p in payloads]
        for proc in procs:
            proc.start()
        # Read while the writers race: every observation must be a miss
        # or one of the two complete payloads, never a torn mix.
        reader = ResultCache(tmp_path, memory_limit=0)
        observed = set()
        while any(proc.is_alive() for proc in procs):
            got = reader.get(KEY)
            if got is not None:
                assert got in payloads
                observed.add(got["writer"])
        for proc in procs:
            proc.join()
            assert proc.exitcode == 0
        assert reader.get(KEY) in payloads
        assert not list(tmp_path.rglob("*.tmp*"))  # no temp debris
        # Exactly one entry file for the key.
        assert len(list(tmp_path.rglob("*.json"))) == 1

    def test_interleaved_keys_all_land(self, tmp_path):
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        keys = [format(i, "02x") * 32 for i in range(8)]
        procs = [ctx.Process(target=_writer,
                             args=(str(tmp_path), key, {"n": i}, 20))
                 for i, key in enumerate(keys)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
            assert proc.exitcode == 0
        cache = ResultCache(tmp_path, memory_limit=0)
        for i, key in enumerate(keys):
            assert cache.get(key) == {"n": i}
        assert cache.corrupt == 0


class TestCorruptionStress:
    SPEC = "cache.write:corrupt:0.5"
    SEED = 0

    def _predict(self, keys):
        """Replay the deterministic fault stream over the exact bytes the
        cache will write, mirroring the read-side validation — the
        oracle for what each ``get`` must return."""
        plan = FaultPlan(parse_fault_specs(self.SPEC, seed=self.SEED))
        expected = {}
        for i, key in enumerate(keys):
            entry = {"cache_version": CACHE_FORMAT_VERSION, "key": key,
                     "payload": {"n": i}}
            data = json.dumps(entry, separators=(",", ":")).encode()
            data = plan.fire("cache.write", data)
            try:
                loaded = json.loads(data.decode())
            except (ValueError, UnicodeDecodeError):
                expected[key] = None  # detected: dropped on read
                continue
            if (not isinstance(loaded, dict)
                    or loaded.get("cache_version") != CACHE_FORMAT_VERSION
                    or loaded.get("key") != key
                    or not isinstance(loaded.get("payload"), dict)):
                expected[key] = None
            else:
                # Valid JSON with the right shape: the cache trusts it
                # (possibly with a flipped payload bit — entries carry
                # no checksum; the flip shows up here too, so the
                # prediction still matches).
                expected[key] = loaded["payload"]
        return expected

    def test_corrupt_writes_detected_dropped_rebuilt(self, tmp_path,
                                                     monkeypatch):
        keys = [format(i, "02x") * 32 for i in range(24)]
        expected = self._predict(keys)
        monkeypatch.setenv(faults.ENV_VAR, self.SPEC)
        monkeypatch.setenv(faults.SEED_ENV, str(self.SEED))
        faults.reset_in_worker()  # arrival counters from 1, like the oracle
        cache = ResultCache(tmp_path, memory_limit=0)
        for i, key in enumerate(keys):
            cache.put(key, {"n": i})
        assert cache.write_errors == 0  # corrupt writes still "succeed"
        # The chaos run must have actually corrupted a few entries.
        dropped = [k for k in keys if expected[k] is None]
        assert len(dropped) >= 3
        faults.disarm()
        for key in keys:
            assert cache.get(key) == expected[key]  # never raises
        assert cache.corrupt == len(dropped)
        # Poisoned entries were unlinked; rebuild and verify.
        for i, key in enumerate(keys):
            if expected[key] is None:
                assert not cache._path(key).exists()
                cache.put(key, {"n": i})
                assert cache.get(key) == {"n": i}

    def test_read_side_corruption_never_escapes(self, tmp_path,
                                                monkeypatch):
        cache = ResultCache(tmp_path, memory_limit=0)
        for i in range(12):
            cache.put(format(i, "02x") * 32, {"n": i})
        monkeypatch.setenv(faults.ENV_VAR, "cache.read:corrupt:0.5")
        faults.reset_in_worker()
        survivors = 0
        for i in range(12):
            got = cache.get(format(i, "02x") * 32)
            assert got is None or got == {"n": i} or isinstance(got, dict)
            survivors += got is not None
        # Some reads were corrupted-and-dropped, some passed clean.
        assert 0 < survivors < 12
        assert cache.corrupt > 0
