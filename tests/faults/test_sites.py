"""Containment matrix: every fault kind at every fault site.

The contract under test is *containment*, not success: an armed fault
may degrade a job, quarantine an output or skip a cache write, but it
must never crash the batch parent, corrupt a reported result, or leak a
worker process.

Worker-side sites (``worker.start``, ``worker.mid_decomp``,
``kernel.dispatch``, ``bdd.ite``) are exercised end to end through a
real :class:`BatchScheduler` — the fault fires in a forked worker and
the parent's retry/degrade/quarantine machinery absorbs it.  Parent-side
storage sites (``cache.read``, ``cache.write``, ``journal.append``) are
exercised in-process, except the ``crash`` kind which needs a
sacrificial interpreter (see ``chaos_util.run_python``).
"""

import multiprocessing
import time

import pytest

from repro import faults
from repro.runtime import (
    BatchJournal,
    BatchScheduler,
    ResultCache,
    load_journal,
    make_job,
    source_from_name,
)

from tests.faults.chaos_util import run_python

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12

#: Worker-side site -> smallest circuit that actually reaches it.
#: ``kernel.dispatch`` only fires when a bound-set search runs, which
#: xor5/rd53 never need (their outputs fit a single LUT).
WORKER_SITES = {
    "worker.start": "xor5",
    "worker.mid_decomp": "xor5",
    "kernel.dispatch": "rd73",
    "bdd.ite": "xor5",
}

#: Sites where raise/oom faults fire *inside* the engine's quarantine
#: region, so a one-shot fault is absorbed and the job still succeeds.
#: ``bdd.ite``'s first arrival is during the worker's function build —
#: outside the engine — so its containment outcome is a degrade.
QUARANTINED_SITES = ("worker.mid_decomp", "kernel.dispatch")


def _run_one(monkeypatch, site, spec, *, retries=0, timeout=None,
             hang_grace=None, heartbeat=0.2):
    """One job (on the site's trigger circuit) with ``spec`` armed."""
    monkeypatch.setenv(faults.ENV_VAR, spec)
    sched = BatchScheduler(workers=1, retries=retries, timeout=timeout,
                           retry_backoff_s=0.01, heartbeat_s=heartbeat,
                           hang_grace_s=hang_grace)
    results = sched.run(
        [make_job(source_from_name(WORKER_SITES[site]))])
    assert len(results) == 1
    # Containment invariant: no worker outlives the scheduler.
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []
    return results[0]


class TestWorkerSites:
    @pytest.mark.parametrize("site", WORKER_SITES)
    def test_crash_retried_then_degraded(self, monkeypatch, site):
        # nth=1 per attempt (workers re-arm with fresh arrival counters),
        # so every attempt crashes and the retry budget drains.
        res = _run_one(monkeypatch, site, f"{site}:crash:1:1", retries=1)
        assert res.status == "degraded"
        assert res.retries == 1
        assert f"exit code {faults.CRASH_EXIT_CODE}" in res.error
        assert res.result["degraded"] is True
        assert res.result["verified"] is True

    @pytest.mark.parametrize("site", WORKER_SITES)
    def test_raise_contained(self, monkeypatch, site):
        res = _run_one(monkeypatch, site, f"{site}:raise:1:1")
        if site in QUARANTINED_SITES:
            # Inside the engine: quarantined and re-run; with nth=1 the
            # per-output rerun is clean, so the job still succeeds.
            assert res.status == "ok"
        else:
            # Outside the engine: the worker reports the exception and
            # the job degrades (deterministic, no retry).
            assert res.status == "degraded"
            assert "FaultInjected" in res.error
            assert res.retries == 0
        assert res.result["verified"] is True

    @pytest.mark.parametrize("site", WORKER_SITES)
    def test_oom_contained(self, monkeypatch, site):
        res = _run_one(monkeypatch, site, f"{site}:oom:1:1")
        if site in QUARANTINED_SITES:
            assert res.status == "ok"  # engine quarantine absorbed it
        else:
            assert res.status == "degraded"
            assert "MemoryError" in res.error
        assert res.result["verified"] is True

    @pytest.mark.parametrize("site", WORKER_SITES)
    def test_hang_detected_by_heartbeat(self, monkeypatch, site):
        # The hang sleeps well past the grace; detection must come from
        # heartbeat silence, not the (absent) wall-clock timeout.
        monkeypatch.setenv(faults.HANG_ENV, "30")
        started = time.monotonic()
        res = _run_one(monkeypatch, site, f"{site}:hang:1:1",
                       hang_grace=0.75)
        assert time.monotonic() - started < 15.0
        assert res.status == "degraded"
        assert res.hung is True
        assert "hung" in res.error
        assert res.retries == 0  # hangs never retry
        assert res.result["verified"] is True

    @pytest.mark.parametrize("site", WORKER_SITES)
    def test_corrupt_is_noop_without_payload(self, monkeypatch, site):
        # These sites carry no payload; corrupt passes through harmlessly.
        res = _run_one(monkeypatch, site, f"{site}:corrupt:1:1")
        assert res.status == "ok"
        assert res.result["verified"] is True

    def test_always_firing_engine_fault_quarantines_outputs(
            self, monkeypatch):
        # prob=1.0 (not nth): the quarantine rerun hits the fault too,
        # so every output lands on the verified MUX fallback.
        monkeypatch.setenv(faults.ENV_VAR, "worker.mid_decomp:raise:1")
        sched = BatchScheduler(workers=1, retries=0, heartbeat_s=0.2)
        jobs = [make_job(source_from_name("rd53"),
                         config={"verify": True})]
        (res,) = sched.run(jobs)
        assert res.status == "ok"
        quarantined = res.result["engine"]["quarantined_outputs"]
        assert len(quarantined) == 3  # every rd53 output
        assert res.result["verified"] is True


class TestCacheWriteSite:
    KEY = "ab" * 32

    def _cache(self, tmp_path):
        # memory_limit=0 forces every get through the disk path.
        return ResultCache(tmp_path, memory_limit=0)

    @pytest.mark.parametrize("kind", ["raise", "oom"])
    def test_write_failure_counted_and_skipped(self, tmp_path,
                                               monkeypatch, kind):
        cache = self._cache(tmp_path)
        monkeypatch.setenv(faults.ENV_VAR, f"cache.write:{kind}:1:1")
        cache.put(self.KEY, {"lut_count": 4})
        assert cache.write_errors == 1
        assert not list(tmp_path.rglob("*.tmp*"))  # no debris
        assert cache.get(self.KEY) is None         # nothing persisted
        cache.put(self.KEY, {"lut_count": 4})      # nth=1 consumed
        assert cache.get(self.KEY) == {"lut_count": 4}

    def test_corrupt_write_rebuilt_on_read(self, tmp_path, monkeypatch):
        cache = self._cache(tmp_path)
        monkeypatch.setenv(faults.ENV_VAR, "cache.write:corrupt:1:1")
        cache.put(self.KEY, {"lut_count": 4})
        assert cache.write_errors == 0  # the write itself succeeded
        # The persisted bytes are poisoned; the next read must treat
        # them as a miss and drop the entry, never return garbage.
        assert cache.get(self.KEY) is None
        assert cache.corrupt == 1
        assert not cache._path(self.KEY).exists()
        cache.put(self.KEY, {"lut_count": 4})      # rebuild
        assert cache.get(self.KEY) == {"lut_count": 4}

    def test_hang_write_completes(self, tmp_path, monkeypatch):
        cache = self._cache(tmp_path)
        monkeypatch.setenv(faults.ENV_VAR, "cache.write:hang:1:1")
        monkeypatch.setenv(faults.HANG_ENV, "0.05")
        cache.put(self.KEY, {"lut_count": 4})      # slow, not broken
        assert cache.get(self.KEY) == {"lut_count": 4}

    def test_crash_write_kills_process_leaves_no_entry(self, tmp_path):
        code = (
            "from repro.runtime import ResultCache\n"
            f"cache = ResultCache({str(tmp_path)!r}, memory_limit=0)\n"
            f"cache.put({self.KEY!r}, {{'lut_count': 4}})\n"
        )
        proc = run_python(code, env_extra={
            faults.ENV_VAR: "cache.write:crash:1:1"})
        assert proc.returncode == faults.CRASH_EXIT_CODE
        # Died before the atomic replace: no entry, no temp debris.
        cache = self._cache(tmp_path)
        assert cache.get(self.KEY) is None
        assert not list(tmp_path.rglob("*.tmp*"))


class TestCacheReadSite:
    KEY = "cd" * 32

    def _seeded_cache(self, tmp_path):
        cache = ResultCache(tmp_path, memory_limit=0)
        cache.put(self.KEY, {"lut_count": 7})
        return cache

    @pytest.mark.parametrize("kind", ["raise", "oom"])
    def test_read_failure_is_miss_entry_survives(self, tmp_path,
                                                 monkeypatch, kind):
        cache = self._seeded_cache(tmp_path)
        monkeypatch.setenv(faults.ENV_VAR, f"cache.read:{kind}:1:1")
        assert cache.get(self.KEY) is None  # miss, not an exception
        # The on-disk entry may be fine — it must NOT have been dropped.
        assert cache._path(self.KEY).exists()
        assert cache.get(self.KEY) == {"lut_count": 7}  # nth consumed

    def test_corrupt_read_drops_entry(self, tmp_path, monkeypatch):
        cache = self._seeded_cache(tmp_path)
        monkeypatch.setenv(faults.ENV_VAR, "cache.read:corrupt:1:1")
        assert cache.get(self.KEY) is None
        assert cache.corrupt == 1
        assert not cache._path(self.KEY).exists()
        cache.put(self.KEY, {"lut_count": 7})  # rebuilds cleanly
        assert cache.get(self.KEY) == {"lut_count": 7}

    def test_hang_read_completes(self, tmp_path, monkeypatch):
        cache = self._seeded_cache(tmp_path)
        monkeypatch.setenv(faults.ENV_VAR, "cache.read:hang:1:1")
        monkeypatch.setenv(faults.HANG_ENV, "0.05")
        assert cache.get(self.KEY) == {"lut_count": 7}

    def test_crash_read_kills_process(self, tmp_path):
        self._seeded_cache(tmp_path)
        code = (
            "from repro.runtime import ResultCache\n"
            f"cache = ResultCache({str(tmp_path)!r}, memory_limit=0)\n"
            f"cache.get({self.KEY!r})\n"
        )
        proc = run_python(code, env_extra={
            faults.ENV_VAR: "cache.read:crash:1:1"})
        assert proc.returncode == faults.CRASH_EXIT_CODE
        # A reader crash never damages the entry.
        cache = ResultCache(tmp_path, memory_limit=0)
        assert cache.get(self.KEY) == {"lut_count": 7}


class TestJournalAppendSite:
    JOBS = [{"job_id": "rd53", "source": {"kind": "benchmark",
                                          "name": "rd53"},
             "flow": "map", "config": {}, "test_hook": None}]

    @pytest.mark.parametrize("kind", ["raise", "oom"])
    def test_append_failure_disables_journaling(self, tmp_path,
                                                monkeypatch, capsys,
                                                kind):
        path = str(tmp_path / "batch.jsonl")
        # nth=2: the header append succeeds, the first record fails.
        monkeypatch.setenv(faults.ENV_VAR, f"journal.append:{kind}:1:2")
        journal = BatchJournal.create(path, self.JOBS)
        journal.record_start(0, "rd53", 1)          # swallowed failure
        assert journal.broken
        assert "journal append failed" in capsys.readouterr().err
        journal.record_done(0, {"status": "ok"})    # no-op, no raise
        journal.close()
        header, done, started, corrupt = load_journal(path)
        assert header["jobs"] == self.JOBS
        assert done == {} and started == set() and corrupt == 0

    def test_corrupt_append_skipped_on_load(self, tmp_path, monkeypatch):
        path = str(tmp_path / "batch.jsonl")
        monkeypatch.setenv(faults.ENV_VAR, "journal.append:corrupt:1:2")
        # The flip position is deterministic per seed; seed 3 lands on a
        # structural character, so the record fails to parse (a flip
        # inside a string value would instead survive as valid JSON —
        # that shape is exercised by the cache-corruption tests).
        monkeypatch.setenv(faults.SEED_ENV, "3")
        journal = BatchJournal.create(path, self.JOBS)
        journal.record_start(0, "rd53", 1)          # bit-flipped on disk
        journal.record_done(0, {"status": "ok", "job_id": "rd53"})
        journal.close()
        header, done, started, corrupt = load_journal(path)
        # The poisoned record is skipped and counted, never trusted;
        # the later (clean) done record still loads.
        assert corrupt == 1
        assert done == {0: {"status": "ok", "job_id": "rd53"}}

    def test_hang_append_completes(self, tmp_path, monkeypatch):
        path = str(tmp_path / "batch.jsonl")
        monkeypatch.setenv(faults.ENV_VAR, "journal.append:hang:1:2")
        monkeypatch.setenv(faults.HANG_ENV, "0.05")
        journal = BatchJournal.create(path, self.JOBS)
        journal.record_start(0, "rd53", 1)
        journal.close()
        _, _, started, corrupt = load_journal(path)
        assert started == {0} and corrupt == 0

    def test_crash_append_leaves_loadable_journal(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        code = (
            "from repro.runtime import BatchJournal\n"
            f"jobs = {self.JOBS!r}\n"
            f"journal = BatchJournal.create({str(path)!r}, jobs)\n"
            "journal.record_start(0, 'rd53', 1)\n"
        )
        proc = run_python(code, env_extra={
            faults.ENV_VAR: "journal.append:crash:1:2"})
        assert proc.returncode == faults.CRASH_EXIT_CODE
        # Crashed before the record's bytes hit the file: the journal is
        # exactly a bound header — resume would simply rerun the job.
        header, done, started, corrupt = load_journal(str(path))
        assert header["jobs"] == self.JOBS
        assert done == {} and started == set() and corrupt == 0
