"""Containment matrix for the service-tier fault sites.

``server.accept`` (ingress bytes), ``server.reply`` (egress bytes) and
``server.dispatch`` (job -> pool hand-off) extend the chaos catalog to
the daemon.  The contract matches the batch tier's parent-side sites:

* ``raise``/``oom`` are contained — a typed error frame (accept), a
  dropped-and-counted reply (reply), or the crash-retry ladder
  (dispatch); the daemon keeps serving in every case;
* ``corrupt`` yields a *typed* rejection on ingress (the corrupted
  frame is never trusted) and garbled-but-harmless bytes on egress;
* ``hang`` is slow-but-completes;
* ``crash`` genuinely kills the daemon process (that is what crash
  means) and is exercised against a sacrificial interpreter.

The daemon lives on a background thread; faults are armed through the
environment, which the injector re-reads on change, so each test's
unique spec gets fresh arrival counters.
"""

import json

import pytest

from repro import faults

from tests.faults.chaos_util import run_python
from tests.serve.conftest import start_daemon

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12


@pytest.fixture
def daemon(tmp_path):
    harness = start_daemon(tmp_path)
    yield harness
    if harness.thread.is_alive():
        harness.stop()


GOOD = {"source": "rd53"}


class TestAcceptSite:
    @pytest.mark.parametrize("kind", ["raise", "oom"])
    def test_ingress_fault_is_a_typed_frame(self, daemon, monkeypatch,
                                            kind):
        monkeypatch.setenv(faults.ENV_VAR,
                           f"server.accept:{kind}:1:1")
        frames = daemon.ask(GOOD)
        assert frames[0]["event"] == "error"
        assert frames[0]["error"] == "bad-frame"
        assert "ingress fault" in frames[0]["message"]
        # nth=1 consumed: the daemon serves the retry normally.
        assert daemon.ask(GOOD)[0]["status"] == "ok"

    def test_corrupt_ingress_that_breaks_framing(self, daemon,
                                                 monkeypatch):
        # Seed 0 flips a structural byte of this frame: not JSON.
        monkeypatch.setenv(faults.SEED_ENV, "0")
        monkeypatch.setenv(faults.ENV_VAR, "server.accept:corrupt:1:1")
        frames = daemon.ask(GOOD)
        assert frames[0]["event"] == "error"
        assert frames[0]["error"] == "bad-frame"
        assert daemon.ask(GOOD)[0]["status"] == "ok"

    def test_corrupt_ingress_that_survives_parsing(self, daemon,
                                                   monkeypatch):
        # Seed 2 flips a byte inside the circuit name: still valid
        # JSON, but the corrupted request must fail *typed* — the
        # daemon never acts on bytes it cannot vouch for.
        monkeypatch.setenv(faults.SEED_ENV, "2")
        monkeypatch.setenv(faults.ENV_VAR, "server.accept:corrupt:1:1")
        frames = daemon.ask(GOOD)
        assert frames[0]["event"] == "error"
        assert frames[0]["error"] == "bad-source"
        assert daemon.ask(GOOD)[0]["status"] == "ok"

    def test_hang_ingress_completes(self, daemon, monkeypatch):
        monkeypatch.setenv(faults.HANG_ENV, "0.05")
        monkeypatch.setenv(faults.ENV_VAR, "server.accept:hang:1:1")
        assert daemon.ask(GOOD)[0]["status"] == "ok"


class TestReplySite:
    @pytest.mark.parametrize("kind", ["raise", "oom"])
    def test_egress_fault_drops_and_counts_the_reply(self, daemon,
                                                     monkeypatch, kind):
        monkeypatch.setenv(faults.ENV_VAR, f"server.reply:{kind}:1:1")
        raw = daemon.raw(json.dumps(GOOD).encode() + b"\n")
        assert raw == b"", "the faulted reply must be dropped, not sent"
        assert daemon.daemon.replies_dropped == 1
        assert daemon.thread.is_alive()
        # The daemon never died for failing to speak; next reply works.
        assert daemon.ask(GOOD)[0]["status"] == "ok"

    def test_corrupt_egress_is_garbled_but_harmless(self, daemon,
                                                    monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "server.reply:corrupt:1:1")
        raw = daemon.raw(json.dumps(GOOD).encode() + b"\n")
        assert raw, "corrupt mangles the bytes but still sends them"
        assert daemon.daemon.replies_dropped == 0
        assert daemon.ask(GOOD)[0]["status"] == "ok"

    def test_hang_egress_completes(self, daemon, monkeypatch):
        monkeypatch.setenv(faults.HANG_ENV, "0.05")
        monkeypatch.setenv(faults.ENV_VAR, "server.reply:hang:1:1")
        assert daemon.ask(GOOD)[0]["status"] == "ok"


class TestDispatchSite:
    @pytest.mark.parametrize("kind", ["raise", "oom"])
    def test_dispatch_fault_rides_the_crash_retry_ladder(
            self, daemon, monkeypatch, kind):
        monkeypatch.setenv(faults.ENV_VAR,
                           f"server.dispatch:{kind}:1:1")
        frames = daemon.ask({"source": "rd53", "stream": True,
                             "retries": 1})
        kinds = [frame["event"] for frame in frames]
        assert "retry" in kinds
        assert frames[-1]["status"] == "ok"  # nth consumed on retry
        assert daemon.service.counters["retries"] == 1

    def test_dispatch_fault_without_retries_degrades(self, daemon,
                                                     monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "server.dispatch:raise:1:1")
        final = daemon.ask({"source": "rd53", "retries": 0})[0]
        assert final["status"] == "degraded"
        assert "retries exhausted" in final["error"]
        assert final["result"]["verified"] is True
        assert daemon.thread.is_alive()

    def test_corrupt_dispatch_payload_is_harmless(self, daemon,
                                                  monkeypatch):
        # The site passes the job id through for corruption, but the
        # dispatch decision never trusts the returned payload.
        monkeypatch.setenv(faults.ENV_VAR,
                           "server.dispatch:corrupt:1:1")
        assert daemon.ask(GOOD)[0]["status"] == "ok"

    def test_hang_dispatch_completes(self, daemon, monkeypatch):
        monkeypatch.setenv(faults.HANG_ENV, "0.05")
        monkeypatch.setenv(faults.ENV_VAR, "server.dispatch:hang:1:1")
        assert daemon.ask(GOOD)[0]["status"] == "ok"


class TestCrashKinds:
    """``crash`` kills the daemon process — by design.  A sacrificial
    interpreter hosts the daemon; the fault fires before any pool
    worker exists, so nothing can leak."""

    SCRIPT = """
import asyncio, socket, threading
from repro.serve import DecompositionService, ServeDaemon

PATH = {path!r}
ready = threading.Event()

def client():
    ready.wait(60)
    sock = socket.socket(socket.AF_UNIX)
    sock.connect(PATH)
    sock.sendall({payload!r})
    sock.shutdown(socket.SHUT_WR)
    try:
        while sock.recv(65536):
            pass
    except OSError:
        pass
    sock.close()

threading.Thread(target=client, daemon=True).start()
service = DecompositionService(workers=1, timeout=60)
daemon = ServeDaemon(service, socket_path=PATH)
asyncio.run(daemon.run(lambda d: ready.set()))
print("DRAINED-CLEANLY")
"""

    @pytest.mark.parametrize("site, payload", [
        ("server.accept", b'{"source": "rd53"}\n'),
        # A malformed line: the error frame is the first egress reply,
        # so the reply-site crash fires with no worker ever spawned.
        ("server.reply", b"not json\n"),
        ("server.dispatch", b'{"source": "rd53"}\n'),
    ])
    def test_crash_kills_the_daemon_process(self, tmp_path, site,
                                            payload):
        code = self.SCRIPT.format(path=str(tmp_path / "repro.sock"),
                                  payload=payload)
        proc = run_python(code, env_extra={
            faults.ENV_VAR: f"{site}:crash:1:1"})
        assert proc.returncode == faults.CRASH_EXIT_CODE
        assert "DRAINED-CLEANLY" not in proc.stdout
