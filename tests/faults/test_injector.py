"""Unit tests for the deterministic fault injector itself.

These cover the spec grammar, the determinism guarantees (same spec +
seed => same schedule), suppression, arrival/nth bookkeeping and the
zero-overhead unarmed contract — everything downstream chaos tests rely
on to be repeatable.
"""

import time

import pytest

from repro import faults
from repro.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpecError,
    parse_fault_specs,
)
from tests.faults.chaos_util import run_python


class TestSpecParsing:
    def test_single_clause(self):
        (spec,) = parse_fault_specs("cache.read:raise:0.5")
        assert spec.site == "cache.read"
        assert spec.kind == "raise"
        assert spec.prob == 0.5
        assert spec.nth is None

    def test_nth_clause(self):
        (spec,) = parse_fault_specs("bdd.ite:crash:1:100")
        assert spec.nth == 100

    def test_multiple_clauses_and_separators(self):
        specs = parse_fault_specs(
            "cache.read:raise:0.1, cache.write:corrupt:1;bdd.ite:hang:0.2")
        assert [(s.site, s.kind) for s in specs] == [
            ("cache.read", "raise"), ("cache.write", "corrupt"),
            ("bdd.ite", "hang")]

    def test_empty_clauses_skipped(self):
        assert parse_fault_specs(",, ,") == []

    @pytest.mark.parametrize("text", [
        "nosuchsite:raise:1",          # unknown site
        "cache.read:explode:1",        # unknown kind
        "cache.read:raise",            # missing probability
        "cache.read:raise:nan-ish:1:extra",  # too many fields
        "cache.read:raise:two",        # malformed probability
        "cache.read:raise:1.5",        # probability out of range
        "cache.read:raise:-0.1",       # probability out of range
        "cache.read:raise:1:zero",     # malformed nth
        "cache.read:raise:1:0",        # nth < 1
    ])
    def test_malformed_specs_refused(self, text):
        with pytest.raises(FaultSpecError):
            parse_fault_specs(text)

    def test_arm_validates_eagerly(self, monkeypatch):
        with pytest.raises(FaultSpecError):
            faults.arm("cache.read:bogus:1")
        assert not faults.armed()


class TestUnarmedZeroOverhead:
    def test_fault_point_is_identity(self):
        payload = object()
        assert faults.fault_point("cache.read", payload) is payload
        assert faults.fault_point("worker.start") is None

    def test_hook_is_none(self):
        for site in faults.SITES:
            assert faults.hook(site) is None

    def test_not_armed(self):
        assert not faults.armed()
        assert faults.counters() == {}


class TestDeterminism:
    def test_nth_fires_exactly_once(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cache.read:raise:1:3")
        fired_at = []
        for arrival in range(1, 11):
            try:
                faults.fault_point("cache.read")
            except FaultInjected:
                fired_at.append(arrival)
        assert fired_at == [3]
        assert faults.counters() == {"cache.read:raise": 1}

    def test_prob_stream_reproducible(self):
        def schedule(seed):
            plan = FaultPlan(parse_fault_specs("cache.read:raise:0.3",
                                               seed=seed))
            fires = []
            for arrival in range(200):
                try:
                    plan.fire("cache.read")
                except FaultInjected:
                    fires.append(arrival)
            return fires

        first = schedule(seed=7)
        assert first == schedule(seed=7)     # same seed, same schedule
        assert first != schedule(seed=8)     # different seed, different
        assert 20 < len(first) < 120         # roughly prob-shaped

    def test_seed_env_changes_schedule(self, monkeypatch):
        def schedule():
            faults.reset_in_worker()  # fresh arrival counters
            fires = []
            for arrival in range(100):
                try:
                    faults.fault_point("cache.read")
                except FaultInjected:
                    fires.append(arrival)
            return fires

        monkeypatch.setenv(faults.ENV_VAR, "cache.read:raise:0.3")
        monkeypatch.setenv(faults.SEED_ENV, "1")
        first = schedule()
        assert schedule() == first
        monkeypatch.setenv(faults.SEED_ENV, "2")
        assert schedule() != first

    def test_reset_in_worker_restarts_arrivals(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cache.read:raise:1:2")
        faults.fault_point("cache.read")          # arrival 1: no fire
        faults.reset_in_worker()
        faults.fault_point("cache.read")          # arrival 1 again
        with pytest.raises(FaultInjected):
            faults.fault_point("cache.read")      # arrival 2: fires

    def test_corrupt_flips_one_deterministic_bit(self):
        payload = b"deterministic chaos payload"

        def corrupted():
            plan = FaultPlan(parse_fault_specs("cache.write:corrupt:1:1",
                                               seed=3))
            return plan.fire("cache.write", payload)

        first = corrupted()
        assert first == corrupted()
        diff = int.from_bytes(payload, "big") ^ int.from_bytes(first, "big")
        assert bin(diff).count("1") == 1  # exactly one bit flipped

    def test_corrupt_handles_degenerate_payloads(self):
        assert faults.perform("corrupt", payload=None) is None
        assert faults.perform("corrupt", payload=b"") == b""


class TestSuppression:
    def test_suppressed_masks_armed_sites(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cache.read:raise:1")
        with faults.suppressed():
            payload = object()
            assert faults.fault_point("cache.read", payload) is payload
        with pytest.raises(FaultInjected):
            faults.fault_point("cache.read")

    def test_suppression_nests(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cache.read:raise:1")
        with faults.suppressed():
            with faults.suppressed():
                pass
            assert faults.fault_point("cache.read", 1) == 1
        with pytest.raises(FaultInjected):
            faults.fault_point("cache.read")


class TestKinds:
    def test_raise_carries_site(self):
        with pytest.raises(FaultInjected) as excinfo:
            faults.perform("raise", site="bdd.ite")
        assert excinfo.value.site == "bdd.ite"
        assert "bdd.ite" in str(excinfo.value)

    def test_unknown_kind_refused(self):
        with pytest.raises(FaultSpecError):
            faults.perform("explode")

    def test_hang_duration_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.HANG_ENV, "0.05")
        started = time.monotonic()
        faults.perform("hang")
        elapsed = time.monotonic() - started
        assert 0.04 <= elapsed < 1.0

    def test_oom_raises_memory_error_within_cap(self, monkeypatch):
        monkeypatch.setenv(faults.OOM_ENV, "8")
        with pytest.raises(MemoryError):
            faults.perform("oom")

    def test_crash_exit_code(self):
        proc = run_python(
            "from repro import faults; faults.perform('crash')")
        assert proc.returncode == faults.CRASH_EXIT_CODE


class TestArming:
    def test_arm_disarm_roundtrip(self, monkeypatch):
        faults.arm("bdd.ite:raise:0.5", seed=9)
        assert faults.armed()
        assert faults.hook("bdd.ite") is not None
        assert faults.hook("cache.read") is None  # unarmed site
        faults.disarm()
        assert not faults.armed()
        assert faults.hook("bdd.ite") is None

    def test_counters_track_fires_per_site_kind(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR,
                           "cache.read:raise:1:1,cache.write:raise:1:1")
        for site in ("cache.read", "cache.write"):
            with pytest.raises(FaultInjected):
                faults.fault_point(site)
        assert faults.counters() == {"cache.read:raise": 1,
                                     "cache.write:raise": 1}
