"""Shared chaos-test fixtures.

Every test in this package runs with a pristine injector environment and
safe caps on the destructive kinds (short hangs, small OOM hoards), and
leaves the environment exactly as it found it — ``monkeypatch`` restores
the variables and the injector re-parses lazily on the next call.
"""

import pytest

from repro import faults

_FAULT_ENV = (faults.ENV_VAR, faults.SEED_ENV, faults.HANG_ENV,
              faults.OOM_ENV)


@pytest.fixture(autouse=True)
def _pristine_faults(monkeypatch):
    for var in _FAULT_ENV:
        monkeypatch.delenv(var, raising=False)
    # Safety nets: a test that arms hang/oom without overriding the caps
    # must not sleep for an hour or hoard 256 MB.
    monkeypatch.setenv(faults.HANG_ENV, "2.0")
    monkeypatch.setenv(faults.OOM_ENV, "16")
    yield
