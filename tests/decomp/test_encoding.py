"""Tests for alpha functions, encodings and composition functions."""

import itertools
import random

import pytest

from repro.bdd.manager import BDD
from repro.bdd.ops import vertex_bits, vertex_index
from repro.boolfunc.spec import ISF
from repro.decomp.compat import classes_for
from repro.decomp.encoding import (
    AlphaFunction,
    build_composition_for_output,
    encode_output,
)
from repro.decomp.multi import select_common_alphas


@pytest.fixture
def bdd():
    return BDD(8)


class TestAlphaFunction:
    def test_normalisation(self):
        a = AlphaFunction.normalised([1, 0, 1, 1])
        assert a.values == (0, 1, 0, 0)
        b = AlphaFunction.normalised([0, 1, 1, 0])
        assert b.values == (0, 1, 1, 0)

    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError):
            AlphaFunction((1, 0))

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            AlphaFunction((0, 1, 0))

    def test_projection_var(self):
        # p = 2, alpha = x_b1 (second bound var): values by vertex
        # 00,01,10,11 -> 0,1,0,1
        a = AlphaFunction((0, 1, 0, 1))
        assert a.projection_var([4, 7]) == 7
        b = AlphaFunction((0, 0, 1, 1))
        assert b.projection_var([4, 7]) == 4
        c = AlphaFunction((0, 1, 1, 0))
        assert c.projection_var([4, 7]) is None

    def test_to_bdd(self, bdd):
        a = AlphaFunction((0, 1, 1, 0))
        f = a.to_bdd(bdd, [0, 1])
        assert f == bdd.apply_xor(bdd.var(0), bdd.var(1))

    def test_strictness(self, bdd):
        f = ISF.complete(bdd.apply_xor(bdd.var(0), bdd.var(1)))
        cls = classes_for(bdd, [f], [0, 1])
        strict = AlphaFunction((0, 1, 1, 0))
        assert strict.is_strict_for(cls)
        loose = AlphaFunction((0, 1, 0, 1))
        assert not loose.is_strict_for(cls)


class TestEncodeOutput:
    def test_injective(self, bdd):
        table = [1 if bin(k).count('1') >= 2 else 0 for k in range(8)]
        f = ISF.complete(bdd.from_truth_table(table, [0, 1, 2]))
        cls = classes_for(bdd, [f], [0, 1])  # 3 classes: 0, 1, 2 ones
        a0 = AlphaFunction.normalised([0, 0, 0, 1])  # both ones
        a1 = AlphaFunction.normalised([0, 1, 1, 0])  # exactly one
        enc = encode_output(cls, [a0, a1], [0, 1])
        assert len(set(enc.codes)) == 3

    def test_rejects_non_strict(self, bdd):
        table = [1 if bin(k).count('1') >= 2 else 0 for k in range(8)]
        f = ISF.complete(bdd.from_truth_table(table, [0, 1, 2]))
        cls = classes_for(bdd, [f], [0, 1])
        bad = AlphaFunction((0, 1, 0, 1))  # splits the middle class
        with pytest.raises(ValueError):
            encode_output(cls, [bad, bad], [0, 1])

    def test_rejects_non_injective(self, bdd):
        f = ISF.complete(bdd.apply_and(bdd.var(0), bdd.var(1)))
        cls = classes_for(bdd, [f], [0, 1])
        const = AlphaFunction((0, 0, 0, 0))
        with pytest.raises(ValueError):
            encode_output(cls, [const], [0])


def _decomposition_is_correct(bdd, isf, bound, free):
    """Run classes -> alphas -> g and check f(x) = g(alpha(xB), xF)
    is an extension of the ISF on every input."""
    cls = classes_for(bdd, [isf], bound)
    pool, encodings = select_common_alphas(bdd, [cls])
    enc = encodings[0]
    alpha_vars = {}
    for i in enc.alpha_indices:
        alpha_vars[i] = bdd.add_var()
    g = build_composition_for_output(bdd, enc, 0, alpha_vars)
    g_ext = g.lo  # any extension; take lo
    p = len(bound)
    for bits in itertools.product((0, 1), repeat=p + len(free)):
        assignment = dict(zip(list(bound) + list(free), bits))
        v = vertex_index([assignment[b] for b in bound])
        alpha_assign = {
            alpha_vars[i]: pool[i].values[v] for i in enc.alpha_indices}
        g_val = bdd.eval(g_ext, {**assignment, **alpha_assign})
        lo_val = bdd.eval(isf.lo, assignment)
        hi_val = bdd.eval(isf.hi, assignment)
        if lo_val and not g_val:
            return False
        if not hi_val and g_val:
            return False
    return True


class TestCompositionCorrectness:
    def test_random_complete_functions(self):
        rng = random.Random(61)
        for _ in range(15):
            bdd = BDD(5)
            table = [rng.randint(0, 1) for _ in range(32)]
            isf = ISF.complete(bdd.from_truth_table(table, [0, 1, 2, 3, 4]))
            assert _decomposition_is_correct(bdd, isf, [0, 1, 2], [3, 4])

    def test_random_incomplete_functions(self):
        rng = random.Random(67)
        for _ in range(15):
            bdd = BDD(5)
            spec = [rng.choice([0, 1, None]) for _ in range(32)]
            onset = [1 if v == 1 else 0 for v in spec]
            upper = [0 if v == 0 else 1 for v in spec]
            isf = ISF.create(
                bdd, bdd.from_truth_table(onset, [0, 1, 2, 3, 4]),
                bdd.from_truth_table(upper, [0, 1, 2, 3, 4]))
            assert _decomposition_is_correct(bdd, isf, [0, 1, 2], [3, 4])

    def test_unused_codes_are_dontcares(self, bdd):
        # A function with 3 classes and r=2 leaves one unused code; g
        # must be DC there.
        table = [1 if bin(k).count('1') >= 2 else 0 for k in range(8)]
        isf = ISF.complete(bdd.from_truth_table(table, [0, 1, 2]))
        cls = classes_for(bdd, [isf], [0, 1])
        pool, encodings = select_common_alphas(bdd, [cls])
        enc = encodings[0]
        assert enc.r == 2
        alpha_vars = {i: bdd.add_var() for i in enc.alpha_indices}
        g = build_composition_for_output(bdd, enc, 0, alpha_vars)
        assert not g.is_complete()
        unused = set(itertools.product((0, 1), repeat=2)) - set(enc.codes)
        assert len(unused) == 1
        code = unused.pop()
        assign = {alpha_vars[i]: code[j]
                  for j, i in enumerate(enc.alpha_indices)}
        assign[2] = 0
        assert not bdd.eval(g.lo, assign)
        assert bdd.eval(g.hi, assign)


class TestSelectCommonAlphas:
    def test_equal_outputs_share_everything(self, bdd):
        table = [random.Random(71).randint(0, 1) for _ in range(16)]
        f = ISF.complete(bdd.from_truth_table(table, [0, 1, 2, 3]))
        cls = classes_for(bdd, [f], [0, 1])
        pool, encodings = select_common_alphas(bdd, [cls, cls])
        assert encodings[0].alpha_indices == encodings[1].alpha_indices

    def test_r_within_bounds(self, bdd):
        rng = random.Random(73)
        for _ in range(10):
            fs = [ISF.complete(bdd.from_truth_table(
                [rng.randint(0, 1) for _ in range(16)], [0, 1, 2, 3]))
                for _ in range(3)]
            per_out = [classes_for(bdd, [f], [0, 1]) for f in fs]
            pool, encodings = select_common_alphas(bdd, per_out)
            used = {i for e in encodings for i in e.alpha_indices}
            assert max(e.r for e in encodings) <= len(used)
            assert len(used) <= sum(e.r for e in encodings)
            # Encodings must match the theoretical r_i.
            for e, cls in zip(encodings, per_out):
                assert e.r <= cls.min_r

    def test_each_alpha_strict(self, bdd):
        rng = random.Random(79)
        fs = [ISF.complete(bdd.from_truth_table(
            [rng.randint(0, 1) for _ in range(32)], [0, 1, 2, 3, 4]))
            for _ in range(4)]
        per_out = [classes_for(bdd, [f], [0, 1, 2]) for f in fs]
        pool, encodings = select_common_alphas(bdd, per_out)
        for e, cls in zip(encodings, per_out):
            for i in e.alpha_indices:
                assert pool[i].is_strict_for(cls)
