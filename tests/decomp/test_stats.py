"""Tests for decomposition statistics and the trace report."""

import random

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.decomp.recursive import DecompositionEngine


def test_step_records_populated():
    rng = random.Random(761)
    bdd = BDD(7)
    tables = [[rng.randint(0, 1) for _ in range(128)] for _ in range(2)]
    func = MultiFunction.from_truth_tables(bdd, list(range(7)), tables)
    engine = DecompositionEngine(n_lut=4)
    engine.run(func)
    stats = engine.stats
    assert len(stats.steps) == stats.decomposition_steps
    for record in stats.steps:
        assert record.included >= 1
        assert record.included <= record.num_outputs
        assert record.alphas_used >= 1
        assert record.sum_r >= record.alphas_used
        assert len(record.bound) >= 2


def test_report_mentions_key_numbers():
    bdd = BDD(6)
    rng = random.Random(769)
    table = [rng.randint(0, 1) for _ in range(64)]
    func = MultiFunction.from_truth_tables(bdd, list(range(6)), [table])
    engine = DecompositionEngine(n_lut=4)
    engine.run(func)
    text = engine.stats.report()
    assert "decomposition steps" in text
    assert "Shannon fallbacks" in text
    assert str(engine.stats.decomposition_steps) in text


def test_report_flags_budget():
    rng = random.Random(773)
    bdd = BDD(8)
    table = [rng.randint(0, 1) for _ in range(256)]
    func = MultiFunction.from_truth_tables(bdd, list(range(8)), [table])
    engine = DecompositionEngine(n_lut=3, time_budget=0.0)
    engine.run(func)
    assert "budget exhausted" in engine.stats.report()
