"""Tests for the three-step don't-care assignment."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import classes_for
from repro.decomp.dontcare import (
    assign_all_steps,
    assign_step1_symmetry,
    assign_step2_sharing,
    assign_step3_single,
)
from repro.decomp.multi import select_common_alphas, total_alpha_count


@pytest.fixture
def bdd():
    return BDD(5)


def random_isfs(bdd, rng, count, nvars, dc_prob=0.3):
    out = []
    for _ in range(count):
        spec = [
            None if rng.random() < dc_prob else rng.randint(0, 1)
            for _ in range(1 << nvars)]
        onset = [1 if v == 1 else 0 for v in spec]
        upper = [0 if v == 0 else 1 for v in spec]
        out.append(ISF.create(
            bdd, bdd.from_truth_table(onset, list(range(nvars))),
            bdd.from_truth_table(upper, list(range(nvars)))))
    return out


class TestStep2:
    def test_reduces_or_keeps_joint_classes(self, bdd):
        rng = random.Random(83)
        for _ in range(10):
            outputs = random_isfs(bdd, rng, 3, 4)
            bound = [0, 1]
            before = classes_for(bdd, outputs, bound).ncc
            narrowed, joint = assign_step2_sharing(bdd, outputs, bound)
            after = classes_for(bdd, narrowed, bound).ncc
            assert after <= before
            assert joint.ncc == before

    def test_outputs_refine(self, bdd):
        rng = random.Random(89)
        outputs = random_isfs(bdd, rng, 2, 4)
        narrowed, _ = assign_step2_sharing(bdd, outputs, [0, 1])
        for b, a in zip(outputs, narrowed):
            assert a.refines(bdd, b)

    def test_sharing_improves_alpha_union(self, bdd):
        # Two outputs with heavy DCs: after step 2 the alpha union should
        # not exceed the no-assignment union (statistically it shrinks).
        rng = random.Random(97)
        improved = 0
        total = 0
        for _ in range(20):
            outputs = random_isfs(bdd, rng, 3, 5, dc_prob=0.5)
            bound = [0, 1, 2]
            per_raw = [classes_for(bdd, [o], bound) for o in outputs]
            _, enc_raw = select_common_alphas(bdd, per_raw)
            narrowed, _ = assign_step2_sharing(bdd, outputs, bound)
            _, per_cls = assign_step3_single(bdd, narrowed, bound)
            _, enc_dc = select_common_alphas(bdd, per_cls)
            raw = total_alpha_count(enc_raw)
            dc = total_alpha_count(enc_dc)
            total += 1
            if dc < raw:
                improved += 1
            # DC exploitation must never need more than sum of r_i of
            # the narrowed outputs... weak sanity: union <= sum r.
            assert dc <= sum(e.r for e in enc_dc)
        assert improved >= 3  # the mechanism demonstrably helps


class TestStep3:
    def test_per_output_min(self, bdd):
        rng = random.Random(101)
        for _ in range(10):
            outputs = random_isfs(bdd, rng, 2, 4)
            bound = [0, 1]
            narrowed, per_cls = assign_step3_single(bdd, outputs, bound)
            for isf, narrowed_isf, cls in zip(outputs, narrowed, per_cls):
                # narrowing only
                assert narrowed_isf.refines(bdd, isf)
                # classes of the narrowed ISF match the returned classes
                after = classes_for(bdd, [narrowed_isf], bound)
                assert after.ncc <= cls.ncc

    def test_step3_after_step2_keeps_lower_bound(self, bdd):
        rng = random.Random(103)
        for _ in range(15):
            outputs = random_isfs(bdd, rng, 3, 4)
            bound = [0, 1]
            outputs2, joint = assign_step2_sharing(bdd, outputs, bound)
            outputs3, _ = assign_step3_single(bdd, outputs2, bound)
            joint_after = classes_for(bdd, outputs3, bound)
            assert joint_after.min_r <= joint.min_r


class TestStep1:
    def test_returns_groups_and_refinements(self, bdd):
        rng = random.Random(107)
        outputs = random_isfs(bdd, rng, 2, 4, dc_prob=0.4)
        narrowed, groups = assign_step1_symmetry(bdd, outputs,
                                                 [0, 1, 2, 3])
        for b, a in zip(outputs, narrowed):
            assert a.refines(bdd, b)
        covered = sorted(v for g in groups for v in g)
        assert covered == sorted(set(covered))


class TestAllSteps:
    def test_pipeline(self, bdd):
        rng = random.Random(109)
        outputs = random_isfs(bdd, rng, 3, 5, dc_prob=0.35)
        bound = [0, 1, 2]
        final, per_cls, joint = assign_all_steps(bdd, outputs, bound)
        assert len(final) == 3
        assert len(per_cls) == 3
        for b, a in zip(outputs, final):
            assert a.refines(bdd, b)
        # per-output r after the pipeline is <= before (DC help).
        for isf, cls in zip(outputs, per_cls):
            before = classes_for(bdd, [ISF.complete(isf.lo)], bound)
            assert cls.min_r <= max(before.min_r, cls.min_r)
