"""Regression tests: composition-function don't cares must not inflate
the working support of the recursion."""

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import classes_for
from repro.decomp.encoding import build_composition_for_output
from repro.decomp.multi import select_common_alphas


def test_unused_code_support_is_removable():
    """A g with one unused code has the alpha variables in hi's support
    even where no extension needs them; reduce_support must be able to
    drop anything an extension does not need."""
    bdd = BDD(6)
    # 3-class function => r=2, one unused code.
    table = [1 if bin(k).count("1") >= 2 else 0 for k in range(8)]
    isf = ISF.complete(bdd.from_truth_table(table, [0, 1, 2]))
    cls = classes_for(bdd, [isf], [0, 1])
    pool, encodings = select_common_alphas(bdd, [cls])
    enc = encodings[0]
    alpha_vars = {i: bdd.add_var() for i in enc.alpha_indices}
    g = build_composition_for_output(bdd, enc, 0, alpha_vars)
    # The raw interval support includes the alphas and the free var.
    raw_support = g.support(bdd)
    assert set(alpha_vars.values()) <= raw_support
    reduced = g.reduce_support(bdd)
    # Some extension needs strictly fewer variables than the raw union
    # (at minimum the reduction must not grow it).
    assert reduced.support(bdd) <= raw_support
    assert reduced.refines(bdd, g)


def test_composition_of_constant_class_is_constant():
    bdd = BDD(4)
    isf = ISF.complete(bdd.var(3))  # independent of the bound vars
    cls = classes_for(bdd, [isf], [0, 1])
    assert cls.ncc == 1
    pool, encodings = select_common_alphas(bdd, [cls])
    enc = encodings[0]
    assert enc.r == 0
    g = build_composition_for_output(bdd, enc, 0, {})
    assert g.lo == bdd.var(3)
    assert g.hi == bdd.var(3)
