"""Tests for the greedy (algebraic) bound-set construction."""

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.bound_set import greedy_bound_set, rank_bound_sets
from repro.decomp.compat import classes_for


class TestGreedyBoundSet:
    def test_finds_parity_dependence(self):
        # f = (x0 ^ x1 ^ x2) & x6  |  (x3 ^ x4) & x7 :
        # the set {0,1,2} has joint ncc 2 — greedy should find a bound
        # set built on parity structure, with ncc far below 2^3.
        bdd = BDD(8)
        parity_a = bdd.apply_xor(bdd.apply_xor(bdd.var(0), bdd.var(1)),
                                 bdd.var(2))
        parity_b = bdd.apply_xor(bdd.var(3), bdd.var(4))
        f = bdd.apply_or(bdd.apply_and(parity_a, bdd.var(6)),
                         bdd.apply_and(parity_b, bdd.var(7)))
        isf = ISF.complete(f)
        bound = greedy_bound_set(bdd, [isf], list(range(8)), 3)
        assert bound is not None
        ncc = classes_for(bdd, [isf], bound).ncc
        assert ncc <= 4  # 2^3 = 8 would be structure-blind

    def test_returns_none_when_too_small(self):
        bdd = BDD(3)
        isf = ISF.complete(bdd.var(0))
        assert greedy_bound_set(bdd, [isf], [0, 1], 2) is None

    def test_pool_cap_thinning(self):
        bdd = BDD(40)
        f = bdd.conjoin([bdd.var(i) for i in range(40)])
        isf = ISF.complete(f)
        bound = greedy_bound_set(bdd, [isf], list(range(40)), 3,
                                 pool_cap=10)
        assert bound is not None
        assert len(bound) == 3

    def test_greedy_candidate_ranked(self):
        # The greedy candidate must appear in the ranked list when it is
        # support-reducing.
        bdd = BDD(8)
        parity = bdd.apply_xor(
            bdd.apply_xor(bdd.var(0), bdd.var(3)), bdd.var(6))
        f = bdd.apply_and(parity,
                          bdd.apply_or(bdd.var(1), bdd.var(2)))
        f = bdd.apply_xor(f, bdd.apply_and(bdd.var(4), bdd.var(5)))
        isf = ISF.complete(f)
        ranked = rank_bound_sets(bdd, [isf], list(range(7)), 3)
        assert ranked
        bounds = [b for b, _ in ranked]
        # The parity triple is the ideal bound (ncc=2): it should be
        # found either via greedy or via scoring.
        best = ranked[0][0]
        assert classes_for(bdd, [isf], best).ncc <= 4
