"""Exact-vs-greedy clique cover cross-checks."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import classes_for
from repro.decomp.cover import classes_for_exact, exact_cover
from repro.decomp.compat import vertex_cofactors


def build_isf(bdd, spec, variables):
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    return ISF.create(bdd,
                      bdd.from_truth_table(onset, variables),
                      bdd.from_truth_table(upper, variables))


class TestExactCover:
    def test_complete_functions_identical(self):
        rng = random.Random(443)
        bdd = BDD(5)
        table = [rng.randint(0, 1) for _ in range(32)]
        isf = ISF.complete(bdd.from_truth_table(table, [0, 1, 2, 3, 4]))
        bound = [0, 1]
        exact = classes_for_exact(bdd, [isf], bound)
        greedy = classes_for(bdd, [isf], bound)
        assert exact.ncc == greedy.ncc  # equality classes are optimal

    def test_exact_never_worse(self):
        rng = random.Random(449)
        for _ in range(15):
            bdd = BDD(4)
            spec = [rng.choice([0, 1, None]) for _ in range(16)]
            isf = build_isf(bdd, spec, [0, 1, 2, 3])
            bound = [0, 1]
            exact = classes_for_exact(bdd, [isf], bound)
            greedy = classes_for(bdd, [isf], bound)
            assert exact.ncc <= greedy.ncc

    def test_exact_classes_valid(self):
        rng = random.Random(457)
        for _ in range(10):
            bdd = BDD(4)
            spec = [rng.choice([0, 1, None]) for _ in range(16)]
            isf = build_isf(bdd, spec, [0, 1, 2, 3])
            bound = [0, 1]
            cls = classes_for_exact(bdd, [isf], bound)
            cof = vertex_cofactors(bdd, [isf], bound)
            # Every class's merged interval refines all members.
            for c, vertices in enumerate(cls.classes):
                for v in vertices:
                    assert cls.merged[c][0].refines(bdd, cof[v][0])
            # Partition check.
            flat = sorted(v for ms in cls.classes for v in ms)
            assert flat == list(range(4))

    def test_node_limit_fallback(self):
        bdd = BDD(5)
        rng = random.Random(461)
        spec = [rng.choice([0, 1, None]) for _ in range(32)]
        isf = build_isf(bdd, spec, [0, 1, 2, 3, 4])
        cof = vertex_cofactors(bdd, [isf], [0, 1, 2])
        result = exact_cover(bdd, cof, [0, 1, 2], node_limit=1)
        assert result is None  # budget too small -> caller falls back


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from([0, 1, None]), min_size=16, max_size=16))
def test_exact_cover_optimality_property(spec):
    """Exact <= greedy for every random ISF (and both are valid covers)."""
    bdd = BDD(4)
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    isf = ISF.create(bdd, bdd.from_truth_table(onset, [0, 1, 2, 3]),
                     bdd.from_truth_table(upper, [0, 1, 2, 3]))
    bound = [0, 1]
    exact = classes_for_exact(bdd, [isf], bound)
    greedy = classes_for(bdd, [isf], bound)
    assert exact.ncc <= greedy.ncc


class TestExactCoverMultiOutput:
    def test_joint_cover_never_worse(self):
        rng = random.Random(641)
        for _ in range(8):
            bdd = BDD(4)
            isfs = []
            for _ in range(2):
                spec = [rng.choice([0, 1, None]) for _ in range(16)]
                isfs.append(build_isf(bdd, spec, [0, 1, 2, 3]))
            bound = [0, 1]
            exact = classes_for_exact(bdd, isfs, bound)
            greedy = classes_for(bdd, isfs, bound)
            assert exact.ncc <= greedy.ncc
            # Valid joint cover: merged vectors refine all members.
            cof = vertex_cofactors(bdd, isfs, bound)
            for c, members in enumerate(exact.classes):
                for v in members:
                    for k in range(2):
                        assert exact.merged[c][k].refines(bdd, cof[v][k])
