"""Tests for the engine's wall-clock budget fallback."""

import random

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.decomp.recursive import DecompositionEngine


def test_zero_budget_still_correct():
    """With an already-expired budget the engine must fall back to the
    MUX mapping immediately — and stay functionally correct."""
    rng = random.Random(401)
    bdd = BDD(8)
    tables = [[rng.randint(0, 1) for _ in range(256)] for _ in range(2)]
    func = MultiFunction.from_truth_tables(bdd, list(range(8)), tables)
    engine = DecompositionEngine(n_lut=5, time_budget=0.0)
    net = engine.run(func)
    assert net.max_fanin() <= 5
    for k in range(0, 256, 5):
        bits = [(k >> (7 - i)) & 1 for i in range(8)]
        got = net.eval_outputs(dict(zip(func.input_names, bits)))
        assert got["f0"] == tables[0][k]
        assert got["f1"] == tables[1][k]


def test_budget_none_unchanged():
    rng = random.Random(409)
    bdd = BDD(6)
    table = [rng.randint(0, 1) for _ in range(64)]
    func = MultiFunction.from_truth_tables(bdd, list(range(6)), [table])
    a = DecompositionEngine(n_lut=5).run(func)
    b = DecompositionEngine(n_lut=5, time_budget=None).run(func)
    assert a.lut_count == b.lut_count


def test_generous_budget_matches_unbudgeted():
    rng = random.Random(419)
    bdd = BDD(7)
    table = [rng.randint(0, 1) for _ in range(128)]
    func = MultiFunction.from_truth_tables(bdd, list(range(7)), [table])
    a = DecompositionEngine(n_lut=4).run(func)
    b = DecompositionEngine(n_lut=4, time_budget=3600).run(func)
    assert a.lut_count == b.lut_count
