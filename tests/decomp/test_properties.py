"""Property-based tests over the whole decomposition flow."""

import random

from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.decomp.recursive import decompose


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1),
                min_size=32, max_size=32),
       st.integers(min_value=3, max_value=5))
def test_decomposition_realises_function(table, n_lut):
    """Property: for any 5-var function and LUT size, the mapped network
    computes exactly the function."""
    bdd = BDD(5)
    func = MultiFunction.from_truth_tables(bdd, list(range(5)), [table])
    net = decompose(func, n_lut=n_lut)
    assert net.max_fanin() <= n_lut
    for k in range(32):
        bits = [(k >> (4 - i)) & 1 for i in range(5)]
        got = net.eval_outputs(dict(zip(func.input_names, bits)))
        assert got["f0"] == table[k]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**16 - 1),
       st.integers(min_value=0, max_value=2**16 - 1))
def test_two_output_bundle_property(bits_a, bits_b):
    """Property: multi-output bundles are decomposed jointly but each
    output stays correct."""
    bdd = BDD(4)
    table_a = [(bits_a >> k) & 1 for k in range(16)]
    table_b = [(bits_b >> k) & 1 for k in range(16)]
    func = MultiFunction.from_truth_tables(bdd, list(range(4)),
                                           [table_a, table_b])
    net = decompose(func, n_lut=3)
    for k in range(16):
        bits = [(k >> (3 - i)) & 1 for i in range(4)]
        got = net.eval_outputs(dict(zip(func.input_names, bits)))
        assert got["f0"] == table_a[k]
        assert got["f1"] == table_b[k]


@settings(max_examples=20, deadline=None)
@given(st.lists(st.sampled_from([0, 1, None]), min_size=32, max_size=32))
def test_isf_decomposition_extension_property(spec):
    """Property: for an incompletely specified function, the mapped
    network realises SOME extension — care values always match."""
    bdd = BDD(5)
    onset = [1 if v == 1 else 0 for v in spec]
    dcset = [1 if v is None else 0 for v in spec]
    func = MultiFunction.from_truth_tables(bdd, list(range(5)), [onset],
                                           dc_tables=[dcset])
    net = decompose(func, n_lut=3)
    for k in range(32):
        if spec[k] is None:
            continue
        bits = [(k >> (4 - i)) & 1 for i in range(5)]
        got = net.eval_outputs(dict(zip(func.input_names, bits)))
        assert got["f0"] == spec[k]


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=10**9))
def test_balanced_and_plain_agree(seed):
    """Property: balanced and plain modes both realise the function."""
    rng = random.Random(seed)
    bdd = BDD(6)
    table = [rng.randint(0, 1) for _ in range(64)]
    func = MultiFunction.from_truth_tables(bdd, list(range(6)), [table])
    plain = decompose(func, n_lut=4)
    balanced = decompose(func, n_lut=4, balanced=True)
    for k in range(64):
        bits = [(k >> (5 - i)) & 1 for i in range(6)]
        named = dict(zip(func.input_names, bits))
        assert plain.eval_outputs(named)["f0"] == table[k]
        assert balanced.eval_outputs(named)["f0"] == table[k]
