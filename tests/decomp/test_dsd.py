"""Tier-0 DSD pre-pass: differential suite against the plain search.

Three layers of evidence:

* every (fast, <= 16-input) Table 1 circuit maps correctly with the
  pre-pass on and never needs more LUTs than with it off;
* randomised incompletely specified functions stay extensions of their
  spec at several don't-care densities;
* purely structural functions (a parity tree, a MUX tree) bypass the
  ncc search entirely — zero decomposition/Shannon steps, optimal LUT
  counts — and the emitted network is bit-identical whether or not the
  word-parallel kernel served the probes.
"""

import random
from functools import reduce

import pytest

from repro.bdd.manager import BDD
from repro.bench.registry import BENCHMARKS, TABLE_ORDER
from repro.bench.registry import benchmark as build_circuit
from repro.boolfunc.spec import MultiFunction
from repro.decomp.dsd import chain_table
from repro.decomp.recursive import DecompositionEngine
from repro.verify.equiv import check_equivalence, check_extension
from tests.decomp.test_recursive import random_mf

FAST_TABLE1 = [name for name in TABLE_ORDER
               if not BENCHMARKS[name].heavy
               and BENCHMARKS[name].num_inputs <= 16]


def run_engine(func, use_dsd, **kwargs):
    engine = DecompositionEngine(use_dsd=use_dsd, **kwargs)
    net = engine.run(func)
    return net, engine.stats


class TestTable1Differential:
    @pytest.mark.parametrize("name", FAST_TABLE1)
    def test_never_worse_and_verified(self, name):
        func = build_circuit(name)
        net_off, _ = run_engine(func, use_dsd=False)
        net_on, stats = run_engine(func, use_dsd=True)
        assert check_equivalence(func, net_on).equivalent
        assert net_on.max_fanin() <= 5
        assert net_on.lut_count <= net_off.lut_count
        # The pre-pass ran (it may well reject every plan — that still
        # counts probes).
        assert stats.dsd.get("probes", 0) > 0


class TestRandomisedDontCares:
    @pytest.mark.parametrize("dc_prob", [0.0, 0.2, 0.5, 0.8])
    def test_extension_preserved(self, dc_prob):
        rng = random.Random(int(dc_prob * 100) + 7)
        for trial in range(4):
            bdd = BDD(7)
            func = random_mf(bdd, rng, 7, 2, dc_prob=dc_prob)
            net, _ = run_engine(func, use_dsd=True, n_lut=4)
            assert check_extension(func, net).equivalent
            assert net.max_fanin() <= 4

    def test_mulopii_mode_with_dsd(self):
        rng = random.Random(211)
        for trial in range(4):
            bdd = BDD(6)
            func = random_mf(bdd, rng, 6, 3, dc_prob=0.3)
            net, _ = run_engine(func, use_dsd=True, use_dontcares=False)
            assert check_extension(func, net).equivalent


def _parity_func(n=12):
    bdd = BDD(num_vars=n)
    return MultiFunction.from_callable(
        bdd, list(range(n)), 1,
        lambda *bits: (reduce(lambda a, b: a ^ b, bits),))


def _muxtree_func():
    # 3 selectors routing 8 data inputs: a pure MUX tree.
    bdd = BDD(num_vars=11)

    def fn(*bits):
        idx = (bits[0] << 2) | (bits[1] << 1) | bits[2]
        return (bits[3 + idx],)

    return MultiFunction.from_callable(bdd, list(range(11)), 1, fn)


class TestPureDsdBypass:
    def test_parity_tree_bypasses_search(self):
        func = _parity_func(12)
        net, stats = run_engine(func, use_dsd=True)
        assert check_equivalence(func, net).equivalent
        # ceil(11 literals / 4 per chain LUT) = 3 — optimal for n_lut=5.
        assert net.lut_count == 3
        assert stats.decomposition_steps == 0
        assert stats.shannon_steps == 0
        assert stats.dsd["xor_peels"] == 11 - 4
        assert stats.dsd["shattered"] == 1

    def test_mux_tree_bypasses_search(self):
        func = _muxtree_func()
        net, stats = run_engine(func, use_dsd=True)
        assert check_equivalence(func, net).equivalent
        assert net.lut_count == 7
        assert stats.decomposition_steps == 0
        assert stats.shannon_steps == 0
        assert stats.dsd["mux_splits"] == 3
        assert stats.dsd["cores"] == 4

    def test_kernel_on_off_bit_identical(self, monkeypatch):
        func = _parity_func(12)
        net_kernel, stats_kernel = run_engine(func, use_dsd=True)
        monkeypatch.setenv("REPRO_KERNEL", "off")
        net_bdd, stats_bdd = run_engine(func, use_dsd=True)
        assert net_kernel.to_blif("parity") == net_bdd.to_blif("parity")
        assert stats_kernel.dsd == stats_bdd.dsd

    def test_kernel_on_off_bit_identical_table1(self, monkeypatch):
        func = build_circuit("rd84")
        net_kernel, _ = run_engine(func, use_dsd=True)
        monkeypatch.setenv("REPRO_KERNEL", "off")
        net_bdd, _ = run_engine(func, use_dsd=True)
        assert net_kernel.to_blif("rd84") == net_bdd.to_blif("rd84")


class TestEnvToggle:
    def test_repro_dsd_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_DSD", "off")
        func = _parity_func(8)
        net, stats = run_engine(func, use_dsd=None)
        assert check_equivalence(func, net).equivalent
        assert stats.dsd == {}

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DSD", "off")
        func = _parity_func(8)
        net, stats = run_engine(func, use_dsd=True)
        assert stats.dsd.get("shattered", 0) == 1


class TestChainTable:
    @pytest.mark.parametrize("kinds", [
        [("and", 0, True)],
        [("or", 1, False)],
        [("xor", 2, True), ("and", 3, False)],
        [("xor", 0, True), ("or", 1, True), ("xor", 2, False),
         ("and", 3, True)],
    ])
    def test_matches_fold(self, kinds):
        table = chain_table(kinds)
        k = len(kinds) + 1
        assert len(table) == 1 << k
        ops = {"and": lambda a, b: a & b,
               "or": lambda a, b: a | b,
               "xor": lambda a, b: a ^ b}
        for idx in range(1 << k):
            acc = idx & 1
            for pos in range(len(kinds) - 1, -1, -1):
                kind, _, positive = kinds[pos]
                bit = (idx >> (k - 1 - pos)) & 1
                lit = bit if positive else 1 - bit
                acc = ops[kind](lit, acc)
            assert table[idx] == acc
