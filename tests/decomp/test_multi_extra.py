"""Additional tests for the common-alpha selection heuristics."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import classes_for
from repro.decomp.multi import (
    _encode_within_groups,
    _refine_groups,
    select_common_alphas,
    total_alpha_count,
)


class TestRefineGroups:
    def test_split(self):
        groups = [[0, 1, 2], [3, 4]]
        values = [0, 1, 0, 1, 1]
        refined = _refine_groups(groups, values)
        assert [0, 2] in refined
        assert [1] in refined
        assert [3, 4] in refined

    def test_no_split(self):
        groups = [[0, 1]]
        assert _refine_groups(groups, [1, 1]) == [[0, 1]]


class TestSharedParityCase:
    def test_xor_family_shares_alphas(self):
        # All outputs are XORs of the same bound parity with different
        # free-variable functions: identical partitions -> one shared
        # alpha suffices for every output.
        bdd = BDD(6)
        parity = bdd.apply_xor(
            bdd.apply_xor(bdd.var(0), bdd.var(1)), bdd.var(2))
        outputs = []
        for free in (3, 4, 5):
            outputs.append(ISF.complete(
                bdd.apply_xor(parity, bdd.var(free))))
        bound = [0, 1, 2]
        per_out = [classes_for(bdd, [o], bound) for o in outputs]
        pool, encodings = select_common_alphas(bdd, per_out)
        assert total_alpha_count(encodings) == 1
        for enc in encodings:
            assert enc.r == 1

    def test_disjoint_partitions_do_not_share(self):
        # Output A splits by x0, output B by x1: two distinct alphas.
        bdd = BDD(4)
        a = ISF.complete(bdd.apply_and(bdd.var(0), bdd.var(2)))
        b = ISF.complete(bdd.apply_and(bdd.var(1), bdd.var(3)))
        bound = [0, 1]
        per_out = [classes_for(bdd, [o], bound) for o in (a, b)]
        pool, encodings = select_common_alphas(bdd, per_out)
        assert total_alpha_count(encodings) == 2


class TestEncodeWithinGroups:
    def test_bits_give_injective_in_group(self):
        bdd = BDD(4)
        rng = random.Random(433)
        table = [rng.randint(0, 1) for _ in range(16)]
        isf = ISF.complete(bdd.from_truth_table(table, [0, 1, 2, 3]))
        cls = classes_for(bdd, [isf], [0, 1])
        groups = [list(range(cls.ncc))]
        bits = max(1, (cls.ncc - 1).bit_length())
        alphas = _encode_within_groups(4, cls, groups, bits)
        codes = set()
        for c in range(cls.ncc):
            rep = cls.classes[c][0]
            codes.add(tuple(a.values[rep] for a in alphas))
        assert len(codes) == cls.ncc
