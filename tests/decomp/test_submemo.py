"""The sub-ISF computed table: key canonicality, byte-identity of
spliced results, corruption degradation and eviction accounting.

The memo's contract is strict: a hit must splice a sub-network
*bit-identical* to what the cold search would have built (same BLIF,
same engine counters), and anything less than a perfect payload must
degrade to the cold search — never a wrong network.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.bench.registry import BENCHMARKS, benchmark
from repro.boolfunc.spec import ISF, MultiFunction
from repro.core.api import map_to_xc3000
from repro.decomp import recursive, submemo
from repro.decomp.encoding import sub_isf_key


@pytest.fixture(autouse=True)
def _fresh_store():
    submemo.reset_default_store()
    yield
    submemo.reset_default_store()


def _table_function(bdd, variables, table):
    return bdd.from_truth_table(table, variables)


# ---------------------------------------------------------------------
# Key canonicality
# ---------------------------------------------------------------------


class TestKeyStability:
    @given(st.integers(0, 2 ** 32 - 1), st.permutations(range(8)))
    @settings(max_examples=25, deadline=None)
    def test_cube_insertion_order_irrelevant(self, seed, order):
        """The same function assembled from cubes in any insertion
        order reduces to the same BDD, hence the same key."""
        import random
        rng = random.Random(seed)
        cubes = [{v: rng.randint(0, 1) for v in rng.sample(range(6), 3)}
                 for _ in range(8)]

        def build(sequence):
            bdd = BDD(6)
            f = BDD.FALSE
            for i in sequence:
                f = bdd.apply_or(f, bdd.cube(cubes[i]))
            isf = ISF.complete(f)
            support = sorted(isf.support(bdd))
            return sub_isf_key(bdd, [isf], support, "cfg")

        assert build(range(8)) == build(order)

    @given(st.lists(st.integers(0, 1), min_size=32, max_size=32),
           st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_shifted_support_labels_same_key(self, table, pad):
        """The same subfunction living on differently-numbered
        variables (other outputs allocated vars first) keys
        identically: the key names variables by support rank."""
        bdd_a = BDD(5)
        isf_a = ISF.complete(_table_function(bdd_a, list(range(5)),
                                             table))
        key_a = sub_isf_key(bdd_a, [isf_a],
                            sorted(isf_a.support(bdd_a)), "cfg")

        bdd_b = BDD(5 + pad)
        shifted = [pad + i for i in range(5)]
        isf_b = ISF.complete(_table_function(bdd_b, shifted, table))
        key_b = sub_isf_key(bdd_b, [isf_b],
                            sorted(isf_b.support(bdd_b)), "cfg")
        assert key_a == key_b

    def test_interval_and_order_sensitivity(self):
        """Different don't-care intervals and different output orders
        are different bundles (payload results map positionally)."""
        bdd = BDD(4)
        f = _table_function(bdd, list(range(4)), [0, 1] * 8)
        g = _table_function(bdd, list(range(4)), [1, 0] * 8)
        complete = ISF.complete(f)
        widened = ISF.create(bdd, bdd.apply_and(f, g),
                             bdd.apply_or(f, g))
        support = list(range(4))
        assert sub_isf_key(bdd, [complete], support, "cfg") \
            != sub_isf_key(bdd, [widened], support, "cfg")
        two = sub_isf_key(bdd, [ISF.complete(f), ISF.complete(g)],
                          support, "cfg")
        assert two != sub_isf_key(bdd, [ISF.complete(g),
                                        ISF.complete(f)],
                                  support, "cfg")
        assert sub_isf_key(bdd, [complete], support, "cfg") \
            != sub_isf_key(bdd, [complete], support, "other-cfg")

    def test_kernel_toggle_hits_same_entries(self, monkeypatch):
        """The kernel is bit-identical to the BDD path, so it is *not*
        part of the key: entries recorded kernel-on splice kernel-off."""
        monkeypatch.setenv("REPRO_SUBMEMO_VERIFY", "1")
        func = benchmark("rd84")
        store = submemo.SubMemoStore(byte_limit=1 << 22)

        monkeypatch.setenv("REPRO_KERNEL", "on")
        cold = map_to_xc3000(func, submemo_store=store)
        assert cold.stats.submemo["stores"] > 0

        monkeypatch.setenv("REPRO_KERNEL", "off")
        warm = map_to_xc3000(benchmark("rd84"), submemo_store=store)
        assert warm.stats.submemo["store_hits"] > 0
        assert warm.network.to_blif() == cold.network.to_blif()


# ---------------------------------------------------------------------
# Byte-identity of spliced results
# ---------------------------------------------------------------------


FAST_TABLE1 = [name for name, spec in BENCHMARKS.items()
               if not spec.heavy]


class TestByteIdentity:
    @pytest.mark.parametrize("name", FAST_TABLE1)
    def test_memo_on_equals_memo_off(self, name, monkeypatch):
        """Cold-with-memo and warm-from-memo runs must both be
        byte-identical to the memo-off engine: BLIF and the full
        result record (engine counters included)."""
        monkeypatch.setenv("REPRO_SUBMEMO_VERIFY", "1")
        func = benchmark(name)
        off = map_to_xc3000(func, use_submemo=False)
        cold = map_to_xc3000(benchmark(name))
        warm = map_to_xc3000(benchmark(name))
        assert cold.network.to_blif() == off.network.to_blif()
        assert warm.network.to_blif() == off.network.to_blif()
        assert cold.to_record() == off.to_record()
        assert warm.to_record() == off.to_record()

    def test_cross_output_hit_in_one_run(self, monkeypatch):
        """Two outputs that are the same function of disjoint supports:
        the second bundle must hit the per-run table."""
        monkeypatch.setenv("REPRO_SUBMEMO_VERIFY", "1")
        bdd = BDD()
        vs = [bdd.add_var(f"x{i}") for i in range(14)]

        def block(group):
            f = BDD.FALSE
            for i in range(len(group) - 2):
                t = bdd.apply_and(bdd.var(group[i]),
                                  bdd.var(group[i + 1]))
                f = bdd.apply_xor(f, bdd.apply_xor(
                    t, bdd.var(group[i + 2])))
            return f

        func = MultiFunction(
            bdd, vs, [ISF.complete(block(vs[:7])),
                      ISF.complete(block(vs[7:]))],
            [f"x{i}" for i in range(14)], ["o1", "o2"])
        off = map_to_xc3000(func, use_submemo=False)
        on = map_to_xc3000(func)
        assert on.stats.submemo["run_hits"] > 0
        assert on.stats.submemo["splices"] > 0
        assert on.network.to_blif() == off.network.to_blif()
        assert on.to_record() == off.to_record()

    def test_trace_identical_warm(self, monkeypatch):
        """The per-step decomposition trace replays on a splice (bound
        variables included), so `map --trace` reads the same warm."""
        monkeypatch.setenv("REPRO_SUBMEMO_VERIFY", "1")
        cold = map_to_xc3000(benchmark("rd84"))
        warm = map_to_xc3000(benchmark("rd84"))
        assert warm.stats.submemo["splices"] > 0
        assert [(s.depth, s.bound, s.num_outputs, s.included,
                 s.alphas_used, s.sum_r, s.joint_min_r)
                for s in cold.stats.steps] \
            == [(s.depth, s.bound, s.num_outputs, s.included,
                 s.alphas_used, s.sum_r, s.joint_min_r)
                for s in warm.stats.steps]


# ---------------------------------------------------------------------
# Corruption and gating
# ---------------------------------------------------------------------


class TestDegradation:
    def test_corrupt_payload_degrades_to_cold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUBMEMO_VERIFY", "1")
        func = benchmark("rd84")
        off = map_to_xc3000(func, use_submemo=False)
        store = submemo.SubMemoStore(byte_limit=1 << 22)
        map_to_xc3000(benchmark("rd84"), submemo_store=store)
        assert store.warm
        poison = {"v": 1, "n": 2, "m": 1, "tape": [], "out": [0]}
        for key in list(store.warm):
            store.warm[key] = (poison, 40)
        corrupt = map_to_xc3000(benchmark("rd84"), submemo_store=store)
        assert corrupt.network.to_blif() == off.network.to_blif()
        assert corrupt.stats.submemo["invalid_payloads"] > 0
        assert store.counters["invalidated"] >= 1
        # The cold rerun re-stored good entries; no poison survives.
        assert all(p != poison for p, _ in store.warm.values())

    def test_semantically_wrong_payload_is_verify_rejected(
            self, monkeypatch):
        """A structurally valid payload computing the wrong function
        must fail the splice-time interval check, not splice."""
        monkeypatch.setenv("REPRO_SUBMEMO_VERIFY", "1")
        func = benchmark("rd84")
        off = map_to_xc3000(func, use_submemo=False)
        store = submemo.SubMemoStore(byte_limit=1 << 22)
        map_to_xc3000(benchmark("rd84"), submemo_store=store)
        for key, (payload, size) in list(store.warm.items()):
            wrong = dict(payload)
            # Constant-0 for every output: valid shape, wrong function.
            wrong["tape"] = []
            wrong["out"] = [submemo.REF_CONST0] * payload["m"]
            store.warm[key] = (wrong, size)
        rerun = map_to_xc3000(benchmark("rd84"), submemo_store=store)
        assert rerun.network.to_blif() == off.network.to_blif()
        assert rerun.stats.submemo["verify_rejects"] > 0

    def test_validate_payload_rejects_malformed(self):
        good = submemo.make_payload(
            2, [([submemo.input_ref(0), submemo.input_ref(1)],
                 "0110", None)], [0])
        assert submemo.validate_payload(good, 2, 1)
        assert not submemo.validate_payload(good, 3, 1)   # wrong arity
        assert not submemo.validate_payload(good, 2, 2)   # wrong outputs
        assert not submemo.validate_payload(None, 2, 1)
        assert not submemo.validate_payload({}, 2, 1)
        bad_ref = submemo.make_payload(
            2, [([5], "01", None)], [0])                  # forward ref
        assert not submemo.validate_payload(bad_ref, 2, 1)
        bad_table = submemo.make_payload(
            2, [([submemo.input_ref(0)], "012", None)], [0])
        assert not submemo.validate_payload(bad_table, 2, 1)

    def test_engine_fault_sites_disable_memo(self, monkeypatch):
        """Chaos armed at an engine-internal site must turn the memo
        off (a splice would skip the scheduled fault arrivals); cache
        sites must not (the chaos drill targets the memo itself)."""
        from repro import faults
        faults.arm("bdd.ite:raise:0.0")
        try:
            result = map_to_xc3000(benchmark("rd84"))
            assert result.stats.submemo == {}
        finally:
            faults.disarm()
        faults.arm("cache.read:raise:0.0")
        try:
            result = map_to_xc3000(benchmark("rd84"))
            assert result.stats.submemo
        finally:
            faults.disarm()

    def test_budgeted_runs_disable_memo(self):
        result = map_to_xc3000(benchmark("rd84"), time_budget=60.0)
        assert result.stats.submemo == {}


# ---------------------------------------------------------------------
# Eviction accounting (tentpole L1/L2 budgets + satellite S1)
# ---------------------------------------------------------------------


class TestEvictions:
    def test_warm_layer_byte_lru(self):
        store = submemo.SubMemoStore(byte_limit=1)
        big = submemo.make_payload(
            2, [([submemo.input_ref(0)], "01", None)], [0])
        store.put("a" * 64, big)
        assert store.counters["stores"] == 1
        assert not store.warm  # over budget: never resident
        size = submemo.payload_bytes(big)
        limit = int(size * 2.5)  # room for two residents, not three
        store = submemo.SubMemoStore(byte_limit=limit)
        store.put("a" * 64, big)
        store.put("b" * 64, big)
        store.put("c" * 64, big)
        assert store.counters["warm_evictions"] >= 1
        assert store.warm_bytes <= limit

    @staticmethod
    def _two_distinct_blocks():
        """Two outputs, different functions on disjoint 7-var supports:
        guarantees at least two distinct memo stores in one run."""
        bdd = BDD()
        vs = [bdd.add_var(f"x{i}") for i in range(14)]

        def xor_and(group):
            f = BDD.FALSE
            for i in range(len(group) - 2):
                t = bdd.apply_and(bdd.var(group[i]),
                                  bdd.var(group[i + 1]))
                f = bdd.apply_xor(f, bdd.apply_xor(
                    t, bdd.var(group[i + 2])))
            return f

        def or_and(group):
            f = BDD.TRUE
            for i in range(len(group) - 2):
                t = bdd.apply_or(bdd.var(group[i]),
                                 bdd.var(group[i + 1]))
                f = bdd.apply_xor(f, bdd.apply_and(
                    t, bdd.var(group[i + 2])))
            return f

        return MultiFunction(
            bdd, vs, [ISF.complete(xor_and(vs[:7])),
                      ISF.complete(or_and(vs[7:]))],
            [f"x{i}" for i in range(14)], ["o1", "o2"])

    def test_run_table_byte_budget(self, monkeypatch):
        """An engine whose per-run budget holds one payload must evict
        while still producing the memo-off result."""
        monkeypatch.setenv("REPRO_SUBMEMO_VERIFY", "1")
        off = map_to_xc3000(self._two_distinct_blocks(),
                            use_submemo=False)
        probe = map_to_xc3000(self._two_distinct_blocks(),
                              submemo_store=submemo.SubMemoStore())
        assert probe.stats.submemo["stores"] > 1
        # Budget below the probe's total: the second store must evict.
        budget = max(1, probe.stats.submemo["store_bytes"] * 2 // 3)
        monkeypatch.setenv("REPRO_SUBMEMO_BYTES", str(budget))
        tight = map_to_xc3000(self._two_distinct_blocks(),
                              submemo_store=submemo.SubMemoStore())
        assert tight.network.to_blif() == off.network.to_blif()
        counters = tight.stats.submemo
        assert counters["stores"] > 1
        assert counters["run_evictions"] > 0

    def test_score_memo_eviction_counter(self, monkeypatch):
        """S1: the bound-set score memo clears wholesale at its budget
        and counts the eviction, like the kernel convert caches."""
        monkeypatch.setattr(recursive, "_SCORE_MEMO_LIMIT", 0)
        result = map_to_xc3000(benchmark("rd73"))
        assert result.stats.score_memo_evictions > 0
        assert "score memo evictions" in result.stats.report()


# ---------------------------------------------------------------------
# Store layers (disk namespace, promotion)
# ---------------------------------------------------------------------


class TestStoreLayers:
    def test_disk_layer_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SUBMEMO_VERIFY", "1")
        func = benchmark("rd84")
        off = map_to_xc3000(func, use_submemo=False)
        first = submemo.SubMemoStore(disk_root=tmp_path)
        cold = map_to_xc3000(benchmark("rd84"), submemo_store=first)
        assert cold.stats.submemo["stores"] > 0
        assert (tmp_path / "submemo").is_dir()

        fresh = submemo.SubMemoStore(disk_root=tmp_path)
        warm = map_to_xc3000(benchmark("rd84"), submemo_store=fresh)
        assert warm.stats.submemo["store_hits"] > 0
        assert fresh.counters["disk_hits"] > 0
        assert warm.network.to_blif() == off.network.to_blif()
        # The disk hit was promoted into the warm layer.
        assert fresh.warm

    def test_oversize_entries_not_stored(self):
        store = submemo.SubMemoStore(byte_limit=1 << 22)
        huge = submemo.make_payload(
            2, [([submemo.input_ref(0)], "01", "x" * (2 << 20))], [0])
        store.put("d" * 64, huge)
        assert store.counters["oversize"] == 1
        assert store.get("d" * 64) is None

    def test_default_store_rebuilds_on_env_change(self, tmp_path,
                                                  monkeypatch):
        first = submemo.default_store()
        assert submemo.default_store() is first
        monkeypatch.setenv("REPRO_SUBMEMO_DIR", str(tmp_path))
        second = submemo.default_store()
        assert second is not first
        assert second.disk is not None
