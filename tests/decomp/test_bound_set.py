"""Tests for bound-set candidate generation and scoring."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.bound_set import (
    candidate_bound_sets,
    rank_bound_sets,
    score_bound_set,
    select_bound_set,
)


@pytest.fixture
def bdd():
    return BDD(8)


class TestCandidates:
    def test_window_candidates(self):
        cands = candidate_bound_sets([0, 1, 2, 3, 4], 3)
        assert (0, 1, 2) in cands
        assert (1, 2, 3) in cands
        assert (2, 3, 4) in cands
        assert all(len(c) == 3 for c in cands)
        assert len(set(cands)) == len(cands)

    def test_group_layout_first(self):
        cands = candidate_bound_sets(
            [0, 1, 2, 3, 4, 5], 3, groups=[[0, 3], [1], [2, 4, 5]])
        # Largest group {2,4,5} should appear as the first window.
        assert cands[0] == (2, 4, 5)

    def test_rejects_non_strict_subset(self):
        with pytest.raises(ValueError):
            candidate_bound_sets([0, 1, 2], 3)

    def test_max_candidates_cap(self):
        cands = candidate_bound_sets(list(range(30)), 5,
                                     max_candidates=7)
        assert len(cands) <= 7


class TestScoring:
    def test_symmetric_bound_scores_best(self, bdd):
        # f = (weight of x0..x3 >= 2) XOR x4 XOR (x5 & x6).
        weight = bdd.from_truth_table(
            [1 if bin(k).count('1') >= 2 else 0 for k in range(16)],
            [0, 1, 2, 3])
        f = bdd.apply_xor(weight, bdd.apply_xor(
            bdd.var(4), bdd.apply_and(bdd.var(5), bdd.var(6))))
        isf = ISF.complete(f)
        sym_score = score_bound_set(bdd, [isf], [0, 1, 2, 3])
        mixed_score = score_bound_set(bdd, [isf], [0, 1, 4, 5])
        assert sym_score < mixed_score

    def test_select_returns_reducing(self, bdd):
        weight = bdd.from_truth_table(
            [1 if bin(k).count('1') >= 2 else 0 for k in range(16)],
            [0, 1, 2, 3])
        f = bdd.apply_xor(weight, bdd.apply_and(bdd.var(4), bdd.var(5)))
        isf = ISF.complete(f)
        bound, score = select_bound_set(
            bdd, [isf], [0, 1, 2, 3, 4, 5], 4,
            groups=[[0, 1, 2, 3], [4], [5]])
        assert bound == (0, 1, 2, 3)
        assert score[0] < 4

    def test_select_none_when_nothing_reduces(self, bdd):
        # A function with maximal communication for every 2-bound set.
        # Multiplication-like mixing: use a random dense function.
        rng = random.Random(113)
        table = [rng.randint(0, 1) for _ in range(32)]
        f = ISF.complete(bdd.from_truth_table(table, [0, 1, 2, 3, 4]))
        bound, score = select_bound_set(bdd, [f], [0, 1, 2, 3, 4], 2)
        # Random 5-var functions essentially never have ncc <= 2 for a
        # 2-var bound set; accept either outcome but require consistency.
        if bound is None:
            assert score is None
        else:
            assert score[0] < 2


class TestRanking:
    def test_ranked_ordering(self, bdd):
        weight = bdd.from_truth_table(
            [1 if bin(k).count('1') in (2, 3) else 0 for k in range(16)],
            [0, 1, 2, 3])
        f = bdd.apply_or(weight, bdd.conjoin(
            [bdd.var(4), bdd.var(5), bdd.var(6)]))
        isf = ISF.complete(f)
        ranked = rank_bound_sets(bdd, [isf], list(range(7)), 4,
                                 groups=[[0, 1, 2, 3], [4, 5, 6]])
        assert ranked, "expected at least one candidate"
        scores = [s for _, s in ranked]
        assert scores == sorted(scores)

    def test_ranked_filters_hopeless(self, bdd):
        rng = random.Random(127)
        table = [rng.randint(0, 1) for _ in range(64)]
        f = ISF.complete(bdd.from_truth_table(table, list(range(6))))
        ranked = rank_bound_sets(bdd, [f], list(range(6)), 2)
        for _, score in ranked:
            assert score[1] < 2
