"""End-to-end tests for the recursive decomposition drivers."""

import itertools
import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF, MultiFunction
from repro.decomp.recursive import DecompositionEngine, decompose


def check_network(func, net, samples=None):
    """The network must realise an extension of every output ISF."""
    n = func.num_inputs
    space = (range(1 << n) if samples is None
             else random.Random(0).sample(range(1 << n),
                                           min(samples, 1 << n)))
    for k in space:
        bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
        assignment = dict(zip(func.inputs, bits))
        expected = func.eval(assignment)
        got = net.eval_outputs(dict(zip(func.input_names, bits)))
        for name, value in zip(func.output_names, expected):
            if value is not None:
                assert got[name] == value, (
                    f"{name} mismatch at {bits}: {got[name]} != {value}")


def random_mf(bdd, rng, n, m, dc_prob=0.0):
    tables = []
    dc_tables = [] if dc_prob else None
    for _ in range(m):
        tables.append([rng.randint(0, 1) for _ in range(1 << n)])
        if dc_prob:
            dc_tables.append([1 if rng.random() < dc_prob else 0
                              for _ in range(1 << n)])
    return MultiFunction.from_truth_tables(bdd, list(range(n)), tables,
                                           dc_tables=dc_tables)


class TestFeasibility:
    @pytest.mark.parametrize("n_lut", [2, 3, 4, 5])
    def test_max_fanin_respected(self, n_lut):
        rng = random.Random(131)
        bdd = BDD(7)
        func = random_mf(bdd, rng, 7, 2)
        net = decompose(func, n_lut=n_lut)
        assert net.max_fanin() <= n_lut

    def test_all_outputs_present(self):
        rng = random.Random(137)
        bdd = BDD(6)
        func = random_mf(bdd, rng, 6, 4)
        net = decompose(func, n_lut=4)
        assert set(net.outputs) == set(func.output_names)


class TestCorrectness:
    def test_random_complete_functions(self):
        rng = random.Random(139)
        for trial in range(8):
            bdd = BDD(6)
            func = random_mf(bdd, rng, 6, 3)
            net = decompose(func, n_lut=4)
            check_network(func, net)

    def test_random_incomplete_functions(self):
        rng = random.Random(149)
        for trial in range(8):
            bdd = BDD(6)
            func = random_mf(bdd, rng, 6, 2, dc_prob=0.3)
            net = decompose(func, n_lut=4)
            check_network(func, net)

    def test_mulopii_mode(self):
        rng = random.Random(151)
        for trial in range(5):
            bdd = BDD(6)
            func = random_mf(bdd, rng, 6, 3)
            net = decompose(func, n_lut=4, use_dontcares=False)
            check_network(func, net)

    def test_balanced_mode(self):
        rng = random.Random(157)
        for trial in range(5):
            bdd = BDD(7)
            func = random_mf(bdd, rng, 7, 2)
            net = decompose(func, n_lut=3, balanced=True)
            assert net.max_fanin() <= 3
            check_network(func, net)

    def test_incomplete_with_dontcares_may_use_any_extension(self):
        bdd = BDD(5)
        # One output: defined only on weight-2 inputs.
        spec = [1 if bin(k).count('1') == 2 else None for k in range(32)]
        onset = [1 if v == 1 else 0 for v in spec]
        dcset = [1 if v is None else 0 for v in spec]
        func = MultiFunction.from_truth_tables(
            bdd, list(range(5)), [onset], dc_tables=[dcset])
        net = decompose(func, n_lut=3)
        check_network(func, net)


class TestStructure:
    def test_symmetric_function_is_cheap(self):
        # 9-input symmetric function: symmetry exploitation should give a
        # compact network (ncc <= p+1 at every level).
        bdd = BDD(9)
        table = [1 if bin(k).count('1') in (3, 4, 5, 6) else 0
                 for k in range(512)]
        func = MultiFunction.from_truth_tables(bdd, list(range(9)),
                                               [table])
        net = decompose(func, n_lut=5)
        check_network(func, net)
        assert net.lut_count <= 8

    def test_single_lut_function_is_one_lut(self):
        bdd = BDD(5)
        rng = random.Random(163)
        table = [rng.randint(0, 1) for _ in range(32)]
        func = MultiFunction.from_truth_tables(bdd, list(range(5)),
                                               [table])
        net = decompose(func, n_lut=5)
        assert net.lut_count <= 1

    def test_constant_output(self):
        bdd = BDD(3)
        func = MultiFunction(bdd, [0, 1, 2],
                             [ISF.complete(BDD.TRUE),
                              ISF.complete(BDD.FALSE)])
        net = decompose(func)
        assert net.lut_count == 0
        out = net.eval_outputs({name: 0 for name in func.input_names})
        assert out[func.output_names[0]] == 1
        assert out[func.output_names[1]] == 0

    def test_output_equal_to_input(self):
        bdd = BDD(3)
        func = MultiFunction(bdd, [0, 1, 2], [ISF.complete(bdd.var(1))])
        net = decompose(func)
        assert net.lut_count == 0
        out = net.eval_outputs({"x0": 0, "x1": 1, "x2": 0})
        assert out["f0"] == 1

    def test_identical_outputs_share_logic(self):
        rng = random.Random(167)
        bdd = BDD(7)
        table = [rng.randint(0, 1) for _ in range(128)]
        func = MultiFunction.from_truth_tables(
            bdd, list(range(7)), [table, table])
        net = decompose(func, n_lut=5)
        single = decompose(MultiFunction.from_truth_tables(
            BDD(7), list(range(7)), [table]), n_lut=5)
        # Structural hashing + common alphas: the pair costs the same as
        # one copy.
        assert net.lut_count == single.lut_count

    def test_stats_populated(self):
        rng = random.Random(173)
        bdd = BDD(7)
        func = random_mf(bdd, rng, 7, 2)
        engine = DecompositionEngine(n_lut=4)
        engine.run(func)
        stats = engine.stats
        assert stats.decomposition_steps + stats.shannon_steps >= 1
        assert stats.max_recursion_depth >= 1

    def test_dc_mode_not_worse_much(self):
        # On random functions DC mode should track mulopII (DCs only
        # arise in recursion); sanity-check both run and yield feasible
        # nets of similar size.
        rng = random.Random(179)
        bdd = BDD(7)
        func = random_mf(bdd, rng, 7, 3)
        a = decompose(func, n_lut=5, use_dontcares=True)
        b = decompose(func, n_lut=5, use_dontcares=False)
        assert a.max_fanin() <= 5 and b.max_fanin() <= 5
        assert a.lut_count <= 2 * b.lut_count + 2


class TestEngineValidation:
    def test_rejects_small_nlut(self):
        with pytest.raises(ValueError):
            DecompositionEngine(n_lut=1)


class TestTable1ShapeSpot:
    """Fast spot-checks of the Table 1 claims on exact circuits (the
    full table lives in benchmarks/bench_table1.py)."""

    def test_dc_never_loses_on_exact_set(self):
        from repro.bench.registry import benchmark
        from repro.mapping.clb import clb_count
        for name in ("rd73", "rd84", "9sym", "z4ml"):
            func = benchmark(name)
            ii = clb_count(decompose(func, n_lut=5, use_dontcares=False))
            dc = clb_count(decompose(func, n_lut=5, use_dontcares=True))
            assert dc <= ii, name

    def test_symmetric_circuits_match_theory(self):
        # rd84 w.r.t. a 5-var symmetric bound has ncc <= 6; the first
        # decomposition level therefore needs at most 3 shared alphas
        # per weight-counter slice — the whole function fits in <= 10
        # LUTs.
        from repro.bench.registry import benchmark
        net = decompose(benchmark("rd84"), n_lut=5)
        assert net.lut_count <= 10
