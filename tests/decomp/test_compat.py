"""Tests for compatible-class computation."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.bdd.ops import vertex_bits
from repro.boolfunc.spec import ISF
from repro.decomp.compat import (
    assign_by_classes,
    classes_for,
    compute_classes,
    min_r,
    ncc,
    vertex_cofactors,
)


@pytest.fixture
def bdd():
    return BDD(6)


def isf_from_spec(bdd, spec, variables):
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    return ISF.create(bdd,
                      bdd.from_truth_table(onset, variables),
                      bdd.from_truth_table(upper, variables))


class TestMinR:
    def test_values(self):
        assert min_r(1) == 0
        assert min_r(2) == 1
        assert min_r(3) == 2
        assert min_r(4) == 2
        assert min_r(5) == 3
        assert min_r(32) == 5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            min_r(0)


class TestVertexCofactors:
    def test_shape(self, bdd):
        isfs = [ISF.complete(bdd.var(3)), ISF.complete(bdd.var(0))]
        cof = vertex_cofactors(bdd, isfs, [0, 1])
        assert len(cof) == 4
        assert len(cof[0]) == 2

    def test_values(self, bdd):
        isf = ISF.complete(bdd.apply_and(bdd.var(0), bdd.var(2)))
        cof = vertex_cofactors(bdd, [isf], [0, 1])
        # vertices 00,01 -> FALSE ; 10,11 -> x2
        assert cof[0][0].lo == BDD.FALSE
        assert cof[1][0].lo == BDD.FALSE
        assert cof[2][0].lo == bdd.var(2)
        assert cof[3][0].lo == bdd.var(2)


class TestCompleteClasses:
    def test_known_ncc(self, bdd):
        # f = majority of (x0, x1, x2) with bound {x0, x1}: cofactors are
        # FALSE-ish: 00 -> 0, 01 -> x2, 10 -> x2, 11 -> 1 => 3 classes.
        table = [1 if bin(k).count('1') >= 2 else 0 for k in range(8)]
        f = bdd.from_truth_table(table, [0, 1, 2])
        assert ncc(bdd, [ISF.complete(f)], [0, 1]) == 3

    def test_symmetric_function_ncc_at_most_p_plus_1(self, bdd):
        # Totally symmetric in the bound set -> ncc <= p + 1 (paper, Sec 4).
        rng = random.Random(3)
        for _ in range(10):
            accept = {w for w in range(7) if rng.random() < 0.5}
            table = [1 if bin(k).count('1') in accept else 0
                     for k in range(64)]
            f = bdd.from_truth_table(table, [0, 1, 2, 3, 4, 5])
            for p in (2, 3, 4):
                assert ncc(bdd, [ISF.complete(f)],
                           list(range(p))) <= p + 1

    def test_joint_bounds(self, bdd):
        # Paper inequality: joint min_r <= sum of per-output min_r, and
        # per-output ncc <= joint ncc.
        rng = random.Random(11)
        for _ in range(10):
            fs = [ISF.complete(bdd.from_truth_table(
                [rng.randint(0, 1) for _ in range(32)], [0, 1, 2, 3, 4]))
                for _ in range(3)]
            bound = [0, 1, 2]
            joint = classes_for(bdd, fs, bound)
            total = sum(classes_for(bdd, [f], bound).min_r for f in fs)
            assert joint.min_r <= total
            for f in fs:
                assert classes_for(bdd, [f], bound).ncc <= joint.ncc

    def test_class_of_consistency(self, bdd):
        f = ISF.complete(bdd.apply_xor(bdd.var(0), bdd.var(2)))
        cls = classes_for(bdd, [f], [0, 1])
        for c, members in enumerate(cls.classes):
            for v in members:
                assert cls.class_of[v] == c
        assert sorted(v for ms in cls.classes for v in ms) == [0, 1, 2, 3]


class TestIsfClasses:
    def test_dc_reduces_classes(self, bdd):
        # Complete: 3 classes; with a DC the clique cover merges to 2.
        spec = [0, 0, 0, 1, 1, 0, 1, 1]  # f over (x0,x1,x2)
        isf_complete = isf_from_spec(bdd, spec, [0, 1, 2])
        complete_ncc = ncc(bdd, [isf_complete], [0, 1])
        spec_dc = list(spec)
        spec_dc[2] = None  # vertex 01 cofactor gets a DC
        spec_dc[3] = None
        isf_dc = isf_from_spec(bdd, spec_dc, [0, 1, 2])
        dc_ncc = ncc(bdd, [isf_dc], [0, 1])
        assert dc_ncc <= complete_ncc

    def test_clique_needs_common_intersection(self, bdd):
        # Three pairwise-compatible cofactors with empty triple
        # intersection must not fall into one class.
        # Build over bound (x0,x1), free (x2,x3): vertex 00 -> a,
        # 01 -> b, 10 -> c, 11 -> conflict-free filler.
        # a = [1,1,-,-]; b = [1,-,0,-]; c = [-,1,0,-] over minterms of
        # (x2,x3): pairwise compatible, jointly incompatible?
        # a&b: [1,1,0,-] ok; a&c: [1,1,0,-]; b&c: [1,-,0,-]&[-,1,0,-] =
        # [1,1,0,-]; a&b&c = [1,1,0,-] nonempty -> bad example.
        # Use: a = [1,-]; b = [-,1]... over one free var x2:
        # a: f(0)=1, f(1)=DC ; b: f(0)=DC, f(1)=0 ; c: f(0)=DC wait.
        # Classic: a=[1,-], b=[-,0], c=[0,1]? a~b ([1,0]), a~c? [1,-]
        # vs [0,1] -> conflict at x2=0. Use a=[1,-], b=[-,1], c=[0,1]:
        # a~b = [1,1]; a~c conflict. Pairwise-but-not-jointly needs care:
        # a=[1,-], b=[-,0]: merge [1,0]; c=[1,0] compatible with both and
        # the merge. Take d=[-,1]: d~a ([1,1]), d~b? [- ,1] vs [-,0]
        # conflict.
        # Simplest honest check: whatever the cover returns, every class
        # must have a non-empty merged interval.
        rng = random.Random(19)
        for _ in range(20):
            spec = [rng.choice([0, 1, None]) for _ in range(16)]
            isf = isf_from_spec(bdd, spec, [0, 1, 2, 3])
            cls = classes_for(bdd, [isf], [0, 1])
            for c in range(cls.ncc):
                merged = cls.merged[c][0]
                assert bdd.leq(merged.lo, merged.hi)
                # And every member's interval contains the merged one.
                cof = vertex_cofactors(bdd, [isf], [0, 1])
                for v in cls.classes[c]:
                    assert merged.refines(bdd, cof[v][0])

    def test_merged_interval_is_exact_intersection(self, bdd):
        rng = random.Random(29)
        for _ in range(10):
            spec = [rng.choice([0, 1, None]) for _ in range(16)]
            isf = isf_from_spec(bdd, spec, [0, 1, 2, 3])
            cls = classes_for(bdd, [isf], [0, 1])
            cof = vertex_cofactors(bdd, [isf], [0, 1])
            for c, members in enumerate(cls.classes):
                lo = bdd.disjoin([cof[v][0].lo for v in members])
                hi = bdd.conjoin([cof[v][0].hi for v in members])
                assert cls.merged[c][0].lo == lo
                assert cls.merged[c][0].hi == hi


class TestAssignByClasses:
    def test_narrowing_only(self, bdd):
        rng = random.Random(37)
        for _ in range(15):
            spec = [rng.choice([0, 1, None]) for _ in range(16)]
            isf = isf_from_spec(bdd, spec, [0, 1, 2, 3])
            cls = classes_for(bdd, [isf], [0, 1])
            [narrowed] = assign_by_classes(bdd, [isf], cls)
            assert narrowed.refines(bdd, isf)

    def test_idempotent_class_count(self, bdd):
        # After assignment, recomputing classes gives the same count
        # (equal vectors are never split).
        rng = random.Random(41)
        for _ in range(15):
            spec = [rng.choice([0, 1, None]) for _ in range(16)]
            isf = isf_from_spec(bdd, spec, [0, 1, 2, 3])
            cls = classes_for(bdd, [isf], [0, 1])
            [narrowed] = assign_by_classes(bdd, [isf], cls)
            cls2 = classes_for(bdd, [narrowed], [0, 1])
            assert cls2.ncc <= cls.ncc

    def test_complete_function_unchanged(self, bdd):
        f = bdd.apply_xor(bdd.var(0), bdd.var(2))
        isf = ISF.complete(f)
        cls = classes_for(bdd, [isf], [0, 1])
        [same] = assign_by_classes(bdd, [isf], cls)
        assert same.lo == f
        assert same.hi == f


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from([0, 1, None]), min_size=16, max_size=16),
       st.integers(min_value=1, max_value=3))
def test_step3_never_increases_joint_lower_bound(spec, p):
    """Paper claim: the single-output assignment (step 3) cannot increase
    the step-2 lower bound."""
    bdd = BDD(4)
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    isf = ISF.create(bdd, bdd.from_truth_table(onset, [0, 1, 2, 3]),
                     bdd.from_truth_table(upper, [0, 1, 2, 3]))
    bound = list(range(p))
    joint_before = classes_for(bdd, [isf], bound)
    [after2] = assign_by_classes(bdd, [isf], joint_before)
    cls3 = classes_for(bdd, [after2], bound)
    [after3] = assign_by_classes(bdd, [after2], cls3)
    joint_after = classes_for(bdd, [after3], bound)
    assert joint_after.min_r <= joint_before.min_r
