"""Cross-check: the BDD cut-counting ncc equals the cofactor-based ncc."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import ncc
from repro.decomp.cut_count import cut_nodes, ncc_via_cut, ncc_with_reorder


class TestCutMethod:
    def test_requires_bound_on_top(self):
        bdd = BDD(4)
        f = bdd.apply_xor(bdd.var(0), bdd.var(3))
        with pytest.raises(ValueError):
            cut_nodes(bdd, f, [3])  # bound var below free var 0

    def test_requires_nonempty_sets(self):
        bdd = BDD(3)
        f = bdd.var(0)
        with pytest.raises(ValueError):
            cut_nodes(bdd, f, [0])  # no free variables

    def test_simple_known_value(self):
        # majority(x0,x1,x2), bound {x0,x1}: classes 0, x2, 1 -> ncc 3.
        bdd = BDD(3)
        table = [1 if bin(k).count("1") >= 2 else 0 for k in range(8)]
        f = bdd.from_truth_table(table, [0, 1, 2])
        assert ncc_via_cut(bdd, f, [0, 1]) == 3

    def test_matches_cofactor_method_with_natural_order(self):
        rng = random.Random(349)
        for _ in range(20):
            bdd = BDD(5)
            table = [rng.randint(0, 1) for _ in range(32)]
            f = bdd.from_truth_table(table, [0, 1, 2, 3, 4])
            for p in (1, 2, 3):
                bound = list(range(p))
                expected = ncc(bdd, [ISF.complete(f)], bound)
                assert ncc_via_cut(bdd, f, bound) == expected

    def test_with_reorder_arbitrary_bound(self):
        rng = random.Random(353)
        for _ in range(10):
            bdd = BDD(5)
            table = [rng.randint(0, 1) for _ in range(32)]
            f = bdd.from_truth_table(table, [0, 1, 2, 3, 4])
            bound = rng.sample(range(5), 2)
            expected = ncc(bdd, [ISF.complete(f)], bound)
            got, _ = ncc_with_reorder(bdd, f, bound)
            assert got == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1),
                min_size=16, max_size=16),
       st.integers(min_value=1, max_value=2))
def test_cut_equals_cofactor_property(table, p):
    bdd = BDD(4)
    f = bdd.from_truth_table(table, [0, 1, 2, 3])
    bound = list(range(p))
    if not (bdd.support(f) - set(bound)):
        return  # no free variables
    if not (bdd.support(f) & set(bound)):
        # f independent of the bound: exactly one class.
        assert ncc(bdd, [ISF.complete(f)], bound) == 1
        return
    assert ncc_via_cut(bdd, f, bound) == ncc(bdd, [ISF.complete(f)],
                                             bound)
