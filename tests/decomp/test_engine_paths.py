"""Tests for specific engine control paths: cooldown, node budget,
components, alpha bundles in balanced mode."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.decomp.recursive import DecompositionEngine


def random_mf(seed, n, m):
    rng = random.Random(seed)
    bdd = BDD(n)
    tables = [[rng.randint(0, 1) for _ in range(1 << n)]
              for _ in range(m)]
    return MultiFunction.from_truth_tables(bdd, list(range(n)), tables)


class TestNodeBudget:
    def test_tiny_node_budget_triggers_fallback(self):
        func = random_mf(601, 8, 2)
        engine = DecompositionEngine(n_lut=4, node_budget=10)
        net = engine.run(func)
        assert engine.stats.budget_exhausted
        # The fallback still realises the function.
        for k in range(0, 256, 7):
            bits = [(k >> (7 - i)) & 1 for i in range(8)]
            got = net.eval_outputs(dict(zip(func.input_names, bits)))
            expected = func.eval(dict(zip(func.inputs, bits)))
            assert [got[n] for n in func.output_names] == expected

    def test_generous_node_budget_untouched(self):
        func = random_mf(607, 6, 1)
        engine = DecompositionEngine(n_lut=4, node_budget=10_000_000)
        net = engine.run(func)
        assert not engine.stats.budget_exhausted


class TestComponents:
    def test_disjoint_outputs_split(self):
        # f0 over x0..x2, f1 over x3..x5: supports are disjoint.
        bdd = BDD(6)
        rng = random.Random(613)
        t0 = [rng.randint(0, 1) for _ in range(8)]
        t1 = [rng.randint(0, 1) for _ in range(8)]
        f0 = bdd.from_truth_table(t0, [0, 1, 2])
        f1 = bdd.from_truth_table(t1, [3, 4, 5])
        from repro.boolfunc.spec import ISF
        func = MultiFunction(bdd, list(range(6)),
                             [ISF.complete(f0), ISF.complete(f1)])
        engine = DecompositionEngine(n_lut=3)
        net = engine.run(func)
        # Each output fits one 3-LUT (support 3) -> at most 2 LUTs.
        assert net.lut_count <= 2


class TestShannonCooldown:
    def test_cooldown_still_correct(self):
        # A function engineered to defeat the window search: dense random
        # 8-var function where every 2..5-bound set has high ncc; the
        # engine must fall through Shannon (possibly with cooldown) and
        # remain correct.
        func = random_mf(617, 8, 1)
        engine = DecompositionEngine(n_lut=3, max_candidates=2,
                                     try_candidates=1)
        net = engine.run(func)
        for k in range(0, 256, 5):
            bits = [(k >> (7 - i)) & 1 for i in range(8)]
            got = net.eval_outputs(dict(zip(func.input_names, bits)))
            expected = func.eval(dict(zip(func.inputs, bits)))
            assert [got[n] for n in func.output_names] == expected


class TestBalancedAlphaBundles:
    def test_wide_alpha_recursion(self):
        # Balanced mode on 12 inputs forces p ~ 6 > n_lut: the alphas are
        # decomposed recursively as a bundle.
        from repro.arith.adders import adder_function
        func = adder_function(6)  # 12 inputs
        engine = DecompositionEngine(n_lut=3, balanced=True)
        net = engine.run(func)
        assert net.max_fanin() <= 3
        rng = random.Random(619)
        for _ in range(100):
            x = rng.randrange(64)
            y = rng.randrange(64)
            bits = {f"x{i}": (x >> i) & 1 for i in range(6)}
            bits.update({f"y{i}": (y >> i) & 1 for i in range(6)})
            out = net.eval_outputs(bits)
            assert sum(out[f"s{i}"] << i for i in range(7)) == x + y
