"""End-to-end consistency of multi-output encodings: recomposition of
every output through the SHARED alphas must reproduce the bundle."""

import itertools
import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import classes_for
from repro.decomp.encoding import build_composition_for_output
from repro.decomp.multi import select_common_alphas


@pytest.mark.parametrize("seed", range(8))
def test_shared_recomposition(seed):
    rng = random.Random(900 + seed)
    bdd = BDD(5)
    functions = [bdd.from_truth_table(
        [rng.randint(0, 1) for _ in range(32)], [0, 1, 2, 3, 4])
        for _ in range(3)]
    bound = [0, 1, 2]
    per_out = [classes_for(bdd, [ISF.complete(f)], bound)
               for f in functions]
    pool, encodings = select_common_alphas(bdd, per_out)

    # One shared set of alpha variables for the whole bundle.
    alpha_vars = {i: bdd.add_var() for i in range(len(pool))}
    alpha_bdds = {i: a.to_bdd(bdd, bound) for i, a in enumerate(pool)}

    for f, enc in zip(functions, encodings):
        g = build_composition_for_output(
            bdd, enc, 0,
            {i: alpha_vars[i] for i in enc.alpha_indices})
        recomposed = bdd.vector_compose(
            g.lo, {alpha_vars[i]: alpha_bdds[i]
                   for i in enc.alpha_indices})
        assert recomposed == f, f"output recomposition failed (seed "\
            f"{seed})"


def test_identical_outputs_one_encoding():
    bdd = BDD(4)
    rng = random.Random(911)
    table = [rng.randint(0, 1) for _ in range(16)]
    f = bdd.from_truth_table(table, [0, 1, 2, 3])
    bound = [0, 1]
    per_out = [classes_for(bdd, [ISF.complete(f)], bound)
               for _ in range(4)]
    pool, encodings = select_common_alphas(bdd, per_out)
    used = {i for e in encodings for i in e.alpha_indices}
    # Four identical outputs need exactly one output's worth of alphas.
    assert len(used) == encodings[0].r
