"""Tests for the single-output one-step decomposition API."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.decomp.single import decompose_single


class TestDecomposeSingle:
    def test_majority_xor_example(self):
        bdd = BDD(5)
        maj = bdd.from_truth_table(
            [1 if bin(k).count("1") >= 2 else 0 for k in range(8)],
            [0, 1, 2])
        f = bdd.apply_xor(maj, bdd.apply_and(bdd.var(3), bdd.var(4)))
        step = decompose_single(bdd, f, [0, 1, 2])
        assert step.ncc == 2
        assert step.r == 1
        assert step.is_nontrivial()
        assert step.verify(f)

    def test_doctest_runs(self):
        import doctest
        import repro.decomp.single as module
        results = doctest.testmod(module)
        assert results.failed == 0

    def test_random_functions_recompose(self):
        rng = random.Random(673)
        for _ in range(15):
            bdd = BDD(5)
            table = [rng.randint(0, 1) for _ in range(32)]
            f = bdd.from_truth_table(table, [0, 1, 2, 3, 4])
            if not ({0, 1} & bdd.support(f)) \
                    or not (bdd.support(f) - {0, 1}):
                continue
            step = decompose_single(bdd, f, [0, 1])
            assert step.verify(f)
            assert step.r <= 2

    def test_validation(self):
        bdd = BDD(3)
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        with pytest.raises(ValueError):
            decompose_single(bdd, f, [2])  # disjoint from support
        with pytest.raises(ValueError):
            decompose_single(bdd, f, [0, 1])  # no free variables left

    def test_unused_codes_are_dc(self):
        bdd = BDD(5)
        # 3 classes -> r=2 -> one unused code -> g incomplete.
        table = [1 if bin(k).count("1") >= 2 else 0 for k in range(8)]
        maj = bdd.from_truth_table(table, [0, 1, 2])
        f = bdd.apply_and(maj, bdd.var(3))
        # bound {0,1}: classes 0 / x2-dependent... compute directly.
        step = decompose_single(bdd, f, [0, 1])
        if step.ncc == 3:
            assert not step.g.is_complete()
        assert step.verify(f)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=32,
                max_size=32),
       st.integers(min_value=2, max_value=3))
def test_single_step_roundtrip_property(table, p):
    bdd = BDD(5)
    f = bdd.from_truth_table(table, [0, 1, 2, 3, 4])
    bound = list(range(p))
    support = bdd.support(f)
    if not (set(bound) & support) or not (support - set(bound)):
        return
    step = decompose_single(bdd, f, bound)
    assert step.verify(f)
    # r respects the information-theoretic bound.
    assert (1 << step.r) >= step.ncc
