"""One engine instance across several runs must behave like fresh ones.

Every per-run memo (score memo, MUX memo, Shannon-cooldown flag, DSD
irreducible-interval memo, stats, profiler) keys on node ids or signals
of the previous run's network; any of them surviving ``run()`` silently
corrupts the next result.  These tests pin the reset-at-entry contract.
"""

import random

from repro.bdd.manager import BDD
from repro.decomp.recursive import DecompositionEngine
from tests.decomp.test_recursive import random_mf
from repro.verify.equiv import check_extension


def _blif(func, engine):
    return engine.run(func).to_blif("reused")


class TestCrossRunIsolation:
    def test_second_run_matches_fresh_engine(self):
        rng = random.Random(61)
        bdd_a = BDD(7)
        func_a = random_mf(bdd_a, rng, 7, 2, dc_prob=0.2)
        bdd_b = BDD(7)
        func_b = random_mf(bdd_b, rng, 7, 3, dc_prob=0.2)

        fresh = DecompositionEngine()
        expected = _blif(func_b, fresh)

        reused = DecompositionEngine()
        _blif(func_a, reused)
        got = _blif(func_b, reused)
        assert got == expected
        assert check_extension(func_b, reused.run(func_b)).equivalent

    def test_same_function_twice_is_deterministic(self):
        rng = random.Random(67)
        bdd = BDD(7)
        func = random_mf(bdd, rng, 7, 2)
        engine = DecompositionEngine()
        assert _blif(func, engine) == _blif(func, engine)

    def test_stats_and_memos_reset_per_run(self):
        rng = random.Random(71)
        bdd = BDD(6)
        func = random_mf(bdd, rng, 6, 2)
        engine = DecompositionEngine()
        engine.run(func)
        first_steps = engine.stats.decomposition_steps
        first_dsd = dict(engine.stats.dsd)
        first_counter = engine._dsd_counter
        engine.run(func)
        # Counters restart, they do not accumulate.
        assert engine.stats.decomposition_steps == first_steps
        assert dict(engine.stats.dsd) == first_dsd
        assert engine._dsd_counter == first_counter

    def test_reset_clears_dsd_memo(self):
        rng = random.Random(73)
        bdd = BDD(6)
        func = random_mf(bdd, rng, 6, 2)
        engine = DecompositionEngine()
        engine.run(func)
        engine._dsd_irreducible.add((123456, 654321, False))
        engine._score_memo[("poison",)] = (0, 0, 0)
        engine.run(func)
        assert (123456, 654321, False) not in engine._dsd_irreducible
        assert ("poison",) not in engine._score_memo
