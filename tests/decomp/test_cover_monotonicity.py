"""The onset-seeded clique cover dominates plain 0-completion.

This property is what makes ``mulop-dc`` never lose to ``mulopII`` on
the same bound set: computing compatible classes of an ISF can only
MERGE (never split) the classes obtained by assigning all don't cares
to 0 first.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import classes_for


def build_isf(bdd, spec, variables):
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    return ISF.create(bdd,
                      bdd.from_truth_table(onset, variables),
                      bdd.from_truth_table(upper, variables))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from([0, 1, None]), min_size=32, max_size=32),
       st.integers(min_value=1, max_value=3))
def test_isf_cover_never_exceeds_completion(spec, p):
    bdd = BDD(5)
    isf = build_isf(bdd, spec, [0, 1, 2, 3, 4])
    bound = list(range(p))
    isf_ncc = classes_for(bdd, [isf], bound).ncc
    completed = ISF.complete(isf.lo)
    lo_ncc = classes_for(bdd, [completed], bound).ncc
    assert isf_ncc <= lo_ncc


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_multi_output_cover_never_exceeds_completion(seed):
    rng = random.Random(seed)
    bdd = BDD(5)
    isfs = []
    for _ in range(3):
        spec = [rng.choice([0, 1, None]) for _ in range(32)]
        isfs.append(build_isf(bdd, spec, [0, 1, 2, 3, 4]))
    bound = [0, 1, 2]
    joint_isf = classes_for(bdd, isfs, bound).ncc
    completed = [ISF.complete(i.lo) for i in isfs]
    joint_lo = classes_for(bdd, completed, bound).ncc
    assert joint_isf <= joint_lo
