"""Tests for the FlowMap baseline mapper."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.mapping.flowmap import flowmap
from repro.verify.equiv import check_equivalence


def random_mf(seed, n, m):
    rng = random.Random(seed)
    bdd = BDD(n)
    tables = [[rng.randint(0, 1) for _ in range(1 << n)]
              for _ in range(m)]
    return MultiFunction.from_truth_tables(bdd, list(range(n)), tables)


class TestFlowMap:
    @pytest.mark.parametrize("seed", range(5))
    def test_functionally_correct(self, seed):
        func = random_mf(seed, 6, 2)
        net = flowmap(func, k=4)
        assert net.max_fanin() <= 4
        assert check_equivalence(func, net)

    def test_small_function_single_lut(self):
        func = random_mf(97, 4, 1)
        net = flowmap(func, k=5)
        assert net.lut_count <= 1
        assert net.depth() <= 1

    def test_depth_no_worse_than_greedy_cut(self):
        from repro.mapping.baselines import structural_cut_map
        for seed in range(4):
            func = random_mf(200 + seed, 7, 1)
            fm = flowmap(func, k=4)
            greedy = structural_cut_map(func, n_lut=4)
            assert check_equivalence(func, fm)
            # FlowMap is depth-optimal on the same subject graph.
            assert fm.depth() <= greedy.depth()

    def test_constant_and_passthrough(self):
        bdd = BDD(2)
        from repro.boolfunc.spec import ISF
        func = MultiFunction(bdd, [0, 1],
                             [ISF.complete(BDD.TRUE),
                              ISF.complete(bdd.var(1))])
        net = flowmap(func)
        out = net.eval_outputs({"x0": 0, "x1": 1})
        assert out[func.output_names[0]] == 1
        assert out[func.output_names[1]] == 1

    def test_wide_function(self):
        func = random_mf(303, 8, 1)
        net = flowmap(func, k=5)
        assert net.max_fanin() <= 5
        assert check_equivalence(func, net)
