"""Tests for the baseline mappers (mux-tree and structural cut)."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.mapping.baselines import mux_tree_map, structural_cut_map


def random_mf(rng, n, m):
    bdd = BDD(n)
    tables = [[rng.randint(0, 1) for _ in range(1 << n)] for _ in range(m)]
    return MultiFunction.from_truth_tables(bdd, list(range(n)), tables)


def check(func, net):
    n = func.num_inputs
    for k in range(1 << n):
        bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
        expected = func.eval(dict(zip(func.inputs, bits)))
        got = net.eval_outputs(dict(zip(func.input_names, bits)))
        for name, value in zip(func.output_names, expected):
            assert got[name] == value


class TestMuxTree:
    def test_correct(self):
        rng = random.Random(197)
        for _ in range(8):
            func = random_mf(rng, 7, 2)
            net = mux_tree_map(func, n_lut=5)
            assert net.max_fanin() <= 5
            check(func, net)

    def test_small_function_single_lut(self):
        rng = random.Random(199)
        func = random_mf(rng, 4, 1)
        net = mux_tree_map(func, n_lut=5)
        assert net.lut_count <= 1

    def test_constant(self):
        bdd = BDD(3)
        func = MultiFunction.from_truth_tables(bdd, [0, 1, 2],
                                               [[1] * 8])
        net = mux_tree_map(func)
        assert net.lut_count == 0


class TestStructuralCut:
    def test_correct(self):
        rng = random.Random(211)
        for _ in range(8):
            func = random_mf(rng, 6, 2)
            net = structural_cut_map(func, n_lut=5)
            assert net.max_fanin() <= 5
            check(func, net)

    def test_wide_function(self):
        rng = random.Random(223)
        func = random_mf(rng, 8, 1)
        net = structural_cut_map(func, n_lut=5)
        assert net.max_fanin() <= 5
        # spot-check correctness
        for k in range(0, 256, 7):
            bits = [(k >> (7 - i)) & 1 for i in range(8)]
            expected = func.eval(dict(zip(func.inputs, bits)))
            got = net.eval_outputs(dict(zip(func.input_names, bits)))
            assert got["f0"] == expected[0]


class TestBaselineVsDecomposition:
    def test_decomposition_beats_muxtree_on_symmetric(self):
        # On a symmetric function the paper's method shines; the naive
        # mapper pays full price.
        bdd = BDD(9)
        table = [1 if bin(k).count('1') in (3, 4, 5, 6) else 0
                 for k in range(512)]
        func = MultiFunction.from_truth_tables(bdd, list(range(9)),
                                               [table])
        from repro.decomp.recursive import decompose
        ours = decompose(func, n_lut=5)
        theirs = mux_tree_map(func, n_lut=5)
        assert ours.lut_count <= theirs.lut_count


class TestBitParallelCutMap:
    def test_wide_block_function(self):
        # Exercise the word-level cone simulation on a deeper circuit.
        from repro.bench.registry import benchmark
        from repro.verify.equiv import check_equivalence
        func = benchmark("misex1")
        net = structural_cut_map(func, n_lut=5)
        assert check_equivalence(func, net)
