"""Tests for the LUT network container."""

import pytest

from repro.mapping.lutnet import CONST0, CONST1, LutNetwork


@pytest.fixture
def net():
    n = LutNetwork()
    for name in ("a", "b", "c"):
        n.add_input(name)
    return n


class TestConstruction:
    def test_add_and_eval(self, net):
        s = net.add_lut(["a", "b"], [0, 0, 0, 1])
        net.set_output("y", s)
        assert net.eval_outputs({"a": 1, "b": 1, "c": 0})["y"] == 1
        assert net.eval_outputs({"a": 1, "b": 0, "c": 0})["y"] == 0

    def test_duplicate_input_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_input("a")

    def test_unknown_fanin_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_lut(["zz"], [0, 1])

    def test_bad_table_length(self, net):
        with pytest.raises(ValueError):
            net.add_lut(["a", "b"], [0, 1])


class TestSimplification:
    def test_structural_hashing(self, net):
        s1 = net.add_lut(["a", "b"], [0, 1, 1, 0])
        s2 = net.add_lut(["a", "b"], [0, 1, 1, 0])
        assert s1 == s2
        assert net.lut_count == 1

    def test_constant_table(self, net):
        assert net.add_lut(["a"], [1, 1]) == CONST1
        assert net.add_lut(["a", "b"], [0, 0, 0, 0]) == CONST0
        assert net.lut_count == 0

    def test_buffer_elimination(self, net):
        assert net.add_lut(["b"], [0, 1]) == "b"
        assert net.lut_count == 0

    def test_unused_fanin_removed(self, net):
        # Table depends only on 'a' (MSB): projection -> buffer to 'a'.
        s = net.add_lut(["a", "b"], [0, 0, 1, 1])
        assert s == "a"

    def test_inverter_is_a_node(self, net):
        s = net.add_lut(["a"], [1, 0])
        assert s in net.nodes
        net.set_output("y", s)
        assert net.eval_outputs({"a": 0, "b": 0, "c": 0})["y"] == 1

    def test_constant_fanin_folded(self, net):
        s = net.add_lut(["a", CONST1], [0, 0, 0, 1])  # a AND 1 == a
        assert s == "a"
        s2 = net.add_lut(["a", CONST0], [0, 1, 1, 1])  # a OR 0 == a
        assert s2 == "a"

    def test_duplicate_fanin_merged(self, net):
        s = net.add_lut(["a", "a"], [0, 0, 0, 1])  # a AND a == a
        assert s == "a"
        s2 = net.add_lut(["a", "a"], [0, 1, 1, 0])  # a XOR a == 0
        assert s2 == CONST0


class TestAnalysis:
    def test_depth(self, net):
        s1 = net.add_lut(["a", "b"], [0, 1, 1, 1])
        s2 = net.add_lut([s1, "c"], [0, 0, 0, 1])
        net.set_output("y", s2)
        assert net.depth() == 2

    def test_depth_constant_output(self, net):
        net.set_output("y", CONST0)
        assert net.depth() == 0

    def test_max_fanin(self, net):
        net.add_lut(["a", "b", "c"], [0] * 7 + [1])
        assert net.max_fanin() == 3

    def test_histogram(self, net):
        net.add_lut(["a", "b"], [0, 1, 1, 0])
        net.add_lut(["a", "b", "c"], [0, 1] * 4)
        hist = net.histogram()
        assert hist.get(2) == 1
        # 3-input table [0,1]*4 only depends on LSB 'c' -> buffer;
        # so no 3-input node exists.
        assert 3 not in hist

    def test_node_list_topological(self, net):
        s1 = net.add_lut(["a", "b"], [0, 1, 1, 1])
        s2 = net.add_lut([s1, "c"], [0, 1, 1, 1])
        names = [n.name for n in net.node_list()]
        assert names.index(s1) < names.index(s2)


class TestBlifExport:
    def test_roundtrip_through_parser(self, net):
        from repro.boolfunc.blif import parse_blif
        s1 = net.add_lut(["a", "b"], [0, 1, 1, 0])
        s2 = net.add_lut([s1, "c"], [0, 0, 0, 1])
        net.set_output("y", s2)
        text = net.to_blif()
        mf = parse_blif(text)
        for k in range(8):
            bits = {"a": (k >> 2) & 1, "b": (k >> 1) & 1, "c": k & 1}
            expected = ((bits["a"] ^ bits["b"]) & bits["c"])
            got = mf.eval({mf.inputs[i]: bits[n]
                           for i, n in enumerate(["a", "b", "c"])})
            assert got == [expected]


class TestDotExport:
    def test_dot_structure(self):
        net = LutNetwork()
        for name in ("a", "b"):
            net.add_input(name)
        s = net.add_lut(["a", "b"], [0, 1, 1, 0])
        net.set_output("y", s)
        dot = net.to_dot()
        assert "digraph LutNetwork" in dot
        assert '"a" [shape=box]' in dot
        assert "2-LUT" in dot
        assert 'out_y' in dot


class TestBlifConstOutputs:
    def test_const_outputs_roundtrip(self):
        from repro.boolfunc.blif import parse_blif
        net = LutNetwork()
        net.add_input("a")
        net.set_output("one", CONST1)
        net.set_output("zero", CONST0)
        net.set_output("thru", "a")
        mf = parse_blif(net.to_blif())
        for bit in (0, 1):
            values = mf.eval({mf.inputs[0]: bit})
            by_name = dict(zip(mf.output_names, values))
            assert by_name["one"] == 1
            assert by_name["zero"] == 0
            assert by_name["thru"] == bit
