"""Tests for the XC4000 packing extension."""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.decomp.recursive import decompose
from repro.mapping.lutnet import LutNetwork
from repro.mapping.xc4000 import clb_count_xc4000, pack_xc4000


def parity_lut(net, fanins):
    k = len(fanins)
    table = [bin(idx).count("1") & 1 for idx in range(1 << k)]
    return net.add_lut(fanins, table)


class TestPacking:
    def test_h_tree_packs_three(self):
        net = LutNetwork()
        for name in "abcdefgh":
            net.add_input(name)
        f = parity_lut(net, ["a", "b", "c", "d"])
        g = parity_lut(net, ["e", "f", "g", "h"])
        h = net.add_lut([f, g], [0, 1, 1, 0])
        net.set_output("y", h)
        clbs = pack_xc4000(net)
        assert len(clbs) == 1
        assert set(clbs[0]) == {f, g, h}

    def test_shared_fanout_blocks_h_tree(self):
        net = LutNetwork()
        for name in "abcdefgh":
            net.add_input(name)
        f = parity_lut(net, ["a", "b", "c", "d"])
        g = parity_lut(net, ["e", "f", "g", "h"])
        h = net.add_lut([f, g], [0, 1, 1, 0])
        net.set_output("y", h)
        net.set_output("z", f)  # f has external fanout -> not absorbable
        clbs = pack_xc4000(net)
        # f cannot be swallowed; g+h or other pairing, f separate/paired.
        assert len(clbs) == 2

    def test_pairing_leftovers(self):
        net = LutNetwork()
        for name in "abcd":
            net.add_input(name)
        luts = [parity_lut(net, ["a", "b"]),
                net.add_lut(["c", "d"], [0, 0, 0, 1]),
                net.add_lut(["a", "c"], [0, 1, 1, 1])]
        for i, s in enumerate(luts):
            net.set_output(f"o{i}", s)
        clbs = pack_xc4000(net)
        assert len(clbs) == 2  # one pair + one single

    def test_rejects_wide_luts(self):
        net = LutNetwork()
        for name in "abcde":
            net.add_input(name)
        s = parity_lut(net, list("abcde"))
        net.set_output("y", s)
        with pytest.raises(ValueError):
            pack_xc4000(net)

    def test_every_lut_exactly_once(self):
        rng = random.Random(647)
        bdd = BDD(7)
        tables = [[rng.randint(0, 1) for _ in range(128)]
                  for _ in range(3)]
        func = MultiFunction.from_truth_tables(bdd, list(range(7)),
                                               tables)
        net = decompose(func, n_lut=4)
        clbs = pack_xc4000(net)
        flat = [n for clb in clbs for n in clb]
        assert sorted(flat) == sorted(n.name for n in net.node_list())

    def test_xc4000_at_most_xc3000_plus_margin(self):
        # Packing with H absorption should not be worse than simple
        # pairing of the same network.
        rng = random.Random(653)
        bdd = BDD(7)
        tables = [[rng.randint(0, 1) for _ in range(128)]
                  for _ in range(2)]
        func = MultiFunction.from_truth_tables(bdd, list(range(7)),
                                               tables)
        net = decompose(func, n_lut=4)
        packed = clb_count_xc4000(net)
        simple_pairs = (net.lut_count + 1) // 2
        assert packed <= simple_pairs
