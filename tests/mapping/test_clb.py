"""Tests for XC3000 CLB merging."""

import pytest

from repro.mapping.clb import clb_count, merge_luts_xc3000, mergeable
from repro.mapping.lutnet import LutNetwork


def make_net(specs):
    """specs: list of fanin-name lists; creates one XOR-chain LUT each."""
    net = LutNetwork()
    created = set()
    for fanins in specs:
        for f in fanins:
            if f not in created:
                net.add_input(f)
                created.add(f)
    for i, fanins in enumerate(specs):
        k = len(fanins)
        # parity table (depends on all fanins, never simplifies away)
        table = [bin(idx).count("1") & 1 for idx in range(1 << k)]
        s = net.add_lut(fanins, table)
        net.set_output(f"o{i}", s)
    return net


class TestMergeable:
    def test_small_pair(self):
        assert mergeable({"a", "b"}, {"c", "d"})
        assert mergeable({"a", "b", "c", "d"}, {"a", "b", "c", "d"})

    def test_too_many_union(self):
        assert not mergeable({"a", "b", "c"}, {"d", "e", "f"})

    def test_five_input_lut_never_merges(self):
        assert not mergeable({"a", "b", "c", "d", "e"}, {"a"})


class TestMerging:
    def test_disjoint_four_input_luts_do_not_merge(self):
        net = make_net([["a", "b", "c", "d"], ["e", "f", "g", "h"]])
        assert clb_count(net) == 2

    def test_shared_support_merges(self):
        net = make_net([["a", "b", "c", "d"], ["a", "b", "c", "e"]])
        assert clb_count(net) == 1

    def test_single_five_input_lut(self):
        net = make_net([["a", "b", "c", "d", "e"]])
        assert clb_count(net) == 1

    def test_five_input_lut_plus_small(self):
        net = make_net([["a", "b", "c", "d", "e"], ["a", "b"]])
        assert clb_count(net) == 2

    def test_matching_is_maximum(self):
        # Four 2-input LUTs over {a, b, c}: all pairs mergeable -> 2 CLBs.
        net = make_net([["a", "b"], ["b", "c"], ["a", "c"],
                        ["a", "b", "c"]])
        assert clb_count(net) == 2

    def test_rejects_oversized_luts(self):
        net = make_net([["a", "b", "c", "d", "e", "f"]])
        with pytest.raises(ValueError):
            merge_luts_xc3000(net)

    def test_merge_structure(self):
        net = make_net([["a", "b"], ["a", "c"]])
        clbs = merge_luts_xc3000(net)
        assert len(clbs) == 1
        assert len(clbs[0]) == 2

    def test_empty_network(self):
        net = LutNetwork()
        net.add_input("a")
        net.set_output("y", "a")
        assert clb_count(net) == 0
