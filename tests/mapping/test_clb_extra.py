"""Additional CLB-merging tests: matching quality and structure."""

import random

import pytest

from repro.mapping.clb import clb_count, merge_luts_xc3000
from repro.mapping.lutnet import LutNetwork


def parity_net(specs):
    net = LutNetwork()
    created = set()
    for fanins in specs:
        for f in fanins:
            if f not in created:
                net.add_input(f)
                created.add(f)
    for i, fanins in enumerate(specs):
        k = len(fanins)
        table = [bin(idx).count("1") & 1 for idx in range(1 << k)]
        net.set_output(f"o{i}", net.add_lut(fanins, table))
    return net


class TestMatchingQuality:
    def test_chain_pairs_optimally(self):
        # Chain a-b, b-c, c-d, d-e: maximum matching pairs 2 of the 4.
        net = parity_net([["a", "b"], ["b", "c"], ["c", "d"], ["d", "e"]])
        assert clb_count(net) == 2

    def test_odd_chain(self):
        net = parity_net([["a", "b"], ["b", "c"], ["c", "d"]])
        assert clb_count(net) == 2  # one pair + one single

    def test_star_cannot_overpair(self):
        # Five 4-input LUTs all sharing the same 4 inputs: any two merge.
        net = parity_net([["a", "b", "c", "d"]] * 5)
        # Structural hashing collapses identical LUTs to one!
        assert net.lut_count == 1
        assert clb_count(net) == 1

    def test_distinct_functions_same_support(self):
        net = LutNetwork()
        for name in "abcd":
            net.add_input(name)
        tables = [
            [bin(i).count("1") & 1 for i in range(16)],          # parity
            [1 if bin(i).count("1") >= 2 else 0 for i in range(16)],
            [1 if bin(i).count("1") == 2 else 0 for i in range(16)],
        ]
        for i, table in enumerate(tables):
            net.set_output(f"o{i}", net.add_lut(list("abcd"), table))
        assert net.lut_count == 3
        assert clb_count(net) == 2

    def test_mixed_sizes(self):
        rng = random.Random(9)
        specs = []
        letters = [f"i{k}" for k in range(12)]
        for _ in range(9):
            size = rng.randint(2, 5)
            specs.append(rng.sample(letters, size))
        net = parity_net(specs)
        clbs = merge_luts_xc3000(net)
        # Every CLB is a single or a legal pair.
        names = {node.name: set(node.fanins)
                 for node in net.node_list()}
        for clb in clbs:
            assert len(clb) in (1, 2)
            if len(clb) == 2:
                a, b = clb
                assert len(names[a]) <= 4
                assert len(names[b]) <= 4
                assert len(names[a] | names[b]) <= 5
        # Every LUT appears exactly once.
        flat = [name for clb in clbs for name in clb]
        assert sorted(flat) == sorted(names)


class TestGreedyBaseline:
    def test_matching_never_worse_than_greedy(self):
        import random
        from repro.mapping.clb import merge_luts_greedy
        rng = random.Random(77)
        for trial in range(10):
            specs = []
            letters = [f"i{k}" for k in range(10)]
            for _ in range(8):
                size = rng.randint(2, 5)
                specs.append(rng.sample(letters, size))
            net = parity_net(specs)
            greedy = len(merge_luts_greedy(net))
            matched = len(merge_luts_xc3000(net))
            assert matched <= greedy

    def test_greedy_structure_valid(self):
        from repro.mapping.clb import merge_luts_greedy
        net = parity_net([["a", "b"], ["b", "c"], ["c", "d"], ["d", "e"]])
        clbs = merge_luts_greedy(net)
        flat = [n for clb in clbs for n in clb]
        assert sorted(flat) == sorted(n.name for n in net.node_list())


class TestIndexedMerge:
    def test_indexed_valid_and_close_to_matching(self):
        import random
        from repro.mapping.clb import merge_luts_indexed, merge_luts_xc3000
        rng = random.Random(99)
        specs = []
        letters = [f"i{k}" for k in range(14)]
        for _ in range(12):
            size = rng.randint(2, 5)
            specs.append(rng.sample(letters, size))
        net = parity_net(specs)
        indexed = merge_luts_indexed(net)
        exact = merge_luts_xc3000(net)
        names = {n.name: set(n.fanins) for n in net.node_list()}
        flat = [n for clb in indexed for n in clb]
        assert sorted(flat) == sorted(names)
        from repro.mapping.clb import mergeable
        for clb in indexed:
            if len(clb) == 2:
                assert mergeable(names[clb[0]], names[clb[1]])
        # Never better than the exact matching, and not wildly worse.
        assert len(exact) <= len(indexed) <= len(exact) + 3
