"""Tests for two-input gate synthesis."""

import itertools
import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import MultiFunction
from repro.decomp.recursive import decompose
from repro.mapping.gatelevel import (
    GateNetwork,
    _cls,
    _dp,
    _embed,
    gate_synthesize,
    optimal_gate_cost,
    to_gates,
)
from repro.mapping.lutnet import LutNetwork


class TestDp:
    def test_covers_all_classes(self):
        assert len(_dp()) == 128

    def test_known_costs(self):
        # constants / projections: 0 gates
        assert optimal_gate_cost([0, 0]) == 0
        assert optimal_gate_cost([0, 1]) == 0
        assert optimal_gate_cost([1, 0]) == 0  # free inverter
        # 2-input gates: 1 gate
        assert optimal_gate_cost([0, 0, 0, 1]) == 1  # AND
        assert optimal_gate_cost([0, 1, 1, 0]) == 1  # XOR
        assert optimal_gate_cost([1, 1, 1, 0]) == 1  # NAND (free inv)
        # 3-input parity: 2 gates
        assert optimal_gate_cost([0, 1, 1, 0, 1, 0, 0, 1]) == 2
        # majority: 4 gates (ab | bc | ac with sharing: a&b, a^b, c&(a^b),
        # or) -> 4
        maj = [0, 0, 0, 1, 0, 1, 1, 1]
        assert optimal_gate_cost(maj) == 4
        # MUX (s, a, b): 3 gates
        mux = [0, 1, 0, 1, 0, 0, 1, 1]
        assert optimal_gate_cost(mux) == 3

    def test_plans_consistent(self):
        # Every plan must evaluate to its declared function.
        dp = _dp()
        for c, plan in dp.items():
            assert _cls(plan.fn) == c
            if plan.op is not None:
                from repro.mapping.gatelevel import _apply
                assert _apply(plan.op, plan.arg_a[0],
                              plan.arg_b[0]) == plan.fn

    def test_embed(self):
        # 1-var table [0,1] -> projection x0.
        assert _embed([0, 1]) == 0xF0
        assert _embed([0, 0, 0, 1]) == 0xF0 & 0xCC
        with pytest.raises(ValueError):
            _embed([0, 1, 0])


class TestGateNetwork:
    def test_eval_and_hashing(self):
        net = GateNetwork()
        a = (net.add_input("a"), False)
        b = (net.add_input("b"), False)
        s1 = net.add_gate("and", a, b)
        s2 = net.add_gate("and", b, a)  # commutative hash hit
        assert s1 == s2
        assert net.total_gate_count == 1
        net.set_output("y", s1)
        assert net.eval_outputs({"a": 1, "b": 1})["y"] == 1
        assert net.eval_outputs({"a": 1, "b": 0})["y"] == 0

    def test_xor_negation_floats(self):
        net = GateNetwork()
        a = (net.add_input("a"), False)
        b = (net.add_input("b"), False)
        s1 = net.add_gate("xor", (a[0], True), b)
        s2 = net.add_gate("xor", a, (b[0], True))
        # Same gate, both results negated relative to a^b.
        assert s1[0] == s2[0]
        assert s1[1] and s2[1]
        assert net.total_gate_count == 1

    def test_live_vs_total(self):
        net = GateNetwork()
        a = (net.add_input("a"), False)
        b = (net.add_input("b"), False)
        live = net.add_gate("and", a, b)
        net.add_gate("or", a, b)  # dead
        net.set_output("y", live)
        assert net.total_gate_count == 2
        assert net.gate_count == 1

    def test_inverter_count(self):
        net = GateNetwork()
        a = (net.add_input("a"), False)
        b = (net.add_input("b"), False)
        g = net.add_gate("and", (a[0], True), b)
        net.set_output("y", g)
        assert net.inverter_count == 1

    def test_depth(self):
        net = GateNetwork()
        a = (net.add_input("a"), False)
        b = (net.add_input("b"), False)
        c = (net.add_input("c"), False)
        g1 = net.add_gate("and", a, b)
        g2 = net.add_gate("or", g1, c)
        net.set_output("y", g2)
        assert net.depth() == 2

    def test_bad_op(self):
        net = GateNetwork()
        a = (net.add_input("a"), False)
        with pytest.raises(ValueError):
            net.add_gate("nand", a, a)


class TestToGates:
    def test_rejects_wide_luts(self):
        net = LutNetwork()
        for name in "abcd":
            net.add_input(name)
        s = net.add_lut(list("abcd"),
                        [bin(i).count("1") & 1 for i in range(16)])
        net.set_output("y", s)
        with pytest.raises(ValueError):
            to_gates(net)

    def test_functional_equivalence(self):
        rng = random.Random(191)
        for _ in range(10):
            bdd = BDD(6)
            tables = [[rng.randint(0, 1) for _ in range(64)]
                      for _ in range(2)]
            func = MultiFunction.from_truth_tables(bdd, list(range(6)),
                                                   tables)
            lut_net = decompose(func, n_lut=3)
            gnet = to_gates(lut_net)
            for k in range(64):
                bits = [(k >> (5 - i)) & 1 for i in range(6)]
                named = dict(zip(func.input_names, bits))
                lut_out = lut_net.eval_outputs(named)
                gate_out = gnet.eval_outputs(named)
                assert lut_out == gate_out

    def test_gate_synthesize_end_to_end(self):
        rng = random.Random(193)
        bdd = BDD(5)
        table = [rng.randint(0, 1) for _ in range(32)]
        func = MultiFunction.from_truth_tables(bdd, list(range(5)),
                                               [table])
        gnet = gate_synthesize(func)
        for k in range(32):
            bits = [(k >> (4 - i)) & 1 for i in range(5)]
            named = dict(zip(func.input_names, bits))
            assert (gnet.eval_outputs(named)["f0"]
                    == table[k])
