"""Tests for ISF intervals and MultiFunction bundles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF, MultiFunction


@pytest.fixture
def bdd():
    return BDD(4)


class TestISFBasics:
    def test_create_checks_interval(self, bdd):
        with pytest.raises(ValueError):
            ISF.create(bdd, BDD.TRUE, BDD.FALSE)
        isf = ISF.create(bdd, bdd.var(0), BDD.TRUE)
        assert isf.lo == bdd.var(0)

    def test_complete(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        isf = ISF.complete(f)
        assert isf.is_complete()
        assert isf.dc_set(bdd) == BDD.FALSE

    def test_from_onset_dcset(self, bdd):
        onset = bdd.apply_and(bdd.var(0), bdd.var(1))
        dcset = bdd.apply_and(bdd.apply_not(bdd.var(0)), bdd.var(1))
        isf = ISF.from_onset_dcset(bdd, onset, dcset)
        assert isf.lo == onset
        assert isf.dc_set(bdd) == dcset
        assert not isf.is_complete()

    def test_from_onset_dcset_rejects_overlap(self, bdd):
        with pytest.raises(ValueError):
            ISF.from_onset_dcset(bdd, bdd.var(0), bdd.var(0))

    def test_admits(self, bdd):
        # interval [x0&x1, x0|x1]
        lo = bdd.apply_and(bdd.var(0), bdd.var(1))
        hi = bdd.apply_or(bdd.var(0), bdd.var(1))
        isf = ISF.create(bdd, lo, hi)
        assert isf.admits(bdd, bdd.var(0))
        assert isf.admits(bdd, bdd.var(1))
        assert isf.admits(bdd, lo)
        assert isf.admits(bdd, hi)
        assert not isf.admits(bdd, BDD.TRUE)
        assert not isf.admits(bdd, bdd.apply_xor(bdd.var(0), bdd.var(1)))

    def test_refines(self, bdd):
        wide = ISF.create(bdd, BDD.FALSE, BDD.TRUE)
        narrow = ISF.complete(bdd.var(0))
        assert narrow.refines(bdd, wide)
        assert not wide.refines(bdd, narrow)


class TestISFCombination:
    def test_intersect_compatible(self, bdd):
        a = ISF.create(bdd, bdd.apply_and(bdd.var(0), bdd.var(1)), bdd.var(0))
        b = ISF.create(bdd, BDD.FALSE, bdd.var(0))
        both = a.intersect(bdd, b)
        assert both is not None
        assert both.lo == bdd.apply_and(bdd.var(0), bdd.var(1))
        assert both.hi == bdd.var(0)

    def test_intersect_incompatible(self, bdd):
        a = ISF.complete(bdd.var(0))
        b = ISF.complete(bdd.apply_not(bdd.var(0)))
        assert a.intersect(bdd, b) is None
        assert not a.compatible(bdd, b)

    def test_compatible_iff_intersection(self, bdd):
        import random
        rng = random.Random(8)
        for _ in range(25):
            t1 = [rng.randint(0, 1) for _ in range(8)]
            t2 = [min(a + rng.randint(0, 1), 1) for a in t1]
            u1 = [rng.randint(0, 1) for _ in range(8)]
            u2 = [min(a + rng.randint(0, 1), 1) for a in u1]
            a = ISF.create(bdd, bdd.from_truth_table(t1, [0, 1, 2]),
                           bdd.from_truth_table(t2, [0, 1, 2]))
            b = ISF.create(bdd, bdd.from_truth_table(u1, [0, 1, 2]),
                           bdd.from_truth_table(u2, [0, 1, 2]))
            assert a.compatible(bdd, b) == (a.intersect(bdd, b) is not None)

    def test_negate(self, bdd):
        isf = ISF.create(bdd, bdd.apply_and(bdd.var(0), bdd.var(1)),
                         bdd.apply_or(bdd.var(0), bdd.var(1)))
        neg = isf.negate(bdd)
        assert neg.admits(bdd, bdd.apply_not(bdd.var(0)))
        assert not neg.admits(bdd, bdd.var(0))


class TestISFCofactors:
    def test_restrict(self, bdd):
        isf = ISF.create(bdd, bdd.apply_and(bdd.var(0), bdd.var(1)),
                         bdd.apply_or(bdd.var(0), bdd.var(1)))
        r1 = isf.restrict(bdd, 0, 1)
        assert r1.lo == bdd.var(1)
        assert r1.hi == BDD.TRUE

    def test_cofactor(self, bdd):
        isf = ISF.create(bdd, bdd.conjoin([bdd.var(i) for i in range(3)]),
                         BDD.TRUE)
        c = isf.cofactor(bdd, {0: 1, 1: 1})
        assert c.lo == bdd.var(2)

    def test_rename(self, bdd):
        isf = ISF.complete(bdd.var(0))
        assert isf.rename(bdd, {0: 3}).lo == bdd.var(3)

    def test_support(self, bdd):
        isf = ISF.create(bdd, bdd.apply_and(bdd.var(0), bdd.var(1)),
                         bdd.apply_or(bdd.var(0), bdd.var(2)))
        assert isf.support(bdd) == {0, 1, 2}


class TestMultiFunction:
    def test_from_truth_tables(self, bdd):
        mf = MultiFunction.from_truth_tables(
            bdd, [0, 1], [[0, 0, 0, 1], [0, 1, 1, 0]])
        assert mf.num_inputs == 2
        assert mf.num_outputs == 2
        assert mf.is_complete()
        assert mf.eval({0: 1, 1: 1}) == [1, 0]
        assert mf.eval({0: 0, 1: 1}) == [0, 1]

    def test_from_truth_tables_with_dc(self, bdd):
        mf = MultiFunction.from_truth_tables(
            bdd, [0, 1], [[0, 0, 0, 1]], dc_tables=[[1, 0, 0, 0]])
        assert not mf.is_complete()
        assert mf.eval({0: 0, 1: 0}) == [None]
        assert mf.eval({0: 1, 1: 1}) == [1]

    def test_from_callable(self, bdd):
        mf = MultiFunction.from_callable(
            bdd, [0, 1, 2], 2,
            lambda a, b, c: [(a + b + c) & 1, (a + b + c) >> 1])
        assert mf.eval({0: 1, 1: 1, 2: 0}) == [0, 1]
        assert mf.eval({0: 1, 1: 1, 2: 1}) == [1, 1]

    def test_from_callable_arity_check(self, bdd):
        with pytest.raises(ValueError):
            MultiFunction.from_callable(bdd, [0, 1], 2, lambda a, b: [a])

    def test_completed_lo(self, bdd):
        mf = MultiFunction.from_truth_tables(
            bdd, [0, 1], [[0, 0, 0, 1]], dc_tables=[[1, 0, 0, 0]])
        completed = mf.completed_lo()
        assert completed.is_complete()
        assert completed.eval({0: 0, 1: 0}) == [0]

    def test_support(self, bdd):
        mf = MultiFunction.from_truth_tables(
            bdd, [0, 1, 2], [[0, 0, 0, 0, 1, 1, 1, 1]])  # f = x0
        assert mf.support() == {0}

    def test_restrict_outputs(self, bdd):
        mf = MultiFunction.from_truth_tables(
            bdd, [0, 1], [[0, 0, 0, 1], [0, 1, 1, 0], [1, 1, 1, 1]])
        sub = mf.restrict_outputs([2, 0])
        assert sub.num_outputs == 2
        assert sub.eval({0: 0, 1: 0}) == [1, 0]

    def test_name_validation(self, bdd):
        with pytest.raises(ValueError):
            MultiFunction(bdd, [0, 1], [ISF.complete(BDD.TRUE)],
                          input_names=["a"])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from([0, 1, None]), min_size=8, max_size=8))
def test_isf_interval_roundtrip_property(spec):
    """Property: building an ISF from a partial spec and evaluating gives
    back exactly the partial spec."""
    bdd = BDD(3)
    onset = [1 if v == 1 else 0 for v in spec]
    dcset = [1 if v is None else 0 for v in spec]
    mf = MultiFunction.from_truth_tables(bdd, [0, 1, 2], [onset],
                                         dc_tables=[dcset])
    for k in range(8):
        bits = [(k >> (2 - i)) & 1 for i in range(3)]
        value = mf.eval(dict(zip([0, 1, 2], bits)))[0]
        assert value == spec[k]


class TestSizeGuards:
    def test_from_callable_rejects_huge(self, bdd):
        big = BDD(21)
        with pytest.raises(ValueError):
            MultiFunction.from_callable(big, list(range(21)), 1,
                                        lambda *bits: [0])

    def test_write_pla_rejects_huge(self):
        from repro.boolfunc.pla import write_pla
        from repro.arith.adders import adder_function
        mf = adder_function(9)  # 18 inputs
        with pytest.raises(ValueError):
            write_pla(mf)
