"""Tests for cube lists, PLA and BLIF parsing/writing."""

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.cube import Cube, CubeList
from repro.boolfunc.pla import PlaError, parse_pla, write_pla
from repro.boolfunc.blif import BlifError, parse_blif, write_blif


class TestCube:
    def test_validation(self):
        with pytest.raises(ValueError):
            Cube("01x", "1")
        with pytest.raises(ValueError):
            Cube("01", "z")

    def test_to_bdd(self):
        bdd = BDD(3)
        cube = Cube("1-0", "1")
        f = cube.to_bdd(bdd, [0, 1, 2])
        assert bdd.eval(f, {0: 1, 1: 0, 2: 0})
        assert bdd.eval(f, {0: 1, 1: 1, 2: 0})
        assert not bdd.eval(f, {0: 1, 1: 0, 2: 1})

    def test_contains(self):
        cube = Cube("1-0", "1")
        assert cube.contains([1, 1, 0])
        assert not cube.contains([0, 1, 0])

    def test_arity_checks(self):
        cl = CubeList(2, 1)
        with pytest.raises(ValueError):
            cl.append(Cube("011", "1"))
        with pytest.raises(ValueError):
            cl.append(Cube("01", "11"))


class TestPlaParse:
    SIMPLE = """\
# two-output example
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
11- 10
--1 01
000 1-
.e
"""

    def test_parse_simple(self):
        mf = parse_pla(self.SIMPLE)
        assert mf.num_inputs == 3
        assert mf.num_outputs == 2
        assert mf.input_names == ["a", "b", "c"]
        assert mf.output_names == ["f", "g"]
        # f: onset 11-, plus 000; g: onset --1 with dc 000... wait 000 has
        # '-' only for g.
        assert mf.eval({0: 1, 1: 1, 2: 0}) == [1, 0]
        assert mf.eval({0: 0, 1: 0, 2: 1}) == [0, 1]
        assert mf.eval({0: 0, 1: 0, 2: 0}) == [1, None]
        assert mf.eval({0: 1, 1: 0, 2: 0}) == [0, 0]

    def test_parse_fr_type(self):
        text = """\
.i 2
.o 1
.type fr
11 1
00 r
.e
"""
        mf = parse_pla(text)
        assert mf.eval({0: 1, 1: 1}) == [1]
        assert mf.eval({0: 0, 1: 0}) == [0]
        assert mf.eval({0: 0, 1: 1}) == [None]
        assert mf.eval({0: 1, 1: 0}) == [None]

    def test_no_space_between_planes(self):
        text = ".i 2\n.o 1\n111\n.e\n"
        mf = parse_pla(text)
        assert mf.eval({0: 1, 1: 1}) == [1]

    def test_errors(self):
        with pytest.raises(PlaError):
            parse_pla("11 1\n")
        with pytest.raises(PlaError):
            parse_pla(".i 2\n.o 1\n111 1\n")

    def test_parse_into_existing_manager(self):
        bdd = BDD(2)
        mf = parse_pla(".i 2\n.o 1\n11 1\n.e\n", bdd)
        assert mf.inputs == [2, 3]


class TestPlaRoundtrip:
    def test_roundtrip_complete(self):
        mf = parse_pla(TestPlaParse.SIMPLE)
        text = write_pla(mf)
        mf2 = parse_pla(text)
        for k in range(8):
            bits = [(k >> (2 - i)) & 1 for i in range(3)]
            a1 = dict(zip(mf.inputs, bits))
            a2 = dict(zip(mf2.inputs, bits))
            assert mf.eval(a1) == mf2.eval(a2)


class TestBlif:
    NETWORK = """\
.model test
.inputs a b c
.outputs y z
.names a b t
11 1
.names t c y
1- 1
-1 1
.names a z
0 1
.end
"""

    def test_parse_network(self):
        mf = parse_blif(self.NETWORK)
        assert mf.num_inputs == 3
        assert mf.output_names == ["y", "z"]
        # y = (a & b) | c ; z = ~a
        for k in range(8):
            a, b, c = (k >> 2) & 1, (k >> 1) & 1, k & 1
            values = mf.eval({mf.inputs[0]: a, mf.inputs[1]: b,
                              mf.inputs[2]: c})
            assert values == [1 if ((a and b) or c) else 0, 1 - a]

    def test_parse_offset_cover(self):
        # .names with value-0 rows defines the complement.
        text = """\
.model t
.inputs a b
.outputs y
.names a b y
00 0
.end
"""
        mf = parse_blif(text)
        assert mf.eval({mf.inputs[0]: 0, mf.inputs[1]: 0}) == [0]
        assert mf.eval({mf.inputs[0]: 1, mf.inputs[1]: 0}) == [1]

    def test_constant_node(self):
        text = ".model t\n.inputs a\n.outputs y\n.names y\n1\n.end\n"
        mf = parse_blif(text)
        assert mf.eval({mf.inputs[0]: 0}) == [1]

    def test_continuation_lines(self):
        text = (".model t\n.inputs a \\\nb\n.outputs y\n"
                ".names a b y\n11 1\n.end\n")
        mf = parse_blif(text)
        assert mf.num_inputs == 2

    def test_cycle_detection(self):
        text = """\
.model t
.inputs a
.outputs y
.names y y2
1 1
.names y2 y
1 1
.end
"""
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_undefined_signal(self):
        text = ".model t\n.inputs a\n.outputs y\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_unsupported_latch(self):
        text = ".model t\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_roundtrip(self):
        mf = parse_blif(self.NETWORK)
        text = write_blif(mf)
        mf2 = parse_blif(text)
        for k in range(8):
            bits = [(k >> (2 - i)) & 1 for i in range(3)]
            assert (mf.eval(dict(zip(mf.inputs, bits)))
                    == mf2.eval(dict(zip(mf2.inputs, bits))))
