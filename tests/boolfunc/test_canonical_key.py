"""Tests for the content hash used as the runtime cache key.

The key must depend only on the function (inputs, outputs, intervals),
not on construction history: the BDD is canonical for a fixed variable
order, but node *indices* are allocation-ordered, so the hash has to
renumber before digesting.
"""

import random

from repro.bdd.manager import BDD
from repro.boolfunc.pla import parse_pla
from repro.boolfunc.spec import ISF, MultiFunction

PLA = """\
.i 4
.o 2
.ilb a b c d
.ob f g
.type fd
0-11 10
1101 11
01-- 01
1111 1-
0000 10
.e
"""


def _shuffled_pla(seed: int) -> str:
    lines = PLA.splitlines()
    head, cubes, tail = lines[:5], lines[5:-1], lines[-1:]
    random.Random(seed).shuffle(cubes)
    return "\n".join(head + cubes + tail) + "\n"


class TestCanonicalKey:
    def test_deterministic(self):
        func = parse_pla(PLA)
        assert func.canonical_key() == func.canonical_key()

    def test_cube_insertion_order_irrelevant(self):
        reference = parse_pla(PLA).canonical_key()
        for seed in range(5):
            shuffled = parse_pla(_shuffled_pla(seed))
            assert shuffled.canonical_key() == reference

    def test_fresh_manager_same_key(self):
        # Same function built in managers with different allocation
        # histories (extra throwaway nodes) hashes identically.
        plain = parse_pla(PLA)
        bdd = BDD(0)
        noise = [bdd.add_var(f"n{i}") for i in range(3)]
        bdd.apply_and(noise[0], bdd.apply_or(noise[1], noise[2]))
        busy = parse_pla(PLA, bdd)
        assert busy.canonical_key() == plain.canonical_key()

    def test_function_changes_key(self):
        reference = parse_pla(PLA).canonical_key()
        altered = parse_pla(PLA.replace("0-11 10", "0-11 11"))
        assert altered.canonical_key() != reference

    def test_dc_set_changes_key(self):
        # fr-type reinterprets the output field, shrinking the dc-sets:
        # same onsets, different intervals, so a different key.
        as_fd = parse_pla(PLA).canonical_key()
        as_fr = parse_pla(PLA.replace(".type fd", ".type fr"))
        assert as_fr.canonical_key() != as_fd

    def test_output_name_changes_key(self):
        bdd = BDD(2)
        outs = [ISF.complete(bdd.apply_and(bdd.var(0), bdd.var(1)))]
        f = MultiFunction(bdd, [0, 1], outs, output_names=["f"])
        g = MultiFunction(bdd, [0, 1], outs, output_names=["g"])
        assert f.canonical_key() != g.canonical_key()

    def test_wire_round_trip_preserves_key(self):
        func = parse_pla(PLA)
        rebuilt = MultiFunction.from_wire(func.to_wire())
        assert rebuilt.canonical_key() == func.canonical_key()
