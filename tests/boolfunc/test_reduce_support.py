"""Tests for don't-care based support minimisation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF


def isf_from_spec(bdd, spec, variables):
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    return ISF.create(bdd,
                      bdd.from_truth_table(onset, variables),
                      bdd.from_truth_table(upper, variables))


class TestReduceSupport:
    def test_complete_function_unchanged(self):
        bdd = BDD(4)
        isf = ISF.complete(bdd.apply_xor(bdd.var(0), bdd.var(2)))
        reduced = isf.reduce_support(bdd)
        assert reduced.lo == isf.lo
        assert reduced.hi == isf.hi

    def test_removable_variable_removed(self):
        bdd = BDD(3)
        # f = x0 on the care set; x1 only matters on DC points.
        # care: x1=0 plane fully; x1=1 plane all DC.
        spec = [0, 0, None, None, 1, 1, None, None]  # (x0,x1,x2)
        isf = isf_from_spec(bdd, spec, [0, 1, 2])
        reduced = isf.reduce_support(bdd)
        assert 1 not in reduced.support(bdd)
        assert 2 not in reduced.support(bdd)
        assert reduced.refines(bdd, isf)

    def test_fully_unspecified(self):
        bdd = BDD(3)
        isf = ISF.create(bdd, BDD.FALSE, BDD.TRUE)
        reduced = isf.reduce_support(bdd)
        assert reduced.support(bdd) == set()

    def test_result_refines(self):
        rng = random.Random(733)
        bdd = BDD(4)
        for _ in range(20):
            spec = [rng.choice([0, 1, None]) for _ in range(16)]
            isf = isf_from_spec(bdd, spec, [0, 1, 2, 3])
            reduced = isf.reduce_support(bdd)
            assert reduced.refines(bdd, isf)
            assert reduced.support(bdd) <= isf.support(bdd)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from([0, 1, None]), min_size=16, max_size=16))
def test_reduce_support_preserves_care_values(spec):
    """Property: the reduction never changes a care value."""
    bdd = BDD(4)
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    isf = ISF.create(bdd, bdd.from_truth_table(onset, [0, 1, 2, 3]),
                     bdd.from_truth_table(upper, [0, 1, 2, 3]))
    reduced = isf.reduce_support(bdd)
    for k in range(16):
        bits = {v: (k >> (3 - v)) & 1 for v in range(4)}
        if spec[k] is None:
            continue
        lo = bdd.eval(reduced.lo, bits)
        hi = bdd.eval(reduced.hi, bits)
        if spec[k] == 1:
            assert lo and hi
        else:
            assert not lo and not hi
