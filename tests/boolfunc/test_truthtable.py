"""Tests for truth-table utilities."""

import pytest

from repro.boolfunc import truthtable as tt


class TestIntConversion:
    def test_roundtrip(self):
        for value in (0, 1, 0b1011, 0xFF):
            table = tt.table_from_int(value, 3)
            assert tt.table_to_int(table) == value

    def test_length(self):
        assert len(tt.table_from_int(0, 4)) == 16

    def test_rejects_oversized_mask(self):
        with pytest.raises(ValueError):
            tt.table_from_int(1 << 8, 2)


class TestCallable:
    def test_and(self):
        table = tt.table_from_callable(lambda a, b: a and b, 2)
        assert table == [0, 0, 0, 1]

    def test_msb_first(self):
        table = tt.table_from_callable(lambda a, b: a, 2)
        assert table == [0, 0, 1, 1]


class TestCofactor:
    def test_cofactor(self):
        table = tt.table_from_callable(lambda a, b: a ^ b, 2)
        assert tt.cofactor_table(table, 0, 0) == [0, 1]
        assert tt.cofactor_table(table, 0, 1) == [1, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            tt.cofactor_table([0, 1, 0], 0, 0)
        with pytest.raises(ValueError):
            tt.cofactor_table([0, 1, 0, 1], 5, 0)


class TestHelpers:
    def test_minterms(self):
        assert tt.minterms([0, 1, 1, 0]) == [1, 2]

    def test_format(self):
        text = tt.format_table([0, 1, 1, 0], names=["a", "b"])
        assert "a b | f" in text
        assert "0 1 | 1" in text

    def test_iter_assignments(self):
        assert list(tt.iter_assignments(2)) == [
            (0, 0), (0, 1), (1, 0), (1, 1)]
