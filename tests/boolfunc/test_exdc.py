"""BLIF ``.exdc`` don't-care plane: parsing, writing, round-trips."""

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.blif import BlifError, parse_blif, write_blif
from repro.boolfunc.spec import ISF, MultiFunction
from repro.core.api import map_to_xc3000

SIMPLE_EXDC = """\
.model t
.inputs a b c
.outputs y
.names a b c y
111 1
.exdc
.names a b c y
110 1
.end
"""


def _all_points(mf, n):
    for k in range(1 << n):
        bits = [(k >> (n - 1 - i)) & 1 for i in range(n)]
        yield bits, mf.eval(dict(zip(mf.inputs, bits)))


class TestExdcParse:
    def test_exdc_becomes_dc_plane(self):
        mf = parse_blif(SIMPLE_EXDC)
        assert not mf.is_complete()
        # 111 is care-onset, 110 is don't care, everything else is 0.
        for bits, values in _all_points(mf, 3):
            if bits == [1, 1, 1]:
                assert values == [1]
            elif bits == [1, 1, 0]:
                assert values == [None]
            else:
                assert values == [0]

    def test_exdc_not_merged_into_care_network(self):
        """The care function must be identical with and without .exdc
        on every care point (the old parser folded the exdc cover in)."""
        stripped = SIMPLE_EXDC.split(".exdc")[0] + ".end\n"
        with_dc = parse_blif(SIMPLE_EXDC)
        without = parse_blif(stripped)
        for (bits, v_dc), (_, v_plain) in zip(_all_points(with_dc, 3),
                                              _all_points(without, 3)):
            if v_dc != [None]:
                assert v_dc == v_plain

    def test_exdc_with_internal_nodes(self):
        text = """\
.model t
.inputs a b
.outputs y
.names a b y
11 1
.exdc
.names a t
0 1
.names t b y
11 1
.end
"""
        mf = parse_blif(text)
        # dc = (~a) & b
        assert mf.eval(dict(zip(mf.inputs, [0, 1]))) == [None]
        assert mf.eval(dict(zip(mf.inputs, [1, 1]))) == [1]
        assert mf.eval(dict(zip(mf.inputs, [0, 0]))) == [0]

    def test_exdc_only_affects_named_outputs(self):
        text = """\
.model t
.inputs a
.outputs y z
.names a y
1 1
.names a z
0 1
.exdc
.names a y
0 1
.end
"""
        mf = parse_blif(text)
        assert not mf.outputs[0].is_complete()
        assert mf.outputs[1].is_complete()

    def test_exdc_internal_collision_rejected(self):
        text = """\
.model t
.inputs a b
.outputs y
.names a b t1
11 1
.names t1 y
1 1
.exdc
.names a t1
0 1
.names t1 y
1 1
.end
"""
        with pytest.raises(BlifError, match="redefines"):
            parse_blif(text)

    def test_duplicate_names_rejected(self):
        text = """\
.model t
.inputs a
.outputs y
.names a y
1 1
.names a y
0 1
.end
"""
        with pytest.raises(BlifError, match="duplicate"):
            parse_blif(text)

    def test_nested_exdc_rejected(self):
        text = (".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n"
                ".exdc\n.exdc\n.end\n")
        with pytest.raises(BlifError, match="nested"):
            parse_blif(text)

    def test_exdc_undefined_signal(self):
        text = """\
.model t
.inputs a b
.outputs y
.names a b hidden
11 1
.names hidden y
1 1
.exdc
.names hidden y
1 1
.end
"""
        # `hidden` is internal to the care network — not visible in exdc.
        with pytest.raises(BlifError, match="exdc"):
            parse_blif(text)


class TestExdcRoundtrip:
    def test_roundtrip_preserves_dc_set(self):
        mf = parse_blif(SIMPLE_EXDC)
        text = write_blif(mf)
        assert ".exdc" in text
        mf2 = parse_blif(text)
        for (bits, v1), (_, v2) in zip(_all_points(mf, 3),
                                       _all_points(mf2, 3)):
            assert v1 == v2, bits

    def test_roundtrip_complete_function_has_no_exdc(self):
        stripped = SIMPLE_EXDC.split(".exdc")[0] + ".end\n"
        text = write_blif(parse_blif(stripped))
        assert ".exdc" not in text

    def test_write_wide_function_is_cube_based(self):
        """A 24-input AND must write instantly (one cube), not via 2^24
        minterm rows — the old writer hung here."""
        bdd = BDD(24)
        f = bdd.conjoin(bdd.var(i) for i in range(24))
        mf = MultiFunction(bdd, list(range(24)), [ISF.complete(f)])
        text = write_blif(mf)
        assert "1" * 24 + " 1" in text
        assert text.count("\n") < 10

    def test_write_constant_false_output(self):
        bdd = BDD(2)
        mf = MultiFunction(bdd, [0, 1], [ISF.complete(BDD.FALSE)])
        mf2 = parse_blif(write_blif(mf))
        assert mf2.eval(dict(zip(mf2.inputs, [0, 0]))) == [0]
        assert mf2.eval(dict(zip(mf2.inputs, [1, 1]))) == [0]

    def test_write_rejects_support_outside_inputs(self):
        bdd = BDD(3)
        mf = MultiFunction(bdd, [0, 1],
                           [ISF.complete(bdd.var(2))],
                           input_names=["a", "b"], output_names=["y"])
        with pytest.raises(BlifError, match="outside"):
            write_blif(mf)


class TestExdcExploitation:
    EXDC_HELPS = """\
.model t
.inputs a b c d e f
.outputs y
.names a b c d e f y
111111 1
.exdc
.names a b c d e f y
111110 1
.end
"""

    def test_exdc_never_hurts_lut_count(self):
        """Acceptance criterion: the .exdc version maps to no more LUTs
        than the stripped version (DCs exploited, not corrupted)."""
        stripped = self.EXDC_HELPS.split(".exdc")[0] + ".end\n"
        with_dc = map_to_xc3000(parse_blif(self.EXDC_HELPS))
        without = map_to_xc3000(parse_blif(stripped))
        assert with_dc.lut_count <= without.lut_count
        # For this construction the DC actually shrinks the support
        # below the LUT width, so the gain is strict.
        assert with_dc.lut_count < without.lut_count

    def test_mapped_network_extends_the_isf(self):
        from repro.verify.equiv import check_extension
        func = parse_blif(self.EXDC_HELPS)
        result = map_to_xc3000(func)
        assert check_extension(func, result.network)
