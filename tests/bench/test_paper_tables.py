"""Tests for the recorded paper claims."""

from repro.bench import paper_tables as P


class TestFormulas:
    def test_wallace_gates(self):
        assert P.wallace_gates(4) == 80
        assert P.wallace_gates(8) == 480

    def test_wallace_depth_monotone(self):
        assert P.wallace_depth(8) > P.wallace_depth(4)

    def test_mulop_multiplier_asymptotics(self):
        # The paper's scheme is asymptotically ~10x cheaper per n^2.
        for n in (16, 64, 256):
            assert P.mulop_multiplier_gates(n) < P.wallace_gates(n)
        ratio = P.mulop_multiplier_gates(1024) / (1024 * 1024)
        assert ratio < 2.0  # n^2 leading term

    def test_depth_small_cases(self):
        assert P.mulop_multiplier_depth(1) == 1.0
        assert P.mulop_multiplier_depth(8) > P.mulop_multiplier_depth(4)


class TestClaims:
    def test_fig2(self):
        assert P.FIG2_ADDER["mulop_gates"] == 49
        assert P.FIG2_ADDER["conditional_sum_gates"] == 90

    def test_table_rows_match_registry(self):
        from repro.bench.registry import BENCHMARKS
        for name in P.TABLE_ROWS:
            assert name in BENCHMARKS

    def test_table1_claims(self):
        assert P.TABLE1_CLAIMS["max_reduction_circuit"] == "alu2"
        assert 0 < P.TABLE1_CLAIMS["overall_reduction_min"] < 1
