"""Tests for the exactly defined benchmark functions."""

import random

import pytest

from repro.bench import functions as F


class TestRd:
    @pytest.mark.parametrize("builder,n,bits", [
        (F.rd53, 5, 3), (F.rd73, 7, 3), (F.rd84, 8, 4)])
    def test_weight(self, builder, n, bits):
        mf = builder()
        assert mf.num_inputs == n
        assert mf.num_outputs == bits
        rng = random.Random(0)
        for _ in range(60):
            assignment = {v: rng.randint(0, 1) for v in mf.inputs}
            weight = sum(assignment.values())
            values = mf.eval(assignment)
            got = sum(values[b] << b for b in range(bits))
            assert got == weight % (1 << bits)

    def test_rd_is_totally_symmetric(self):
        from repro.bdd.symmetry import is_totally_symmetric
        mf = F.rd53()
        for out in mf.outputs:
            assert is_totally_symmetric(mf.bdd, out.lo, mf.inputs)


class TestSym9:
    def test_window(self):
        mf = F.sym9()
        assert (mf.num_inputs, mf.num_outputs) == (9, 1)
        rng = random.Random(1)
        for _ in range(120):
            assignment = {v: rng.randint(0, 1) for v in mf.inputs}
            weight = sum(assignment.values())
            assert mf.eval(assignment)[0] == (1 if 3 <= weight <= 6 else 0)

    def test_symmetric(self):
        from repro.bdd.symmetry import is_totally_symmetric
        mf = F.sym9()
        assert is_totally_symmetric(mf.bdd, mf.outputs[0].lo, mf.inputs)


class TestZ4ml:
    def test_addition(self):
        mf = F.z4ml()
        assert (mf.num_inputs, mf.num_outputs) == (7, 4)
        for a in range(8):
            for b in range(8):
                for c in (0, 1):
                    bits = {}
                    for i in range(3):
                        bits[mf.inputs[i]] = (a >> i) & 1
                        bits[mf.inputs[3 + i]] = (b >> i) & 1
                    bits[mf.inputs[6]] = c
                    values = mf.eval(bits)
                    got = sum(values[i] << i for i in range(4))
                    assert got == a + b + c


class TestAlu2:
    def test_operations(self):
        mf = F.alu2()
        assert (mf.num_inputs, mf.num_outputs) == (10, 6)
        rng = random.Random(3)
        ops = {0: lambda a, b: a + b, 1: lambda a, b: a & b,
               2: lambda a, b: a | b, 3: lambda a, b: a ^ b}
        for _ in range(100):
            a, b = rng.randrange(16), rng.randrange(16)
            op = rng.randrange(4)
            bits = {}
            for i in range(4):
                bits[mf.inputs[i]] = (a >> i) & 1
                bits[mf.inputs[4 + i]] = (b >> i) & 1
            bits[mf.inputs[8]] = op & 1
            bits[mf.inputs[9]] = (op >> 1) & 1
            values = mf.eval(bits)
            result = ops[op](a, b)
            got = sum(values[i] << i for i in range(4))
            assert got == result & 0xF
            cout = 1 if (op == 0 and result > 15) else 0
            assert values[4] == cout
            assert values[5] == (1 if (result & 0xF) == 0 else 0)


class TestClip:
    def test_clipping(self):
        mf = F.clip()
        assert (mf.num_inputs, mf.num_outputs) == (9, 5)
        for raw in range(512):
            value = raw - 512 if raw >= 256 else raw  # two's complement
            bits = {mf.inputs[i]: (raw >> i) & 1 for i in range(9)}
            values = mf.eval(bits)
            got_raw = sum(values[i] << i for i in range(5))
            got = got_raw - 32 if got_raw >= 16 else got_raw
            expected = max(-15, min(15, value))
            assert got == expected, (value, got)


class TestC499:
    def test_no_error_passthrough(self):
        mf = F.c499()
        assert (mf.num_inputs, mf.num_outputs) == (41, 32)
        rng = random.Random(7)
        bdd = mf.bdd
        for _ in range(10):
            data = [rng.randint(0, 1) for _ in range(32)]
            # Compute consistent check bits by evaluating the syndrome
            # relation: check bit b = XOR of data bits whose pattern has
            # bit b (so the syndrome becomes 0).
            patterns = []
            value = 0
            while len(patterns) < 32:
                value += 1
                if bin(value).count("1") >= 2:
                    patterns.append(value)
            check = []
            for b in range(8):
                parity = 0
                for i, pattern in enumerate(patterns):
                    if (pattern >> b) & 1:
                        parity ^= data[i]
                check.append(parity)
            bits = {}
            for i in range(32):
                bits[mf.inputs[i]] = data[i]
            for b in range(8):
                bits[mf.inputs[32 + b]] = check[b]
            bits[mf.inputs[40]] = 1
            assert mf.eval(bits) == data

    def test_single_error_corrected(self):
        mf = F.c499()
        rng = random.Random(11)
        patterns = []
        value = 0
        while len(patterns) < 32:
            value += 1
            if bin(value).count("1") >= 2:
                patterns.append(value)
        for trial in range(6):
            data = [rng.randint(0, 1) for _ in range(32)]
            check = []
            for b in range(8):
                parity = 0
                for i, pattern in enumerate(patterns):
                    if (pattern >> b) & 1:
                        parity ^= data[i]
                check.append(parity)
            flip = rng.randrange(32)
            received = list(data)
            received[flip] ^= 1
            bits = {}
            for i in range(32):
                bits[mf.inputs[i]] = received[i]
            for b in range(8):
                bits[mf.inputs[32 + b]] = check[b]
            bits[mf.inputs[40]] = 1
            assert mf.eval(bits) == data  # the flip was corrected


class TestCount:
    def test_counter_semantics(self):
        mf = F.count()
        assert (mf.num_inputs, mf.num_outputs) == (35, 16)
        rng = random.Random(13)
        for _ in range(60):
            state = rng.randrange(1 << 16)
            data = rng.randrange(1 << 16)
            en, ld, clr = (rng.randint(0, 1) for _ in range(3))
            bits = {}
            for i in range(16):
                bits[mf.inputs[i]] = (state >> i) & 1
                bits[mf.inputs[16 + i]] = (data >> i) & 1
            bits[mf.inputs[32]] = en
            bits[mf.inputs[33]] = ld
            bits[mf.inputs[34]] = clr
            values = mf.eval(bits)
            got = sum(values[i] << i for i in range(16))
            if clr:
                expected = 0
            elif ld:
                expected = data
            elif en:
                expected = (state + 1) & 0xFFFF
            else:
                expected = state
            assert got == expected


class TestArithmeticReconstructions:
    def test_f51m(self):
        mf = F.f51m()
        assert (mf.num_inputs, mf.num_outputs) == (8, 8)
        for a in range(16):
            for b in range(16):
                bits = {}
                for i in range(4):
                    bits[mf.inputs[i]] = (a >> i) & 1
                    bits[mf.inputs[4 + i]] = (b >> i) & 1
                values = mf.eval(bits)
                got = sum(values[i] << i for i in range(8))
                assert got == (a * b + a) & 0xFF

    def test_5xp1(self):
        mf = F.five_xp1()
        assert (mf.num_inputs, mf.num_outputs) == (7, 10)
        for x in range(128):
            bits = {mf.inputs[i]: (x >> i) & 1 for i in range(7)}
            values = mf.eval(bits)
            got = sum(values[i] << i for i in range(10))
            assert got == (x * x + x) & 0x3FF


class TestExtras:
    def test_xor5(self):
        mf = F.xor5()
        for k in range(32):
            bits = {mf.inputs[i]: (k >> i) & 1 for i in range(5)}
            assert mf.eval(bits)[0] == bin(k).count("1") % 2

    def test_majority(self):
        mf = F.majority()
        for k in range(32):
            bits = {mf.inputs[i]: (k >> i) & 1 for i in range(5)}
            assert mf.eval(bits)[0] == (1 if bin(k).count("1") >= 3
                                        else 0)

    def test_sym10(self):
        import random
        mf = F.sym10()
        rng = random.Random(677)
        for _ in range(80):
            bits = {v: rng.randint(0, 1) for v in mf.inputs}
            w = sum(bits.values())
            assert mf.eval(bits)[0] == (1 if 3 <= w <= 6 else 0)

    def test_t481_like_decomposes_small(self):
        from repro.core import map_to_xc3000
        from repro.verify.equiv import check_extension
        mf = F.t481_like()
        result = map_to_xc3000(mf)
        assert check_extension(mf, result.network)
        # The whole point of t481: a good decomposition collapses it.
        assert result.clb_count <= 8
