"""Tests for the benchmark registry and the synthetic generator."""

import random

import pytest

from repro.bench.registry import BENCHMARKS, TABLE_ORDER, benchmark, benchmark_names
from repro.bench.synthetic import synthetic_circuit


class TestRegistry:
    def test_all_table_rows_registered(self):
        for name in TABLE_ORDER:
            assert name in BENCHMARKS

    def test_signatures(self):
        # Signatures of the original MCNC/ISCAS circuits.
        expected = {
            "5xp1": (7, 10), "9sym": (9, 1), "alu2": (10, 6),
            "apex7": (49, 37), "b9": (41, 21), "C499": (41, 32),
            "C880": (60, 26), "clip": (9, 5), "count": (35, 16),
            "duke2": (22, 29), "e64": (65, 65), "f51m": (8, 8),
            "misex1": (8, 7), "misex2": (25, 18), "rd73": (7, 3),
            "rd84": (8, 4), "rot": (135, 107), "sao2": (10, 4),
            "vg2": (25, 8), "z4ml": (7, 4),
        }
        for name, (i, o) in expected.items():
            spec = BENCHMARKS[name]
            assert (spec.num_inputs, spec.num_outputs) == (i, o), name

    def test_light_circuits_build(self):
        for name in benchmark_names(include_heavy=False):
            mf = benchmark(name)
            assert mf.num_inputs == BENCHMARKS[name].num_inputs

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            benchmark("nonexistent")

    def test_names_filtering(self):
        all_names = benchmark_names()
        light = benchmark_names(include_heavy=False)
        assert set(light) <= set(all_names)
        assert "rot" in all_names and "rot" not in light


class TestSynthetic:
    def test_deterministic(self):
        a = synthetic_circuit("demo", 12, 5)
        b = synthetic_circuit("demo", 12, 5)
        rng = random.Random(0)
        for _ in range(40):
            bits = [rng.randint(0, 1) for _ in range(12)]
            va = a.eval(dict(zip(a.inputs, bits)))
            vb = b.eval(dict(zip(b.inputs, bits)))
            assert va == vb

    def test_different_names_differ(self):
        a = synthetic_circuit("one", 12, 5)
        b = synthetic_circuit("two", 12, 5)
        rng = random.Random(0)
        differs = False
        for _ in range(60):
            bits = [rng.randint(0, 1) for _ in range(12)]
            if (a.eval(dict(zip(a.inputs, bits)))
                    != b.eval(dict(zip(b.inputs, bits)))):
                differs = True
                break
        assert differs

    def test_signature_respected(self):
        mf = synthetic_circuit("sig", 17, 9)
        assert mf.num_inputs == 17
        assert mf.num_outputs == 9
        assert mf.is_complete()

    def test_outputs_not_constant(self):
        mf = synthetic_circuit("const-check", 14, 6)
        from repro.bdd.manager import BDD
        nonconstant = sum(
            1 for out in mf.outputs
            if out.lo not in (BDD.FALSE, BDD.TRUE))
        assert nonconstant >= 4

    def test_seed_reproducible(self):
        a = synthetic_circuit("demo", 12, 5, seed=7)
        b = synthetic_circuit("demo", 12, 5, seed=7)
        assert a.canonical_key() == b.canonical_key()

    def test_seed_varies_instance(self):
        default = synthetic_circuit("demo", 12, 5)
        seeded = synthetic_circuit("demo", 12, 5, seed=7)
        other = synthetic_circuit("demo", 12, 5, seed=8)
        assert seeded.canonical_key() != default.canonical_key()
        assert seeded.canonical_key() != other.canonical_key()

    def test_seed_none_is_registry_default(self):
        explicit = synthetic_circuit("demo", 12, 5, seed=None)
        default = synthetic_circuit("demo", 12, 5)
        assert explicit.canonical_key() == default.canonical_key()

    def test_cones_are_wide(self):
        # The multi-stage composition must produce some wide output cones
        # (that is what makes the recursion deep enough for DC effects).
        mf = synthetic_circuit("width-check", 30, 12)
        widths = [len(out.support(mf.bdd)) for out in mf.outputs]
        assert max(widths) >= 8


class TestSyntheticBlocks:
    def test_block_builders_semantics(self):
        import random
        from repro.bdd.manager import BDD
        from repro.bench import synthetic as S
        rng = random.Random(13)
        bdd = BDD(8)
        xs = list(range(6))

        outs = S._block_adder(bdd, xs, rng)
        # 3+3 adder: 4 outputs (3 sums + carry).
        assert len(outs) == 4
        for a in range(8):
            for b in range(8):
                bits = {}
                for i in range(3):
                    bits[i] = (a >> i) & 1
                    bits[3 + i] = (b >> i) & 1
                total = sum(bdd.eval(outs[i], bits) << i
                            for i in range(4))
                assert total == a + b

        gt, eq = S._block_comparator(bdd, xs, rng)
        for a in range(8):
            for b in range(8):
                bits = {}
                for i in range(3):
                    bits[i] = (a >> i) & 1
                    bits[3 + i] = (b >> i) & 1
                assert bdd.eval(gt, bits) == (a > b)
                assert bdd.eval(eq, bits) == (a == b)

        [parity] = S._block_parity(bdd, xs, rng)
        bits = {v: 1 for v in xs}
        assert bdd.eval(parity, bits) == (len(xs) % 2 == 1)

        [maj] = S._block_majority(bdd, xs, rng)
        assert bdd.eval(maj, {v: 1 for v in xs})
        assert not bdd.eval(maj, {v: 0 for v in xs})

        [onehot] = S._block_onehot(bdd, xs, rng)
        one = {v: 0 for v in xs}
        one[xs[2]] = 1
        assert bdd.eval(onehot, one)
        assert not bdd.eval(onehot, {v: 0 for v in xs})
