"""Tests for the benchmark-harness infrastructure itself."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent))

from benchmarks.conftest import RowCollector, verify_network  # noqa: E402


class TestRowCollector:
    def test_add_and_flush(self, tmp_path, monkeypatch):
        import benchmarks.conftest as C
        monkeypatch.setattr(C, "OUT_DIR", tmp_path)
        collector = RowCollector()
        collector.add("demo", "row one")
        collector.add("demo", "row two")
        collector.add("other", "x")
        collector.flush()
        assert (tmp_path / "demo.txt").read_text() == "row one\nrow two\n"
        assert (tmp_path / "other.txt").read_text() == "x\n"

    def test_tables_ordered(self):
        collector = RowCollector()
        collector.add("t", "a")
        collector.add("t", "b")
        assert collector.tables["t"] == ["a", "b"]


class TestVerifyNetwork:
    def test_formal_path(self):
        import random
        from repro.bdd.manager import BDD
        from repro.boolfunc.spec import MultiFunction
        from repro.decomp.recursive import decompose
        rng = random.Random(643)
        bdd = BDD(5)
        table = [rng.randint(0, 1) for _ in range(32)]
        func = MultiFunction.from_truth_tables(bdd, list(range(5)),
                                               [table])
        net = decompose(func, n_lut=4)
        assert verify_network(func, net)

    def test_detects_mismatch(self):
        from repro.bdd.manager import BDD
        from repro.boolfunc.spec import MultiFunction
        from repro.mapping.lutnet import LutNetwork
        bdd = BDD(3)
        func = MultiFunction.from_truth_tables(
            bdd, [0, 1, 2], [[1, 0, 0, 0, 0, 0, 0, 0]])
        wrong = LutNetwork()
        for name in func.input_names:
            wrong.add_input(name)
        wrong.set_output(func.output_names[0], "const0")
        assert not verify_network(func, wrong)


class TestSummarize:
    def test_summarize_prints_tables(self, tmp_path, capsys):
        from benchmarks.summarize import main as summarize_main
        (tmp_path / "fig2_adder.txt").write_text("row A\n")
        assert summarize_main(tmp_path) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "row A" in out
        assert "(not generated)" in out

    def test_summarize_missing_dir(self, tmp_path, capsys):
        from benchmarks.summarize import main as summarize_main
        assert summarize_main(tmp_path / "ghost") == 1
