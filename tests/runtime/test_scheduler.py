"""Edge-case tests for the batch scheduler.

The hooks exercised here (``hang:<s>``, ``crash``/``crash:<n>``) fire
inside worker processes only, so the parent-side timeout/retry/degrade
machinery is tested end to end with real process kills.
"""

import pytest

from repro.bench.registry import benchmark
from repro.core.api import map_to_xc3000
from repro.runtime import (
    BatchScheduler,
    ResultCache,
    make_job,
    source_from_name,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12


def _jobs(*names, **kwargs):
    return [make_job(source_from_name(n), **kwargs) for n in names]


class TestParallelMatchesSerial:
    def test_bit_identical_lut_counts(self):
        names = ("rd53", "xor5", "majority", "z4ml")
        results = BatchScheduler(workers=2).run(_jobs(*names))
        assert [r.job_id for r in results] == list(names)  # input order
        for res in results:
            ref = map_to_xc3000(benchmark(res.job_id))
            assert res.status == "ok"
            assert res.result["lut_count"] == ref.lut_count
            assert res.result["clb_count"] == ref.clb_count
            assert res.result["depth"] == ref.depth
            assert res.result["verified"] is True


class TestEmptyBatch:
    def test_no_jobs_is_fine(self):
        assert BatchScheduler(workers=2).run([]) == []


class TestTimeout:
    def test_hung_job_degrades_without_blocking(self):
        jobs = _jobs("rd53")
        jobs.append(make_job(source_from_name("rd73"),
                             test_hook="hang:60"))
        results = BatchScheduler(workers=2, timeout=1.0).run(jobs)
        healthy, hung = results
        assert healthy.status == "ok"
        assert hung.status == "degraded"
        assert hung.degraded
        assert "timeout" in hung.error
        assert hung.retries == 0  # timeouts degrade, they do not retry
        # The degraded fallback is a real, verified network.
        assert hung.result["lut_count"] > 0
        assert hung.result["degraded"] is True
        assert hung.result["verified"] is True

    def test_timeout_without_degradation_fails(self):
        jobs = [make_job(source_from_name("rd53"), test_hook="hang:60")]
        [res] = BatchScheduler(workers=1, timeout=0.5,
                               degrade=False).run(jobs)
        assert res.status == "failed"
        assert res.result is None


class TestCrash:
    def test_persistent_crash_retries_then_degrades(self):
        jobs = [make_job(source_from_name("xor5"), test_hook="crash")]
        [res] = BatchScheduler(workers=1, retries=2,
                               retry_backoff_s=0.01).run(jobs)
        assert res.status == "degraded"
        assert res.retries == 2
        assert "crash" in res.error
        assert res.result["verified"] is True

    def test_transient_crash_recovers(self):
        jobs = [make_job(source_from_name("xor5"), test_hook="crash:1")]
        [res] = BatchScheduler(workers=1, retries=1,
                               retry_backoff_s=0.01).run(jobs)
        assert res.status == "ok"
        assert res.retries == 1
        ref = map_to_xc3000(benchmark("xor5"))
        assert res.result["lut_count"] == ref.lut_count


class TestFailures:
    def test_unbuildable_source_fails_cleanly(self, tmp_path):
        jobs = [make_job({"kind": "pla",
                          "path": str(tmp_path / "missing.pla")})]
        cache = ResultCache(tmp_path / "cache")
        [res] = BatchScheduler(workers=1, cache=cache,
                               retries=0).run(jobs)
        assert res.status == "failed"
        assert res.error

    def test_worker_exception_degrades_not_retries(self, tmp_path):
        # A bad PLA file raises inside the worker (no cache, so the
        # parent never opened it); deterministic -> no retry, degrade
        # is impossible (build fails there too) -> failed.
        bad = tmp_path / "bad.pla"
        bad.write_text("this is not a PLA file\n")
        jobs = [make_job({"kind": "pla", "path": str(bad)})]
        [res] = BatchScheduler(workers=1, retries=3).run(jobs)
        assert res.status == "failed"
        assert res.retries == 0


class TestCacheIntegration:
    def test_second_run_all_hits_and_identical(self, tmp_path):
        names = ("rd53", "xor5", "z4ml")
        cache = ResultCache(tmp_path)
        cold = BatchScheduler(workers=2, cache=cache).run(_jobs(*names))
        assert all(not r.cache_hit for r in cold)
        warm_cache = ResultCache(tmp_path)  # fresh LRU, disk only
        warm = BatchScheduler(workers=2,
                              cache=warm_cache).run(_jobs(*names))
        assert all(r.cache_hit for r in warm)
        assert all(r.status == "ok" for r in warm)
        for a, b in zip(cold, warm):
            assert a.result["lut_count"] == b.result["lut_count"]
            assert a.result["blif"] == b.result["blif"]

    def test_config_partitions_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run = BatchScheduler(workers=1, cache=cache)
        [dc] = run.run(_jobs("rd73", config={"use_dontcares": True}))
        [nodc] = run.run(_jobs("rd73", config={"use_dontcares": False}))
        assert not nodc.cache_hit  # different config, different key
        [dc2] = run.run(_jobs("rd73", config={"use_dontcares": True}))
        assert dc2.cache_hit
        assert dc2.result["lut_count"] == dc.result["lut_count"]

    def test_degraded_results_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [make_job(source_from_name("rd53"), test_hook="hang:60")]
        [res] = BatchScheduler(workers=1, timeout=0.5,
                               cache=cache).run(jobs)
        assert res.status == "degraded"
        retry = [make_job(source_from_name("rd53"))]
        [clean] = BatchScheduler(workers=1,
                                 cache=ResultCache(tmp_path)).run(retry)
        assert not clean.cache_hit  # degraded run left no entry
        assert clean.status == "ok"


class TestCompareFlow:
    def test_compare_records_both_drivers(self):
        jobs = [make_job(source_from_name("rd73"), flow="compare")]
        [res] = BatchScheduler(workers=1).run(jobs)
        assert res.status == "ok"
        record = res.result
        assert record["verified"] is True
        base = map_to_xc3000(benchmark("rd73"), use_dontcares=False)
        with_dc = map_to_xc3000(benchmark("rd73"), use_dontcares=True)
        assert record["mulopII"]["clb_count"] == base.clb_count
        assert record["mulop_dc"]["clb_count"] == with_dc.clb_count
        assert record["clbs_saved"] == (base.clb_count
                                        - with_dc.clb_count)


class TestShutdownHygiene:
    def test_no_orphans_when_callback_interrupts(self):
        # Regression: an exception escaping run()'s main loop (here a
        # KeyboardInterrupt from the on_result callback while two hung
        # workers are still in flight) used to leak the live worker
        # processes; the try/finally must kill and reap every one.
        import multiprocessing
        import time

        jobs = _jobs("rd53")
        jobs += [make_job(source_from_name(name), test_hook="hang:60")
                 for name in ("rd73", "rd84")]

        def interrupt(res):
            raise KeyboardInterrupt

        sched = BatchScheduler(workers=3, retries=0)
        with pytest.raises(KeyboardInterrupt):
            sched.run(jobs, on_result=interrupt)
        deadline = time.monotonic() + 5.0
        while (multiprocessing.active_children()
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert multiprocessing.active_children() == []


class TestRetryBackoff:
    def test_jitter_stream_is_seeded(self):
        # Same seed, same retry spread; different seed, different spread
        # (deterministic chaos runs need reproducible schedules).
        def draws(seed):
            rng = BatchScheduler(backoff_seed=seed)._rng
            return [rng.uniform(0.5, 1.5) for _ in range(8)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
        assert all(0.5 <= x <= 1.5 for x in draws(7))
