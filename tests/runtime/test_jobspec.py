"""Tests for job descriptors, the manifest grammar and job execution."""

import pytest

from repro.boolfunc.spec import MultiFunction
from repro.runtime import jobspec


class TestSources:
    def test_benchmark_source(self):
        func = jobspec.build_function({"kind": "benchmark",
                                       "name": "rd53"})
        assert func.num_inputs == 5

    def test_generator_source(self):
        func = jobspec.build_function({"kind": "generator",
                                       "name": "adder3"})
        assert func.num_outputs == 4

    def test_bad_generator_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            jobspec.build_function({"kind": "generator",
                                    "name": "adderfoo"})

    def test_synthetic_source_seeded(self):
        base = {"kind": "synthetic", "name": "s", "inputs": 8,
                "outputs": 3}
        f1 = jobspec.build_function(dict(base, seed=1))
        f1_again = jobspec.build_function(dict(base, seed=1))
        f2 = jobspec.build_function(dict(base, seed=2))
        assert f1.canonical_key() == f1_again.canonical_key()
        assert f1.canonical_key() != f2.canonical_key()

    def test_wire_source_round_trip(self):
        func = jobspec.build_function({"kind": "benchmark",
                                       "name": "rd53"})
        rebuilt = jobspec.build_function({"kind": "wire",
                                          "data": func.to_wire()})
        assert isinstance(rebuilt, MultiFunction)
        assert rebuilt.canonical_key() == func.canonical_key()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown source kind"):
            jobspec.build_function({"kind": "nope"})

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown circuit"):
            jobspec.source_from_name("not-a-circuit")


class TestManifest:
    def test_parse_entries(self):
        jobs = jobspec.parse_manifest(
            "# suite\n"
            "rd84\n"
            "adder4\n"
            "pla:/tmp/x.pla   # trailing comment\n"
            "blif:/tmp/y.blif\n"
            "synth:duke2:22:29:7\n"
            "\n"
            "rd53 !hang=5\n")
        kinds = [j["source"]["kind"] for j in jobs]
        assert kinds == ["benchmark", "generator", "pla", "blif",
                        "synthetic", "benchmark"]
        assert jobs[4]["source"]["seed"] == "7"
        assert jobs[5]["test_hook"] == "hang:5"

    def test_empty_manifest(self):
        assert jobspec.parse_manifest("\n# only comments\n") == []

    def test_bad_line_reports_lineno(self):
        with pytest.raises(ValueError, match="manifest line 2"):
            jobspec.parse_manifest("rd84\nsynth:broken\n")

    def test_crash_hook_parsed(self):
        job = jobspec.parse_manifest_entry("rd53 !crash=2")
        assert job["test_hook"] == "crash:2"


class TestExecuteJob:
    def test_map_flow(self):
        job = jobspec.make_job({"kind": "benchmark", "name": "rd53"})
        payload = jobspec.execute_job(job)
        assert payload["status"] == "ok"
        record = payload["result"]
        assert record["lut_count"] > 0
        assert record["verified"] is True
        assert ".model" in record["blif"]

    def test_verify_opt_out(self):
        job = jobspec.make_job({"kind": "benchmark", "name": "rd53"},
                               config={"verify": False})
        payload = jobspec.execute_job(job)
        assert "verified" not in payload["result"]

    def test_bad_flow_rejected(self):
        with pytest.raises(ValueError, match="unknown flow"):
            jobspec.make_job({"kind": "benchmark", "name": "rd53"},
                             flow="nope")
