"""Tests for the persistent result cache."""

import json

from repro.runtime.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    cache_key,
)


class TestCacheKey:
    def test_deterministic(self):
        a = cache_key("func", "map", {"use_dontcares": True})
        b = cache_key("func", "map", {"use_dontcares": True})
        assert a == b

    def test_config_order_irrelevant(self):
        a = cache_key("f", "map", {"a": 1, "b": 2})
        b = cache_key("f", "map", {"b": 2, "a": 1})
        assert a == b

    def test_distinct_inputs_distinct_keys(self):
        base = cache_key("f", "map", {"use_dontcares": True})
        assert cache_key("g", "map", {"use_dontcares": True}) != base
        assert cache_key("f", "compare", {"use_dontcares": True}) != base
        assert cache_key("f", "map", {"use_dontcares": False}) != base


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("f", "map", {})
        assert cache.get(key) is None
        cache.put(key, {"lut_count": 7})
        assert cache.get(key) == {"lut_count": 7}

    def test_persists_across_instances(self, tmp_path):
        key = cache_key("f", "map", {})
        ResultCache(tmp_path).put(key, {"clb_count": 3})
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) == {"clb_count": 3}

    def test_memory_front_hits_without_disk(self, tmp_path):
        cache = ResultCache(tmp_path, memory_limit=4)
        key = cache_key("f", "map", {})
        cache.put(key, {"x": 1})
        for path in cache.iter_files():
            path.unlink()
        # The LRU front still answers even though disk is gone.
        assert cache.get(key) == {"x": 1}

    def test_memory_front_bounded(self, tmp_path):
        cache = ResultCache(tmp_path, memory_limit=2)
        keys = [cache_key(f"f{i}", "map", {}) for i in range(5)]
        for i, key in enumerate(keys):
            cache.put(key, {"i": i})
        assert len(cache._lru) == 2

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(cache_key(f"f{i}", "map", {}), {"i": i})
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert cache.clear() == 3
        assert cache.disk_stats()["entries"] == 0


class TestCachePoisoning:
    """A corrupted cache is detected and rebuilt, never trusted."""

    def _entry_path(self, cache, key):
        cache.put(key, {"lut_count": 7})
        [path] = list(cache.iter_files())
        return path

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, memory_limit=0)
        key = cache_key("f", "map", {})
        path = self._entry_path(cache, key)
        path.write_text("{not json at all")
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert not path.exists()  # dropped, so the entry gets rebuilt
        cache.put(key, {"lut_count": 7})
        assert cache.get(key) == {"lut_count": 7}

    def test_wrong_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, memory_limit=0)
        key = cache_key("f", "map", {})
        path = self._entry_path(cache, key)
        entry = json.loads(path.read_text())
        entry["cache_version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, memory_limit=0)
        key = cache_key("f", "map", {})
        path = self._entry_path(cache, key)
        entry = json.loads(path.read_text())
        entry["key"] = "0" * 64  # entry claims to be someone else
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_payload_not_dict_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, memory_limit=0)
        key = cache_key("f", "map", {})
        path = self._entry_path(cache, key)
        entry = json.loads(path.read_text())
        entry["payload"] = [1, 2, 3]
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert cache.corrupt == 1


class TestConcurrentMaintenanceRaces:
    """A ``repro cache clear`` (or external cleanup) racing a reader or
    a stats walk must read as a miss / empty set, never an exception."""

    def test_entry_unlinked_between_stat_and_read_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, memory_limit=0)
        key = cache_key("f", "map", {})
        cache.put(key, {"lut_count": 3})
        # Simulate the clear racing the reader: the entry vanishes
        # after put() but before the next get() opens it.
        (cache.root / key[:2] / f"{key}.json").unlink()
        assert cache.get(key) is None
        assert cache.misses == 1
        assert cache.corrupt == 0  # a vanished entry is not corruption

    def test_root_removed_mid_walk_is_empty(self, tmp_path, monkeypatch):
        import shutil
        cache = ResultCache(tmp_path / "c", memory_limit=0)
        cache.put(cache_key("f", "map", {}), {"lut_count": 3})
        # Force the TOCTOU: the root exists when the walk starts and is
        # removed before iterdir() lists it.
        real_iterdir = type(cache.root).iterdir

        def racing_iterdir(path):
            if path == cache.root:
                shutil.rmtree(cache.root, ignore_errors=True)
            return real_iterdir(path)

        monkeypatch.setattr(type(cache.root), "iterdir", racing_iterdir)
        assert list(cache.iter_files()) == []
        assert cache.disk_stats() == {"entries": 0, "bytes": 0}

    def test_shard_removed_mid_walk_is_skipped(self, tmp_path):
        import shutil
        cache = ResultCache(tmp_path, memory_limit=0)
        k1 = cache_key("f", "map", {})
        k2 = cache_key("g", "map", {})
        cache.put(k1, {"lut_count": 1})
        cache.put(k2, {"lut_count": 2})
        shutil.rmtree(cache.root / k1[:2])
        survivors = list(cache.iter_files())
        assert [p.stem for p in survivors] == [k2]

    def test_clear_against_missing_root_is_zero(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created", memory_limit=0)
        assert cache.clear() == 0
        assert cache.disk_stats() == {"entries": 0, "bytes": 0}
