"""Tests for the persistent worker pool and its shared primitives."""

import multiprocessing
import time

import pytest

from repro.runtime import make_job, source_from_name
from repro.runtime.pool import (
    JobTimeout,
    PoolClosed,
    ProgressEvent,
    WorkerCrash,
    WorkerPool,
    resolve_workers,
    warm_key,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12


def _job(name, **kwargs):
    return make_job(source_from_name(name), **kwargs)


class TestResolveWorkers:
    def test_none_is_auto_and_silent(self):
        workers, note = resolve_workers(None)
        assert workers >= 1
        assert note is None

    @pytest.mark.parametrize("bad", [0, -1, -64])
    def test_nonpositive_clamps_with_note(self, bad):
        workers, note = resolve_workers(bad)
        auto, _ = resolve_workers(None)
        assert workers == auto
        assert note is not None
        assert str(bad) in note and "clamped" in note

    def test_positive_passes_through_uncapped(self):
        workers, note = resolve_workers(3)
        assert workers == 3 and note is None
        # An explicit request above the auto cap is honored.
        workers, note = resolve_workers(64)
        assert workers == 64 and note is None


class TestWarmKey:
    def test_wire_and_source_key_differently(self):
        a = warm_key({"source": {"kind": "benchmark", "name": "rd53"}})
        b = warm_key({"source": {"kind": "benchmark", "name": "rd73"}})
        assert a and b and a != b
        assert warm_key({"wire": {"n": 1}}) != a

    def test_file_sources_never_memoise(self):
        # File bytes can change between requests; reuse would be stale.
        assert warm_key({"source": {"kind": "pla", "path": "/x.pla"}}) \
            is None
        assert warm_key({"source": {"kind": "blif", "path": "/x.blif"}}) \
            is None


class TestProgressEventShape:
    def test_as_dict_drops_unset_fields(self):
        event = ProgressEvent(kind="dispatch", job_id="j", attempt=2)
        assert event.as_dict() == {"event": "dispatch", "job_id": "j",
                                   "attempt": 2}

    def test_as_dict_keeps_set_fields(self):
        event = ProgressEvent(kind="result", job_id="j", index=3,
                              status="ok", beats=2, detail="d")
        data = event.as_dict()
        assert data["index"] == 3 and data["status"] == "ok"
        assert data["beats"] == 2 and data["detail"] == "d"


class TestWorkerPool:
    def test_jobs_complete_and_workers_stay_warm(self):
        pool = WorkerPool(1, heartbeat_s=0.2)
        try:
            first = pool.submit(_job("rd53")).result(timeout=120)
            assert first["status"] == "ok"
            assert first["result"]["verified"] is True
            pid_after_first = pool.stats()["pids"]
            second = pool.submit(_job("rd53")).result(timeout=120)
            assert second["status"] == "ok"
            stats = pool.stats()
            # Same process served both jobs, and the second reused the
            # warm built function (the whole point of the pool).
            assert stats["pids"] == pid_after_first
            assert stats["respawns"] == 0
            assert stats["warm_hits"] == 1
            assert stats["dispatched"] == 2
            assert stats["completed"] == 2
        finally:
            pool.shutdown()
        assert multiprocessing.active_children() == []

    def test_results_match_batch_semantics(self):
        from repro.bench.registry import benchmark
        from repro.core.api import map_to_xc3000
        pool = WorkerPool(2)
        try:
            payload = pool.submit(_job("xor5")).result(timeout=120)
        finally:
            pool.shutdown()
        ref = map_to_xc3000(benchmark("xor5"))
        assert payload["result"]["lut_count"] == ref.lut_count
        assert payload["result"]["clb_count"] == ref.clb_count

    def test_crash_is_typed_and_pool_survives(self):
        pool = WorkerPool(1, heartbeat_s=0.2)
        try:
            future = pool.submit(_job("rd53", test_hook="crash"))
            with pytest.raises(WorkerCrash) as excinfo:
                future.result(timeout=120)
            assert excinfo.value.exitcode is not None
            # The pool respawns capacity: the next job still runs.
            after = pool.submit(_job("rd53")).result(timeout=120)
            assert after["status"] == "ok"
            assert pool.stats()["crashes"] == 1
            assert pool.stats()["respawns"] >= 1
        finally:
            pool.shutdown()
        assert multiprocessing.active_children() == []

    def test_timeout_is_typed_and_worker_replaced(self):
        pool = WorkerPool(1, heartbeat_s=0.1)
        try:
            future = pool.submit(_job("rd53", test_hook="hang:60"),
                                 timeout=0.5)
            with pytest.raises(JobTimeout):
                future.result(timeout=120)
            assert pool.stats()["timeouts"] == 1
            after = pool.submit(_job("rd53")).result(timeout=120)
            assert after["status"] == "ok"
        finally:
            pool.shutdown()
        assert multiprocessing.active_children() == []

    def test_events_stream_from_pool_jobs(self):
        events = []
        pool = WorkerPool(1, heartbeat_s=0.05)
        try:
            pool.submit(_job("rd53"),
                        on_event=events.append).result(timeout=120)
            deadline = time.monotonic() + 5
            while not events and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            pool.shutdown()
        kinds = [e.kind for e in events]
        assert kinds[0] == "dispatch"
        assert all(k in ("dispatch", "beat") for k in kinds)

    def test_submit_after_shutdown_is_typed(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(PoolClosed):
            pool.submit(_job("rd53"))

    def test_abort_fails_queued_futures(self):
        pool = WorkerPool(1, heartbeat_s=0.2)
        slow = pool.submit(_job("rd53", test_hook="hang:60"))
        queued = pool.submit(_job("rd73"))
        pool.shutdown(drain=False)
        with pytest.raises(PoolClosed):
            queued.result(timeout=10)
        with pytest.raises((PoolClosed, WorkerCrash)):
            slow.result(timeout=10)
        assert multiprocessing.active_children() == []
