"""ResultCache under concurrent *processes*.

The cache's only cross-process synchronization is the atomicity of
``os.replace``: writers may race each other and readers may race a
replace, and the contract is simply that every read returns either a
complete valid entry or a miss — never an exception, never a torn
payload — and that racing same-key writers leave exactly one valid
entry behind.
"""

import json
import multiprocessing

import pytest

from repro.runtime.cache import ResultCache

KEY = "ab" * 32
PAYLOAD_A = {"writer": "a", "lut_count": 4, "pad": "x" * 4096}
PAYLOAD_B = {"writer": "b", "lut_count": 9, "pad": "y" * 4096}


def hammer_puts(root, payload, rounds, barrier):
    cache = ResultCache(root, memory_limit=0)
    barrier.wait()
    for _ in range(rounds):
        cache.put(KEY, payload)


def hammer_gets(root, rounds, barrier, out):
    cache = ResultCache(root, memory_limit=0)
    barrier.wait()
    misses = hits = 0
    try:
        for _ in range(rounds):
            record = cache.get(KEY)
            if record is None:
                misses += 1
            else:
                # A hit must be one of the two complete payloads —
                # a torn read would produce neither.
                assert record in (PAYLOAD_A, PAYLOAD_B)
                hits += 1
    except Exception as exc:  # noqa: BLE001 — report, don't hang
        out.put(("error", repr(exc)))
        return
    out.put(("ok", {"hits": hits, "misses": misses}))


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestConcurrentProcesses:
    def test_same_key_writers_converge_to_one_valid_entry(self,
                                                          tmp_path):
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(2)
        writers = [
            ctx.Process(target=hammer_puts,
                        args=(str(tmp_path), payload, 200, barrier))
            for payload in (PAYLOAD_A, PAYLOAD_B)
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=60.0)
            assert proc.exitcode == 0
        # Exactly one entry file, no temp debris, valid JSON, and it is
        # one of the two racing payloads in full.
        entries = [p for p in tmp_path.rglob("*.json")]
        assert len(entries) == 1
        entry = json.loads(entries[0].read_text())
        assert entry["payload"] in (PAYLOAD_A, PAYLOAD_B)
        assert not list(tmp_path.rglob("*.tmp*"))
        cache = ResultCache(tmp_path, memory_limit=0)
        assert cache.get(KEY) == entry["payload"]
        assert cache.corrupt == 0

    def test_read_during_replace_is_miss_or_hit_never_crash(self,
                                                            tmp_path):
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(3)
        out = ctx.Queue()
        writer = ctx.Process(target=hammer_puts,
                             args=(str(tmp_path), PAYLOAD_A, 300,
                                   barrier))
        readers = [
            ctx.Process(target=hammer_gets,
                        args=(str(tmp_path), 300, barrier, out))
            for _ in range(2)
        ]
        writer.start()
        for proc in readers:
            proc.start()
        verdicts = [out.get(timeout=60.0) for _ in readers]
        writer.join(timeout=60.0)
        for proc in readers:
            proc.join(timeout=60.0)
        assert writer.exitcode == 0
        for status, detail in verdicts:
            assert status == "ok", detail
        # At least one read raced into an actual hit (the writer keeps
        # the entry present virtually the whole time).
        assert sum(v[1]["hits"] for v in verdicts) > 0

    def test_reader_before_first_write_is_a_plain_miss(self, tmp_path):
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(1)
        out = ctx.Queue()
        reader = ctx.Process(target=hammer_gets,
                             args=(str(tmp_path), 5, barrier, out))
        reader.start()
        status, detail = out.get(timeout=30.0)
        reader.join(timeout=30.0)
        assert status == "ok"
        assert detail["misses"] == 5


class TestSingleProcessReplaceRace:
    def test_entry_unlinked_by_another_process_is_plain_miss(
            self, tmp_path):
        # Deterministic edge of the replace race: the entry vanishes
        # (a `repro cache clear` elsewhere) between put and get.
        cache = ResultCache(tmp_path, memory_limit=0)
        cache.put(KEY, PAYLOAD_A)
        cache._path(KEY).unlink()
        assert cache.get(KEY) is None  # miss, not FileNotFoundError
        assert cache.corrupt == 0      # absence is not corruption
        cache.put(KEY, PAYLOAD_A)
        assert cache.get(KEY) == PAYLOAD_A

    def test_half_written_bytes_never_served(self, tmp_path):
        # What os.replace protects against, written out by hand: a torn
        # entry (as if a writer died mid-write without the temp-file
        # dance) must read as a miss and be dropped, not parsed.
        cache = ResultCache(tmp_path, memory_limit=0)
        cache.put(KEY, PAYLOAD_A)
        path = cache._path(KEY)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        assert cache.get(KEY) is None
        assert cache.corrupt == 1
        assert not path.exists()


