"""Cache observability: hit/miss latency percentiles and the polled
counter surface.

``counter_stats()`` is the no-disk-walk subset served on every
``/metrics`` poll; ``stats()`` adds the on-disk footprint.  Latency
windows are bounded deques, split by outcome, with nearest-rank
percentiles.
"""

from collections import deque

from repro.runtime.cache import (
    LATENCY_WINDOW,
    ResultCache,
    _latency_percentiles,
)

KEY = "ab" * 32


class TestPercentiles:
    def test_empty_window_is_all_none(self):
        stats = _latency_percentiles([])
        assert stats == {"p50_ms": None, "p90_ms": None,
                         "p99_ms": None, "samples": 0}

    def test_single_sample_is_every_percentile(self):
        stats = _latency_percentiles([0.002])
        assert stats["p50_ms"] == stats["p90_ms"] == stats["p99_ms"] \
            == 2.0
        assert stats["samples"] == 1

    def test_nearest_rank_ordering(self):
        samples = [i / 1000.0 for i in range(1, 101)]  # 1..100 ms
        stats = _latency_percentiles(samples)
        assert stats["p50_ms"] == 50.0
        assert stats["p90_ms"] == 90.0
        assert stats["p99_ms"] == 99.0
        assert stats["p50_ms"] <= stats["p90_ms"] <= stats["p99_ms"]

    def test_unsorted_input_is_sorted_first(self):
        assert _latency_percentiles([0.003, 0.001,
                                     0.002])["p50_ms"] == 2.0


class TestCacheLatencyWindows:
    def test_gets_split_by_outcome(self, tmp_path):
        cache = ResultCache(tmp_path, memory_limit=0)
        cache.get(KEY)                      # miss
        cache.put(KEY, {"lut_count": 4})
        cache.get(KEY)                      # hit
        cache.get(KEY)                      # hit
        stats = cache.counter_stats()
        assert stats["hit_latency"]["samples"] == 2
        assert stats["miss_latency"]["samples"] == 1
        assert stats["hit_latency"]["p50_ms"] > 0.0
        assert stats["miss_latency"]["p99_ms"] >= \
            stats["miss_latency"]["p50_ms"]

    def test_window_is_bounded(self, tmp_path):
        cache = ResultCache(tmp_path, memory_limit=0)
        assert isinstance(cache._hit_latency, deque)
        assert cache._hit_latency.maxlen == LATENCY_WINDOW
        for _ in range(LATENCY_WINDOW + 50):
            cache.get(KEY)
        assert cache.counter_stats()["miss_latency"]["samples"] \
            == LATENCY_WINDOW
        assert cache.misses == LATENCY_WINDOW + 50  # counter unbounded

    def test_counter_stats_never_walks_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"lut_count": 4})
        stats = cache.counter_stats()
        assert "entries" not in stats and "bytes" not in stats
        assert stats["memory_entries"] == 1

    def test_stats_is_counters_plus_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"lut_count": 4})
        cache.get(KEY)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["hits"] == 1
        assert stats["hit_latency"]["samples"] == 1
