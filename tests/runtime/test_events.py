"""The progress-event callback API shared by batch and serve.

One contract, two consumers: ``repro batch`` progress lines and the
service tier's NDJSON streaming both subscribe through
``BatchScheduler.run(on_event=...)`` /
``WorkerPool.submit(on_event=...)``.  These tests pin the stream's
shape — ordering, kinds, payload fields — and that a broken sink can
never break execution.
"""

import pytest

from repro.runtime import BatchScheduler, make_job, source_from_name
from repro.runtime.pool import ProgressEvent, emit_event

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12


def _jobs(*names, **kwargs):
    return [make_job(source_from_name(n), **kwargs) for n in names]


class TestSchedulerEventStream:
    def test_dispatch_then_result_per_job(self):
        events = []
        results = BatchScheduler(workers=2).run(
            _jobs("rd53", "xor5"), on_event=events.append)
        assert all(r.status == "ok" for r in results)
        for job_id in ("rd53", "xor5"):
            kinds = [e.kind for e in events if e.job_id == job_id]
            assert kinds[0] == "dispatch"
            assert kinds[-1] == "result"
        finals = [e for e in events if e.kind == "result"]
        assert {e.status for e in finals} == {"ok"}
        # Indexes address the submitted job list.
        assert {e.index for e in finals} == {0, 1}

    def test_beats_carry_phase_and_count(self):
        events = []
        BatchScheduler(workers=1, heartbeat_s=0.05).run(
            _jobs("rd84"), on_event=events.append)
        beats = [e for e in events if e.kind == "beat"]
        assert beats, "a real decomposition must beat at 0.05s interval"
        assert all(e.beats >= 1 for e in beats)

    def test_crash_retry_emits_retry_event(self):
        events = []
        results = BatchScheduler(workers=1, retries=2,
                                 retry_backoff_s=0.01).run(
            _jobs("rd53", test_hook="crash:1"), on_event=events.append)
        assert results[0].status == "ok"
        retries = [e for e in events if e.kind == "retry"]
        assert len(retries) == 1
        assert retries[0].attempt == 2
        assert "crashed" in retries[0].detail

    def test_degraded_result_reports_status_and_detail(self):
        events = []
        results = BatchScheduler(workers=1, timeout=0.5).run(
            _jobs("rd53", test_hook="hang:60"), on_event=events.append)
        assert results[0].status == "degraded"
        final = [e for e in events if e.kind == "result"][0]
        assert final.status == "degraded"
        assert "timeout" in final.detail

    def test_cache_hit_still_emits_result_event(self, tmp_path):
        from repro.runtime import ResultCache
        cache = ResultCache(tmp_path)
        BatchScheduler(workers=1, cache=cache).run(_jobs("rd53"))
        events = []
        BatchScheduler(workers=1, cache=cache).run(
            _jobs("rd53"), on_event=events.append)
        kinds = [e.kind for e in events]
        assert kinds == ["result"]  # no dispatch: served from cache

    def test_raising_sink_does_not_break_the_batch(self):
        def bad_sink(event):
            raise RuntimeError("observer bug")
        results = BatchScheduler(workers=1).run(
            _jobs("rd53"), on_event=bad_sink)
        assert results[0].status == "ok"

    def test_emit_event_helper_swallows_sink_errors(self):
        emit_event(lambda e: 1 / 0,
                   ProgressEvent(kind="beat", job_id="x"))  # no raise
        emit_event(None, ProgressEvent(kind="beat", job_id="x"))
