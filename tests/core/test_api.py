"""Tests for the high-level API facade."""

import random

import pytest

from repro import (
    BDD,
    MultiFunction,
    decompose_to_luts,
    map_to_xc3000,
    synthesize_two_input_gates,
)


@pytest.fixture
def func():
    rng = random.Random(271)
    bdd = BDD(7)
    tables = [[rng.randint(0, 1) for _ in range(128)] for _ in range(2)]
    return MultiFunction.from_truth_tables(bdd, list(range(7)), tables)


class TestMapToXc3000:
    def test_result_fields(self, func):
        result = map_to_xc3000(func)
        assert result.lut_count == result.network.lut_count
        assert result.clb_count == len(result.clbs)
        assert result.clb_count <= result.lut_count
        assert result.depth == result.network.depth()
        assert result.network.max_fanin() <= 5

    def test_summary_readable(self, func):
        result = map_to_xc3000(func)
        text = result.summary()
        assert "LUTs" in text and "CLBs" in text

    def test_modes_differ_only_in_flag(self, func):
        with_dc = map_to_xc3000(func, use_dontcares=True)
        without = map_to_xc3000(func, use_dontcares=False)
        # Both must be valid; counts may differ either way on random
        # functions.
        assert with_dc.clb_count > 0
        assert without.clb_count > 0

    def test_functional(self, func):
        result = map_to_xc3000(func)
        for k in range(0, 128, 3):
            bits = [(k >> (6 - i)) & 1 for i in range(7)]
            expected = func.eval(dict(zip(func.inputs, bits)))
            got = result.network.eval_outputs(
                dict(zip(func.input_names, bits)))
            assert [got[n] for n in func.output_names] == expected


class TestDecomposeToLuts:
    def test_n_lut_parameter(self, func):
        for n_lut in (3, 4, 5):
            net = decompose_to_luts(func, n_lut=n_lut)
            assert net.max_fanin() <= n_lut


class TestGateSynthesis:
    def test_end_to_end(self, func):
        net = synthesize_two_input_gates(func)
        assert net.gate_count > 0
        for k in range(0, 128, 5):
            bits = [(k >> (6 - i)) & 1 for i in range(7)]
            expected = func.eval(dict(zip(func.inputs, bits)))
            got = net.eval_outputs(dict(zip(func.input_names, bits)))
            assert [got[n] for n in func.output_names] == expected


class TestPackageSurface:
    def test_version(self):
        import repro
        assert repro.__version__

    def test_exports(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name)
