"""Tests for the batch/cache CLI surface and compare exit codes."""

import json

import pytest

from repro.cli import main
from repro.verify.equiv import EquivResult

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-multithreaded on 3.12


class TestBatch:
    def test_names_jsonl_and_metrics(self, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(["batch", "rd53", "xor5", "majority",
                     "--jobs", "2", "--no-cache",
                     "--out", str(out), "--metrics-out", str(metrics)])
        assert code == 0
        rows = [json.loads(line)
                for line in out.read_text().splitlines()]
        assert [r["job_id"] for r in rows] == ["rd53", "xor5",
                                               "majority"]
        for row in rows:
            assert row["status"] == "ok"
            assert row["result"]["lut_count"] > 0
            assert row["result"]["verified"] is True
            assert "blif" not in row["result"]  # needs --include-blif
        doc = json.loads(metrics.read_text())
        assert doc["command"] == "batch"
        assert doc["totals"]["jobs"] == 3
        assert doc["totals"]["failed"] == 0
        assert len(doc["jobs"]) == 3
        stdout = capsys.readouterr().out
        assert "[3/3]" in stdout
        assert "3 ok, 0 degraded, 0 failed" in stdout

    def test_manifest_file(self, tmp_path, capsys):
        manifest = tmp_path / "suite.txt"
        manifest.write_text("# tiny suite\nrd53\nxor5\n")
        assert main(["batch", "--manifest", str(manifest),
                     "--no-cache"]) == 0
        assert "2 job(s)" in capsys.readouterr().out

    def test_cache_warm_second_run_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["batch", "rd53", "xor5", "--jobs", "2",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache hits 0/2" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache hits 2/2" in warm

    def test_failed_job_exits_nonzero(self, tmp_path, capsys):
        assert main(["batch", "rd53",
                     "pla:" + str(tmp_path / "missing.pla"),
                     "--no-cache"]) == 1
        assert "1 failed" in capsys.readouterr().out

    def test_include_blif(self, tmp_path):
        out = tmp_path / "r.jsonl"
        assert main(["batch", "xor5", "--no-cache", "--include-blif",
                     "--out", str(out)]) == 0
        [row] = [json.loads(line)
                 for line in out.read_text().splitlines()]
        assert ".model" in row["result"]["blif"]

    def test_compare_flow(self, tmp_path, capsys):
        out = tmp_path / "r.jsonl"
        assert main(["batch", "rd73", "--flow", "compare",
                     "--no-cache", "--out", str(out)]) == 0
        [row] = [json.loads(line)
                 for line in out.read_text().splitlines()]
        assert row["flow"] == "compare"
        assert "clbs_saved" in row["result"]
        assert "saves" in capsys.readouterr().out

    def test_bad_manifest_line_is_clean_error(self, tmp_path):
        manifest = tmp_path / "suite.txt"
        manifest.write_text("rd53\nsynth:broken\n")
        with pytest.raises(SystemExit, match="manifest line 2"):
            main(["batch", "--manifest", str(manifest), "--no-cache"])


class TestCacheCli:
    def test_stats_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", "xor5", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats = capsys.readouterr().out
        assert "entries   : 1" in stats
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1 cache entry" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries   : 0" in capsys.readouterr().out


class TestMapCache:
    def test_warm_map_prints_cached(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["map", "rd53", "--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "(cached)" not in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "(cached)" in warm

    def test_cached_blif_out_matches_fresh(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        fresh = tmp_path / "fresh.blif"
        cached = tmp_path / "cached.blif"
        assert main(["map", "rd53", "--cache-dir", cache_dir,
                     "--blif-out", str(fresh)]) == 0
        assert main(["map", "rd53", "--cache-dir", cache_dir,
                     "--blif-out", str(cached)]) == 0
        assert cached.read_text() == fresh.read_text()


class TestCompareExitCode:
    def test_mismatch_exits_nonzero(self, capsys, monkeypatch):
        import repro.verify.equiv as equiv

        monkeypatch.setattr(
            equiv, "check_extension",
            lambda func, net: EquivResult(
                equivalent=False, failing_output="f0",
                counterexample={"x0": 0}))
        assert main(["compare", "xor5"]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_equivalent_exits_zero(self, capsys):
        assert main(["compare", "xor5"]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out
