"""CLI observability: ``--metrics-out`` schema, ``--profile``, and the
clean rejection of malformed generator names."""

import json

import pytest

from repro.cli import main
from repro.obs import SCHEMA_VERSION

#: Keys every metrics document must carry — the schema-stability
#: contract behind ``--metrics-out`` (additive changes OK, renames and
#: removals require a SCHEMA_VERSION bump and an update here).
TOP_LEVEL_KEYS = {"schema_version", "command", "source", "wall_time_s",
                  "result", "engine", "phases", "bdd"}
ENGINE_KEYS = {"decomposition_steps", "shannon_steps", "alphas_created",
               "alphas_shared", "max_recursion_depth", "budget_exhausted"}
BDD_KEYS = {"num_vars", "nodes", "peak_nodes", "unique_table_size",
            "computed_table_size", "computed_table_capacity",
            "computed_hits", "computed_misses", "computed_evictions",
            "ite_calls", "restrict_calls", "computed_hit_rate"}


class TestMetricsOut:
    def test_map_metrics_schema(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(["map", "rd53", "--metrics-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert TOP_LEVEL_KEYS <= set(doc)
        assert ENGINE_KEYS <= set(doc["engine"])
        assert BDD_KEYS <= set(doc["bdd"])
        assert doc["command"] == "map"
        assert doc["source"] == "rd53"
        assert {"lut_count", "clb_count", "depth"} <= set(doc["result"])
        assert 0.0 <= doc["bdd"]["computed_hit_rate"] <= 1.0
        assert doc["bdd"]["peak_nodes"] >= 2
        for entry in doc["phases"].values():
            assert {"time_s", "calls"} <= set(entry)
            assert entry["time_s"] >= 0.0

    def test_gates_metrics(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        assert main(["gates", "pm2", "--metrics-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["command"] == "gates"
        assert "gate_count" in doc["result"]
        assert "bdd" in doc

    def test_compare_metrics(self, tmp_path, capsys):
        out = tmp_path / "c.json"
        assert main(["compare", "rd53", "--metrics-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["command"] == "compare"
        assert {"mulopII", "mulop_dc", "clbs_saved"} <= set(doc["result"])


class TestProfileFlag:
    def test_map_profile_output(self, capsys):
        assert main(["map", "rd53", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "phase profile" in out
        assert "computed hit rate" in out
        assert "peak" in out

    def test_compare_profile_shows_both_drivers(self, capsys):
        assert main(["compare", "rd53", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "mulopII" in out and "mulop-dc" in out
        assert out.count("phase profile") == 2


class TestGeneratorNames:
    @pytest.mark.parametrize("bad", ["adderfoo", "adder", "adder0",
                                     "pmx", "pm", "pm0", "adder-3"])
    def test_malformed_generator_exits_cleanly(self, bad):
        with pytest.raises(SystemExit) as exc:
            main(["map", bad])
        assert "adderN" in str(exc.value)
        assert "pmN" in str(exc.value)

    def test_unknown_benchmark_exits_cleanly(self):
        with pytest.raises(SystemExit) as exc:
            main(["map", "nosuchcircuit"])
        assert "repro list" in str(exc.value)

    def test_valid_generator_still_works(self, capsys):
        assert main(["map", "adder2"]) == 0
        assert "CLBs" in capsys.readouterr().out
