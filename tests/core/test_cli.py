"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "rd84" in out
        assert "synthetic" in out


class TestMap:
    def test_map_benchmark(self, capsys):
        assert main(["map", "rd73"]) == 0
        out = capsys.readouterr().out
        assert "mulop-dc" in out
        assert "CLBs" in out

    def test_map_no_dc(self, capsys):
        assert main(["map", "--no-dc", "rd73"]) == 0
        assert "mulopII" in capsys.readouterr().out

    def test_map_generator(self, capsys):
        assert main(["map", "adder4"]) == 0
        assert "CLBs" in capsys.readouterr().out

    def test_map_pla(self, tmp_path, capsys):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 3\n.o 1\n11- 1\n--1 1\n.e\n")
        assert main(["map", "--pla", str(pla)]) == 0
        assert "CLBs" in capsys.readouterr().out

    def test_map_blif_out(self, tmp_path, capsys):
        out_file = tmp_path / "mapped.blif"
        assert main(["map", "rd73", "--blif-out", str(out_file)]) == 0
        text = out_file.read_text()
        assert ".model" in text
        from repro.boolfunc.blif import parse_blif
        mf = parse_blif(text)
        assert mf.num_inputs == 7

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            main(["map"])


class TestGates:
    def test_gates_adder(self, capsys):
        assert main(["gates", "adder3"]) == 0
        out = capsys.readouterr().out
        assert "two-input gates" in out

    def test_gates_pm(self, capsys):
        assert main(["gates", "pm2"]) == 0
        assert "two-input gates" in capsys.readouterr().out


class TestVerify:
    def test_verify_benchmark(self, capsys):
        assert main(["verify", "rd73"]) == 0
        out = capsys.readouterr().out
        assert "EQUIVALENT" in out

    def test_verify_no_dc(self, capsys):
        assert main(["verify", "--no-dc", "z4ml"]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_map_trace(self, capsys):
        assert main(["map", "--trace", "rd73"]) == 0
        out = capsys.readouterr().out
        assert "decomposition steps" in out
        assert "step " in out


class TestCompare:
    def test_compare_row(self, capsys):
        assert main(["compare", "rd84"]) == 0
        out = capsys.readouterr().out
        assert "mulopII" in out and "mulop-dc" in out
        assert "saves" in out


class TestBlifInput:
    def test_map_blif_file(self, tmp_path, capsys):
        blif = tmp_path / "f.blif"
        blif.write_text(
            ".model t\n.inputs a b c\n.outputs y\n"
            ".names a b t1\n11 1\n.names t1 c y\n1- 1\n-1 1\n.end\n")
        assert main(["map", "--blif", str(blif)]) == 0
        assert "CLBs" in capsys.readouterr().out
