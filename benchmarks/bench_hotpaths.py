#!/usr/bin/env python3
"""Micro-benchmarks for the word-parallel kernel hot paths.

Times the three decomposition hot paths — vertex-cofactor extraction +
clique cover (``classes_for``), bound-set scoring
(``reduction_score``) and symmetry-based assignment
(``assign_for_symmetry``) — twice per case: once with the kernel
disabled (pure-BDD reference) and once enabled, on identical inputs.
The kernel is verified elsewhere (tests/kernel/) to be bit-identical;
this script only measures.

Writes a schema-versioned JSON report (default: repo-root
``BENCH_hotpaths.json``).  Raw seconds are machine-dependent, so each
report also carries a calibration constant (time for a fixed
pure-Python workload) and per-case times normalised by it, making
reports from different machines roughly comparable.

The report also carries a ``dsd`` section: one DSD-heavy end-to-end
engine case (a parity shell around a random core, plus a Table 1
circuit) run with the tier-0 pre-pass off and on, recording wall time,
the bound-set scoring time the search actually spent (the
``reduction_score``/``classes_for``/``kernel_refine`` kernel ops the
``rank_bound_sets``/``greedy_bound_set`` rows above measure in
isolation) and the pre-pass counters.

Usage:

    PYTHONPATH=src python benchmarks/bench_hotpaths.py
    PYTHONPATH=src python benchmarks/bench_hotpaths.py \
        --seeds 1 2 --check-speedup 1.0 --check-nvars 10 16 20 \
        --check-dsd --check-submemo --check-dist

``--check-speedup X`` exits non-zero if any case at a width listed in
``--check-nvars`` ran slower than ``X`` times the BDD reference;
``--check-dsd`` exits non-zero if the DSD-on run was slower than the
DSD-off run (1.25x grace) or emitted no split counters;
``--check-submemo`` exits non-zero if a warm re-map against a
populated sub-ISF store is less than 3x faster than its cold run,
diverges from it, or the cross-output case records no per-run memo
hits; ``--check-dist`` exits non-zero if the 2-node distributed run is
less than 1.8x faster than a ``--jobs``-matched single host or
diverges from it — together the CI perf-smoke gate.

The ``dist`` section spawns two real ``repro dist serve-node``
subprocesses and runs a cache-cold wall-clock-bound manifest through
:class:`repro.dist.coordinator.DistCoordinator`, then the same manifest
through a single-host :class:`~repro.runtime.scheduler.BatchScheduler`
with the same per-node worker count.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bdd.manager import BDD  # noqa: E402
from repro.boolfunc.spec import ISF  # noqa: E402
from repro.decomp.bound_set import (  # noqa: E402
    greedy_bound_set,
    rank_bound_sets,
    reduction_score,
)
from repro.decomp.compat import classes_for  # noqa: E402
from repro.kernel import reset_kernel_stats  # noqa: E402
from repro.symmetry.groups import assign_for_symmetry  # noqa: E402

SCHEMA_VERSION = 1
NVARS = (10, 14, 16)
#: Widths past the bignum tier: cube-built dense-BDD ISFs (a dense
#: random truth table is not constructible at 2**18+ entries, and a
#: *sparse* one would be declined by the cost model — correctly, since
#: the BDD path wins there).
WIDE_NVARS = (18, 20, 22)
#: Widths where the bound-set search ops run both ways; at wide widths
#: a pure-BDD greedy search takes minutes per case, which is the point
#: of the kernel but too slow for a smoke benchmark.
SEARCH_NVARS = (10, 14)
DC_DENSITY = 0.3
REPEATS = 3
WIDE_REPEATS = 1
WIDE_CUBES = 60


def calibrate() -> float:
    """Fixed pure-Python workload; its runtime is the machine constant."""
    best = math.inf
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        for i in range(200_000):
            acc = (acc * 1103515245 + i) & 0xFFFFFFFF
        best = min(best, time.perf_counter() - t0)
    return best


def random_isf(bdd, rng, variables):
    lo_bits, hi_bits = [], []
    for _ in range(1 << len(variables)):
        if rng.random() < DC_DENSITY:
            lo_bits.append(0)
            hi_bits.append(1)
        else:
            bit = rng.randint(0, 1)
            lo_bits.append(bit)
            hi_bits.append(bit)
    return ISF.create(bdd,
                      bdd.from_truth_table(lo_bits, variables),
                      bdd.from_truth_table(hi_bits, variables))


def wide_isf(bdd, rng, variables):
    """A wide ISF with a *large* BDD (cube union), so the cost model
    serves it at tier 2 — the workload the tier exists for."""
    lo = BDD.FALSE
    for _ in range(WIDE_CUBES):
        cube_vars = rng.sample(variables, rng.randint(6, 10))
        lo = bdd.apply_or(
            lo, bdd.cube({v: rng.randint(0, 1) for v in cube_vars}))
    dc = BDD.FALSE
    for _ in range(WIDE_CUBES // 6):
        cube_vars = rng.sample(variables, rng.randint(6, 10))
        dc = bdd.apply_or(
            dc, bdd.cube({v: rng.randint(0, 1) for v in cube_vars}))
    return ISF.create(bdd, lo, bdd.apply_or(lo, dc))


def make_case(seed: int, nvars: int):
    rng = random.Random(seed * 1000 + nvars)
    bdd = BDD(nvars)
    variables = list(range(nvars))
    build = wide_isf if nvars > max(NVARS) else random_isf
    outputs = [build(bdd, rng, variables) for _ in range(2)]
    bound = tuple(rng.sample(variables, 4))
    return bdd, outputs, variables, bound


def time_op(fn, repeats=REPEATS) -> float:
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_case(seed: int, nvars: int):
    bdd, outputs, variables, bound = make_case(seed, nvars)
    ops = {
        "classes_for": lambda: classes_for(bdd, outputs, bound),
        "reduction_score": lambda: reduction_score(bdd, outputs, bound),
        "symmetry_assign": lambda: assign_for_symmetry(
            bdd, outputs[0], variables),
    }
    if nvars in SEARCH_NVARS:
        ops["greedy_bound_set"] = lambda: greedy_bound_set(
            bdd, outputs, variables, 4)
        ops["rank_bound_sets"] = lambda: rank_bound_sets(
            bdd, outputs, variables, 4)
    repeats = WIDE_REPEATS if nvars > max(NVARS) else REPEATS
    rows = []
    for op, fn in ops.items():
        os.environ["REPRO_KERNEL"] = "off"
        bdd_s = time_op(fn, repeats)
        os.environ["REPRO_KERNEL"] = "on"
        reset_kernel_stats()
        kernel_s = time_op(fn, repeats)
        rows.append({
            "op": op,
            "nvars": nvars,
            "seed": seed,
            "bdd_s": bdd_s,
            "kernel_s": kernel_s,
            "speedup": bdd_s / kernel_s if kernel_s > 0 else math.inf,
        })
    return rows


#: Kernel ops that make up the bound-set scoring cost inside an engine
#: run (what the isolated rank/greedy rows above measure).
SCORING_OPS = ("classes_for", "reduction_score", "kernel_refine")


def dsd_heavy_func():
    """A 14-input single-output function with a 6-literal XOR shell
    around a dense random 8-variable core — the shape the tier-0
    pre-pass exists for."""
    rng = random.Random(97)
    bdd = BDD(14)
    variables = list(range(14))
    core_table = [rng.randint(0, 1) for _ in range(1 << 8)]
    core = bdd.from_truth_table(core_table, variables[6:])
    f = core
    for v in variables[:6]:
        f = bdd.apply_xor(f, bdd.var(v))
    from repro.boolfunc.spec import MultiFunction
    return MultiFunction(bdd, variables, [ISF.complete(f)])


def run_dsd_case(name, func, gate_wall=False):
    from repro.decomp.recursive import DecompositionEngine

    def one(use_dsd):
        engine = DecompositionEngine(use_dsd=use_dsd)
        t0 = time.perf_counter()
        net = engine.run(func)
        wall = time.perf_counter() - t0
        ops = (engine.stats.kernel_metrics or {}).get("ops", {})
        scoring = sum(ops.get(op, {}).get("time_s", 0.0)
                      for op in SCORING_OPS)
        return {
            "wall_s": wall,
            "scoring_s": scoring,
            "lut_count": net.lut_count,
            "search_steps": engine.stats.decomposition_steps,
            "dsd": dict(engine.stats.dsd),
        }

    off = one(False)
    on = one(True)
    return {
        "case": name,
        # Wall-gated cases are the DSD-*heavy* ones where the pre-pass
        # must pay for itself outright; on the realistic circuits the
        # on-path may legitimately spend longer searching a different
        # (never worse) trajectory, so only LUTs/counters are gated.
        "gate_wall": gate_wall,
        "off": off,
        "on": on,
        "wall_speedup": off["wall_s"] / on["wall_s"]
        if on["wall_s"] > 0 else math.inf,
    }


def run_dsd_section():
    from repro.bench.registry import benchmark as build_circuit
    rows = [run_dsd_case("xor6shell_rand8", dsd_heavy_func(),
                         gate_wall=True),
            run_dsd_case("alu2", build_circuit("alu2"))]
    for row in rows:
        counters = ", ".join(f"{k}={v}" for k, v in
                             sorted(row["on"]["dsd"].items()))
        print(f"dsd  {row['case']:<16s} "
              f"off {row['off']['wall_s']*1e3:8.2f} ms "
              f"(score {row['off']['scoring_s']*1e3:7.2f} ms, "
              f"{row['off']['lut_count']} LUTs)   "
              f"on {row['on']['wall_s']*1e3:8.2f} ms "
              f"(score {row['on']['scoring_s']*1e3:7.2f} ms, "
              f"{row['on']['lut_count']} LUTs)   "
              f"speedup {row['wall_speedup']:5.2f}x   [{counters}]")
    return rows


# ---------------------------------------------------------------------
# Sub-ISF computed table: warm splice vs cold search
# ---------------------------------------------------------------------

#: Multi-output Table 1 circuits re-mapped against one in-process
#: store: run 2 must splice the whole top-level bundle from run 1.
SUBMEMO_CASES = ("rd84", "alu2")


def submemo_cross_output_func():
    """Two outputs that are the same function of disjoint 7-variable
    supports — the canonical key ignores variable numbering, so the
    second output's bundle must hit the per-run table."""
    from repro.boolfunc.spec import MultiFunction
    bdd = BDD(14)
    variables = list(range(14))

    def block(group):
        f = BDD.FALSE
        for i in range(len(group) - 2):
            t = bdd.apply_and(bdd.var(group[i]), bdd.var(group[i + 1]))
            f = bdd.apply_xor(f, bdd.apply_xor(t, bdd.var(group[i + 2])))
        return f

    return MultiFunction(
        bdd, variables,
        [ISF.complete(block(variables[:7])),
         ISF.complete(block(variables[7:]))])


def run_submemo_section():
    """Cold-then-warm mapping of each case against one store, plus a
    cross-output case exercising the per-run table in a single run."""
    from repro.bench.registry import benchmark as build_circuit
    from repro.core.api import map_to_xc3000
    from repro.decomp import submemo

    rows = []
    for name in SUBMEMO_CASES:
        store = submemo.SubMemoStore(byte_limit=1 << 26)
        func = build_circuit(name)
        t0 = time.perf_counter()
        cold = map_to_xc3000(func, submemo_store=store)
        cold_s = time.perf_counter() - t0
        func = build_circuit(name)
        t0 = time.perf_counter()
        warm = map_to_xc3000(func, submemo_store=store)
        warm_s = time.perf_counter() - t0
        row = {
            "case": name,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s if warm_s > 0 else math.inf,
            "identical": warm.network.to_blif() == cold.network.to_blif(),
            "cold": dict(cold.stats.submemo),
            "warm": dict(warm.stats.submemo),
        }
        rows.append(row)
        print(f"memo {name:<16s} cold {cold_s*1e3:8.2f} ms "
              f"({row['cold'].get('stores', 0)} stores)   "
              f"warm {warm_s*1e3:8.2f} ms "
              f"({row['warm'].get('splices', 0)} splices)   "
              f"speedup {row['speedup']:6.2f}x   "
              f"identical={row['identical']}")

    cross = map_to_xc3000(submemo_cross_output_func(),
                          submemo_store=submemo.SubMemoStore())
    run_hits = cross.stats.submemo.get("run_hits", 0)
    print(f"memo cross-output  run_hits={run_hits} "
          f"splices={cross.stats.submemo.get('splices', 0)}")
    return {"cases": rows, "cross_output_run_hits": run_hits}


# ---------------------------------------------------------------------
# Distributed batch: 2 local nodes vs a --jobs-matched single host
# ---------------------------------------------------------------------

#: The dist case is wall-clock-bound by construction (``!sleep`` jobs):
#: on a 1-CPU runner the speedup must come from *concurrency* across
#: node worker slots, which is exactly what the distributed tier adds.
DIST_JOBS = 8
DIST_SLEEP_S = 0.8
DIST_WORKERS_PER_NODE = 2
DIST_NODES = 2
#: ``synth:dist:8:1:<seed>`` — seeds 0..7 give 8 distinct canonical
#: keys (6-input synthetics collide after canonicalization; 8-input
#: ones verified distinct), so the cache-cold run has no dedup shortcut.
DIST_SYNTH = "synth:dist:8:1"


def _stable_rows(rows):
    """Zero the volatile timing fields (repro batch --stable-rows)."""
    out = []
    for row in sorted(rows, key=lambda r: r["index"]):
        row = dict(row)
        row["queue_wait_s"] = 0.0
        row["exec_s"] = 0.0
        row["beats"] = 0
        out.append(row)
    return out


def _spawn_node():
    """Start one ``repro dist serve-node`` subprocess; parse its
    readiness line for the ephemeral port."""
    import subprocess
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "dist", "serve-node",
         "--port", "0", "--workers", str(DIST_WORKERS_PER_NODE)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    deadline = time.monotonic() + 30.0
    while True:
        line = proc.stdout.readline()
        if "node serving on" in line:
            addr = line.split("node serving on", 1)[1].split()[0]
            host, _, port = addr.rpartition(":")
            return proc, (host, int(port))
        if not line or time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("dist node failed to become ready")


def run_dist_section():
    """Cache-cold sleep-bound manifest: 2 subprocess nodes vs a
    ``--jobs``-matched single-host scheduler, byte-identity checked."""
    import tempfile

    from repro.dist.coordinator import DistCoordinator
    from repro.runtime.cache import ResultCache
    from repro.runtime.jobspec import parse_manifest
    from repro.runtime.scheduler import BatchScheduler

    entries = "\n".join(f"{DIST_SYNTH}:{i} !sleep={DIST_SLEEP_S}"
                        for i in range(DIST_JOBS))

    def make_jobs():
        jobs = parse_manifest(entries)
        for job in jobs:
            job["flow"] = "map"
            job["config"] = {"use_dontcares": True}
        return jobs

    procs = []
    try:
        nodes = []
        for _ in range(DIST_NODES):
            proc, addr = _spawn_node()
            procs.append(proc)
            nodes.append(addr)

        with tempfile.TemporaryDirectory() as cache_dir:
            coordinator = DistCoordinator(nodes,
                                          cache=ResultCache(cache_dir))
            t0 = time.perf_counter()
            dist_rows = coordinator.run(make_jobs())
            dist_s = time.perf_counter() - t0
            dist_stats = coordinator.stats()

        with tempfile.TemporaryDirectory() as cache_dir:
            scheduler = BatchScheduler(workers=DIST_WORKERS_PER_NODE,
                                       cache=ResultCache(cache_dir))
            t0 = time.perf_counter()
            single_rows = [r.as_dict() for r in scheduler.run(make_jobs())]
            single_s = time.perf_counter() - t0
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10.0)
            except Exception:
                proc.kill()

    identical = _stable_rows(dist_rows) == _stable_rows(single_rows)
    ok = all(r["status"] == "ok" for r in dist_rows)
    section = {
        "jobs": DIST_JOBS,
        "sleep_s": DIST_SLEEP_S,
        "nodes": DIST_NODES,
        "workers_per_node": DIST_WORKERS_PER_NODE,
        "single_s": single_s,
        "dist_s": dist_s,
        "speedup": single_s / dist_s if dist_s > 0 else math.inf,
        "identical": identical,
        "all_ok": ok,
        "steals": dist_stats["steals"],
        "node_losses": dist_stats["node_losses"],
        "dup_results": dist_stats["dup_results"],
    }
    print(f"dist {DIST_NODES} nodes x {DIST_WORKERS_PER_NODE} workers, "
          f"{DIST_JOBS} jobs sleep {DIST_SLEEP_S}s: "
          f"single {single_s:.2f} s   dist {dist_s:.2f} s   "
          f"speedup {section['speedup']:.2f}x   "
          f"identical={identical} steals={section['steals']}")
    return section


def geomean(values):
    values = [v for v in values if v > 0 and math.isfinite(v)]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2],
                        help="benchmark case seeds (default: 1 2)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent /
                        "BENCH_hotpaths.json",
                        help="output JSON path (default: repo root)")
    parser.add_argument("--check-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero if any gated case is slower "
                             "than X times the BDD reference")
    parser.add_argument("--check-nvars", type=int, nargs="+", default=[16],
                        help="widths the --check-speedup gate applies to "
                             "(default: 16)")
    parser.add_argument("--check-dsd", action="store_true",
                        help="exit non-zero if the DSD-on engine run is "
                             "slower than DSD-off (1.25x grace) or "
                             "emitted no split counters")
    parser.add_argument("--check-submemo", type=float, nargs="?",
                        const=3.0, default=None, metavar="X",
                        help="exit non-zero if a warm re-map is not at "
                             "least X times faster than its cold run "
                             "(default 3.0), its BLIF diverges, or the "
                             "cross-output case records no per-run "
                             "memo hits")
    parser.add_argument("--check-dist", type=float, nargs="?",
                        const=1.8, default=None, metavar="X",
                        help="exit non-zero if the 2-node distributed "
                             "run is not at least X times faster than "
                             "the --jobs-matched single host (default "
                             "1.8) or its merged rows diverge")
    args = parser.parse_args(argv)

    prior_kernel = os.environ.get("REPRO_KERNEL")
    calibration_s = calibrate()
    cases = []
    for seed in args.seeds:
        for nvars in NVARS + WIDE_NVARS:
            rows = run_case(seed, nvars)
            cases.extend(rows)
            for row in rows:
                print(f"seed={seed} nvars={nvars:2d} {row['op']:<16s} "
                      f"bdd {row['bdd_s']*1e3:8.2f} ms   "
                      f"kernel {row['kernel_s']*1e3:8.2f} ms   "
                      f"speedup {row['speedup']:6.2f}x")
    dsd_rows = run_dsd_section()
    submemo_section = run_submemo_section()
    dist_section = run_dist_section()
    if prior_kernel is None:
        os.environ.pop("REPRO_KERNEL", None)
    else:
        os.environ["REPRO_KERNEL"] = prior_kernel

    for row in cases:
        row["bdd_norm"] = row["bdd_s"] / calibration_s
        row["kernel_norm"] = row["kernel_s"] / calibration_s

    by_nvars = {
        str(n): geomean([r["speedup"] for r in cases if r["nvars"] == n])
        for n in NVARS + WIDE_NVARS
    }
    doc = {
        "schema_version": SCHEMA_VERSION,
        "calibration_s": calibration_s,
        "seeds": args.seeds,
        "dc_density": DC_DENSITY,
        "repeats": REPEATS,
        "cases": cases,
        "dsd": dsd_rows,
        "submemo": submemo_section,
        "dist": dist_section,
        "summary": {
            "geomean_speedup": geomean([r["speedup"] for r in cases]),
            "geomean_speedup_by_nvars": by_nvars,
        },
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\ncalibration {calibration_s*1e3:.2f} ms; geomean speedup "
          f"{doc['summary']['geomean_speedup']:.2f}x -> {args.out}")

    if args.check_speedup is not None:
        # Below the bignum crossover (16 vars) only symmetry_assign is
        # gated: the density rule keeps the kernel off unless the joint
        # BDD is dense enough to win, so >=1.0x is a promise there —
        # while the search ops at small widths legitimately hover
        # around parity and are measured, not gated.
        gated = [r for r in cases if r["nvars"] in set(args.check_nvars)
                 and (r["nvars"] >= 16 or r["op"] == "symmetry_assign")]
        slow = [r for r in gated if r["speedup"] < args.check_speedup]
        if slow:
            for r in slow:
                print(f"GATE FAIL: seed={r['seed']} nvars={r['nvars']} "
                      f"{r['op']} speedup {r['speedup']:.2f}x < "
                      f"{args.check_speedup:.2f}x", file=sys.stderr)
            return 1
        print(f"gate OK: {len(gated)} cases >= "
              f"{args.check_speedup:.2f}x at nvars {args.check_nvars}")
    if args.check_dsd:
        failed = False
        for row in dsd_rows:
            if row["gate_wall"] \
                    and row["on"]["wall_s"] > 1.25 * row["off"]["wall_s"]:
                print(f"GATE FAIL: dsd case {row['case']} on-path "
                      f"{row['on']['wall_s']*1e3:.1f} ms > 1.25x off "
                      f"{row['off']['wall_s']*1e3:.1f} ms",
                      file=sys.stderr)
                failed = True
            if not row["on"]["dsd"]:
                print(f"GATE FAIL: dsd case {row['case']} emitted no "
                      f"pre-pass counters", file=sys.stderr)
                failed = True
            if row["on"]["lut_count"] > row["off"]["lut_count"]:
                print(f"GATE FAIL: dsd case {row['case']} LUTs "
                      f"{row['on']['lut_count']} > DSD-off "
                      f"{row['off']['lut_count']}", file=sys.stderr)
                failed = True
        if failed:
            return 1
        print(f"dsd gate OK: {len(dsd_rows)} cases — heavy case on-path "
              f"no slower, counters emitted, LUTs never worse")
    if args.check_submemo is not None:
        failed = False
        for row in submemo_section["cases"]:
            if row["speedup"] < args.check_submemo:
                print(f"GATE FAIL: submemo case {row['case']} warm "
                      f"speedup {row['speedup']:.2f}x < "
                      f"{args.check_submemo:.2f}x", file=sys.stderr)
                failed = True
            if not row["identical"]:
                print(f"GATE FAIL: submemo case {row['case']} warm "
                      f"BLIF diverges from cold", file=sys.stderr)
                failed = True
            if not row["warm"].get("splices"):
                print(f"GATE FAIL: submemo case {row['case']} warm run "
                      f"spliced nothing", file=sys.stderr)
                failed = True
        if submemo_section["cross_output_run_hits"] < 1:
            print("GATE FAIL: cross-output case recorded no per-run "
                  "memo hits", file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f"submemo gate OK: {len(submemo_section['cases'])} cases "
              f"warm >= {args.check_submemo:.2f}x cold, BLIF identical, "
              f"cross-output hits="
              f"{submemo_section['cross_output_run_hits']}")
    if args.check_dist is not None:
        failed = False
        if dist_section["speedup"] < args.check_dist:
            print(f"GATE FAIL: dist speedup "
                  f"{dist_section['speedup']:.2f}x < "
                  f"{args.check_dist:.2f}x", file=sys.stderr)
            failed = True
        if not dist_section["identical"]:
            print("GATE FAIL: dist rows diverge from the single-host "
                  "run", file=sys.stderr)
            failed = True
        if not dist_section["all_ok"]:
            print("GATE FAIL: dist run had non-ok rows", file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f"dist gate OK: {dist_section['speedup']:.2f}x >= "
              f"{args.check_dist:.2f}x on {DIST_NODES} nodes, rows "
              f"byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
