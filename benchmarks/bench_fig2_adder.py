"""Figure 2: two-input-gate synthesis of adders vs conditional-sum.

The paper's tool produces a 49-gate 8-bit adder; the conditional-sum
adder costs 90 gates in the paper's accounting.  We regenerate the
comparison for several operand widths; the shape to reproduce is
``decomposed < conditional-sum``, with the 8-bit decomposed adder in the
vicinity of 50 gates.
"""

import random

import pytest

from repro.arith.adders import (
    adder_function,
    conditional_sum_adder,
    ripple_carry_adder,
)
from repro.bench.paper_tables import FIG2_ADDER
from repro.core import synthesize_two_input_gates

_RESULTS = {}
_HEADER = [False]


def _verify_adder(net, n, samples=300):
    rng = random.Random(0)
    for _ in range(samples):
        x = rng.randrange(1 << n)
        y = rng.randrange(1 << n)
        bits = {f"x{i}": (x >> i) & 1 for i in range(n)}
        bits.update({f"y{i}": (y >> i) & 1 for i in range(n)})
        out = net.eval_outputs(bits)
        if sum(out[f"s{i}"] << i for i in range(n + 1)) != x + y:
            return False
    return True


@pytest.mark.parametrize("n", [2, 4, 8])
def test_fig2_adder(benchmark, rows, n):
    func = adder_function(n)

    decomposed = benchmark.pedantic(
        lambda: synthesize_two_input_gates(func), rounds=1, iterations=1)
    assert _verify_adder(decomposed, n)
    csa = conditional_sum_adder(n)
    rca = ripple_carry_adder(n)
    assert _verify_adder(csa, n)

    if not _HEADER[0]:
        rows.add("fig2_adder",
                 f"{'n':>3s} {'decomposed':>11s} {'cond-sum':>9s} "
                 f"{'ripple':>7s}   (two-input gates)")
        _HEADER[0] = True
    rows.add("fig2_adder",
             f"{n:3d} {decomposed.gate_count:11d} {csa.gate_count:9d} "
             f"{rca.gate_count:7d}")
    _RESULTS[n] = (decomposed.gate_count, csa.gate_count)

    # Shape assertions per the paper's Figure 2.
    if n == FIG2_ADDER["bits"]:
        ours, baseline = decomposed.gate_count, csa.gate_count
        rows.add("fig2_adder",
                 f"    paper (n=8): decomposed "
                 f"{FIG2_ADDER['mulop_gates']}, conditional-sum "
                 f"{FIG2_ADDER['conditional_sum_gates']}")
        # The decomposed adder beats the conditional-sum baseline and
        # lands near the paper's count.
        assert ours < baseline
        assert ours <= FIG2_ADDER["mulop_gates"] * 1.5
