"""Ablation: the contribution of each don't-care assignment step.

DESIGN.md calls out the three steps (symmetry, sharing, single-output)
as the design choices of the paper; this bench toggles each one off in
turn and reports CLB counts so their individual contribution is visible.
The compatibility claim of the paper implies full >= any ablation only
*statistically* — the assertion here is the weak sanity that every
configuration still produces a correct, feasible mapping.
"""

import pytest

from repro.bench.registry import benchmark as build_circuit
from repro.core import map_to_xc3000
from benchmarks.conftest import verify_network

_CIRCUITS = ["clip", "f51m", "misex2", "duke2"]

_CONFIGS = [
    ("full", {}),
    ("no-step1", {"use_symmetry_step": False}),
    ("no-step2", {"use_sharing_step": False}),
    ("no-step3", {"use_single_step": False}),
    ("none", {"use_dontcares": False}),
]

_HEADER = [False]


@pytest.mark.parametrize("name", _CIRCUITS)
def test_ablation(benchmark, rows, name):
    func = build_circuit(name)

    def run_all():
        results = {}
        for label, kwargs in _CONFIGS:
            results[label] = map_to_xc3000(func, **kwargs)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for label, result in results.items():
        assert verify_network(func, result.network), (name, label)
        assert result.network.max_fanin() <= 5

    if not _HEADER[0]:
        rows.add("ablation_dcsteps",
                 f"{'circuit':9s} " + " ".join(
                     f"{label:>9s}" for label, _ in _CONFIGS)
                 + "   (CLBs)")
        _HEADER[0] = True
    rows.add("ablation_dcsteps",
             f"{name:9s} " + " ".join(
                 f"{results[label].clb_count:9d}"
                 for label, _ in _CONFIGS))
