"""Table 2: ``mulop-dcII`` against other LUT mappers.

The paper compares against FGMap, mis-pga(new) and IMODEC — closed or
long-gone tools.  Per DESIGN.md §5 we substitute three in-repo
baselines:

* ``mux-tree`` — a BDD-driven Shannon/MUX mapper (approximating the
  early BDD-based mappers);
* ``cut-map`` — a greedy structural k-feasible-cut coverer over a
  BDD-MUX gate expansion (the mis-pga tradition);
* ``flowmap`` — depth-optimal FlowMap labelling on the same subject
  graph (the strongest classical structural mapper; light circuits
  only, its per-node max-flow is too slow for the widest stand-ins).

The shape to reproduce: the decomposition flow wins on most circuits
(clearly on the symmetric/arithmetic ones) and on the total.
"""

import pytest

from repro.bench.registry import BENCHMARKS, TABLE_ORDER
from repro.bench.registry import benchmark as build_circuit
from repro.core import map_to_xc3000
from repro.mapping.baselines import mux_tree_map, structural_cut_map
from repro.mapping.clb import clb_count
from repro.mapping.flowmap import flowmap
from benchmarks.conftest import skip_if_fast, verify_network

_RESULTS = {}
_HEADER = [False]

HEAVY_BUDGET_S = 150


def _emit_header(rows):
    if not _HEADER[0]:
        rows.add("table2",
                 f"{'circuit':9s} {'mulop-dcII':>11s} {'mux-tree':>9s} "
                 f"{'cut-map':>8s} {'flowmap':>8s}   (XC3000 CLBs)")
        _HEADER[0] = True


@pytest.mark.parametrize("name", TABLE_ORDER)
def test_table2_row(benchmark, rows, name):
    spec = BENCHMARKS[name]
    skip_if_fast(spec.heavy)
    func = build_circuit(name)
    budget = HEAVY_BUDGET_S if spec.heavy else None

    def run_all():
        ours = map_to_xc3000(func, use_dontcares=True,
                             time_budget=budget,
                             node_budget=budget and 4_000_000)
        mux_net = mux_tree_map(func, n_lut=5)
        cut_net = structural_cut_map(func, n_lut=5)
        fm_net = None if spec.heavy else flowmap(func, k=5)
        return ours, mux_net, cut_net, fm_net

    ours, mux_net, cut_net, fm_net = benchmark.pedantic(
        run_all, rounds=1, iterations=1)
    assert verify_network(func, ours.network)
    assert verify_network(func.completed_lo(), mux_net)
    assert verify_network(func.completed_lo(), cut_net)
    if fm_net is not None:
        assert verify_network(func.completed_lo(), fm_net)

    mux_clbs = clb_count(mux_net)
    cut_clbs = clb_count(cut_net)
    fm_clbs = clb_count(fm_net) if fm_net is not None else None
    fallback = ours.stats.budget_exhausted
    _RESULTS[name] = (ours.clb_count, mux_clbs, cut_clbs, fm_clbs,
                      fallback)
    _emit_header(rows)
    marker = " *" if fallback else ""
    fm_text = f"{fm_clbs:8d}" if fm_clbs is not None else f"{'-':>8s}"
    rows.add("table2",
             f"{name:9s} {ours.clb_count:11d} {mux_clbs:9d} "
             f"{cut_clbs:8d} {fm_text}{marker}")


def test_table2_totals(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no rows collected")
    clean = {k: v for k, v in _RESULTS.items() if not v[4]}
    subtotals = [sum(v[i] for v in clean.values()) for i in range(3)]
    fm_rows = {k: v for k, v in clean.items() if v[3] is not None}
    fm_sub = sum(v[3] for v in fm_rows.values())
    ours_on_fm_rows = sum(v[0] for v in fm_rows.values())
    rows.add("table2",
             f"{'subtotal':9s} {subtotals[0]:11d} {subtotals[1]:9d} "
             f"{subtotals[2]:8d} {fm_sub:8d}   (flowmap column over its "
             f"{len(fm_rows)} rows; * = budget fallback, excluded)")
    if len(clean) != len(_RESULTS):
        totals = [sum(v[i] for v in _RESULTS.values()) for i in range(3)]
        rows.add("table2",
                 f"{'total':9s} {totals[0]:11d} {totals[1]:9d} "
                 f"{totals[2]:8d}")
    # Shape assertions: we beat the heuristic baselines on the clean
    # subtotal, and FlowMap on its rows.
    assert subtotals[0] <= subtotals[1]
    assert subtotals[0] <= subtotals[2]
    if fm_rows:
        assert ours_on_fm_rows <= fm_sub
