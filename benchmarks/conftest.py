"""Shared infrastructure for the experiment benches.

Every bench prints its table rows through the session-scoped
:class:`RowCollector`; a terminal-summary hook renders each experiment's
table after the pytest-benchmark timing table, and the rows are also
written to ``benchmarks/out/<experiment>.txt`` so the reproduced tables
survive the run.

Set ``REPRO_BENCH_FAST=1`` to skip the heavy circuits (rot, e64, ...).
"""

from __future__ import annotations

import os
import random
from pathlib import Path
from typing import Dict, List

import pytest

OUT_DIR = Path(__file__).parent / "out"

FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "") == "1"


class RowCollector:
    """Collects printable rows per experiment table."""

    def __init__(self) -> None:
        self.tables: Dict[str, List[str]] = {}

    def add(self, table: str, row: str) -> None:
        self.tables.setdefault(table, []).append(row)

    def flush(self) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        for table, rows in self.tables.items():
            path = OUT_DIR / f"{table}.txt"
            path.write_text("\n".join(rows) + "\n")


_COLLECTOR = RowCollector()


@pytest.fixture(scope="session")
def rows() -> RowCollector:
    return _COLLECTOR


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    _COLLECTOR.flush()
    for table, table_rows in _COLLECTOR.tables.items():
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {table} ===")
        for row in table_rows:
            terminalreporter.write_line(row)


def verify_network(func, net, samples: int = 100) -> bool:
    """Verify a mapped network against its specification.

    Formal (BDD-based, exact) for networks of reasonable size; random
    sampling for the very large budget-fallback networks where symbolic
    simulation would dominate the bench runtime.
    """
    if getattr(net, "lut_count", 10**9) <= 3000:
        from repro.verify.equiv import check_extension
        return bool(check_extension(func, net))
    from repro.network.bitsim import sample_check
    return sample_check(func, net, patterns=max(samples, 128))


def skip_if_fast(heavy: bool) -> None:
    if FAST_MODE and heavy:
        pytest.skip("REPRO_BENCH_FAST=1 skips heavy circuits")


def obs_summary(stats) -> str:
    """Compact observability column for table rows: computed-table hit
    rate plus the most expensive engine phase of the run."""
    parts = []
    bm = getattr(stats, "bdd_metrics", None)
    if bm is not None:
        parts.append(f"hit {100.0 * bm.computed_hit_rate:.0f}%")
    phases = stats.phase_profile()
    if phases:
        top = max(phases, key=lambda n: phases[n]["time_s"])
        parts.append(f"{top} {phases[top]['time_s']:.2f}s")
    return " ".join(parts)


def dump_metrics(experiment: str, name: str, command: str, stats,
                 result: dict) -> None:
    """Write one row's machine-readable trace next to the table output
    (``benchmarks/out/<experiment>.<name>.metrics.json``)."""
    from repro.obs import run_metrics, write_metrics
    OUT_DIR.mkdir(exist_ok=True)
    doc = run_metrics(command=command, source=name, stats=stats,
                      bdd_metrics=getattr(stats, "bdd_metrics", None),
                      result=result)
    write_metrics(str(OUT_DIR / f"{experiment}.{name}.metrics.json"), doc)
