#!/usr/bin/env python3
"""Assemble the regenerated experiment tables into one report.

Reads the ``benchmarks/out/*.txt`` files written by the bench harness
and prints them in the paper's order, ready to paste into
EXPERIMENTS.md.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/summarize.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ORDER = [
    ("fig2_adder", "Figure 2 — adder, two-input gates"),
    ("fig3_pm", "Figure 3 — partial multiplier pm_n"),
    ("multiplier_scaling", "Section 6.1 — multiplier scaling"),
    ("table1", "Table 1 — mulopII vs mulop-dc (XC3000 CLBs)"),
    ("table2", "Table 2 — mulop-dcII vs baseline mappers"),
    ("ablation_dcsteps", "Ablation — don't-care steps"),
    ("ablation_cover", "Ablation — clique cover quality"),
]


def main(out_dir: Path = None) -> int:
    out_dir = out_dir or Path(__file__).parent / "out"
    if not out_dir.is_dir():
        print(f"no {out_dir} — run the benches first", file=sys.stderr)
        return 1
    missing = []
    for stem, title in ORDER:
        path = out_dir / f"{stem}.txt"
        print(f"== {title} " + "=" * max(0, 60 - len(title)))
        if path.exists():
            print(path.read_text().rstrip())
        else:
            print("(not generated)")
            missing.append(stem)
        print()
    if missing:
        print(f"missing: {', '.join(missing)}", file=sys.stderr)
    print_hotpaths(out_dir.parent.parent / "BENCH_hotpaths.json")
    return 0


def print_hotpaths(path: Path) -> None:
    """Append the kernel hot-path micro-benchmark, when present.

    Written by ``benchmarks/bench_hotpaths.py`` to the repo root —
    not a paper experiment, so it rides after the table order.
    """
    title = "Kernel hot paths — word-parallel vs pure-BDD"
    print(f"== {title} " + "=" * max(0, 60 - len(title)))
    if not path.exists():
        print("(not generated — run benchmarks/bench_hotpaths.py)")
        print()
        return
    doc = json.loads(path.read_text())
    summary = doc.get("summary", {})
    print(f"seeds {doc.get('seeds')}; calibration "
          f"{doc.get('calibration_s', 0) * 1e3:.2f} ms/unit")
    for row in doc.get("cases", []):
        print(f"  seed={row['seed']} nvars={row['nvars']:2d} "
              f"{row['op']:<16s} bdd {row['bdd_s']*1e3:8.2f} ms   "
              f"kernel {row['kernel_s']*1e3:8.2f} ms   "
              f"speedup {row['speedup']:6.2f}x")
    print(f"geomean speedup: {summary.get('geomean_speedup', 0):.2f}x  "
          f"by nvars: "
          + "  ".join(f"{n}:{v:.2f}x" for n, v in
                      summary.get("geomean_speedup_by_nvars", {}).items()))
    print()


if __name__ == "__main__":
    sys.exit(main())
