#!/usr/bin/env python3
"""Assemble the regenerated experiment tables into one report.

Reads the ``benchmarks/out/*.txt`` files written by the bench harness
and prints them in the paper's order, ready to paste into
EXPERIMENTS.md.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/summarize.py
"""

from __future__ import annotations

import sys
from pathlib import Path

ORDER = [
    ("fig2_adder", "Figure 2 — adder, two-input gates"),
    ("fig3_pm", "Figure 3 — partial multiplier pm_n"),
    ("multiplier_scaling", "Section 6.1 — multiplier scaling"),
    ("table1", "Table 1 — mulopII vs mulop-dc (XC3000 CLBs)"),
    ("table2", "Table 2 — mulop-dcII vs baseline mappers"),
    ("ablation_dcsteps", "Ablation — don't-care steps"),
    ("ablation_cover", "Ablation — clique cover quality"),
]


def main(out_dir: Path = None) -> int:
    out_dir = out_dir or Path(__file__).parent / "out"
    if not out_dir.is_dir():
        print(f"no {out_dir} — run the benches first", file=sys.stderr)
        return 1
    missing = []
    for stem, title in ORDER:
        path = out_dir / f"{stem}.txt"
        print(f"== {title} " + "=" * max(0, 60 - len(title)))
        if path.exists():
            print(path.read_text().rstrip())
        else:
            print("(not generated)")
            missing.append(stem)
        print()
    if missing:
        print(f"missing: {', '.join(missing)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
