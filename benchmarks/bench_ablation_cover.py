"""Ablation: greedy vs exact minimum clique cover.

DESIGN.md calls out the clique-cover heuristic (used by don't-care
steps 2 and 3) as a design choice; the paper reduces both steps to the
minimum clique cover problem.  This bench measures, over a corpus of
random incompletely specified functions, how often the onset-seeded
greedy cover is optimal and how much class count it gives away when it
is not.
"""

import random

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.decomp.compat import classes_for
from repro.decomp.cover import classes_for_exact


def _random_isf(rng, bdd, nvars, dc_prob):
    spec = [None if rng.random() < dc_prob else rng.randint(0, 1)
            for _ in range(1 << nvars)]
    onset = [1 if v == 1 else 0 for v in spec]
    upper = [0 if v == 0 else 1 for v in spec]
    return ISF.create(bdd, bdd.from_truth_table(onset, list(range(nvars))),
                      bdd.from_truth_table(upper, list(range(nvars))))


@pytest.mark.parametrize("dc_prob", [0.2, 0.4, 0.6])
def test_cover_ablation(benchmark, rows, dc_prob):
    def run():
        rng = random.Random(int(dc_prob * 100))
        optimal = 0
        total = 0
        excess = 0
        for _ in range(40):
            bdd = BDD(5)
            isf = _random_isf(rng, bdd, 5, dc_prob)
            bound = [0, 1, 2]
            greedy = classes_for(bdd, [isf], bound).ncc
            exact = classes_for_exact(bdd, [isf], bound).ncc
            assert exact <= greedy
            total += 1
            if exact == greedy:
                optimal += 1
            excess += greedy - exact
        return optimal, total, excess

    optimal, total, excess = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    rows.add("ablation_cover",
             f"dc={dc_prob:.1f}: greedy optimal on {optimal}/{total} "
             f"instances, total excess classes {excess}")
    # The heuristic must be optimal on a clear majority of instances.
    assert optimal >= total * 0.6
