"""Figure 3 / Section 6.1: partial multiplier ``pm_n`` and the role of
the don't-care assignment.

The paper: decomposing ``pm_4`` *without* the don't-care assignment
yields a circuit with ~75% more gates.  We regenerate the comparison for
``pm_3`` and ``pm_4`` (plus the Wallace tree over partial products as an
external reference) and assert the shape: the no-DC penalty is
substantial (>25%).
"""

import random

import pytest

from repro.arith.multipliers import (
    partial_multiplier_function,
    wallace_tree_multiplier,
)
from repro.bench.paper_tables import PM4_NO_DC_PENALTY
from repro.core import synthesize_two_input_gates

_HEADER = [False]


def _verify_pm(net, n, samples=200):
    rng = random.Random(0)
    for _ in range(samples):
        matrix = {(i, j): rng.randint(0, 1)
                  for i in range(n) for j in range(n)}
        bits = {f"p{i}_{j}": matrix[i, j]
                for i in range(n) for j in range(n)}
        out = net.eval_outputs(bits)
        got = sum(out[f"r{w}"] << w for w in range(2 * n))
        if got != sum(v << (i + j) for (i, j), v in matrix.items()):
            return False
    return True


@pytest.mark.parametrize("n", [3, 4])
def test_fig3_pm(benchmark, rows, n):
    func = partial_multiplier_function(n)

    def run_both():
        with_dc = synthesize_two_input_gates(func, use_dontcares=True)
        without = synthesize_two_input_gates(func, use_dontcares=False)
        return with_dc, without

    with_dc, without = benchmark.pedantic(run_both, rounds=1,
                                          iterations=1)
    assert _verify_pm(with_dc, n)
    assert _verify_pm(without, n)
    wallace = wallace_tree_multiplier(n, from_partial_products=True)

    penalty = (without.gate_count - with_dc.gate_count) \
        / with_dc.gate_count
    if not _HEADER[0]:
        rows.add("fig3_pm",
                 f"{'n':>3s} {'with-DC':>8s} {'no-DC':>6s} "
                 f"{'penalty':>8s} {'wallace':>8s}")
        _HEADER[0] = True
    rows.add("fig3_pm",
             f"{n:3d} {with_dc.gate_count:8d} {without.gate_count:6d} "
             f"{100 * penalty:+7.0f}% {wallace.gate_count:8d}")
    if n == 4:
        rows.add("fig3_pm",
                 f"    paper (pm_4): no-DC costs "
                 f"+{100 * PM4_NO_DC_PENALTY:.0f}% more gates")
        # Shape: the DC assignment is essential — a substantial penalty
        # without it.
        assert penalty > 0.25
        assert with_dc.gate_count < without.gate_count
