"""Table 1: XC3000 CLB counts, ``mulopII`` vs ``mulop-dc``.

Reproduces the paper's Table 1 over the benchmark registry: every
circuit is mapped with both drivers and the CLB counts are tabulated.
The paper's claims for the shape: ``mulop-dc <= mulopII`` overall with a
total reduction >10%, concentrated on the larger circuits (the inputs
are completely specified, so don't cares arise only inside the
recursion).

Absolute counts cannot match the 1997 runs (the netlist-only circuits
are documented synthetic stand-ins — DESIGN.md §5), but the comparison
columns are like for like.

Set ``REPRO_TABLE1_JOBS=<N>`` to reproduce the whole table through the
batch runtime (:mod:`repro.runtime.scheduler`) across N worker
processes: all rows are decomposed and verified in parallel up front
(results are bit-identical to the serial path — each worker rebuilds
its circuit in a fresh manager), and the row tests then tabulate the
precomputed records.  ``REPRO_TABLE1_CACHE_DIR=<dir>`` additionally
persists results, so a re-run of the table is nearly free.
"""

import os

import pytest

from repro.bench.registry import BENCHMARKS, TABLE_ORDER
from repro.bench.registry import benchmark as build_circuit
from repro.core import map_to_xc3000
from benchmarks.conftest import (
    FAST_MODE,
    dump_metrics,
    obs_summary,
    skip_if_fast,
    verify_network,
)

#: Worker count for the parallel (scheduler) mode; 0 = serial as before.
PARALLEL_JOBS = int(os.environ.get("REPRO_TABLE1_JOBS", "0") or 0)

_RESULTS = {}
_HEADER = [False]
_BATCH = {}


def _emit_header(rows):
    if not _HEADER[0]:
        rows.add("table1",
                 f"{'circuit':9s} {'i':>4s} {'o':>4s} "
                 f"{'mulopII':>8s} {'mulop-dc':>9s} {'saved':>7s}  "
                 f"dc-run cache/phases")
        _HEADER[0] = True


#: Wall-clock budget per driver run for the heavy circuits (the engine
#: degrades to a fast BDD/MUX mapping when exceeded — see
#: DecompositionEngine(time_budget=...)).
HEAVY_BUDGET_S = 150


def _max_fanin_from_blif(blif: str) -> int:
    """Largest .names fanin count in a BLIF dump (records carry BLIF
    text instead of live networks in the parallel mode)."""
    worst = 0
    for line in blif.splitlines():
        if line.startswith(".names "):
            worst = max(worst, len(line.split()) - 2)
    return worst


def _engine_config(heavy: bool, use_dontcares: bool) -> dict:
    config = {"use_dontcares": use_dontcares}
    if heavy:
        config["time_budget"] = HEAVY_BUDGET_S
        config["node_budget"] = 4_000_000
    return config


def _batch_results() -> dict:
    """Run every table row through the batch scheduler, once.

    One job per (circuit, driver); workers verify the mapped networks
    themselves, so the row tests only tabulate.
    """
    if _BATCH:
        return _BATCH
    from repro.runtime import BatchScheduler, ResultCache, make_job
    jobs = []
    for name in TABLE_ORDER:
        spec = BENCHMARKS[name]
        if FAST_MODE and spec.heavy:
            continue
        for use_dc in (False, True):
            jobs.append(make_job(
                {"kind": "benchmark", "name": name},
                job_id=f"{name}:{'dc' if use_dc else 'nodc'}",
                config=_engine_config(spec.heavy, use_dc)))
    cache_dir = os.environ.get("REPRO_TABLE1_CACHE_DIR")
    cache = ResultCache(cache_dir) if cache_dir else None
    scheduler = BatchScheduler(workers=PARALLEL_JOBS, cache=cache)
    for res in scheduler.run(jobs):
        _BATCH[res.job_id] = res
    return _BATCH


def _parallel_row(benchmark, rows, name, num_inputs, num_outputs):
    def fetch():
        batch = _batch_results()
        return batch[f"{name}:nodc"], batch[f"{name}:dc"]

    baseline, with_dc = benchmark.pedantic(fetch, rounds=1, iterations=1)
    for res in (baseline, with_dc):
        assert res.status in ("ok", "degraded"), res.error
        assert res.result.get("verified", True)
        assert _max_fanin_from_blif(res.result["blif"]) <= 5
    base, dc = baseline.result, with_dc.result

    fallback = (base["engine"]["budget_exhausted"]
                or dc["engine"]["budget_exhausted"]
                or baseline.degraded or with_dc.degraded)
    _RESULTS[name] = (base["clb_count"], dc["clb_count"], fallback)
    _emit_header(rows)
    delta = base["clb_count"] - dc["clb_count"]
    marker = " *" if fallback else ""
    hit = "cache" if with_dc.cache_hit else f"{with_dc.exec_s:.1f}s"
    rows.add("table1",
             f"{name:9s} {num_inputs:4d} {num_outputs:4d} "
             f"{base['clb_count']:8d} {dc['clb_count']:9d} "
             f"{delta:+7d}{marker}  batch {hit}")


@pytest.mark.parametrize("name", TABLE_ORDER)
def test_table1_row(benchmark, rows, name):
    spec = BENCHMARKS[name]
    skip_if_fast(spec.heavy)
    if PARALLEL_JOBS:
        _parallel_row(benchmark, rows, name, spec.num_inputs,
                      spec.num_outputs)
        return
    func = build_circuit(name)
    budget = HEAVY_BUDGET_S if spec.heavy else None

    def run_both():
        # Counter resets keep each driver's bdd_metrics snapshot
        # attributable to that run alone (the manager is shared).
        func.bdd.reset_counters()
        baseline = map_to_xc3000(func, use_dontcares=False,
                                 time_budget=budget,
                                 node_budget=budget and 4_000_000)
        func.bdd.reset_counters()
        with_dc = map_to_xc3000(func, use_dontcares=True,
                                time_budget=budget,
                                 node_budget=budget and 4_000_000)
        return baseline, with_dc

    baseline, with_dc = benchmark.pedantic(run_both, rounds=1,
                                           iterations=1)
    assert verify_network(func, baseline.network)
    assert verify_network(func, with_dc.network)
    assert baseline.network.max_fanin() <= 5
    assert with_dc.network.max_fanin() <= 5

    fallback = (baseline.stats.budget_exhausted
                or with_dc.stats.budget_exhausted)
    _RESULTS[name] = (baseline.clb_count, with_dc.clb_count, fallback)
    _emit_header(rows)
    delta = baseline.clb_count - with_dc.clb_count
    marker = " *" if fallback else ""
    rows.add("table1",
             f"{name:9s} {func.num_inputs:4d} {func.num_outputs:4d} "
             f"{baseline.clb_count:8d} {with_dc.clb_count:9d} "
             f"{delta:+7d}{marker}  {obs_summary(with_dc.stats)}")
    dump_metrics("table1", name, "map", with_dc.stats,
                 {"lut_count": with_dc.lut_count,
                  "clb_count": with_dc.clb_count,
                  "depth": with_dc.depth,
                  "mulopII_clb_count": baseline.clb_count})


def test_table1_totals(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no rows collected")
    clean = {k: v for k, v in _RESULTS.items() if not v[2]}
    sub_ii = sum(v[0] for v in clean.values())
    sub_dc = sum(v[1] for v in clean.values())
    total_ii = sum(v[0] for v in _RESULTS.values())
    total_dc = sum(v[1] for v in _RESULTS.values())
    reduction = 100.0 * (sub_ii - sub_dc) / sub_ii if sub_ii else 0.0
    rows.add("table1",
             f"{'subtotal':9s} {'':4s} {'':4s} {sub_ii:8d} {sub_dc:9d} "
             f"{sub_ii - sub_dc:+7d}  ({reduction:.1f}% reduction; "
             f"paper: >10% — see EXPERIMENTS.md for the gap discussion)")
    if len(clean) != len(_RESULTS):
        rows.add("table1",
                 f"{'total':9s} {'':4s} {'':4s} {total_ii:8d} "
                 f"{total_dc:9d} {total_ii - total_dc:+7d}  "
                 f"(* = wall-clock budget fallback dominated the row)")
    # Shape assertion: don't-care exploitation never hurts the clean
    # subtotal (the budget-fallback rows depend on machine speed).
    assert sub_dc <= sub_ii
