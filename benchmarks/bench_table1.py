"""Table 1: XC3000 CLB counts, ``mulopII`` vs ``mulop-dc``.

Reproduces the paper's Table 1 over the benchmark registry: every
circuit is mapped with both drivers and the CLB counts are tabulated.
The paper's claims for the shape: ``mulop-dc <= mulopII`` overall with a
total reduction >10%, concentrated on the larger circuits (the inputs
are completely specified, so don't cares arise only inside the
recursion).

Absolute counts cannot match the 1997 runs (the netlist-only circuits
are documented synthetic stand-ins — DESIGN.md §5), but the comparison
columns are like for like.
"""

import pytest

from repro.bench.registry import BENCHMARKS, TABLE_ORDER
from repro.bench.registry import benchmark as build_circuit
from repro.core import map_to_xc3000
from benchmarks.conftest import (
    dump_metrics,
    obs_summary,
    skip_if_fast,
    verify_network,
)

_RESULTS = {}
_HEADER = [False]


def _emit_header(rows):
    if not _HEADER[0]:
        rows.add("table1",
                 f"{'circuit':9s} {'i':>4s} {'o':>4s} "
                 f"{'mulopII':>8s} {'mulop-dc':>9s} {'saved':>7s}  "
                 f"dc-run cache/phases")
        _HEADER[0] = True


#: Wall-clock budget per driver run for the heavy circuits (the engine
#: degrades to a fast BDD/MUX mapping when exceeded — see
#: DecompositionEngine(time_budget=...)).
HEAVY_BUDGET_S = 150


@pytest.mark.parametrize("name", TABLE_ORDER)
def test_table1_row(benchmark, rows, name):
    spec = BENCHMARKS[name]
    skip_if_fast(spec.heavy)
    func = build_circuit(name)
    budget = HEAVY_BUDGET_S if spec.heavy else None

    def run_both():
        # Counter resets keep each driver's bdd_metrics snapshot
        # attributable to that run alone (the manager is shared).
        func.bdd.reset_counters()
        baseline = map_to_xc3000(func, use_dontcares=False,
                                 time_budget=budget,
                                 node_budget=budget and 4_000_000)
        func.bdd.reset_counters()
        with_dc = map_to_xc3000(func, use_dontcares=True,
                                time_budget=budget,
                                 node_budget=budget and 4_000_000)
        return baseline, with_dc

    baseline, with_dc = benchmark.pedantic(run_both, rounds=1,
                                           iterations=1)
    assert verify_network(func, baseline.network)
    assert verify_network(func, with_dc.network)
    assert baseline.network.max_fanin() <= 5
    assert with_dc.network.max_fanin() <= 5

    fallback = (baseline.stats.budget_exhausted
                or with_dc.stats.budget_exhausted)
    _RESULTS[name] = (baseline.clb_count, with_dc.clb_count, fallback)
    _emit_header(rows)
    delta = baseline.clb_count - with_dc.clb_count
    marker = " *" if fallback else ""
    rows.add("table1",
             f"{name:9s} {func.num_inputs:4d} {func.num_outputs:4d} "
             f"{baseline.clb_count:8d} {with_dc.clb_count:9d} "
             f"{delta:+7d}{marker}  {obs_summary(with_dc.stats)}")
    dump_metrics("table1", name, "map", with_dc.stats,
                 {"lut_count": with_dc.lut_count,
                  "clb_count": with_dc.clb_count,
                  "depth": with_dc.depth,
                  "mulopII_clb_count": baseline.clb_count})


def test_table1_totals(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no rows collected")
    clean = {k: v for k, v in _RESULTS.items() if not v[2]}
    sub_ii = sum(v[0] for v in clean.values())
    sub_dc = sum(v[1] for v in clean.values())
    total_ii = sum(v[0] for v in _RESULTS.values())
    total_dc = sum(v[1] for v in _RESULTS.values())
    reduction = 100.0 * (sub_ii - sub_dc) / sub_ii if sub_ii else 0.0
    rows.add("table1",
             f"{'subtotal':9s} {'':4s} {'':4s} {sub_ii:8d} {sub_dc:9d} "
             f"{sub_ii - sub_dc:+7d}  ({reduction:.1f}% reduction; "
             f"paper: >10% — see EXPERIMENTS.md for the gap discussion)")
    if len(clean) != len(_RESULTS):
        rows.add("table1",
                 f"{'total':9s} {'':4s} {'':4s} {total_ii:8d} "
                 f"{total_dc:9d} {total_ii - total_dc:+7d}  "
                 f"(* = wall-clock budget fallback dominated the row)")
    # Shape assertion: don't-care exploitation never hurts the clean
    # subtotal (the budget-fallback rows depend on machine speed).
    assert sub_dc <= sub_ii
