"""Section 6.1 multiplier scaling: the column-wise scheme vs Wallace.

The paper's generalised multiplier scheme costs ``n^2 + O(n log^2 n)``
two-input gates against ``10 n^2 - 20 n`` for the Wallace tree — i.e.
roughly an order of magnitude fewer gates per partial-product bit at
large ``n``.  We regenerate the series on the partial multiplier
(inputs = partial products for both schemes, so the ``n^2`` AND matrix
cancels out) and assert the shape: the decomposed scheme stays well
below the Wallace gate count, and both grow quadratically-ish.
"""

import random

import pytest

from repro.arith.multipliers import (
    partial_multiplier_function,
    wallace_tree_multiplier,
)
from repro.bench.paper_tables import wallace_gates
from repro.core import synthesize_two_input_gates

_RESULTS = {}
_HEADER = [False]


def _verify_pm(net, n, samples=120):
    rng = random.Random(0)
    for _ in range(samples):
        matrix = {(i, j): rng.randint(0, 1)
                  for i in range(n) for j in range(n)}
        bits = {f"p{i}_{j}": matrix[i, j]
                for i in range(n) for j in range(n)}
        out = net.eval_outputs(bits)
        got = sum(out[f"r{w}"] << w for w in range(2 * n))
        if got != sum(v << (i + j) for (i, j), v in matrix.items()):
            return False
    return True


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_multiplier_scaling(benchmark, rows, n):
    func = partial_multiplier_function(n)
    decomposed = benchmark.pedantic(
        lambda: synthesize_two_input_gates(func), rounds=1, iterations=1)
    assert _verify_pm(decomposed, n)
    wallace = wallace_tree_multiplier(n, from_partial_products=True)
    assert _verify_pm(wallace, n)

    if not _HEADER[0]:
        rows.add("multiplier_scaling",
                 f"{'n':>3s} {'decomposed':>11s} {'d-depth':>8s} "
                 f"{'wallace':>8s} {'w-depth':>8s} "
                 f"{'paper 10n^2-20n':>16s}")
        _HEADER[0] = True
    rows.add("multiplier_scaling",
             f"{n:3d} {decomposed.gate_count:11d} "
             f"{decomposed.depth():8d} {wallace.gate_count:8d} "
             f"{wallace.depth():8d} {wallace_gates(n):16d}")
    _RESULTS[n] = (decomposed.gate_count, wallace.gate_count)

    # Shape: the decomposed scheme stays below the paper's Wallace
    # accounting (10 n^2 - 20 n) at every size, and tracks our own —
    # considerably leaner — Wallace implementation up to n = 4.  (Our
    # Wallace uses free inverters, 5-gate full adders and a
    # conditional-sum final stage, so it sits well under the paper's
    # formula; the decomposed scheme overtaking it beyond n = 4 is a
    # statement about our baseline, not about the paper's claim.)
    if n >= 3:
        assert decomposed.gate_count <= wallace_gates(n)
    if 3 <= n <= 4:
        assert decomposed.gate_count <= wallace.gate_count * 1.1
