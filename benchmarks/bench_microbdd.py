"""Micro-benchmarks of the BDD substrate.

Not a paper experiment — throughput numbers for the foundational
operations the whole flow stands on, so performance regressions in the
manager show up in CI.
"""

import random

import pytest

from repro.bdd.manager import BDD


def _random_functions(seed, nvars, count):
    rng = random.Random(seed)
    bdd = BDD(nvars)
    funcs = []
    for _ in range(count):
        table = [rng.randint(0, 1) for _ in range(1 << nvars)]
        funcs.append(bdd.from_truth_table(table, list(range(nvars))))
    return bdd, funcs


def test_bdd_apply_throughput(benchmark):
    bdd, funcs = _random_functions(1, 10, 20)

    def run():
        acc = funcs[0]
        for f in funcs[1:]:
            acc = bdd.apply_xor(acc, f)
        return acc

    result = benchmark(run)
    assert result is not None


def test_bdd_restrict_throughput(benchmark):
    bdd, funcs = _random_functions(2, 12, 4)

    def run():
        total = 0
        for f in funcs:
            for var in range(12):
                total += bdd.restrict(f, var, 0)
                bdd.clear_cache()
        return total

    assert benchmark(run) >= 0


def test_adder_bdd_construction(benchmark):
    from repro.arith.adders import adder_function

    def run():
        return adder_function(16)

    func = benchmark(run)
    assert func.num_outputs == 17


def test_cofactor_classes_throughput(benchmark):
    from repro.boolfunc.spec import ISF
    from repro.decomp.compat import classes_for
    bdd, funcs = _random_functions(3, 10, 6)
    outputs = [ISF.complete(f) for f in funcs]

    def run():
        return classes_for(bdd, outputs, [0, 1, 2, 3, 4])

    classes = benchmark(run)
    assert classes.ncc >= 1
