"""Exclusive-time phase profiling for the decomposition hot paths.

The profiler keeps a stack of open phases and charges wall-clock time to
the *innermost* open phase only, so nested sections never double-count:
when ``rank_bound_sets`` calls into the class computation, the time spent
computing cofactors is charged to ``"cofactors"``, not to
``"rank_bound_sets"`` as well.  Phase totals therefore sum to (at most)
the instrumented wall time.

Deep library code reports through the *current* profiler, installed per
engine run with :func:`activate_profiler`; when none is active,
:func:`profile_phase` is a cheap no-op, so the instrumentation costs
almost nothing outside profiled runs.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional


#: Process-global liveness pulse: bumped on every phase enter/exit (and
#: by explicit :func:`pulse` calls at runtime stage boundaries).  The
#: worker heartbeat thread samples it — a beat is only sent while the
#: pulse advances, so a main thread stuck in a sleep or a dead loop goes
#: silent and the scheduler's hang grace can fire.  One module-global
#: integer increment per phase transition; nothing on unprofiled paths.
_PULSE = 0


def pulse() -> None:
    """Bump the liveness pulse (call at coarse progress checkpoints)."""
    global _PULSE
    _PULSE += 1


def pulse_count() -> int:
    """Current liveness pulse value (monotone within a process)."""
    return _PULSE


class PhaseProfiler:
    """Accumulates exclusive wall-clock time and entry counts per phase."""

    def __init__(self) -> None:
        self.times: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        # Named event counters (e.g. "exact_cover_fallback") — things
        # worth surfacing that are occurrences, not durations.
        self.events: Dict[str, int] = {}
        # Stack of [phase name, timestamp of the last charge point].
        self._stack: List[list] = []

    # -- phase entry/exit ------------------------------------------------

    def enter(self, name: str) -> None:
        """Open a phase; the enclosing phase stops accumulating."""
        global _PULSE
        _PULSE += 1
        now = perf_counter()
        if self._stack:
            top = self._stack[-1]
            self.times[top[0]] = self.times.get(top[0], 0.0) + now - top[1]
        self._stack.append([name, now])
        self.counts[name] = self.counts.get(name, 0) + 1

    def exit(self) -> None:
        """Close the innermost phase; its parent resumes accumulating."""
        global _PULSE
        _PULSE += 1
        name, since = self._stack.pop()
        now = perf_counter()
        self.times[name] = self.times.get(name, 0.0) + now - since
        if self._stack:
            self._stack[-1][1] = now

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager form of :meth:`enter`/:meth:`exit`."""
        self.enter(name)
        try:
            yield
        finally:
            self.exit()

    def event(self, name: str, count: int = 1) -> None:
        """Bump a named event counter."""
        self.events[name] = self.events.get(name, 0) + count

    # -- results ---------------------------------------------------------

    def total(self) -> float:
        """Sum of all phase times (instrumented wall clock)."""
        return sum(self.times.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"time_s": ..., "calls": ...}}``, insertion order."""
        return {name: {"time_s": self.times[name],
                       "calls": self.counts.get(name, 0)}
                for name in self.times}


#: The profiler deep library code reports into (None = profiling off).
_CURRENT: contextvars.ContextVar[Optional[PhaseProfiler]] = \
    contextvars.ContextVar("repro_obs_profiler", default=None)

#: Most recently activated profiler (process-global, for cross-thread
#: observation; contextvars are per-context, and the worker heartbeat
#: thread lives outside the engine's context).
_LAST_ACTIVATED: Optional[PhaseProfiler] = None


def current_profiler() -> Optional[PhaseProfiler]:
    """The profiler installed by the innermost :func:`activate_profiler`."""
    return _CURRENT.get()


def current_phase_snapshot() -> Optional[str]:
    """Best-effort name of the innermost open phase of the most recently
    activated profiler, for heartbeat piggybacking.

    Read racily from another thread by design: the stack is only ever
    appended/popped, and a stale or ``None`` answer is harmless
    (heartbeats are observability, not control flow).
    """
    profiler = _LAST_ACTIVATED
    if profiler is None:
        return None
    try:
        stack = profiler._stack
        return stack[-1][0] if stack else None
    except (IndexError, AttributeError):  # pragma: no cover - race window
        return None


@contextmanager
def activate_profiler(profiler: PhaseProfiler) -> Iterator[PhaseProfiler]:
    """Install ``profiler`` as the reporting target for the dynamic extent."""
    global _LAST_ACTIVATED
    token = _CURRENT.set(profiler)
    _LAST_ACTIVATED = profiler
    try:
        yield profiler
    finally:
        _CURRENT.reset(token)


@contextmanager
def profile_phase(name: str) -> Iterator[None]:
    """Charge the enclosed block to ``name`` on the active profiler.

    No-op (beyond one context-variable read) when profiling is inactive,
    so library code can use it unconditionally on hot-ish paths.
    """
    profiler = _CURRENT.get()
    if profiler is None:
        yield
        return
    profiler.enter(name)
    try:
        yield
    finally:
        profiler.exit()


def record_event(name: str, count: int = 1) -> None:
    """Bump a named event on the active profiler (no-op when inactive)."""
    profiler = _CURRENT.get()
    if profiler is not None:
        profiler.event(name, count)
