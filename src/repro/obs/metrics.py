"""Metric snapshots and the machine-readable run-trace schema.

:class:`BddMetrics` is the snapshot the BDD manager fills from its
hot-path counters; :func:`run_metrics` combines it with an engine's
:class:`~repro.decomp.recursive.DecompositionStats` into the JSON
document the CLI's ``--metrics-out`` writes.  The document layout is
versioned through :data:`SCHEMA_VERSION` — additive changes keep the
version, renames/removals bump it (the benchmark tooling and any
external dashboards key on this).

This module is deliberately dependency-free: it reads counters and stats
duck-typed so the BDD manager can import it without a cycle.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

#: Version of the ``--metrics-out`` JSON document layout.
SCHEMA_VERSION = 1


@dataclass
class BddMetrics:
    """Point-in-time snapshot of a BDD manager's hot-path counters."""

    num_vars: int
    #: Live nodes in the store (terminals included).
    nodes: int
    #: High-water mark of the node store over the manager's lifetime.
    peak_nodes: int
    unique_table_size: int
    computed_table_size: int
    computed_table_capacity: Optional[int]
    computed_hits: int
    computed_misses: int
    #: Number of clear-on-threshold evictions of the computed table.
    computed_evictions: int
    ite_calls: int
    restrict_calls: int

    @property
    def computed_hit_rate(self) -> float:
        """Computed-table hit rate in [0, 1] (0 when never queried)."""
        queries = self.computed_hits + self.computed_misses
        return self.computed_hits / queries if queries else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form with the derived hit rate included."""
        data = asdict(self)
        data["computed_hit_rate"] = round(self.computed_hit_rate, 6)
        return data


def run_metrics(*, command: str, source: str, stats: Any,
                bdd_metrics: Optional[BddMetrics] = None,
                wall_time_s: Optional[float] = None,
                result: Optional[Dict[str, Any]] = None,
                extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the versioned metrics document for one engine run.

    ``stats`` is a :class:`DecompositionStats` (duck-typed); ``result``
    carries the command-specific outcome (LUT/CLB/depth counts, ...).
    """
    doc: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "command": command,
        "source": source,
    }
    if wall_time_s is not None:
        doc["wall_time_s"] = round(wall_time_s, 6)
    if result is not None:
        doc["result"] = result
    doc["engine"] = {
        "decomposition_steps": stats.decomposition_steps,
        "shannon_steps": stats.shannon_steps,
        "alphas_created": stats.alphas_created,
        "alphas_shared": stats.alphas_shared,
        "max_recursion_depth": stats.max_recursion_depth,
        "budget_exhausted": stats.budget_exhausted,
        "exact_cover_fallbacks": getattr(stats, "exact_cover_fallbacks", 0),
        "quarantined_outputs": list(
            getattr(stats, "quarantined_outputs", ()) or ()),
    }
    dsd = getattr(stats, "dsd", None)
    if dsd:
        doc["engine"]["dsd"] = dict(dsd)
    submemo = getattr(stats, "submemo", None)
    if submemo:
        doc["engine"]["submemo"] = dict(submemo)
    score_evictions = getattr(stats, "score_memo_evictions", 0)
    if score_evictions:
        doc["engine"]["score_memo_evictions"] = score_evictions
    faults_fired = getattr(stats, "fault_metrics", None)
    if faults_fired:
        doc["faults"] = dict(faults_fired)
    kernel = getattr(stats, "kernel_metrics", None)
    if kernel is not None:
        doc["kernel"] = kernel
    doc["phases"] = {
        name: {"time_s": round(entry["time_s"], 6),
               "calls": entry["calls"]}
        for name, entry in stats.phase_profile().items()
    }
    if bdd_metrics is not None:
        doc["bdd"] = bdd_metrics.as_dict()
    if extra:
        doc.update(extra)
    return doc


def batch_metrics(*, source: str, job_rows: list,
                  totals: Dict[str, Any],
                  wall_time_s: Optional[float] = None,
                  cache_stats: Optional[Dict[str, Any]] = None,
                  extra: Optional[Dict[str, Any]] = None
                  ) -> Dict[str, Any]:
    """The batch-run variant of the metrics document.

    Same versioned envelope as :func:`run_metrics`, but instead of one
    engine's phase profile it carries per-job observability rows (queue
    wait, exec time, cache hit, retries, degradation — the dict form of
    :class:`repro.runtime.scheduler.JobResult`) plus batch totals and
    the result-cache counters.  Additive relative to schema version 1.
    """
    doc: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "command": "batch",
        "source": source,
    }
    if wall_time_s is not None:
        doc["wall_time_s"] = round(wall_time_s, 6)
    doc["totals"] = totals
    if cache_stats is not None:
        doc["cache"] = cache_stats
    doc["jobs"] = job_rows
    if extra:
        doc.update(extra)
    return doc


def serve_metrics(stats: Dict[str, Any],
                  extra: Optional[Dict[str, Any]] = None
                  ) -> Dict[str, Any]:
    """The service-tier variant of the metrics document.

    Wraps a :meth:`repro.serve.daemon.ServeDaemon.stats` snapshot
    (request/queue/pool/cache/server counters) in the same versioned
    envelope as :func:`run_metrics`; this is what ``GET /metrics``
    returns.  Additive relative to schema version 1.
    """
    doc: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "command": "serve",
    }
    doc.update(stats)
    if extra:
        doc.update(extra)
    return doc


def write_metrics(path: str, doc: Dict[str, Any]) -> None:
    """Write a metrics document as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")


def profile_report(stats: Any,
                   bdd_metrics: Optional[BddMetrics] = None) -> str:
    """Human-readable ``--profile`` summary: phases sorted by time, then
    the BDD counter block."""
    lines = ["phase profile (exclusive time):"]
    phases = stats.phase_profile()
    total = sum(entry["time_s"] for entry in phases.values())
    if not phases:
        lines.append("  (no phases recorded)")
    for name, entry in sorted(phases.items(),
                              key=lambda kv: -kv[1]["time_s"]):
        share = 100.0 * entry["time_s"] / total if total else 0.0
        lines.append(f"  {name:<22s} {entry['time_s']:9.4f} s "
                     f"({share:5.1f}%)  x{entry['calls']}")
    lines.append(f"  {'total instrumented':<22s} {total:9.4f} s")
    if bdd_metrics is not None:
        lines.append("bdd manager:")
        lines.append(f"  nodes               : {bdd_metrics.nodes}"
                     f" (peak {bdd_metrics.peak_nodes})")
        lines.append(f"  unique table        : "
                     f"{bdd_metrics.unique_table_size}")
        cap = bdd_metrics.computed_table_capacity
        lines.append(
            f"  computed table      : {bdd_metrics.computed_table_size}"
            + (f" / cap {cap}" if cap else " (unbounded)")
            + f", {bdd_metrics.computed_evictions} eviction(s)")
        lines.append(
            f"  computed hit rate   : "
            f"{100.0 * bdd_metrics.computed_hit_rate:.1f}% "
            f"({bdd_metrics.computed_hits} hits / "
            f"{bdd_metrics.computed_misses} misses)")
        lines.append(f"  ite calls           : {bdd_metrics.ite_calls}")
        lines.append(f"  restrict calls      : "
                     f"{bdd_metrics.restrict_calls}")
    kernel = getattr(stats, "kernel_metrics", None)
    if kernel is not None:
        state = "on" if kernel.get("enabled", True) else "off"
        tier1 = kernel.get("tier1_max_vars")
        max_vars = kernel.get("max_vars")
        if tier1 is not None and tier1 < max_vars:
            tiers = f"tier-1 <= {tier1} / tier-2 <= {max_vars} vars"
            if kernel.get("cost_model", True):
                tiers += ", cost model"
        else:
            tiers = f"<= {max_vars} vars"
        lines.append(f"kernel (word-parallel, {state}, {tiers}):")
        lines.append(f"  dispatch            : {kernel['kernel_hits']} hits"
                     f" / {kernel['kernel_misses']} misses")
        refines = kernel.get("kernel_refine", 0)
        scratch = kernel.get("classes_from_scratch", 0)
        if refines or scratch:
            lines.append(f"  bound-set scoring   : {refines} partition "
                         f"refinements / {scratch} from-scratch")
        for op, entry in kernel.get("ops", {}).items():
            lines.append(f"  {op:<20s}: {entry['time_s']:9.4f} s "
                         f"x{entry['hits']}"
                         + (f" (+{entry['misses']} fallback)"
                            if entry.get("misses") else ""))
    dsd = getattr(stats, "dsd", None)
    if dsd:
        pairs = ", ".join(f"{key}={dsd[key]}" for key in sorted(dsd))
        lines.append(f"dsd pre-pass (tier 0) : {pairs}")
    submemo = getattr(stats, "submemo", None)
    if submemo:
        pairs = ", ".join(f"{key}={submemo[key]}"
                          for key in sorted(submemo))
        lines.append(f"sub-ISF memo          : {pairs}")
    fallbacks = getattr(stats, "exact_cover_fallbacks", 0)
    if fallbacks:
        lines.append(f"exact-cover fallbacks : {fallbacks} "
                     f"(node budget hit, greedy cover used)")
    quarantined = getattr(stats, "quarantined_outputs", None)
    if quarantined:
        lines.append(f"quarantined outputs  : {', '.join(quarantined)} "
                     f"(MUX fallback, re-verified)")
        for name, error in sorted(
                getattr(stats, "quarantine_errors", {}).items()):
            lines.append(f"  {name:<20s}: {error}")
    faults_fired = getattr(stats, "fault_metrics", None)
    if faults_fired:
        lines.append("injected faults fired:")
        for key, count in sorted(faults_fired.items()):
            lines.append(f"  {key:<20s}: x{count}")
    return "\n".join(lines)
