"""Observability: counters, phase profiling and machine-readable traces.

This package is the measurement substrate the performance roadmap builds
on.  It has three parts:

* :mod:`repro.obs.profiler` — a stack-based *exclusive-time* phase
  profiler plus a context-variable hookup so deep library code
  (:mod:`repro.decomp.compat`, :mod:`repro.decomp.dontcare`) can report
  into whichever profiler the current engine run activated, without
  threading a handle through every call;
* :mod:`repro.obs.metrics` — snapshot dataclasses for the BDD manager's
  hot-path counters (unique table, computed table, apply/restrict call
  counts, peak nodes) and for a whole engine run;
* :func:`repro.obs.metrics.run_metrics_json` — the stable JSON trace
  schema behind the CLI's ``--metrics-out`` (see ``SCHEMA_VERSION``).

Everything here is import-light (stdlib only) and safe to use from the
lowest layers of the package.
"""

from repro.obs.profiler import (
    PhaseProfiler,
    activate_profiler,
    current_profiler,
    profile_phase,
)
from repro.obs.metrics import (
    SCHEMA_VERSION,
    BddMetrics,
    batch_metrics,
    profile_report,
    run_metrics,
    serve_metrics,
    write_metrics,
)

__all__ = [
    "PhaseProfiler",
    "activate_profiler",
    "current_profiler",
    "profile_phase",
    "SCHEMA_VERSION",
    "BddMetrics",
    "batch_metrics",
    "profile_report",
    "run_metrics",
    "serve_metrics",
    "write_metrics",
]
