"""Command-line interface.

::

    python -m repro map rd84                  # XC3000 flow on a benchmark
    python -m repro map --no-dc rd84          # the mulopII baseline
    python -m repro map --pla my.pla          # map a PLA file
    python -m repro map rd84 --profile        # phase/BDD-counter summary
    python -m repro map rd84 --metrics-out m.json   # JSON run trace
    python -m repro gates adder8              # two-input-gate synthesis
    python -m repro list                      # registered benchmarks
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter
from typing import Optional

from repro.bench.registry import BENCHMARKS, benchmark, benchmark_names
from repro.boolfunc.blif import BlifError, parse_blif
from repro.boolfunc.pla import parse_pla
from repro.boolfunc.spec import MultiFunction
from repro.core.api import map_to_xc3000, synthesize_two_input_gates
from repro.obs import profile_report, run_metrics, write_metrics

#: Shown whenever a generator name fails to parse.
_GENERATOR_FORMS = ("adderN with N >= 1 (e.g. adder8), "
                    "pmN with N >= 1 (e.g. pm4)")


def _generator_width(name: str, prefix: str) -> int:
    """Parse the ``N`` of a ``adderN``/``pmN`` generator name; exits with
    a clean message on malformed input (``adderfoo``, ``pm0``, ...)."""
    suffix = name[len(prefix):]
    if not suffix.isdigit() or int(suffix) < 1:
        raise SystemExit(
            f"malformed generator name {name!r}: valid forms are "
            f"{_GENERATOR_FORMS}")
    return int(suffix)


def _load_function(args) -> MultiFunction:
    if args.pla:
        try:
            with open(args.pla) as handle:
                return parse_pla(handle.read())
        except OSError as exc:
            raise SystemExit(f"cannot read {args.pla}: {exc.strerror}")
    if args.blif:
        try:
            with open(args.blif) as handle:
                return parse_blif(handle.read())
        except OSError as exc:
            raise SystemExit(f"cannot read {args.blif}: {exc.strerror}")
        except BlifError as exc:
            raise SystemExit(f"{args.blif}: {exc}")
    name = args.name
    if name is None:
        raise SystemExit("give a benchmark name, --pla or --blif")
    if name.startswith("adder"):
        from repro.arith.adders import adder_function
        return adder_function(_generator_width(name, "adder"))
    if name.startswith("pm"):
        from repro.arith.multipliers import partial_multiplier_function
        return partial_multiplier_function(_generator_width(name, "pm"))
    try:
        return benchmark(name)
    except KeyError:
        raise SystemExit(
            f"unknown benchmark {name!r}: run `repro list` for the "
            f"registered circuits, or use a generator "
            f"({_GENERATOR_FORMS})")


def _source_label(args) -> str:
    """What was mapped, for the metrics trace."""
    return args.pla or args.blif or args.name or "?"


def _mapping_result_dict(result) -> dict:
    return {"lut_count": result.lut_count,
            "clb_count": result.clb_count,
            "depth": result.depth}


def _emit_observability(args, *, command: str, stats, wall_time_s: float,
                        result: dict, extra: Optional[dict] = None) -> None:
    """Shared ``--profile`` / ``--metrics-out`` handling."""
    if getattr(args, "profile", False):
        print(profile_report(stats, stats.bdd_metrics))
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        doc = run_metrics(command=command, source=_source_label(args),
                          stats=stats, bdd_metrics=stats.bdd_metrics,
                          wall_time_s=wall_time_s, result=result,
                          extra=extra)
        try:
            write_metrics(metrics_out, doc)
        except OSError as exc:
            raise SystemExit(f"cannot write {metrics_out}: {exc.strerror}")
        print(f"wrote {metrics_out}")


def _cmd_list(args) -> int:
    print(f"{'name':10s} {'in':>4s} {'out':>4s}  provenance")
    for name in benchmark_names():
        spec = BENCHMARKS[name]
        print(f"{name:10s} {spec.num_inputs:4d} {spec.num_outputs:4d}  "
              f"{spec.provenance}{'  (heavy)' if spec.heavy else ''}")
    print("\nplus generators: adderN (e.g. adder8), pmN (e.g. pm4)")
    return 0


def _cmd_map(args) -> int:
    func = _load_function(args)
    start = perf_counter()
    result = map_to_xc3000(func, use_dontcares=not args.no_dc)
    wall = perf_counter() - start
    mode = "mulopII" if args.no_dc else "mulop-dc"
    print(f"{mode}: {result.summary()}")
    if args.trace:
        print(result.stats.report())
    _emit_observability(
        args, command="map", stats=result.stats, wall_time_s=wall,
        result=_mapping_result_dict(result),
        extra={"n_lut": 5, "use_dontcares": not args.no_dc})
    if args.blif_out:
        with open(args.blif_out, "w") as handle:
            handle.write(result.network.to_blif())
        print(f"wrote {args.blif_out}")
    return 0


def _cmd_gates(args) -> int:
    func = _load_function(args)
    start = perf_counter()
    net = synthesize_two_input_gates(func, use_dontcares=not args.no_dc)
    wall = perf_counter() - start
    print(f"{net.gate_count} two-input gates, depth {net.depth()}, "
          f"{net.inverter_count} inverters")
    _emit_observability(
        args, command="gates", stats=net.decomposition_stats,
        wall_time_s=wall,
        result={"gate_count": net.gate_count, "depth": net.depth(),
                "inverter_count": net.inverter_count},
        extra={"use_dontcares": not args.no_dc})
    return 0


def _cmd_compare(args) -> int:
    func = _load_function(args)
    start = perf_counter()
    func.bdd.reset_counters()
    baseline = map_to_xc3000(func, use_dontcares=False)
    # Counters are reset between the runs so each stats snapshot (and
    # the emitted trace) describes one driver, not the sum of both.
    func.bdd.reset_counters()
    with_dc = map_to_xc3000(func, use_dontcares=True)
    wall = perf_counter() - start
    delta = baseline.clb_count - with_dc.clb_count
    print(f"{'driver':10s} {'LUTs':>6s} {'CLBs':>6s} {'depth':>6s}")
    print(f"{'mulopII':10s} {baseline.lut_count:6d} "
          f"{baseline.clb_count:6d} {baseline.depth:6d}")
    print(f"{'mulop-dc':10s} {with_dc.lut_count:6d} "
          f"{with_dc.clb_count:6d} {with_dc.depth:6d}")
    print(f"don't-care exploitation saves {delta} CLB(s)")
    if args.profile:
        print("--- mulopII ---")
        print(profile_report(baseline.stats, baseline.stats.bdd_metrics))
        print("--- mulop-dc ---")
    _emit_observability(
        args, command="compare", stats=with_dc.stats, wall_time_s=wall,
        result={"mulopII": _mapping_result_dict(baseline),
                "mulop_dc": _mapping_result_dict(with_dc),
                "clbs_saved": delta},
        extra={"n_lut": 5})
    return 0


def _cmd_verify(args) -> int:
    from repro.verify.equiv import check_extension
    func = _load_function(args)
    result = map_to_xc3000(func, use_dontcares=not args.no_dc)
    verdict = check_extension(func, result.network)
    mode = "mulopII" if args.no_dc else "mulop-dc"
    print(f"{mode}: {result.summary()}")
    if verdict:
        print("formal verification: EQUIVALENT")
        return 0
    print(f"formal verification: MISMATCH on output "
          f"{verdict.failing_output} at {verdict.counterexample}")
    return 1


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-output functional decomposition with don't "
                    "cares (Scholl, DATE 1998)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered benchmark circuits")

    for cmd, help_text in (("map", "XC3000 LUT/CLB mapping"),
                           ("gates", "two-input-gate synthesis"),
                           ("verify", "map + formal equivalence check"),
                           ("compare",
                            "mulopII vs mulop-dc (one Table 1 row)")):
        p = sub.add_parser(cmd, help=help_text)
        p.add_argument("name", nargs="?",
                       help="benchmark name or generator (adderN, pmN)")
        p.add_argument("--pla", help="map a PLA file instead")
        p.add_argument("--blif", help="map a BLIF file instead")
        p.add_argument("--no-dc", action="store_true",
                       help="disable don't-care exploitation (mulopII)")
        if cmd in ("map", "gates", "compare"):
            p.add_argument("--profile", action="store_true",
                           help="print the phase/BDD-counter profile")
            p.add_argument("--metrics-out", metavar="FILE",
                           help="write a JSON run trace (phase timings, "
                                "computed-table hit rate, peak nodes)")
        if cmd == "map":
            p.add_argument("--blif-out",
                           help="write the mapped network as BLIF")
            p.add_argument("--trace", action="store_true",
                           help="print the per-step decomposition trace")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "map":
        return _cmd_map(args)
    if args.command == "gates":
        return _cmd_gates(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "compare":
        return _cmd_compare(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
