"""Command-line interface.

::

    python -m repro map rd84                  # XC3000 flow on a benchmark
    python -m repro map --no-dc rd84          # the mulopII baseline
    python -m repro map --pla my.pla          # map a PLA file
    python -m repro map rd84 --profile        # phase/BDD-counter summary
    python -m repro map rd84 --metrics-out m.json   # JSON run trace
    python -m repro gates adder8              # two-input-gate synthesis
    python -m repro batch --manifest suite.txt --jobs 4 --out r.jsonl
    python -m repro batch --manifest suite.txt --journal b.jnl --out r.jsonl
    python -m repro batch --resume b.jnl --out r.jsonl   # after a crash
    python -m repro batch rd84 --inject worker.start:crash:1:1  # chaos
    python -m repro cache stats               # persistent result cache
    python -m repro serve --socket /tmp/repro.sock --port 8787  # daemon
    python -m repro list                      # registered benchmarks
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from time import perf_counter
from typing import Optional

from repro.bench.registry import BENCHMARKS, benchmark, benchmark_names
from repro.boolfunc.blif import BlifError, parse_blif
from repro.boolfunc.pla import parse_pla
from repro.boolfunc.spec import MultiFunction
from repro.core.api import map_to_xc3000, synthesize_two_input_gates
from repro.obs import (
    SCHEMA_VERSION,
    batch_metrics,
    profile_report,
    run_metrics,
    write_metrics,
)

#: Shown whenever a generator name fails to parse.
_GENERATOR_FORMS = ("adderN with N >= 1 (e.g. adder8), "
                    "pmN with N >= 1 (e.g. pm4)")


def _generator_width(name: str, prefix: str) -> int:
    """Parse the ``N`` of a ``adderN``/``pmN`` generator name; exits with
    a clean message on malformed input (``adderfoo``, ``pm0``, ...)."""
    suffix = name[len(prefix):]
    if not suffix.isdigit() or int(suffix) < 1:
        raise SystemExit(
            f"malformed generator name {name!r}: valid forms are "
            f"{_GENERATOR_FORMS}")
    return int(suffix)


def _load_function(args) -> MultiFunction:
    if args.pla:
        try:
            with open(args.pla) as handle:
                return parse_pla(handle.read())
        except OSError as exc:
            raise SystemExit(f"cannot read {args.pla}: {exc.strerror}")
    if args.blif:
        try:
            with open(args.blif) as handle:
                return parse_blif(handle.read())
        except OSError as exc:
            raise SystemExit(f"cannot read {args.blif}: {exc.strerror}")
        except BlifError as exc:
            raise SystemExit(f"{args.blif}: {exc}")
    name = args.name
    if name is None:
        raise SystemExit("give a benchmark name, --pla or --blif")
    if name.startswith("adder"):
        from repro.arith.adders import adder_function
        return adder_function(_generator_width(name, "adder"))
    if name.startswith("pm"):
        from repro.arith.multipliers import partial_multiplier_function
        return partial_multiplier_function(_generator_width(name, "pm"))
    try:
        return benchmark(name)
    except KeyError:
        raise SystemExit(
            f"unknown benchmark {name!r}: run `repro list` for the "
            f"registered circuits, or use a generator "
            f"({_GENERATOR_FORMS})")


def _source_label(args) -> str:
    """What was mapped, for the metrics trace."""
    return args.pla or args.blif or args.name or "?"


def _mapping_result_dict(result) -> dict:
    return {"lut_count": result.lut_count,
            "clb_count": result.clb_count,
            "depth": result.depth}


def _emit_observability(args, *, command: str, stats, wall_time_s: float,
                        result: dict, extra: Optional[dict] = None) -> None:
    """Shared ``--profile`` / ``--metrics-out`` handling."""
    if getattr(args, "profile", False):
        print(profile_report(stats, stats.bdd_metrics))
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        doc = run_metrics(command=command, source=_source_label(args),
                          stats=stats, bdd_metrics=stats.bdd_metrics,
                          wall_time_s=wall_time_s, result=result,
                          extra=extra)
        try:
            write_metrics(metrics_out, doc)
        except OSError as exc:
            raise SystemExit(f"cannot write {metrics_out}: {exc.strerror}")
        print(f"wrote {metrics_out}")


def _cmd_list(args) -> int:
    print(f"{'name':10s} {'in':>4s} {'out':>4s}  provenance")
    for name in benchmark_names():
        spec = BENCHMARKS[name]
        print(f"{name:10s} {spec.num_inputs:4d} {spec.num_outputs:4d}  "
              f"{spec.provenance}{'  (heavy)' if spec.heavy else ''}")
    print("\nplus generators: adderN (e.g. adder8), pmN (e.g. pm4)")
    return 0


def _open_cache(args):
    """The persistent result cache, or None when not requested."""
    use_cache = getattr(args, "cache", False) or getattr(
        args, "cache_dir", None)
    if getattr(args, "no_cache", False) or not use_cache:
        return None
    from repro.runtime.cache import ResultCache
    return ResultCache(getattr(args, "cache_dir", None) or None)


def _emit_cached_observability(args, *, command: str, record: dict,
                               wall_time_s: float, result: dict) -> None:
    """``--metrics-out`` for a cache hit (no engine ran, so the document
    carries the cache provenance instead of a phase profile)."""
    if getattr(args, "profile", False):
        print("(cache hit: no engine phases to profile)")
    metrics_out = getattr(args, "metrics_out", None)
    if not metrics_out:
        return
    doc = {"schema_version": SCHEMA_VERSION, "command": command,
           "source": _source_label(args),
           "wall_time_s": round(wall_time_s, 6), "result": result,
           "cache": {"hit": True},
           "engine": record.get("engine")}
    try:
        write_metrics(metrics_out, doc)
    except OSError as exc:
        raise SystemExit(f"cannot write {metrics_out}: {exc.strerror}")
    print(f"wrote {metrics_out}")


def _cmd_map(args) -> int:
    func = _load_function(args)
    cache = _open_cache(args)
    mode = "mulopII" if args.no_dc else "mulop-dc"
    key = None
    start = perf_counter()
    if cache is not None:
        from repro.runtime.cache import cache_key
        key = cache_key(func.canonical_key(), "map",
                        {"use_dontcares": not args.no_dc})
        record = cache.get(key)
        if record is not None:
            wall = perf_counter() - start
            print(f"{mode}: {record['lut_count']} LUTs, "
                  f"{record['clb_count']} CLBs, "
                  f"depth {record['depth']} (cached)")
            _emit_cached_observability(
                args, command="map", record=record, wall_time_s=wall,
                result={"lut_count": record["lut_count"],
                        "clb_count": record["clb_count"],
                        "depth": record["depth"]})
            if args.blif_out:
                with open(args.blif_out, "w") as handle:
                    handle.write(record["blif"])
                print(f"wrote {args.blif_out}")
            return 0
    result = map_to_xc3000(func, use_dontcares=not args.no_dc)
    wall = perf_counter() - start
    if cache is not None:
        cache.put(key, result.to_record())
    print(f"{mode}: {result.summary()}")
    if args.trace:
        print(result.stats.report())
    _emit_observability(
        args, command="map", stats=result.stats, wall_time_s=wall,
        result=_mapping_result_dict(result),
        extra={"n_lut": 5, "use_dontcares": not args.no_dc})
    if args.blif_out:
        with open(args.blif_out, "w") as handle:
            handle.write(result.network.to_blif())
        print(f"wrote {args.blif_out}")
    return 0


def _cmd_gates(args) -> int:
    func = _load_function(args)
    start = perf_counter()
    net = synthesize_two_input_gates(func, use_dontcares=not args.no_dc)
    wall = perf_counter() - start
    print(f"{net.gate_count} two-input gates, depth {net.depth()}, "
          f"{net.inverter_count} inverters")
    _emit_observability(
        args, command="gates", stats=net.decomposition_stats,
        wall_time_s=wall,
        result={"gate_count": net.gate_count, "depth": net.depth(),
                "inverter_count": net.inverter_count},
        extra={"use_dontcares": not args.no_dc})
    return 0


def _print_compare_table(base: dict, dc: dict, delta: int,
                         cached: bool = False) -> None:
    suffix = "  (cached)" if cached else ""
    print(f"{'driver':10s} {'LUTs':>6s} {'CLBs':>6s} {'depth':>6s}")
    print(f"{'mulopII':10s} {base['lut_count']:6d} "
          f"{base['clb_count']:6d} {base['depth']:6d}{suffix}")
    print(f"{'mulop-dc':10s} {dc['lut_count']:6d} "
          f"{dc['clb_count']:6d} {dc['depth']:6d}{suffix}")
    print(f"don't-care exploitation saves {delta} CLB(s)")


def _cmd_compare(args) -> int:
    from repro.verify.equiv import check_extension

    func = _load_function(args)
    cache = _open_cache(args)
    key = None
    start = perf_counter()
    if cache is not None:
        from repro.runtime.cache import cache_key
        key = cache_key(func.canonical_key(), "compare", {})
        record = cache.get(key)
        if record is not None:
            wall = perf_counter() - start
            _print_compare_table(record["mulopII"], record["mulop_dc"],
                                 record["clbs_saved"], cached=True)
            verified = record.get("verified")
            if verified:
                print("formal verification: EQUIVALENT (cached)")
            elif verified is None:
                print("formal verification: skipped when this result "
                      "was computed")
                verified = True
            else:
                print("formal verification: MISMATCH")
            _emit_cached_observability(
                args, command="compare", record=record,
                wall_time_s=wall,
                result={"mulopII": {k: record["mulopII"][k] for k in
                                    ("lut_count", "clb_count", "depth")},
                        "mulop_dc": {k: record["mulop_dc"][k] for k in
                                     ("lut_count", "clb_count", "depth")},
                        "clbs_saved": record["clbs_saved"]})
            return 0 if verified else 1
    func.bdd.reset_counters()
    baseline = map_to_xc3000(func, use_dontcares=False)
    # Counters are reset between the runs so each stats snapshot (and
    # the emitted trace) describes one driver, not the sum of both.
    func.bdd.reset_counters()
    with_dc = map_to_xc3000(func, use_dontcares=True)
    wall = perf_counter() - start
    delta = baseline.clb_count - with_dc.clb_count
    _print_compare_table(_mapping_result_dict(baseline),
                         _mapping_result_dict(with_dc), delta)
    verdict_base = check_extension(func, baseline.network)
    verdict_dc = check_extension(func, with_dc.network)
    verified = bool(verdict_base) and bool(verdict_dc)
    if verified:
        print("formal verification: EQUIVALENT")
    else:
        bad = verdict_base if not verdict_base else verdict_dc
        driver = "mulopII" if not verdict_base else "mulop-dc"
        print(f"formal verification: MISMATCH ({driver}) on output "
              f"{bad.failing_output} at {bad.counterexample}")
    if cache is not None and verified:
        record = {"mulopII": baseline.to_record(),
                  "mulop_dc": with_dc.to_record(),
                  "clbs_saved": delta, "verified": True}
        cache.put(key, record)
    if args.profile:
        print("--- mulopII ---")
        print(profile_report(baseline.stats, baseline.stats.bdd_metrics))
        print("--- mulop-dc ---")
    _emit_observability(
        args, command="compare", stats=with_dc.stats, wall_time_s=wall,
        result={"mulopII": _mapping_result_dict(baseline),
                "mulop_dc": _mapping_result_dict(with_dc),
                "clbs_saved": delta, "verified": verified},
        extra={"n_lut": 5})
    # A verification failure must fail CI batch runs, not just print.
    return 0 if verified else 1


def _cmd_verify(args) -> int:
    from repro.verify.equiv import check_extension
    func = _load_function(args)
    result = map_to_xc3000(func, use_dontcares=not args.no_dc)
    verdict = check_extension(func, result.network)
    mode = "mulopII" if args.no_dc else "mulop-dc"
    print(f"{mode}: {result.summary()}")
    if verdict:
        print("formal verification: EQUIVALENT")
        return 0
    print(f"formal verification: MISMATCH on output "
          f"{verdict.failing_output} at {verdict.counterexample}")
    return 1


def _parse_batch_jobs(args) -> list:
    """Manifest + positional entries -> job dicts with flow/config."""
    from repro.runtime import parse_manifest, parse_manifest_entry

    jobs = []
    if args.manifest:
        try:
            with open(args.manifest) as handle:
                jobs.extend(parse_manifest(handle.read()))
        except OSError as exc:
            raise SystemExit(
                f"cannot read {args.manifest}: {exc.strerror}")
        except ValueError as exc:
            raise SystemExit(f"{args.manifest}: {exc}")
    for name in args.names:
        try:
            jobs.append(parse_manifest_entry(name))
        except ValueError as exc:
            raise SystemExit(str(exc))
    # compare runs both drivers, so its config (and cache key) carries
    # no use_dontcares — the CLI `compare --cache` keys the same way.
    config = {} if args.flow == "compare" else {
        "use_dontcares": not args.no_dc}
    if args.no_verify:
        config["verify"] = False
    for job in jobs:
        job["flow"] = args.flow
        job["config"] = dict(config)
    return jobs


def _resolve_worker_arg(requested) -> tuple:
    """Clamp ``--jobs``/``--workers`` and surface the note, so ``0`` or
    a negative count runs at the auto-detected width with a clean
    message instead of misbehaving."""
    from repro.runtime import resolve_workers
    workers, note = resolve_workers(requested)
    if note:
        print(note)
    return workers, note


def _row_detail(row: dict, flow: str) -> str:
    if row["status"] == "failed" or not isinstance(row.get("result"), dict):
        return row.get("error") or "failed"
    if flow == "compare":
        return f"saves {row['result']['clbs_saved']} CLB(s)"
    return (f"{row['result']['lut_count']} LUTs, "
            f"{row['result']['clb_count']} CLBs")


def _row_notes(row: dict) -> str:
    notes = []
    if row.get("cache_hit"):
        notes.append("cache hit")
    if row.get("degraded"):
        notes.append("degraded")
    if row.get("hung"):
        notes.append("hung")
    if row.get("retries"):
        notes.append(f"{row['retries']} retries")
    return f" ({', '.join(notes)})" if notes else ""


def _stabilize_rows(rows: list) -> None:
    """Zero the volatile timing fields in place (``--stable-rows``), so
    two runs of the same workload — single-host vs distributed, before
    vs after a node loss — compare byte-identically."""
    for row in rows:
        row["queue_wait_s"] = 0.0
        row["exec_s"] = 0.0
        row["beats"] = 0


def _write_batch_outputs(args, rows, totals, wall, cache_stats,
                         extra=None) -> None:
    if getattr(args, "stable_rows", False):
        _stabilize_rows(rows)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                for row in rows:
                    handle.write(json.dumps(row) + "\n")
        except OSError as exc:
            raise SystemExit(f"cannot write {args.out}: {exc.strerror}")
        print(f"wrote {args.out}")
    if args.metrics_out:
        doc = batch_metrics(
            source=args.manifest or ",".join(args.names)
            or getattr(args, "resume", None) or "?",
            job_rows=rows, totals=totals, wall_time_s=wall,
            cache_stats=cache_stats, extra=extra)
        try:
            write_metrics(args.metrics_out, doc)
        except OSError as exc:
            raise SystemExit(
                f"cannot write {args.metrics_out}: {exc.strerror}")
        print(f"wrote {args.metrics_out}")


def _load_resume(args, site: str) -> tuple:
    """Shared ``--resume`` loader for the single-host and distributed
    paths: returns ``(jobs, done_rows, journal)`` with the journal
    reopened for appending under ``site``.

    The only hard errors left are the typed ones: an unreadable file
    and a journal whose manifest/code-version binding does not match
    (replaying half a batch under changed semantics would silently mix
    incomparable rows).
    """
    from repro.runtime import (
        BatchJournal,
        JournalError,
        journal_binding,
        load_journal,
    )

    if args.journal:
        raise SystemExit("--resume appends to the journal it is "
                         "given; do not pass --journal as well")
    try:
        header, done_rows, started, corrupt = load_journal(args.resume)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.resume}: {exc.strerror}")
    except JournalError as exc:
        raise SystemExit(str(exc))
    jobs = [dict(job) for job in header["jobs"]]
    if args.manifest or args.names:
        # A manifest given alongside --resume must describe the same
        # workload the journal recorded — mixing rows from different
        # job lists would be silent garbage.
        if journal_binding(_parse_batch_jobs(args)) != header["binding"]:
            raise SystemExit(
                f"{args.resume}: journal does not match the given "
                f"manifest/entries; resume without them (the journal "
                f"is self-contained) or rerun from scratch")
    in_flight = sorted(i for i in started if i not in done_rows)
    if corrupt:
        print(f"warning: {args.resume}: skipped {corrupt} corrupt "
              f"journal line(s)")
    print(f"resuming {args.resume}: {len(done_rows)} job(s) already "
          f"done, {len(in_flight)} in-flight replayed, "
          f"{len(jobs) - len(done_rows)} to run")
    return jobs, done_rows, BatchJournal.resume(args.resume, site=site)


def _cmd_batch_dist(args) -> int:
    """`repro batch --nodes`: shard the manifest across worker nodes."""
    from repro.dist import DistCoordinator, parse_nodes
    from repro.runtime import BatchJournal, ResultCache, summarize_rows

    try:
        nodes = parse_nodes(args.nodes)
    except ValueError as exc:
        raise SystemExit(str(exc))
    journal = None
    done_rows = {}
    if args.resume:
        jobs, done_rows, journal = _load_resume(args,
                                                site="coord.journal")
    else:
        jobs = _parse_batch_jobs(args)
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or None)
    if journal is None and args.journal:
        journal = BatchJournal.create(args.journal, jobs,
                                      site="coord.journal")

    def on_listen(host: str, port: int) -> None:
        print(f"membership: join listener on {host}:{port} "
              f"(late nodes: repro dist serve-node --join "
              f"{host}:{port})", flush=True)

    coordinator = DistCoordinator(
        nodes, cache=cache, timeout=args.timeout, retries=args.retries,
        heartbeat_s=args.heartbeat, hang_grace_s=args.hang_grace,
        journal=journal,
        join_port=None if args.join_port < 0 else args.join_port,
        rpc_tries=args.rpc_tries, rpc_backoff_s=args.rpc_backoff,
        backoff_seed=args.fault_seed or 0, on_listen=on_listen)
    total = len(jobs)
    done = [len(done_rows)]

    def on_row(row: dict) -> None:
        done[0] += 1
        print(f"[{done[0]}/{total}] {row['job_id']}: {row['status']} — "
              f"{_row_detail(row, args.flow)}{_row_notes(row)}")

    start = perf_counter()
    try:
        rows = coordinator.run(jobs, on_row=on_row,
                               presettled=done_rows)
    finally:
        if journal is not None:
            journal.close()
    wall = perf_counter() - start
    totals = summarize_rows(rows)
    dist = coordinator.stats()
    _write_batch_outputs(args, rows, totals, wall,
                         cache.stats() if cache is not None else None,
                         extra={"dist": dist})
    lost = ""
    if dist["node_losses"]:
        lost = (f", {dist['node_losses']} node(s) lost "
                f"({dist['reassigned']} jobs reassigned)")
    if dist["rpc_retries"]:
        lost += f", {dist['rpc_retries']} rpc retries"
    if dist["joins"] or dist["reconnects"]:
        lost += (f", {dist['joins']} join(s), {dist['reconnects']} "
                 f"reconnect(s)")
    if dist["local_fallback_jobs"]:
        lost += (f", {dist['local_fallback_jobs']} finished by local "
                 f"fallback")
    print(f"batch: {totals['jobs']} job(s) in {wall:.1f}s across "
          f"{len(nodes)} node(s) — {totals['ok']} ok, "
          f"{totals['degraded']} degraded, {totals['failed']} failed; "
          f"cache hits {totals['cache_hits']}/{totals['jobs']}, "
          f"{dist['steals']} steals, {dist['dup_results']} duplicate "
          f"result(s){lost}")
    return 1 if totals["failed"] else 0


def _cmd_batch(args) -> int:
    from repro.runtime import (
        BatchJournal,
        BatchScheduler,
        ResultCache,
        summarize_rows,
    )

    if args.nodes:
        return _cmd_batch_dist(args)
    journal = None
    done_rows = {}
    if args.resume:
        jobs, done_rows, journal = _load_resume(args,
                                                site="journal.append")
    else:
        jobs = _parse_batch_jobs(args)

    remaining = [i for i in range(len(jobs)) if i not in done_rows]
    sub_jobs = [jobs[i] for i in remaining]

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or None)
    workers, note = _resolve_worker_arg(args.jobs)
    scheduler = BatchScheduler(workers=workers, timeout=args.timeout,
                               retries=args.retries, cache=cache,
                               heartbeat_s=args.heartbeat,
                               hang_grace_s=args.hang_grace)
    if journal is None and args.journal:
        journal = BatchJournal.create(args.journal, jobs)
    total = len(jobs)
    done = [len(done_rows)]
    fresh_rows = {}

    def on_dispatch(index: int, attempt: int) -> None:
        if journal is not None:
            journal.record_start(remaining[index],
                                 sub_jobs[index]["job_id"], attempt)

    def progress(res) -> None:
        done[0] += 1
        row = res.as_dict(include_blif=args.include_blif)
        row["index"] = remaining[res.index]
        fresh_rows[remaining[res.index]] = row
        if journal is not None:
            journal.record_done(remaining[res.index], row)
        if res.status == "failed":
            detail = res.error or "failed"
        elif res.flow == "compare":
            detail = (f"saves {res.result['clbs_saved']} CLB(s)")
        else:
            detail = (f"{res.result['lut_count']} LUTs, "
                      f"{res.result['clb_count']} CLBs")
        notes = []
        if res.cache_hit:
            notes.append("cache hit")
        if res.degraded:
            notes.append("degraded")
        if res.hung:
            notes.append("hung")
        if res.retries:
            notes.append(f"{res.retries} retries")
        note = f" ({', '.join(notes)})" if notes else ""
        print(f"[{done[0]}/{total}] {res.job_id}: {res.status} — "
              f"{detail}{note}")

    start = perf_counter()
    try:
        scheduler.run(sub_jobs, on_result=progress,
                      on_dispatch=on_dispatch)
    finally:
        if journal is not None:
            journal.close()
    wall = perf_counter() - start
    # Merged view in submission order: journal-replayed rows verbatim,
    # fresh rows for everything else (identical modulo timing fields to
    # an uninterrupted run — the resume contract).
    rows = [done_rows.get(i, fresh_rows.get(i)) for i in range(len(jobs))]
    rows = [row for row in rows if row is not None]
    totals = summarize_rows(rows)
    extra = None
    if scheduler.submemo_totals:
        extra = {"submemo": dict(scheduler.submemo_totals)}
    _write_batch_outputs(args, rows, totals, wall,
                         cache.stats() if cache is not None else None,
                         extra=extra)
    chaos = ""
    if totals.get("hung"):
        chaos += f", {totals['hung']} hung"
    if totals.get("quarantined_outputs"):
        chaos += (f", {totals['quarantined_outputs']} quarantined "
                  f"output(s)")
    print(f"batch: {totals['jobs']} job(s) in {wall:.1f}s — "
          f"{totals['ok']} ok, {totals['degraded']} degraded, "
          f"{totals['failed']} failed; cache hits "
          f"{totals['cache_hits']}/{totals['jobs']}, "
          f"{totals['retries']} retries{chaos}")
    return 1 if totals["failed"] else 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.runtime.cache import ResultCache
    from repro.serve import DecompositionService, ServeDaemon

    if args.socket is None and args.port is None:
        raise SystemExit("give --socket PATH, --port N, or both")
    workers, _ = _resolve_worker_arg(args.workers)
    weights = {}
    for spec in args.weight or ():
        tenant, sep, value = spec.partition("=")
        try:
            if not sep or float(value) <= 0:
                raise ValueError
            weights[tenant] = float(value)
        except ValueError:
            raise SystemExit(
                f"malformed --weight {spec!r} (use TENANT=W with W > 0)")
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or None)
    service = DecompositionService(
        workers=workers, cache=cache, queue_depth=args.queue_depth,
        shed=args.shed, timeout=args.timeout, retries=args.retries,
        heartbeat_s=args.heartbeat, hang_grace_s=args.hang_grace,
        weights=weights, warm_limit=args.warm_funcs)
    daemon = ServeDaemon(
        service, socket_path=args.socket, host=args.host,
        port=args.port, allow_files=args.allow_files,
        allow_test_hooks=args.allow_test_hooks,
        max_frame_bytes=args.max_frame_bytes,
        drain_timeout=args.drain_timeout)

    def ready(d: ServeDaemon) -> None:
        if d.socket_path is not None:
            print(f"serving on unix socket {d.socket_path}")
        if d.http_address is not None:
            print(f"serving HTTP on {d.http_address[0]}:"
                  f"{d.http_address[1]}")
        print(f"{workers} worker(s), cache "
              f"{'off' if cache is None else cache.root}, "
              f"queue depth {args.queue_depth}/tenant, "
              f"shed policy {args.shed}", flush=True)

    try:
        asyncio.run(daemon.run(ready=ready))
    except KeyboardInterrupt:
        pass
    print("daemon drained; bye")
    return 0


def _cmd_dist(args) -> int:
    """`repro dist serve-node`: run one distributed worker node."""
    import signal

    from repro.dist import NodeServer, parse_nodes

    workers, _ = _resolve_worker_arg(args.workers)
    server = NodeServer(
        host=args.host, port=args.port, workers=workers,
        timeout=args.timeout, retries=args.retries,
        heartbeat_s=args.heartbeat if args.heartbeat else None,
        hang_grace_s=args.hang_grace, node_id=args.node_id,
        join_tries=args.join_tries, join_backoff_s=args.join_backoff,
        backoff_seed=args.fault_seed or 0)

    def on_term(signum, frame) -> None:
        server.close()

    signal.signal(signal.SIGTERM, on_term)
    if args.join:
        # Dial-out mode: register with a running coordinator's
        # membership listener instead of binding a port, rejoining
        # under bounded seeded-jitter backoff when the link drops.
        try:
            coord_host, coord_port = parse_nodes(args.join)[0]
        except ValueError as exc:
            raise SystemExit(f"--join: {exc}")
        print(f"node {server.node_id} joining coordinator at "
              f"{coord_host}:{coord_port} with {server.workers} worker "
              f"slot(s)", flush=True)
        try:
            clean = server.serve_join(coord_host, coord_port)
        except KeyboardInterrupt:
            server.close()
            clean = True
        if clean:
            print("node closed; bye")
            return 0
        print(f"node: gave up joining {coord_host}:{coord_port} after "
              f"{server.join_tries} attempt(s); bye")
        return 1
    server.start()
    print(f"node serving on {server.host}:{server.port} with "
          f"{server.workers} worker slot(s)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
    print("node closed; bye")
    return 0


def _cmd_cache(args) -> int:
    from repro.runtime.cache import (DEFAULT_NAMESPACE, ResultCache,
                                     list_namespaces)

    def open_ns(namespace: str) -> ResultCache:
        return ResultCache(args.cache_dir or None, namespace=namespace)

    if args.cache_command == "clear":
        # Clearing is destructive, so an unscoped clear stays scoped to
        # the job cache — dropping the submemo namespace must be asked
        # for by name.
        namespace = args.namespace or DEFAULT_NAMESPACE
        cache = open_ns(namespace)
        older = (args.older_than * 86400.0
                 if args.older_than is not None else None)
        removed = cache.clear(older_than_s=older)
        scope = "" if namespace == DEFAULT_NAMESPACE \
            else f" (namespace {namespace})"
        aged = "" if args.older_than is None \
            else f" older than {args.older_than:g} day(s)"
        print(f"removed {removed} cache entr"
              f"{'y' if removed == 1 else 'ies'}{aged} from "
              f"{cache.ns_root}{scope}")
        return 0
    if args.older_than is not None:
        raise SystemExit("--older-than only applies to 'cache clear'")
    if args.namespace:
        namespaces = [args.namespace]
    else:
        cache = open_ns(DEFAULT_NAMESPACE)
        namespaces = list_namespaces(cache.root)
    for pos, namespace in enumerate(namespaces):
        cache = open_ns(namespace)
        # A fresh CLI process has no traffic, so probe a handful of
        # real entries (disk hits) and some absent keys (misses) to
        # populate the latency windows — enough to see what this store
        # costs per lookup.
        probed = 0
        for path in cache.iter_files():
            if probed >= 32:
                break
            cache.get(path.stem)
            probed += 1
        for bogus in range(8):
            cache.get(hashlib.sha256(b"probe-%d" % bogus).hexdigest())
        stats = cache.stats()
        if pos:
            print()
        print(f"cache dir : {cache.ns_root}")
        print(f"namespace : {namespace}")
        print(f"entries   : {stats['entries']}")
        print(f"size      : {stats['bytes']} bytes")
        for side in ("hit", "miss"):
            lat = stats[f"{side}_latency"]
            if lat["samples"]:
                print(f"{side} p50/p90/p99 : "
                      f"{lat['p50_ms']:.3f}/{lat['p90_ms']:.3f}/"
                      f"{lat['p99_ms']:.3f} ms ({lat['samples']} probes)")
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-output functional decomposition with don't "
                    "cares (Scholl, DATE 1998)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered benchmark circuits")

    for cmd, help_text in (("map", "XC3000 LUT/CLB mapping"),
                           ("gates", "two-input-gate synthesis"),
                           ("verify", "map + formal equivalence check"),
                           ("compare",
                            "mulopII vs mulop-dc (one Table 1 row)")):
        p = sub.add_parser(cmd, help=help_text)
        p.add_argument("name", nargs="?",
                       help="benchmark name or generator (adderN, pmN)")
        p.add_argument("--pla", help="map a PLA file instead")
        p.add_argument("--blif", help="map a BLIF file instead")
        p.add_argument("--no-dc", action="store_true",
                       help="disable don't-care exploitation (mulopII)")
        if cmd in ("map", "gates", "verify", "compare"):
            p.add_argument("--no-submemo", action="store_true",
                           help="disable the sub-ISF computed table "
                                "(canonical subfunction memoization; "
                                "same as REPRO_SUBMEMO=off)")
            p.add_argument("--submemo-bytes", type=int, metavar="N",
                           help="byte budget of the warm sub-ISF memo "
                                "layers (default 64 MiB; same as "
                                "REPRO_SUBMEMO_BYTES=N)")
            p.add_argument("--submemo-dir", metavar="DIR",
                           help="persist the sub-ISF memo under DIR "
                                "(namespace 'submemo'; same as "
                                "REPRO_SUBMEMO_DIR)")
        if cmd in ("map", "gates", "compare"):
            p.add_argument("--no-dsd", action="store_true",
                           help="disable the tier-0 structural pre-pass "
                                "(DSD shatter before the ncc search; "
                                "same as REPRO_DSD=off)")
            p.add_argument("--no-kernel", action="store_true",
                           help="disable the word-parallel truth-table "
                                "kernel (pure-BDD hot paths; same as "
                                "REPRO_KERNEL=off)")
            p.add_argument("--kernel-max-vars", type=int, metavar="N",
                           help="serve kernel ops up to N live support "
                                "variables (default 24: bignum tier to "
                                "16, numpy word-array tier above; same "
                                "as REPRO_KERNEL_MAX_VARS=N)")
            p.add_argument("--profile", action="store_true",
                           help="print the phase/BDD-counter profile")
            p.add_argument("--metrics-out", metavar="FILE",
                           help="write a JSON run trace (phase timings, "
                                "computed-table hit rate, peak nodes)")
        p.add_argument("--inject", action="append", metavar="SPEC",
                       help="arm a fault site: site:kind:prob[:nth] "
                            "(repeatable; same grammar as REPRO_FAULTS)")
        p.add_argument("--fault-seed", type=int, default=None,
                       metavar="N",
                       help="seed for the injected-fault probability "
                            "streams (same as REPRO_FAULTS_SEED)")
        if cmd in ("map", "compare"):
            p.add_argument("--cache", action="store_true",
                           help="reuse/persist results in the on-disk "
                                "result cache")
            p.add_argument("--cache-dir", metavar="DIR",
                           help="result-cache location (implies "
                                "--cache; default ~/.cache/repro or "
                                "$REPRO_CACHE_DIR)")
        if cmd == "map":
            p.add_argument("--blif-out",
                           help="write the mapped network as BLIF")
            p.add_argument("--trace", action="store_true",
                           help="print the per-step decomposition trace")

    batch = sub.add_parser(
        "batch",
        help="run many circuits through the parallel scheduler")
    batch.add_argument("names", nargs="*",
                       help="manifest entries (circuit names, pla:FILE, "
                            "blif:FILE, synth:name:i:o[:seed])")
    batch.add_argument("--manifest", metavar="FILE",
                       help="manifest file (one entry per line, # "
                            "comments)")
    batch.add_argument("--flow", choices=("map", "compare"),
                       default="map",
                       help="flow to run per circuit (default: map)")
    batch.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes (default: CPU count)")
    batch.add_argument("--timeout", type=float, default=None,
                       metavar="S",
                       help="per-job wall-clock budget in seconds; a "
                            "job over budget degrades to the trivial "
                            "mapping instead of stalling the batch")
    batch.add_argument("--retries", type=int, default=1, metavar="K",
                       help="crash retries per job before degrading "
                            "(default: 1)")
    batch.add_argument("--no-dc", action="store_true",
                       help="disable don't-care exploitation (mulopII)")
    batch.add_argument("--inject", action="append", metavar="SPEC",
                       help="arm a fault site: site:kind:prob[:nth] "
                            "(repeatable; inherited by workers; same "
                            "grammar as REPRO_FAULTS)")
    batch.add_argument("--fault-seed", type=int, default=None,
                       metavar="N",
                       help="seed for the injected-fault probability "
                            "streams (same as REPRO_FAULTS_SEED)")
    batch.add_argument("--no-verify", action="store_true",
                       help="skip in-worker verification of mapped "
                            "networks")
    batch.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result cache")
    batch.add_argument("--cache-dir", metavar="DIR",
                       help="result-cache location (default "
                            "~/.cache/repro or $REPRO_CACHE_DIR)")
    batch.add_argument("--out", metavar="FILE",
                       help="write one JSON result row per job (JSONL)")
    batch.add_argument("--include-blif", action="store_true",
                       help="embed mapped-network BLIF in the JSONL "
                            "rows")
    batch.add_argument("--metrics-out", metavar="FILE",
                       help="write the batch metrics document (per-job "
                            "queue/exec/cache/retry stats)")
    batch.add_argument("--journal", metavar="FILE",
                       help="write a crash-safe write-ahead journal; a "
                            "killed batch resumes with --resume FILE")
    batch.add_argument("--resume", metavar="FILE",
                       help="resume a journaled batch: completed jobs "
                            "are replayed from the journal, in-flight "
                            "and unstarted ones are (re)run")
    batch.add_argument("--heartbeat", type=float, default=1.0,
                       metavar="S",
                       help="worker liveness beat interval in seconds "
                            "(default: 1.0; 0 disables beats)")
    batch.add_argument("--hang-grace", type=float, default=None,
                       metavar="S",
                       help="kill a worker silent for S seconds and "
                            "degrade its job without retry (default: "
                            "off — only --timeout applies)")
    batch.add_argument("--nodes", metavar="HOST:PORT,...",
                       help="shard the batch across these worker nodes "
                            "(repro dist serve-node) instead of local "
                            "worker processes; the result cache is "
                            "served to the nodes over TCP")
    batch.add_argument("--join-port", type=int, default=0, metavar="N",
                       help="with --nodes: membership listener port for "
                            "late joiners (repro dist serve-node "
                            "--join); default 0 picks a free port, -1 "
                            "disables the listener")
    batch.add_argument("--rpc-tries", type=int, default=3, metavar="K",
                       help="with --nodes: bounded seeded-jitter "
                            "connect/redial attempts per node before "
                            "declaring it lost (default: 3)")
    batch.add_argument("--rpc-backoff", type=float, default=0.2,
                       metavar="S",
                       help="with --nodes: base of the jittered retry "
                            "backoff in seconds (default: 0.2)")
    batch.add_argument("--no-submemo", action="store_true",
                       help="disable the sub-ISF computed table in "
                            "workers (same as REPRO_SUBMEMO=off)")
    batch.add_argument("--submemo-bytes", type=int, metavar="N",
                       help="byte budget of the warm sub-ISF memo "
                            "layers (same as REPRO_SUBMEMO_BYTES=N)")
    batch.add_argument("--submemo-dir", metavar="DIR",
                       help="persist the sub-ISF memo under DIR so "
                            "batches share subfunctions (same as "
                            "REPRO_SUBMEMO_DIR)")
    batch.add_argument("--stable-rows", action="store_true",
                       help="zero the volatile timing fields "
                            "(queue_wait_s, exec_s, beats) in output "
                            "rows, so runs compare byte-identically")

    dist = sub.add_parser(
        "dist", help="distributed batch tier (worker nodes)")
    dist_sub = dist.add_subparsers(dest="dist_command", required=True)
    node_p = dist_sub.add_parser(
        "serve-node",
        help="run one worker node (pair with repro batch --nodes)")
    node_p.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    node_p.add_argument("--port", type=int, default=0, metavar="N",
                        help="TCP port (default: 0 picks a free port)")
    node_p.add_argument("--workers", type=int, default=None, metavar="N",
                        help="concurrent jobs on this node (default: "
                             "CPU count, capped at 8)")
    node_p.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="fallback per-job budget when the "
                             "coordinator sends none")
    node_p.add_argument("--retries", type=int, default=1, metavar="K",
                        help="fallback crash retries per job "
                             "(default: 1)")
    node_p.add_argument("--heartbeat", type=float, default=1.0,
                        metavar="S",
                        help="worker liveness beat interval (default: "
                             "1.0; 0 disables)")
    node_p.add_argument("--hang-grace", type=float, default=None,
                        metavar="S",
                        help="kill a worker silent for S seconds "
                             "(default: off)")
    node_p.add_argument("--join", metavar="HOST:PORT", default=None,
                        help="dial a running coordinator's membership "
                             "listener instead of binding a port — how "
                             "a late node joins a batch mid-run")
    node_p.add_argument("--join-tries", type=int, default=5,
                        metavar="K",
                        help="bounded join/rejoin attempts before "
                             "giving up (default: 5)")
    node_p.add_argument("--join-backoff", type=float, default=0.5,
                        metavar="S",
                        help="base of the seeded-jitter rejoin backoff "
                             "in seconds (default: 0.5)")
    node_p.add_argument("--node-id", metavar="ID", default=None,
                        help="stable identity across reconnects "
                             "(default: hostname-pid); a rejoin under "
                             "the same id re-registers in place")
    node_p.add_argument("--inject", action="append", metavar="SPEC",
                        help="arm a fault site: site:kind:prob[:nth] "
                             "(repeatable; e.g. node.loss:crash:1:3 "
                             "kills this node on its 3rd job)")
    node_p.add_argument("--fault-seed", type=int, default=None,
                        metavar="N",
                        help="seed for the injected-fault probability "
                             "streams (same as REPRO_FAULTS_SEED)")

    serve = sub.add_parser(
        "serve",
        help="run the async decomposition daemon (unix socket / HTTP)")
    serve.add_argument("--socket", metavar="PATH",
                       help="unix socket path for the NDJSON front-end")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="TCP port for the HTTP front-end (0 picks a "
                            "free port)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="HTTP bind address (default: 127.0.0.1)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="persistent worker processes (default: CPU "
                            "count; 0 or negative clamps to auto)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       metavar="N",
                       help="admission-control queue depth per tenant "
                            "(default: 64)")
    serve.add_argument("--shed", choices=("degrade", "reject"),
                       default="degrade",
                       help="over-budget policy: serve the verified "
                            "trivial mapping (degrade, default) or "
                            "reject with a typed 'overloaded' error")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="S",
                       help="per-request wall-clock budget in seconds "
                            "(over budget degrades, as in batch)")
    serve.add_argument("--retries", type=int, default=1, metavar="K",
                       help="crash retries per request before degrading "
                            "(default: 1)")
    serve.add_argument("--heartbeat", type=float, default=1.0,
                       metavar="S",
                       help="worker liveness beat interval (default: "
                            "1.0; 0 disables)")
    serve.add_argument("--hang-grace", type=float, default=None,
                       metavar="S",
                       help="kill a worker silent for S seconds and "
                            "degrade its request (default: off)")
    serve.add_argument("--warm-funcs", type=int, default=None,
                       metavar="N",
                       help="per-worker warm built-function LRU depth "
                            "(default: $REPRO_SERVE_WARM_FUNCS or 8; "
                            "0 disables warm reuse)")
    serve.add_argument("--weight", action="append", metavar="TENANT=W",
                       help="fair-queue weight for a tenant "
                            "(repeatable; default weight 1.0)")
    serve.add_argument("--max-frame-bytes", type=int, default=None,
                       metavar="N",
                       help="request frame/body ceiling (default: "
                            "$REPRO_SERVE_MAX_FRAME_BYTES or 4 MiB)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="S",
                       help="graceful-shutdown budget on SIGTERM "
                            "(default: 30)")
    serve.add_argument("--allow-files", action="store_true",
                       help="serve pla:/blif: file paths (the daemon "
                            "reads local files on clients' behalf)")
    serve.add_argument("--allow-test-hooks", action="store_true",
                       help="accept request 'test_hook' fields "
                            "(chaos/CI only)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the persistent result cache")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="result-cache location (default "
                            "~/.cache/repro or $REPRO_CACHE_DIR)")
    serve.add_argument("--no-submemo", action="store_true",
                       help="disable the sub-ISF computed table in "
                            "pool workers (same as REPRO_SUBMEMO=off)")
    serve.add_argument("--submemo-bytes", type=int, metavar="N",
                       help="byte budget of the warm sub-ISF memo "
                            "layers (same as REPRO_SUBMEMO_BYTES=N)")
    serve.add_argument("--submemo-dir", metavar="DIR",
                       help="persist the sub-ISF memo under DIR "
                            "(same as REPRO_SUBMEMO_DIR)")
    serve.add_argument("--inject", action="append", metavar="SPEC",
                       help="arm a fault site: site:kind:prob[:nth] "
                            "(repeatable; inherited by workers; same "
                            "grammar as REPRO_FAULTS)")
    serve.add_argument("--fault-seed", type=int, default=None,
                       metavar="N",
                       help="seed for the injected-fault probability "
                            "streams (same as REPRO_FAULTS_SEED)")

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache")
    cache_p.add_argument("cache_command", choices=("stats", "clear"))
    cache_p.add_argument("--cache-dir", metavar="DIR",
                         help="cache location (default ~/.cache/repro "
                              "or $REPRO_CACHE_DIR)")
    cache_p.add_argument("--namespace", metavar="NS", default=None,
                         help="restrict to one namespace (e.g. jobs, "
                              "submemo; default: clear jobs / show all)")
    cache_p.add_argument("--older-than", type=float, default=None,
                         metavar="DAYS",
                         help="clear only entries older than DAYS days")

    args = parser.parse_args(argv)
    if getattr(args, "no_submemo", False):
        os.environ["REPRO_SUBMEMO"] = "off"
    if getattr(args, "submemo_bytes", None) is not None:
        if args.submemo_bytes < 0:
            raise SystemExit("--submemo-bytes must be >= 0 "
                             f"(got {args.submemo_bytes})")
        os.environ["REPRO_SUBMEMO_BYTES"] = str(args.submemo_bytes)
    if getattr(args, "submemo_dir", None):
        os.environ["REPRO_SUBMEMO_DIR"] = args.submemo_dir
    if getattr(args, "no_dsd", False):
        os.environ["REPRO_DSD"] = "off"
    if getattr(args, "no_kernel", False):
        os.environ["REPRO_KERNEL"] = "off"
    if getattr(args, "kernel_max_vars", None) is not None:
        if args.kernel_max_vars < 0:
            raise SystemExit(
                "--kernel-max-vars must be >= 0 "
                f"(got {args.kernel_max_vars})")
        os.environ["REPRO_KERNEL_MAX_VARS"] = str(args.kernel_max_vars)
    if getattr(args, "inject", None):
        from repro import faults
        try:
            # Armed via the environment so worker processes inherit it.
            faults.arm(",".join(args.inject),
                       seed=getattr(args, "fault_seed", None))
        except faults.FaultSpecError as exc:
            raise SystemExit(str(exc))
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "map":
        return _cmd_map(args)
    if args.command == "gates":
        return _cmd_gates(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "dist":
        return _cmd_dist(args)
    if args.command == "cache":
        return _cmd_cache(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
