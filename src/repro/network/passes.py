"""Cleanup passes over the structural network."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.network.netlist import NetNode, Network


def sweep(net: Network) -> int:
    """Remove nodes not reachable from any primary output.

    Returns the number of removed nodes.
    """
    live: Set[str] = set()
    stack = [o for o in net.outputs if o in net.nodes]
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        for s in net.nodes[name].fanins:
            if s in net.nodes:
                stack.append(s)
    dead = [name for name in net.nodes if name not in live]
    for name in dead:
        del net.nodes[name]
    return len(dead)


def _propagate_into(node: NetNode, signal: str, value: int) -> NetNode:
    """Rewrite a node with one fanin fixed to a constant."""
    idx = node.fanins.index(signal)
    new_fanins = node.fanins[:idx] + node.fanins[idx + 1:]
    new_rows: List[Tuple[str, str]] = []
    for pattern, pol in node.rows:
        ch = pattern[idx]
        if ch != "-" and int(ch) != value:
            continue  # row can never fire
        new_rows.append((pattern[:idx] + pattern[idx + 1:], pol))
    return NetNode(node.name, new_fanins, new_rows)


def minimize_nodes(net: Network, max_fanins: int = 10) -> int:
    """Espresso-minimise every node's SOP cover in place.

    Returns the total number of cover rows removed.  Nodes with more
    than ``max_fanins`` inputs are skipped (the minimiser is cube-based
    and meant for node-sized covers).  Offset-polarity nodes are
    minimised on their offset.
    """
    from repro.twolevel.cubes import PCover, PCube
    from repro.twolevel.espresso import espresso

    removed = 0
    for name in list(net.nodes):
        node = net.nodes[name]
        k = len(node.fanins)
        if not node.rows or k == 0 or k > max_fanins:
            continue
        cover = PCover(k, [PCube.from_string(p) for p, _ in node.rows])
        minimised = espresso(cover)
        if len(minimised) < len(cover):
            removed += len(cover) - len(minimised)
            polarity = node.polarity
            net.nodes[name] = NetNode(
                name, node.fanins,
                [(str(c), polarity) for c in minimised.cubes])
    return removed


def constant_propagate(net: Network) -> int:
    """Fold constant nodes into their fanouts; returns folds performed.

    A constant node (no fanins, or a cover that degenerated to a
    constant) is substituted into every consumer; consumers that become
    constant themselves are processed transitively.  Constant primary
    outputs keep a zero-fanin node so the interface is unchanged.
    """
    folds = 0
    changed = True
    while changed:
        changed = False
        constants: Dict[str, int] = {}
        for name, node in net.nodes.items():
            value = node.is_constant()
            if value is None and not node.rows:
                value = 0
            if value is None and node.fanins:
                # Cover that ignores its fanins entirely (all-dash rows
                # in '1' polarity covering everything) is handled by
                # evaluation; keep simple and skip.
                pass
            if value is not None:
                constants[name] = value
        for name, value in constants.items():
            consumers = [n for n in net.nodes.values()
                         if name in n.fanins]
            if not consumers and name not in net.outputs:
                del net.nodes[name]
                folds += 1
                changed = True
                continue
            for consumer in consumers:
                net.nodes[consumer.name] = _propagate_into(
                    consumer, name, value)
                folds += 1
                changed = True
            if consumers and name not in net.outputs:
                del net.nodes[name]
    return folds
