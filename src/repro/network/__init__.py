"""Multi-level Boolean network IR.

A netlist of SOP nodes in the BLIF tradition — the representation the
MCNC benchmarks actually ship in.  The decomposition flow itself works
on collapsed BDDs (:class:`~repro.boolfunc.spec.MultiFunction`); this
package provides the front-end layer a release-quality tool needs:
parsing into a structural network, cleanup passes (sweep, constant
propagation), analysis (levels, fanout), simulation, and collapsing
into the BDD world.
"""

from repro.network.netlist import Network, NetNode
from repro.network.passes import constant_propagate, minimize_nodes, sweep
from repro.network.bitsim import sample_check, simulate_words

__all__ = [
    "Network",
    "NetNode",
    "constant_propagate",
    "minimize_nodes",
    "sweep",
    "sample_check",
    "simulate_words",
]
