"""The structural network: named SOP nodes over named signals.

Each internal node carries a single-output cube cover (rows of
``'01-'`` patterns with a fixed polarity, exactly BLIF ``.names``
semantics).  The network is kept acyclic; evaluation, levelisation and
collapsing traverse in topological order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF, MultiFunction


class NetNode:
    """One ``.names`` node: fanin signal names + SOP rows.

    ``rows`` is a list of ``(pattern, value)`` with ``value`` the shared
    cover polarity ('1' rows define the onset, '0' rows the offset).
    """

    __slots__ = ("name", "fanins", "rows")

    def __init__(self, name: str, fanins: List[str],
                 rows: List[Tuple[str, str]]):
        values = {v for _, v in rows}
        if len(values) > 1:
            raise ValueError(f"mixed cover polarities in {name!r}")
        for pattern, _ in rows:
            if len(pattern) != len(fanins):
                raise ValueError(f"cover arity mismatch in {name!r}")
        self.name = name
        self.fanins = list(fanins)
        self.rows = list(rows)

    @property
    def polarity(self) -> str:
        """'1' (onset cover), '0' (offset cover); '1' for empty covers."""
        return self.rows[0][1] if self.rows else "1"

    def eval(self, values: Dict[str, int]) -> int:
        """Evaluate under fanin values."""
        hit = False
        for pattern, _ in self.rows:
            ok = True
            for ch, s in zip(pattern, self.fanins):
                v = values[s]
                if (ch == "1" and not v) or (ch == "0" and v):
                    ok = False
                    break
            if ok:
                hit = True
                break
        if self.polarity == "0":
            return 0 if hit else 1
        return 1 if hit else 0

    def is_constant(self) -> Optional[int]:
        """The constant this node computes, if it has no fanins."""
        if self.fanins:
            return None
        if not self.rows:
            return 0
        return 1 if self.polarity == "1" else 0

    def __repr__(self) -> str:
        return f"<NetNode {self.name}({', '.join(self.fanins)})>"


class Network:
    """An acyclic network of SOP nodes."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.nodes: Dict[str, NetNode] = {}

    # -- construction ----------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input."""
        if name in self.inputs or name in self.nodes:
            raise ValueError(f"signal {name!r} already exists")
        self.inputs.append(name)
        return name

    def add_node(self, name: str, fanins: Sequence[str],
                 rows: Sequence[Tuple[str, str]]) -> str:
        """Add an SOP node (fanins may be declared later; validated by
        :meth:`check`)."""
        if name in self.nodes or name in self.inputs:
            raise ValueError(f"signal {name!r} already exists")
        self.nodes[name] = NetNode(name, list(fanins), list(rows))
        return name

    def set_output(self, name: str) -> None:
        """Mark a signal as a primary output."""
        if name not in self.outputs:
            self.outputs.append(name)

    @staticmethod
    def from_blif(text: str) -> "Network":
        """Parse combinational BLIF structurally (no flattening)."""
        from repro.boolfunc.blif import BlifError, _tokenise
        net = Network()
        current: Optional[str] = None
        for tokens in _tokenise(text):
            head = tokens[0]
            if head == ".model":
                net.name = tokens[1] if len(tokens) > 1 else "net"
            elif head == ".inputs":
                for s in tokens[1:]:
                    net.add_input(s)
                current = None
            elif head == ".outputs":
                for s in tokens[1:]:
                    net.set_output(s)
                current = None
            elif head == ".names":
                signals = tokens[1:]
                if not signals:
                    raise BlifError(".names needs at least an output")
                current = net.add_node(signals[-1], signals[:-1], [])
            elif head in (".end", ".exdc"):
                current = None
            elif head.startswith("."):
                if head in (".latch", ".subckt", ".gate"):
                    raise BlifError(f"unsupported BLIF construct {head}")
                current = None
            else:
                if current is None:
                    raise BlifError(f"cover line outside .names: {tokens}")
                node = net.nodes[current]
                if not node.fanins:
                    if len(tokens) != 1 or tokens[0] not in "01":
                        raise BlifError(f"bad constant row: {tokens}")
                    node.rows.append(("", tokens[0]))
                else:
                    if len(tokens) != 2:
                        raise BlifError(f"bad cover row: {tokens}")
                    pattern, value = tokens
                    node.rows.append((pattern, value))
                # Re-validate polarity/arity incrementally.
                NetNode(node.name, node.fanins, node.rows)
        net.check()
        return net

    # -- structure ---------------------------------------------------------

    def check(self) -> None:
        """Validate signal references and acyclicity."""
        for node in self.nodes.values():
            for s in node.fanins:
                if s not in self.nodes and s not in self.inputs:
                    raise ValueError(
                        f"node {node.name!r} references unknown {s!r}")
        for out in self.outputs:
            if out not in self.nodes and out not in self.inputs:
                raise ValueError(f"output {out!r} is undefined")
        self.topological()  # raises on cycles

    def topological(self) -> List[str]:
        """Node names in topological order (inputs excluded)."""
        state: Dict[str, int] = {}
        order: List[str] = []

        def visit(name: str) -> None:
            stack = [(name, iter(self.nodes[name].fanins))]
            state[name] = 1
            while stack:
                current, it = stack[-1]
                advanced = False
                for s in it:
                    if s in self.inputs or state.get(s) == 2:
                        continue
                    if state.get(s) == 1:
                        raise ValueError(
                            f"combinational cycle through {s!r}")
                    if s in self.nodes:
                        state[s] = 1
                        stack.append((s, iter(self.nodes[s].fanins)))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    state[current] = 2
                    order.append(current)

        for name in self.nodes:
            if state.get(name) != 2:
                visit(name)
        return order

    def fanout_counts(self) -> Dict[str, int]:
        """How many nodes consume each signal (outputs add one)."""
        counts: Dict[str, int] = {s: 0 for s in self.inputs}
        counts.update({s: 0 for s in self.nodes})
        for node in self.nodes.values():
            for s in node.fanins:
                counts[s] = counts.get(s, 0) + 1
        for out in self.outputs:
            counts[out] = counts.get(out, 0) + 1
        return counts

    def levels(self) -> Dict[str, int]:
        """Logic level per signal (inputs at 0)."""
        level: Dict[str, int] = {s: 0 for s in self.inputs}
        for name in self.topological():
            node = self.nodes[name]
            level[name] = 1 + max((level[s] for s in node.fanins),
                                  default=0)
        return level

    def depth(self) -> int:
        """Levels on the longest input-to-output path."""
        level = self.levels()
        return max((level[o] for o in self.outputs), default=0)

    # -- semantics ---------------------------------------------------------

    def evaluate(self, assignment: Dict[str, int]) -> Dict[str, int]:
        """Simulate; returns values for every signal."""
        values = {name: int(assignment[name]) for name in self.inputs}
        for name in self.topological():
            values[name] = self.nodes[name].eval(values)
        return values

    def eval_outputs(self, assignment: Dict[str, int]) -> Dict[str, int]:
        """Primary-output values only."""
        values = self.evaluate(assignment)
        return {o: values[o] for o in self.outputs}

    def collapse(self, bdd: Optional[BDD] = None) -> MultiFunction:
        """Flatten into per-output BDDs (a :class:`MultiFunction`)."""
        if bdd is None:
            bdd = BDD(0)
        variables = {name: bdd.add_var(name) for name in self.inputs}
        values: Dict[str, int] = {name: bdd.var(v)
                                  for name, v in variables.items()}
        for name in self.topological():
            node = self.nodes[name]
            cover = BDD.FALSE
            for pattern, _ in node.rows:
                term = BDD.TRUE
                for ch, s in zip(pattern, node.fanins):
                    if ch == "1":
                        term = bdd.apply_and(term, values[s])
                    elif ch == "0":
                        term = bdd.apply_and(term,
                                             bdd.apply_not(values[s]))
                cover = bdd.apply_or(cover, term)
            if not node.rows:
                values[name] = BDD.FALSE
            elif node.polarity == "0":
                values[name] = bdd.apply_not(cover)
            else:
                values[name] = cover
        outputs = [ISF.complete(values[o]) for o in self.outputs]
        return MultiFunction(bdd,
                             [variables[s] for s in self.inputs],
                             outputs, input_names=list(self.inputs),
                             output_names=list(self.outputs))

    def to_blif(self) -> str:
        """BLIF text of the structural network."""
        lines = [f".model {self.name}",
                 ".inputs " + " ".join(self.inputs),
                 ".outputs " + " ".join(self.outputs)]
        for name in self.topological():
            node = self.nodes[name]
            lines.append(".names " + " ".join(node.fanins + [name]))
            for pattern, value in node.rows:
                lines.append(f"{pattern} {value}".strip())
        lines.append(".end")
        return "\n".join(lines) + "\n"

    @staticmethod
    def from_lut_network(lut_net) -> "Network":
        """Structural view of a mapped LUT network (one SOP node per
        LUT, onset rows from the truth table)."""
        from repro.mapping.lutnet import CONST0, CONST1
        net = Network("mapped")
        for name in lut_net.inputs:
            net.add_input(name)
        # Constants become zero-fanin nodes on demand.
        const_nodes = {}

        def signal(s: str) -> str:
            if s == CONST0:
                if CONST0 not in const_nodes:
                    const_nodes[CONST0] = net.add_node("_const0", [], [])
                return "_const0"
            if s == CONST1:
                if CONST1 not in const_nodes:
                    const_nodes[CONST1] = net.add_node("_const1", [],
                                                       [("", "1")])
                return "_const1"
            return s

        for node in lut_net.node_list():
            rows = []
            k = node.fanin_count
            for idx, bit in enumerate(node.table):
                if bit:
                    rows.append((format(idx, f"0{k}b"), "1"))
            net.add_node(node.name, [signal(s) for s in node.fanins],
                         rows)
        for out, sig in lut_net.outputs.items():
            target = signal(sig)
            if target != out:
                # Buffer node so the output carries its own name.
                net.add_node(out, [target], [("1", "1")])
            net.set_output(out)
        net.check()
        return net

    def __repr__(self) -> str:
        return (f"<Network {self.name!r}: {len(self.inputs)} in / "
                f"{len(self.outputs)} out, {len(self.nodes)} nodes, "
                f"depth {self.depth()}>")
