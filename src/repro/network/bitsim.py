"""Bit-parallel simulation of LUT networks.

Simulates up to 64 input patterns per pass by packing one pattern per
bit of a Python integer — the standard EDA trick for fast functional
verification of large mapped networks (the budget-fallback nets can
have tens of thousands of LUTs, where per-pattern simulation is slow).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.mapping.lutnet import CONST0, CONST1, LutNetwork


def simulate_words(net: LutNetwork,
                   input_words: Dict[str, int],
                   width: int) -> Dict[str, int]:
    """Simulate ``width`` patterns at once.

    ``input_words[name]`` holds one bit per pattern.  Returns a word per
    primary output.
    """
    mask = (1 << width) - 1
    values: Dict[str, int] = {CONST0: 0, CONST1: mask}
    for name in net.inputs:
        values[name] = input_words[name] & mask
    for node in net.node_list():
        fanins = [values[s] for s in node.fanins]
        k = node.fanin_count
        word = 0
        for idx, bit in enumerate(node.table):
            if not bit:
                continue
            term = mask
            for i in range(k):
                w = fanins[i]
                if not (idx >> (k - 1 - i)) & 1:
                    w = ~w & mask
                term &= w
                if not term:
                    break
            word |= term
        values[node.name] = word
    return {out: values[sig] for out, sig in net.outputs.items()}


def random_vectors(inputs: Sequence[str], width: int,
                   seed: int = 0) -> Dict[str, int]:
    """Random input words (one bit per pattern)."""
    rng = random.Random(seed)
    return {name: rng.getrandbits(width) for name in inputs}


def sample_check(func, net: LutNetwork, patterns: int = 512,
                 seed: int = 0) -> bool:
    """Check ``net`` against a MultiFunction spec on random patterns,
    64 at a time.  Don't-care points are skipped."""
    bdd = func.bdd
    remaining = patterns
    seed_step = 0
    while remaining > 0:
        width = min(64, remaining)
        words = random_vectors(func.input_names, width,
                               seed + seed_step)
        seed_step += 1
        remaining -= width
        out_words = simulate_words(net, words, width)
        for t in range(width):
            assignment = {var: (words[name] >> t) & 1
                          for var, name in zip(func.inputs,
                                               func.input_names)}
            expected = func.eval(assignment)
            for name, value in zip(func.output_names, expected):
                if value is None:
                    continue
                if ((out_words[name] >> t) & 1) != value:
                    return False
    return True
