"""Reproduction of Scholl, *Multi-output Functional Decomposition with
Exploitation of Don't Cares* (DATE 1998).

Subpackages
-----------
``repro.bdd``
    From-scratch ROBDD manager (unique/computed tables, ITE, cofactors,
    quantification, sifting, symmetric sifting, symmetry detection).
``repro.boolfunc``
    Incompletely specified functions (interval ``[lo, hi]``), cube
    lists, PLA and BLIF I/O.
``repro.symmetry``
    Symmetries of ISFs and the symmetry-maximising don't-care
    assignment (paper step 1).
``repro.decomp``
    Compatible classes, strict decomposition functions, common
    decomposition functions for multi-output functions, the three-step
    don't-care assignment, bound-set search, and the recursive drivers
    ``mulopII`` / ``mulop-dc``.
``repro.mapping``
    LUT networks, XC3000 CLB merging (maximum-cardinality matching),
    two-input-gate synthesis, and baseline mappers.
``repro.arith``
    Adder and multiplier generators plus the conditional-sum-adder and
    Wallace-tree baselines of Section 6.1.
``repro.bench``
    The Table 1 / Table 2 benchmark circuits.
``repro.core``
    The high-level one-call API.

Quickstart
----------
>>> from repro.bench import benchmark
>>> from repro.core import map_to_xc3000
>>> result = map_to_xc3000(benchmark("rd73"))
>>> result.clb_count > 0
True
"""

from repro.core.api import (
    FpgaMappingResult,
    decompose_to_luts,
    map_to_xc3000,
    synthesize_two_input_gates,
)
from repro.boolfunc.spec import ISF, MultiFunction
from repro.bdd.manager import BDD
from repro.verify.equiv import check_equivalence, check_extension

__version__ = "1.0.0"

__all__ = [
    "BDD",
    "ISF",
    "MultiFunction",
    "FpgaMappingResult",
    "decompose_to_luts",
    "map_to_xc3000",
    "synthesize_two_input_gates",
    "check_equivalence",
    "check_extension",
    "__version__",
]
