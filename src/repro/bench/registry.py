"""Named benchmark registry for the Table 1 / Table 2 harnesses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.boolfunc.spec import MultiFunction
from repro.bench import functions as exact
from repro.bench.synthetic import synthetic_circuit


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark circuit: name, signature, provenance, builder."""

    name: str
    num_inputs: int
    num_outputs: int
    #: "exact", "reconstruction" (right function family, minterms may
    #: differ) or "synthetic" (signature-only stand-in).
    provenance: str
    builder: Callable[[], MultiFunction]
    #: Rough cost class used to pick defaults for the harnesses.
    heavy: bool = False


def _synth(name: str, i: int, o: int) -> Callable[[], MultiFunction]:
    return lambda: synthetic_circuit(name, i, o)


BENCHMARKS: Dict[str, BenchmarkSpec] = {}


def _register(spec: BenchmarkSpec) -> None:
    BENCHMARKS[spec.name] = spec


_register(BenchmarkSpec("5xp1", 7, 10, "reconstruction", exact.five_xp1))
_register(BenchmarkSpec("9sym", 9, 1, "exact", exact.sym9))
_register(BenchmarkSpec("alu2", 10, 6, "reconstruction", exact.alu2))
_register(BenchmarkSpec("apex7", 49, 37, "synthetic",
                        _synth("apex7", 49, 37), heavy=True))
_register(BenchmarkSpec("b9", 41, 21, "synthetic",
                        _synth("b9", 41, 21), heavy=True))
_register(BenchmarkSpec("C499", 41, 32, "reconstruction", exact.c499,
                        heavy=True))
_register(BenchmarkSpec("C880", 60, 26, "synthetic",
                        _synth("C880", 60, 26), heavy=True))
_register(BenchmarkSpec("clip", 9, 5, "reconstruction", exact.clip))
_register(BenchmarkSpec("count", 35, 16, "reconstruction", exact.count,
                        heavy=True))
_register(BenchmarkSpec("duke2", 22, 29, "synthetic",
                        _synth("duke2", 22, 29), heavy=True))
_register(BenchmarkSpec("e64", 65, 65, "synthetic",
                        _synth("e64", 65, 65), heavy=True))
_register(BenchmarkSpec("f51m", 8, 8, "reconstruction", exact.f51m))
_register(BenchmarkSpec("misex1", 8, 7, "synthetic",
                        _synth("misex1", 8, 7)))
_register(BenchmarkSpec("misex2", 25, 18, "synthetic",
                        _synth("misex2", 25, 18), heavy=True))
_register(BenchmarkSpec("rd53", 5, 3, "exact", exact.rd53))
_register(BenchmarkSpec("rd73", 7, 3, "exact", exact.rd73))
_register(BenchmarkSpec("rd84", 8, 4, "exact", exact.rd84))
_register(BenchmarkSpec("rot", 135, 107, "synthetic",
                        _synth("rot", 135, 107), heavy=True))
_register(BenchmarkSpec("sao2", 10, 4, "synthetic",
                        _synth("sao2", 10, 4)))
_register(BenchmarkSpec("vg2", 25, 8, "synthetic",
                        _synth("vg2", 25, 8), heavy=True))
_register(BenchmarkSpec("z4ml", 7, 4, "exact", exact.z4ml))

# Extras beyond the paper's table (exact classics + one reconstruction),
# useful for wider testing; not part of TABLE_ORDER.
_register(BenchmarkSpec("xor5", 5, 1, "exact", exact.xor5))
_register(BenchmarkSpec("majority", 5, 1, "exact", exact.majority))
_register(BenchmarkSpec("sym10", 10, 1, "exact", exact.sym10))
_register(BenchmarkSpec("t481", 16, 1, "reconstruction",
                        exact.t481_like))


#: The exact row order of the paper's Table 1 / Table 2.
TABLE_ORDER: List[str] = [
    "5xp1", "9sym", "alu2", "apex7", "b9", "C499", "C880", "clip",
    "count", "duke2", "e64", "f51m", "misex1", "misex2", "rd73", "rd84",
    "rot", "sao2", "vg2", "z4ml",
]


def benchmark(name: str) -> MultiFunction:
    """Build the named benchmark circuit."""
    if name not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; try one of {benchmark_names()}")
    spec = BENCHMARKS[name]
    func = spec.builder()
    if func.num_inputs != spec.num_inputs:
        raise AssertionError(f"{name}: input arity drifted")
    if func.num_outputs != spec.num_outputs:
        raise AssertionError(f"{name}: output arity drifted")
    return func


def benchmark_names(include_heavy: bool = True) -> List[str]:
    """Registered names in table order (light ones first if filtered)."""
    names = [n for n in TABLE_ORDER if n in BENCHMARKS]
    if not include_heavy:
        names = [n for n in names if not BENCHMARKS[n].heavy]
    extras = sorted(set(BENCHMARKS) - set(names)
                    - {n for n in TABLE_ORDER})
    return names + [n for n in extras
                    if include_heavy or not BENCHMARKS[n].heavy]
