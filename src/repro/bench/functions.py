"""Exactly defined benchmark functions.

These MCNC benchmarks are mathematical functions, so we can rebuild them
precisely without the original PLA files:

* ``rd53`` / ``rd73`` / ``rd84`` — the binary weight (number of ones) of
  5/7/8 inputs, 3/3/4 output bits;
* ``9sym`` — 1 iff the weight of the 9 inputs lies in [3, 6];
* ``z4ml`` — the 2x(3-bit)+carry adder (7 inputs, 4 outputs);
* ``alu2`` — a 2-operation-bit ALU slice over two 4-bit operands
  (reconstruction: add/and/or/xor, result + carry + zero flags);
* ``clip`` — signed saturation of a 9-bit two's-complement value into
  5 bits (reconstruction of the "clipping" function);
* ``C499`` — a 32-bit single-error-correcting decoder with the
  documented structure of the ISCAS-85 circuit (32 data + 8 check bits +
  correction enable; syndrome via XOR trees, per-bit correction);
* ``count`` — a 16-bit load/enable/clear counter slice
  (16 state + 16 data + 3 controls = 35 inputs, 16 outputs);
* ``f51m`` / ``5xp1`` — arithmetic blocks with the original signatures
  (4x4 multiply-accumulate; x^2 + x low bits).

``alu2``, ``clip``, ``count``, ``C499``, ``f51m`` and ``5xp1`` are
*reconstructions*: the signature and flavour match the original, the
exact minterms need not (documented substitution — see DESIGN.md §5).
"""

from __future__ import annotations

from typing import List

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF, MultiFunction


def _weight_bits(bdd: BDD, variables: List[int], bits: int) -> List[int]:
    """BDDs of the binary representation of the input weight."""
    # Symbolic counter: list of output-bit BDDs, ripple-added one input
    # at a time.
    count = [BDD.FALSE] * bits
    for var in variables:
        carry = bdd.var(var)
        for b in range(bits):
            new = bdd.apply_xor(count[b], carry)
            carry = bdd.apply_and(count[b], carry)
            count[b] = new
    return count


def rd_function(n: int, bits: int, name_prefix: str = "x") -> MultiFunction:
    """``rd{n}{bits}``: the weight of ``n`` inputs in ``bits`` output bits."""
    bdd = BDD(0)
    variables = [bdd.add_var(f"{name_prefix}{i}") for i in range(n)]
    outputs = [ISF.complete(f)
               for f in _weight_bits(bdd, variables, bits)]
    return MultiFunction(bdd, variables, outputs,
                         output_names=[f"w{b}" for b in range(bits)])


def rd53() -> MultiFunction:
    """Weight of 5 inputs (3 output bits)."""
    return rd_function(5, 3)


def rd73() -> MultiFunction:
    """Weight of 7 inputs (3 output bits)."""
    return rd_function(7, 3)


def rd84() -> MultiFunction:
    """Weight of 8 inputs (4 output bits)."""
    return rd_function(8, 4)


def sym9() -> MultiFunction:
    """``9sym``: 1 iff the weight of the 9 inputs is between 3 and 6."""
    bdd = BDD(0)
    variables = [bdd.add_var(f"x{i}") for i in range(9)]
    bits = _weight_bits(bdd, variables, 4)
    # weight in [3, 6]: w >= 3 and w <= 6.
    table = [1 if 3 <= w <= 6 else 0 for w in range(16)]
    # Compose the window over the weight bits.
    f = BDD.FALSE
    for w in range(10):
        if not table[w]:
            continue
        cube = BDD.TRUE
        for b in range(4):
            lit = bits[b] if (w >> b) & 1 else bdd.apply_not(bits[b])
            cube = bdd.apply_and(cube, lit)
        f = bdd.apply_or(f, cube)
    return MultiFunction(bdd, variables, [ISF.complete(f)],
                         output_names=["sym"])


def z4ml() -> MultiFunction:
    """``z4ml``: two 3-bit operands plus carry-in, 4-bit sum."""
    bdd = BDD(0)
    a = [bdd.add_var(f"a{i}") for i in range(3)]
    b = [bdd.add_var(f"b{i}") for i in range(3)]
    cin = bdd.add_var("cin")
    carry = bdd.var(cin)
    sums = []
    for i in range(3):
        av, bv = bdd.var(a[i]), bdd.var(b[i])
        sums.append(bdd.apply_xor(bdd.apply_xor(av, bv), carry))
        carry = bdd.apply_or(bdd.apply_and(av, bv),
                             bdd.apply_and(carry, bdd.apply_or(av, bv)))
    sums.append(carry)
    return MultiFunction(bdd, a + b + [cin],
                         [ISF.complete(s) for s in sums],
                         output_names=[f"s{i}" for i in range(4)])


def alu2() -> MultiFunction:
    """ALU slice reconstruction: 4-bit a, b; 2-bit op; 6 outputs.

    op 00: a + b; 01: a AND b; 10: a OR b; 11: a XOR b.
    Outputs: r0..r3, carry-out (add only), zero flag.
    """
    bdd = BDD(0)
    a = [bdd.add_var(f"a{i}") for i in range(4)]
    b = [bdd.add_var(f"b{i}") for i in range(4)]
    op = [bdd.add_var(f"op{i}") for i in range(2)]
    op0, op1 = bdd.var(op[0]), bdd.var(op[1])
    is_add = bdd.apply_and(bdd.apply_not(op1), bdd.apply_not(op0))
    is_and = bdd.apply_and(bdd.apply_not(op1), op0)
    is_or = bdd.apply_and(op1, bdd.apply_not(op0))
    is_xor = bdd.apply_and(op1, op0)

    carry = BDD.FALSE
    results = []
    for i in range(4):
        av, bv = bdd.var(a[i]), bdd.var(b[i])
        add_bit = bdd.apply_xor(bdd.apply_xor(av, bv), carry)
        carry = bdd.apply_or(bdd.apply_and(av, bv),
                             bdd.apply_and(carry, bdd.apply_or(av, bv)))
        r = bdd.disjoin([
            bdd.apply_and(is_add, add_bit),
            bdd.apply_and(is_and, bdd.apply_and(av, bv)),
            bdd.apply_and(is_or, bdd.apply_or(av, bv)),
            bdd.apply_and(is_xor, bdd.apply_xor(av, bv)),
        ])
        results.append(r)
    cout = bdd.apply_and(is_add, carry)
    zero = bdd.apply_not(bdd.disjoin(results))
    outputs = [ISF.complete(f) for f in results + [cout, zero]]
    return MultiFunction(
        bdd, a + b + op, outputs,
        output_names=["r0", "r1", "r2", "r3", "cout", "zero"])


def clip() -> MultiFunction:
    """Signed clip reconstruction: 9-bit two's complement clamped to
    [-15, 15], 5-bit two's-complement output."""
    bdd = BDD(0)
    x = [bdd.add_var(f"x{i}") for i in range(9)]
    sign = bdd.var(x[8])
    # Magnitude overflow: for positive values, any bit 4..7 set; for
    # negative values, any bit 4..7 clear (two's complement).
    high = [bdd.var(x[i]) for i in range(4, 8)]
    pos_over = bdd.apply_and(bdd.apply_not(sign), bdd.disjoin(high))
    neg_over = bdd.apply_and(
        sign, bdd.disjoin([bdd.apply_not(h) for h in high]))
    # Also -16 (sign set, bits 4..7 set, bits 0..3 clear) clips to -15.
    low = [bdd.var(x[i]) for i in range(4)]
    minus16 = bdd.conjoin([sign] + high + [bdd.apply_not(v) for v in low])
    neg_clip = bdd.apply_or(neg_over, minus16)
    in_range = bdd.apply_not(bdd.apply_or(pos_over, neg_clip))
    # Clip patterns (5-bit two's complement): +15 = 01111, -15 = 10001.
    outputs = []
    for i in range(4):
        bit_clip = bdd.apply_or(
            pos_over,
            bdd.apply_and(neg_clip,
                          BDD.TRUE if i == 0 else BDD.FALSE))
        outputs.append(bdd.apply_or(
            bdd.apply_and(in_range, bdd.var(x[i])), bit_clip))
    outputs.append(sign)  # the sign bit is never changed by clipping
    return MultiFunction(bdd, x, [ISF.complete(f) for f in outputs],
                         output_names=[f"y{i}" for i in range(5)])


def c499() -> MultiFunction:
    """32-bit single-error-correcting decoder (C499 structure).

    Inputs: 32 data bits, 8 check bits, 1 correction-enable.  The 8-bit
    syndrome is the XOR of received check bits with check bits recomputed
    from the data; data bit ``i`` is flipped when the syndrome equals its
    (distinct, two-or-more-ones) column pattern and correction is enabled.
    """
    bdd = BDD(0)
    data = [bdd.add_var(f"d{i}") for i in range(32)]
    check = [bdd.add_var(f"c{i}") for i in range(8)]
    enable = bdd.add_var("en")

    # Column patterns: the 32 smallest 8-bit values with >= 2 ones
    # (distinct from single-bit patterns, which indicate check-bit
    # errors).
    patterns = []
    value = 0
    while len(patterns) < 32:
        value += 1
        if bin(value).count("1") >= 2:
            patterns.append(value)

    syndrome = []
    for b in range(8):
        s = bdd.var(check[b])
        for i, pattern in enumerate(patterns):
            if (pattern >> b) & 1:
                s = bdd.apply_xor(s, bdd.var(data[i]))
        syndrome.append(s)

    outputs = []
    en = bdd.var(enable)
    for i, pattern in enumerate(patterns):
        match = en
        for b in range(8):
            lit = syndrome[b] if (pattern >> b) & 1 \
                else bdd.apply_not(syndrome[b])
            match = bdd.apply_and(match, lit)
        outputs.append(bdd.apply_xor(bdd.var(data[i]), match))
    return MultiFunction(
        bdd, data + check + [enable],
        [ISF.complete(f) for f in outputs],
        output_names=[f"o{i}" for i in range(32)])


def count() -> MultiFunction:
    """16-bit counter slice reconstruction: state + data + 3 controls.

    out = clear ? 0 : (load ? data : (enable ? state + 1 : state)).
    """
    bdd = BDD(0)
    state = [bdd.add_var(f"q{i}") for i in range(16)]
    data = [bdd.add_var(f"d{i}") for i in range(16)]
    controls = [bdd.add_var(name) for name in ("en", "ld", "clr")]
    enable, load, clear = (bdd.var(v) for v in controls)

    outputs = []
    carry = BDD.TRUE  # increment carry chain
    for i in range(16):
        q = bdd.var(state[i])
        inc = bdd.apply_xor(q, carry)
        carry = bdd.apply_and(q, carry)
        counted = bdd.ite(enable, inc, q)
        loaded = bdd.ite(load, bdd.var(data[i]), counted)
        outputs.append(bdd.apply_and(bdd.apply_not(clear), loaded))
    return MultiFunction(
        bdd, state + data + controls,
        [ISF.complete(f) for f in outputs],
        output_names=[f"n{i}" for i in range(16)])


def f51m() -> MultiFunction:
    """Arithmetic block reconstruction with the f51m signature (8 in,
    8 out): low byte of ``a * b + a`` for 4-bit ``a``, ``b``."""
    bdd = BDD(0)
    a = [bdd.add_var(f"a{i}") for i in range(4)]
    b = [bdd.add_var(f"b{i}") for i in range(4)]
    columns: List[List[int]] = [[] for _ in range(9)]
    for i in range(4):
        columns[i].append(bdd.var(a[i]))  # the "+ a" term
        for j in range(4):
            columns[i + j].append(
                bdd.apply_and(bdd.var(a[i]), bdd.var(b[j])))
    outputs = []
    for w in range(8):
        bits = columns[w]
        while len(bits) > 1:
            if len(bits) >= 3:
                x, y, z = bits.pop(), bits.pop(), bits.pop()
                s = bdd.apply_xor(bdd.apply_xor(x, y), z)
                c = bdd.apply_or(bdd.apply_and(x, y),
                                 bdd.apply_and(z, bdd.apply_or(x, y)))
            else:
                x, y = bits.pop(), bits.pop()
                s = bdd.apply_xor(x, y)
                c = bdd.apply_and(x, y)
            bits.append(s)
            if w + 1 < 9:
                columns[w + 1].append(c)
        outputs.append(bits[0] if bits else BDD.FALSE)
    return MultiFunction(bdd, a + b, [ISF.complete(f) for f in outputs],
                         output_names=[f"y{i}" for i in range(8)])


def xor5() -> MultiFunction:
    """``xor5``: parity of 5 inputs (exact MCNC definition)."""
    bdd = BDD(0)
    variables = [bdd.add_var(f"x{i}") for i in range(5)]
    f = BDD.FALSE
    for v in variables:
        f = bdd.apply_xor(f, bdd.var(v))
    return MultiFunction(bdd, variables, [ISF.complete(f)],
                         output_names=["p"])


def majority() -> MultiFunction:
    """``majority``: 5-input majority (exact MCNC definition)."""
    bdd = BDD(0)
    variables = [bdd.add_var(f"x{i}") for i in range(5)]
    table = [1 if bin(k).count("1") >= 3 else 0 for k in range(32)]
    f = bdd.from_truth_table(table, variables)
    return MultiFunction(bdd, variables, [ISF.complete(f)],
                         output_names=["maj"])


def sym10() -> MultiFunction:
    """``sym10``: 1 iff the weight of 10 inputs is in [3, 6]
    (the 10-input sibling of 9sym)."""
    bdd = BDD(0)
    variables = [bdd.add_var(f"x{i}") for i in range(10)]
    bits = _weight_bits(bdd, variables, 4)
    f = BDD.FALSE
    for w in range(11):
        if not 3 <= w <= 6:
            continue
        cube = BDD.TRUE
        for b in range(4):
            lit = bits[b] if (w >> b) & 1 else bdd.apply_not(bits[b])
            cube = bdd.apply_and(cube, lit)
        f = bdd.apply_or(f, cube)
    return MultiFunction(bdd, variables, [ISF.complete(f)],
                         output_names=["sym"])


def t481_like() -> MultiFunction:
    """A t481-style single-output function (16 inputs).

    The MCNC circuit t481 is famous for collapsing spectacularly under
    good decompositions; its exact function is netlist-only, so this is
    a documented *reconstruction* with the same flavour: a tree of
    equivalence/implication blocks over 16 inputs.
    """
    bdd = BDD(0)
    variables = [bdd.add_var(f"x{i}") for i in range(16)]
    layer = [bdd.var(v) for v in variables]
    toggle = True
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            if toggle:
                nxt.append(bdd.apply_xnor(layer[i], layer[i + 1]))
            else:
                nxt.append(bdd.apply_or(layer[i],
                                        bdd.apply_not(layer[i + 1])))
            toggle = not toggle
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    return MultiFunction(bdd, variables, [ISF.complete(layer[0])],
                         output_names=["t"])


def five_xp1() -> MultiFunction:
    """Arithmetic block reconstruction with the 5xp1 signature (7 in,
    10 out): low 10 bits of ``x^2 + x`` for the 7-bit input ``x``."""
    bdd = BDD(0)
    x = [bdd.add_var(f"x{i}") for i in range(7)]
    columns: List[List[int]] = [[] for _ in range(11)]
    for i in range(7):
        columns[i].append(bdd.var(x[i]))  # the "+ x" term
        for j in range(7):
            if i + j < 11:
                columns[i + j].append(
                    bdd.apply_and(bdd.var(x[i]), bdd.var(x[j])))
    outputs = []
    for w in range(10):
        bits = columns[w]
        while len(bits) > 1:
            if len(bits) >= 3:
                p, q, r = bits.pop(), bits.pop(), bits.pop()
                s = bdd.apply_xor(bdd.apply_xor(p, q), r)
                c = bdd.apply_or(bdd.apply_and(p, q),
                                 bdd.apply_and(r, bdd.apply_or(p, q)))
            else:
                p, q = bits.pop(), bits.pop()
                s = bdd.apply_xor(p, q)
                c = bdd.apply_and(p, q)
            bits.append(s)
            if w + 1 < 11:
                columns[w + 1].append(c)
        outputs.append(bits[0] if bits else BDD.FALSE)
    return MultiFunction(bdd, x, [ISF.complete(f) for f in outputs],
                         output_names=[f"y{i}" for i in range(10)])
