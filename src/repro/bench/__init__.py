"""Benchmark circuits for the Table 1 / Table 2 experiments.

See DESIGN.md section 5: circuits whose function is mathematically
defined are implemented exactly (:mod:`repro.bench.functions`); the
netlist-only MCNC/ISCAS circuits are replaced by seeded synthetic
stand-ins with the original (inputs, outputs) signatures
(:mod:`repro.bench.synthetic`).  :mod:`repro.bench.registry` exposes the
by-name lookup used by the harnesses and the CLI, and
:mod:`repro.bench.paper_tables` records the numbers published in the
paper for reference columns.
"""

from repro.bench.registry import benchmark, benchmark_names, BENCHMARKS

__all__ = ["benchmark", "benchmark_names", "BENCHMARKS"]
