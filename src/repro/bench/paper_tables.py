"""Numbers and claims published in the paper, for reference columns.

The available copy of the paper (IWLS'97 preprint, OCR) preserves the
row labels of Tables 1 and 2 but not the per-cell CLB counts, so we
record here exactly what the text states and the harnesses compare
*shapes* against these claims:

* Table 1 (mulopII vs mulop-dc, XC3000, n_LUT = 5):
  - reductions of CLB counts of up to 35% (alu2);
  - overall reduction more than 10%;
  - the benchmark functions are completely specified — don't cares occur
    only at higher levels of the recursion, so improvements concentrate
    on the larger benchmarks.
* Figure 2: the automatically generated 8-bit adder uses 49 two-input
  gates vs 90 for the conditional-sum adder.
* Figure 3 / Section 6.1: without the don't-care assignment the
  decomposed partial multiplier ``pm_4`` needs ~75% more gates.
* Multiplier scaling: the generalised scheme costs
  ``n^2 + O(n log^2 n)`` two-input gates at depth
  ``5.13 log n + O(log* n log log n)``, against ``10 n^2 - 20 n`` gates
  at depth ``5 log n - 5`` for the Wallace-tree multiplier.
* Table 2 compares mulop-dcII against FGMap, mis-pga(new) and IMODEC and
  reports an advantage for mulop-dcII on the subtotal/total rows.
"""

from __future__ import annotations

import math

#: Figure 2 gate counts.
FIG2_ADDER = {
    "mulop_gates": 49,
    "conditional_sum_gates": 90,
    "bits": 8,
}

#: Section 6.1: pm_4 without DC assignment costs ~75% more gates.
PM4_NO_DC_PENALTY = 0.75

#: Table 1 claims.
TABLE1_CLAIMS = {
    "max_reduction_circuit": "alu2",
    "max_reduction": 0.35,
    "overall_reduction_min": 0.10,
}

#: Table 1 / Table 2 row labels (as printed in the paper).
TABLE_ROWS = [
    "5xp1", "9sym", "alu2", "apex7", "b9", "C499", "C880", "clip",
    "count", "duke2", "e64", "f51m", "misex1", "misex2", "rd73", "rd84",
    "rot", "sao2", "vg2", "z4ml",
]


def wallace_gates(n: int) -> int:
    """The paper's Wallace-tree gate-count accounting, ``10 n^2 - 20 n``."""
    return 10 * n * n - 20 * n


def wallace_depth(n: int) -> float:
    """The paper's Wallace-tree depth accounting, ``5 log2 n - 5``."""
    return 5 * math.log2(n) - 5


def mulop_multiplier_gates(n: int) -> float:
    """Leading-order gate count of the paper's multiplier scheme,
    ``n^2 + O(n log^2 n)`` (constant of the low-order term unknown; we
    return the leading term plus ``2 n log2(n)^2`` as a representative)."""
    if n < 2:
        return float(n * n)
    return n * n + 2 * n * math.log2(n) ** 2


def mulop_multiplier_depth(n: int) -> float:
    """Leading-order depth of the paper's multiplier scheme."""
    return 5.13 * math.log2(n) if n > 1 else 1.0
