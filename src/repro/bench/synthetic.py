"""Seeded synthetic stand-ins for netlist-only benchmark circuits.

The MCNC/ISCAS circuits ``apex7``, ``b9``, ``C880``, ``duke2``, ``e64``,
``misex1``, ``misex2``, ``rot``, ``sao2`` and ``vg2`` exist only as
netlist/PLA files we do not have offline.  Per the substitution rule
(DESIGN.md §5) each is replaced by a deterministic synthetic circuit
with the original (inputs, outputs) signature and a realistic logic mix:

* outputs are grouped into *blocks*; each block computes a small
  arithmetic/control function (adder slice, comparator, parity chain,
  mux cascade, majority, AND-OR cone) over a window of inputs;
* windows overlap, so outputs share support (exercising the common
  decomposition-function machinery) and blocks chain a few shared
  intermediate signals (exercising recursion depth);
* everything is completely specified — like the originals, don't cares
  only arise *inside* the recursion, which is exactly the regime Table 1
  studies.

The generator is seeded per circuit name, so results are reproducible.
"""

from __future__ import annotations

import random
from typing import List

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF, MultiFunction

#: Block kinds and the number of outputs each naturally produces.
_BLOCK_KINDS = ("adder", "comparator", "parity", "mux", "majority",
                "andor", "onehot")


def _block_adder(bdd: BDD, xs: List[int], rng) -> List[int]:
    half = max(1, len(xs) // 2)
    a, b = xs[:half], xs[half:2 * half]
    carry = BDD.FALSE
    outs = []
    for av, bv in zip(a, b):
        x, y = bdd.var(av), bdd.var(bv)
        outs.append(bdd.apply_xor(bdd.apply_xor(x, y), carry))
        carry = bdd.apply_or(bdd.apply_and(x, y),
                             bdd.apply_and(carry, bdd.apply_or(x, y)))
    outs.append(carry)
    return outs


def _block_comparator(bdd: BDD, xs: List[int], rng) -> List[int]:
    half = max(1, len(xs) // 2)
    a, b = xs[:half], xs[half:2 * half]
    gt = BDD.FALSE
    eq = BDD.TRUE
    for av, bv in zip(reversed(a), reversed(b)):
        x, y = bdd.var(av), bdd.var(bv)
        gt = bdd.apply_or(gt, bdd.conjoin(
            [eq, x, bdd.apply_not(y)]))
        eq = bdd.apply_and(eq, bdd.apply_xnor(x, y))
    return [gt, eq]


def _block_parity(bdd: BDD, xs: List[int], rng) -> List[int]:
    f = BDD.FALSE
    for v in xs:
        f = bdd.apply_xor(f, bdd.var(v))
    return [f]


def _block_mux(bdd: BDD, xs: List[int], rng) -> List[int]:
    if len(xs) < 3:
        return _block_parity(bdd, xs, rng)
    sel = bdd.var(xs[0])
    half = (len(xs) - 1) // 2
    outs = []
    for i in range(half):
        outs.append(bdd.ite(sel, bdd.var(xs[1 + i]),
                            bdd.var(xs[1 + half + i])))
    return outs or _block_parity(bdd, xs, rng)


def _block_majority(bdd: BDD, xs: List[int], rng) -> List[int]:
    k = len(xs)
    threshold = (k + 1) // 2
    table = [1 if bin(i).count("1") >= threshold else 0
             for i in range(1 << k)]
    return [bdd.from_truth_table(table, xs)]


def _block_andor(bdd: BDD, xs: List[int], rng) -> List[int]:
    terms = []
    for _ in range(max(2, len(xs) // 2)):
        size = rng.randint(2, min(4, len(xs)))
        chosen = rng.sample(xs, size)
        lits = [bdd.var(v) if rng.random() < 0.6 else bdd.nvar(v)
                for v in chosen]
        terms.append(bdd.conjoin(lits))
    return [bdd.disjoin(terms)]


def _block_onehot(bdd: BDD, xs: List[int], rng) -> List[int]:
    k = len(xs)
    table = [1 if bin(i).count("1") == 1 else 0 for i in range(1 << k)]
    return [bdd.from_truth_table(table, xs)]


_BLOCKS: dict = {
    "adder": _block_adder,
    "comparator": _block_comparator,
    "parity": _block_parity,
    "mux": _block_mux,
    "majority": _block_majority,
    "andor": _block_andor,
    "onehot": _block_onehot,
}


def synthetic_circuit(name: str, num_inputs: int,
                      num_outputs: int,
                      max_block_inputs: int = 7,
                      stages: int = 2,
                      seed: "int | str | None" = None) -> MultiFunction:
    """A deterministic synthetic circuit with the given signature.

    Built in stages like a real multi-level netlist: stage-1 blocks
    compute intermediate signals over input windows; later stages mix
    raw inputs with intermediates, so output cones widen to 12-20
    variables and the decomposition recursion runs several levels deep
    (the regime where don't cares arise).  All outputs are completely
    specified, like the originals.

    ``seed=None`` keeps the per-name default instance (the registry's
    stand-ins); any other value derives a fresh — still reproducible —
    instance with the same signature, so batch stress runs can sample
    many circuits per name (``repro batch`` exposes this as
    ``synth:<name>:<inputs>:<outputs>:<seed>``).
    """
    token = f"repro-{name}" if seed is None else f"repro-{name}-{seed}"
    rng = random.Random(token)
    bdd = BDD(0)
    variables = [bdd.add_var(f"x{i}") for i in range(num_inputs)]

    def make_blocks(pool: List[int], count: int,
                    as_bdds: List[int],
                    prefer_from: int = 0) -> List[int]:
        produced: List[int] = []
        cursor = 0
        while len(produced) < count:
            width = rng.randint(4, min(max_block_inputs, len(pool)))
            if rng.random() < 0.3:
                chosen = rng.sample(range(len(pool)), width)
            else:
                start = cursor % max(1, len(pool) - width + 1)
                chosen = list(range(start, start + width))
                cursor += max(1, width - 2)
            if prefer_from and rng.random() < 0.6:
                # Pull in one or two composed intermediates so the output
                # cone widens (realistic multi-level structure).
                tail = range(prefer_from, len(pool))
                picks = rng.sample(list(tail), min(2, len(tail)))
                chosen = sorted(set(chosen[:width - len(picks)] + picks))
            kind = rng.choice(_BLOCK_KINDS)
            # Blocks are defined over fresh temporary variables, then the
            # actual signals (raw inputs or intermediates) are substituted
            # in — that is how composition widens the cones.
            window_vars = [pool[i] for i in chosen]
            window_sigs = [as_bdds[i] for i in chosen]
            block_outs = _BLOCKS[kind](bdd, window_vars, rng)
            substitution = dict(zip(window_vars, window_sigs))
            for f in block_outs:
                produced.append(bdd.vector_compose(f, substitution))
        return produced[:count]

    # Stage 1: intermediates over raw inputs.
    pool_vars = list(variables)
    pool_sigs = [bdd.var(v) for v in variables]
    for stage in range(1, stages):
        n_intermediate = max(2, num_inputs // 4)
        intermediates = make_blocks(pool_vars, n_intermediate, pool_sigs)
        # Mix intermediates into the pool (replacing a slice so the pool
        # does not grow unboundedly); keep most raw inputs available.
        pool_sigs = pool_sigs[:num_inputs] + intermediates
        pool_vars = list(variables) + [
            bdd.add_var(f"_t{stage}_{i}") for i in range(n_intermediate)]

    prefer = num_inputs if len(pool_vars) > num_inputs else 0
    outputs = make_blocks(pool_vars, num_outputs, pool_sigs,
                          prefer_from=prefer)
    return MultiFunction(
        bdd, variables, [ISF.complete(f) for f in outputs],
        output_names=[f"y{i}" for i in range(num_outputs)])
