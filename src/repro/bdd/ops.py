"""Higher-level BDD operations used by the decomposition flow.

The central helper is :func:`bound_cofactors`: the decomposition algorithms
of the paper need, for a bound set ``B = {x_{i1}, .., x_{ip}}``, the
``2**p`` cofactors of a function — one per *bound-set vertex*.  Two bound
set vertices are compatible iff their cofactors agree (Roth/Karp), and the
number of distinct cofactors is the number of compatible classes ``ncc``.
Because ROBDDs are canonical, cofactor equality is node-id equality, which
makes the class computation independent of the global variable order
(equivalent to the cut-counting method of Lai/Pedram/Vrudhula but without
requiring the bound variables on top).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bdd.manager import BDD


def bound_cofactors(bdd: BDD, f: int, bound_vars: Sequence[int]) -> List[int]:
    """All ``2**p`` cofactors of ``f`` w.r.t. the bound variables.

    Index ``k`` corresponds to the bound-set vertex whose bit ``i`` (MSB
    first, i.e. ``bound_vars[0]`` is the most significant) is
    ``(k >> (p - 1 - i)) & 1``.

    The cofactors are expanded as a binary tree of restrictions so shared
    work is reused: ``O(2**p)`` restrict calls total.
    """
    cofactors = [f]
    for var in bound_vars:
        nxt: List[int] = []
        for node in cofactors:
            nxt.append(bdd.restrict(node, var, 0))
            nxt.append(bdd.restrict(node, var, 1))
        cofactors = nxt
    return cofactors


def vertex_bits(k: int, p: int) -> tuple:
    """Bit tuple (MSB first) of bound-set vertex index ``k`` with ``p`` bits."""
    return tuple((k >> (p - 1 - i)) & 1 for i in range(p))


def vertex_index(bits: Sequence[int]) -> int:
    """Inverse of :func:`vertex_bits`."""
    k = 0
    for b in bits:
        k = (k << 1) | b
    return k


def boolean_difference(bdd: BDD, f: int, var: int) -> int:
    """Boolean difference ``df/dx = f|x=0 XOR f|x=1``."""
    return bdd.apply_xor(bdd.restrict(f, var, 0), bdd.restrict(f, var, 1))


def depends_on(bdd: BDD, f: int, var: int) -> bool:
    """Does ``f`` genuinely depend on ``var``?"""
    return var in bdd.support(f)


def cofactor2(bdd: BDD, f: int, var_i: int, var_j: int,
              val_i: int, val_j: int) -> int:
    """Double cofactor ``f|x_i=val_i, x_j=val_j``."""
    return bdd.restrict(bdd.restrict(f, var_i, val_i), var_j, val_j)


def swap_vars(bdd: BDD, f: int, var_i: int, var_j: int) -> int:
    """The function with variables ``x_i`` and ``x_j`` exchanged."""
    return bdd.rename(f, {var_i: var_j, var_j: var_i})


def from_vertex_set(bdd: BDD, vertices: Sequence[int],
                    bound_vars: Sequence[int]) -> int:
    """Characteristic function (over the bound variables) of a vertex set.

    ``vertices`` holds vertex indices in the :func:`vertex_bits` encoding.
    """
    p = len(bound_vars)
    cubes = []
    for k in vertices:
        bits = vertex_bits(k, p)
        cubes.append(bdd.cube({bound_vars[i]: bits[i] for i in range(p)}))
    return bdd.disjoin(cubes)


def build_from_vertex_function(bdd: BDD, values: Sequence[int],
                               bound_vars: Sequence[int]) -> int:
    """BDD (over the bound variables) of a function given per vertex.

    ``values[k]`` is the function value on vertex ``k``; this is just a
    truth table over the bound variables in MSB-first vertex order.
    """
    return bdd.from_truth_table(values, bound_vars)


def minterm_count(bdd: BDD, f: int, variables: Sequence[int]) -> int:
    """Number of minterms of ``f`` over the given variable set."""
    extra = [v for v in bdd.support(f) if v not in set(variables)]
    if extra:
        raise ValueError(f"function depends on variables outside the set: {extra}")
    # Count over all manager variables, then divide out the ones not in
    # `variables` (each contributes an unconstrained factor of two).
    total = bdd.sat_count(f, bdd.num_vars)
    return total >> (bdd.num_vars - len(variables))


def substitute_bound(bdd: BDD, f: int, mapping: Dict[int, int]) -> int:
    """Rename variables of ``f`` according to ``mapping`` (var -> var)."""
    return bdd.rename(f, mapping)
