"""Variable ordering heuristics: sifting and symmetric sifting.

The paper uses *symmetric sifting* (Moller/Molitor/Drechsler; Panda/
Somenzi/Plessier) to find a variable order whose adjacent windows are
good bound-set candidates: symmetric variables are kept together and the
groups are sifted as blocks.

Reordering here is *functional*: :func:`rebuild` snapshots the structure
of the root functions, installs the new order (which resets the node
store) and reconstructs the functions bottom-up.  This is slower than
in-place level swapping but simple and obviously correct, and the
decomposition flow itself is order-independent (cofactors are computed
per bound-set vertex), so reordering is only a search heuristic here.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.bdd.manager import BDD
from repro.bdd.symmetry import symmetry_groups


def _extract(bdd: BDD, roots: Sequence[int]) -> Tuple[list, list]:
    """Snapshot the node graphs of ``roots`` (children-first order)."""
    order: List[int] = []
    seen = set()
    expanded_once = set()

    def visit(node: int) -> None:
        stack = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if current <= 1 or current in seen:
                continue
            if expanded:
                seen.add(current)
                order.append(current)
            elif current not in expanded_once:
                expanded_once.add(current)
                stack.append((current, True))
                stack.append((bdd.low(current), False))
                stack.append((bdd.high(current), False))

    for root in roots:
        visit(root)
    nodes = [(n, bdd.var_of(n), bdd.low(n), bdd.high(n)) for n in order]
    return nodes, list(roots)


def rebuild(bdd: BDD, roots: Sequence[int],
            new_order: Sequence[int]) -> List[int]:
    """Install ``new_order`` and rebuild ``roots``; returns the new ids.

    Any node id not among ``roots`` is invalid afterwards.
    """
    nodes, old_roots = _extract(bdd, roots)
    bdd.set_order(new_order)
    remap = {BDD.FALSE: BDD.FALSE, BDD.TRUE: BDD.TRUE}
    for node, var, low, high in nodes:
        remap[node] = bdd.ite(bdd.var(var), remap[high], remap[low])
    return [remap[r] for r in old_roots]


def _total_size(bdd: BDD, roots: Sequence[int]) -> int:
    return bdd.node_count(*roots)


def sift(bdd: BDD, roots: Sequence[int],
         max_vars: int = 16) -> List[int]:
    """Rudell-style sifting by exhaustive per-variable repositioning.

    Each variable is tried at every position of the order (via rebuild)
    and left at the best one.  Quadratic in the number of variables times
    the rebuild cost, so it is guarded by ``max_vars``; for larger inputs
    the current order is returned unchanged.
    """
    if bdd.num_vars > max_vars:
        return list(roots)
    roots = list(roots)
    for var in range(bdd.num_vars):
        best_size = _total_size(bdd, roots)
        best_order = bdd.order()
        base = [v for v in bdd.order() if v != var]
        for pos in range(len(base) + 1):
            candidate = base[:pos] + [var] + base[pos:]
            if candidate == bdd.order():
                continue
            roots = rebuild(bdd, roots, candidate)
            size = _total_size(bdd, roots)
            if size < best_size:
                best_size = size
                best_order = candidate
        if bdd.order() != best_order:
            roots = rebuild(bdd, roots, best_order)
    return roots


def window_permute(bdd: BDD, roots: Sequence[int], window: int = 3,
                   passes: int = 1) -> List[int]:
    """Window permutation reordering.

    Slides a window of ``window`` adjacent levels over the order and
    installs the best permutation of each window (classic complement to
    sifting: cheap, local, often catches what per-variable moves miss).
    Returns the new root ids.
    """
    from itertools import permutations

    roots = list(roots)
    if bdd.num_vars < 2 or window < 2:
        return roots
    window = min(window, bdd.num_vars)
    for _ in range(passes):
        for start in range(bdd.num_vars - window + 1):
            order = bdd.order()
            head, mid, tail = (order[:start], order[start:start + window],
                               order[start + window:])
            best_perm = tuple(mid)
            best_size = _total_size(bdd, roots)
            for perm in permutations(mid):
                if list(perm) == mid:
                    continue
                candidate = head + list(perm) + tail
                roots = rebuild(bdd, roots, candidate)
                size = _total_size(bdd, roots)
                if size < best_size:
                    best_size = size
                    best_perm = perm
            final = head + list(best_perm) + tail
            if bdd.order() != final:
                roots = rebuild(bdd, roots, final)
    return roots


def group_contiguous_order(bdd: BDD, groups: Sequence[Sequence[int]]) -> List[int]:
    """An order placing each symmetry group contiguously.

    Groups are laid out largest-first (large symmetric groups make the
    best bound sets), preserving in-group order.  Variables not covered
    by any group keep their relative order at the end.
    """
    covered = {v for g in groups for v in g}
    order: List[int] = []
    for group in sorted(groups, key=len, reverse=True):
        order.extend(group)
    order.extend(v for v in bdd.order() if v not in covered)
    return order


def symmetric_sift(bdd: BDD, roots: Sequence[int],
                   max_groups: int = 12) -> Tuple[List[int], List[List[int]]]:
    """Symmetric sifting: group symmetric variables, sift groups as blocks.

    Returns the new root ids and the symmetry groups (in terms of variable
    ids).  Symmetry groups are computed for the *common* symmetries of all
    roots, matching how the paper keeps groups intact across a multi-output
    decomposition.
    """
    roots = list(roots)
    variables = sorted(set().union(*(bdd.support(r) for r in roots))
                       if roots else set())
    if not variables:
        return roots, []
    groups = symmetry_groups(bdd, roots, variables)
    order = group_contiguous_order(bdd, groups)
    roots = rebuild(bdd, roots, order)
    if len(groups) > max_groups:
        return roots, groups
    # Block sifting: move each group through all block positions.
    blocks = [list(g) for g in sorted(groups, key=len, reverse=True)]
    tail = [v for v in order if not any(v in g for g in blocks)]
    for i in range(len(blocks)):
        best_size = _total_size(bdd, roots)
        best_blocks = [list(b) for b in blocks]
        moving = blocks[i]
        rest = blocks[:i] + blocks[i + 1:]
        for pos in range(len(rest) + 1):
            candidate_blocks = rest[:pos] + [moving] + rest[pos:]
            candidate = [v for b in candidate_blocks for v in b] + tail
            roots = rebuild(bdd, roots, candidate)
            size = _total_size(bdd, roots)
            if size < best_size:
                best_size = size
                best_blocks = [list(b) for b in candidate_blocks]
        blocks = best_blocks
        final = [v for b in blocks for v in b] + tail
        if bdd.order() != final:
            roots = rebuild(bdd, roots, final)
    return roots, groups
