"""The ROBDD manager.

A :class:`BDD` owns a set of variables and a shared, canonical node store.
Nodes are integers: ``0`` is the FALSE terminal, ``1`` the TRUE terminal,
and every id ``>= 2`` is an internal node ``(var, low, high)`` kept unique
through a hash table, so two equal functions always have the same node id.

The manager keeps a *variable order*: each variable id has a level, and on
every root-to-terminal path variables appear in increasing level.  All
algorithms consult :meth:`BDD.level` rather than raw variable ids, so the
order may be any permutation of the variables.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import faults
from repro.obs.metrics import BddMetrics

#: Default cap on computed-table entries (clear-on-threshold).  Each
#: entry is a small tuple key plus an int, so the default bounds the
#: table at a few hundred MB even in adversarial workloads.
DEFAULT_CACHE_LIMIT = 1_000_000


class BDD:
    """A reduced ordered BDD manager.

    Parameters
    ----------
    num_vars:
        Number of variables to create up front.  More can be added later
        with :meth:`add_var`.
    cache_limit:
        Maximum number of computed-table entries.  The table is pure
        memoisation, so when an insert would exceed the cap the whole
        table is cleared (cheap, and recency bookkeeping would cost more
        than the occasional recomputation).  ``None`` disables the bound.
        Hits, misses and evictions are counted — see :meth:`metrics`.

    Examples
    --------
    >>> bdd = BDD(3)
    >>> x0, x1 = bdd.var(0), bdd.var(1)
    >>> f = bdd.apply_and(x0, bdd.apply_not(x1))
    >>> bdd.eval(f, {0: 1, 1: 0})
    True
    """

    FALSE = 0
    TRUE = 1

    #: Sentinel level used for terminals; larger than any variable level.
    _TERMINAL_LEVEL = 1 << 30

    def __init__(self, num_vars: int = 0,
                 cache_limit: Optional[int] = DEFAULT_CACHE_LIMIT) -> None:
        # Node store; index = node id.  Entries 0 and 1 are terminals and
        # carry a dummy variable id of -1.
        self._var: List[int] = [-1, -1]
        self._low: List[int] = [0, 0]
        self._high: List[int] = [0, 0]
        # Unique table: (var, low, high) -> node id.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Computed table for ITE and helpers (size-capped memoisation).
        self._cache: Dict[Tuple, int] = {}
        self._cache_limit = cache_limit
        # Per-root support cache (nodes are immutable once created).
        self._support_cache: Dict[int, frozenset] = {}
        # BDD <-> packed-truth-table conversion cache, owned by
        # repro.kernel.convert (kept here so set_order can invalidate it).
        self._kernel_cache: Dict = {}
        # Hot-path counters (see metrics()).
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._ite_calls = 0
        self._restrict_calls = 0
        self._peak_nodes = 2
        # Chaos site, cached at construction: None (the production
        # default) keeps the hot ite() path at one extra pointer test.
        self._fault_ite = faults.hook("bdd.ite")
        # Variable order bookkeeping.
        self._level_of_var: List[int] = []
        self._var_at_level: List[int] = []
        self._names: List[str] = []
        for _ in range(num_vars):
            self.add_var()

    # ------------------------------------------------------------------
    # Variables and ordering
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of variables known to this manager."""
        return len(self._level_of_var)

    def add_var(self, name: Optional[str] = None) -> int:
        """Create a new variable at the bottom of the order; return its id."""
        var = len(self._level_of_var)
        self._level_of_var.append(var)
        self._var_at_level.append(var)
        self._names.append(name if name is not None else f"x{var}")
        return var

    def var_name(self, var: int) -> str:
        """Human-readable name of variable ``var``."""
        return self._names[var]

    def level(self, node: int) -> int:
        """Level of a node's top variable (terminals sort below everything)."""
        if node <= 1:
            return self._TERMINAL_LEVEL
        return self._level_of_var[self._var[node]]

    def var_level(self, var: int) -> int:
        """Current level of variable ``var`` in the order."""
        return self._level_of_var[var]

    def order(self) -> List[int]:
        """The current variable order, top level first."""
        return list(self._var_at_level)

    def set_order(self, order: Sequence[int]) -> None:
        """Install a new variable order.

        This *relabels levels only*; existing nodes become stale, so the
        caller must rebuild any live functions (see
        :func:`repro.bdd.reorder.rebuild`).  The manager's node store is
        cleared.
        """
        if sorted(order) != list(range(self.num_vars)):
            raise ValueError("order must be a permutation of all variables")
        self._var_at_level = list(order)
        for lvl, var in enumerate(order):
            self._level_of_var[var] = lvl
        # All stored nodes are invalid under the new order.
        self._var = self._var[:2]
        self._low = self._low[:2]
        self._high = self._high[:2]
        self._unique.clear()
        self._cache.clear()
        self._support_cache.clear()
        self._kernel_cache.clear()

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _make(self, var: int, low: int, high: int) -> int:
        """Find-or-create the canonical node ``(var, low, high)``."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
            if node >= self._peak_nodes:
                self._peak_nodes = node + 1
        return node

    def _cache_put(self, key: Tuple, res: int) -> None:
        """Insert into the computed table, clearing it at the cap."""
        cache = self._cache
        if self._cache_limit is not None and len(cache) >= self._cache_limit:
            cache.clear()
            self._cache_evictions += 1
        cache[key] = res

    def var_of(self, node: int) -> int:
        """Top variable id of an internal node."""
        if node <= 1:
            raise ValueError("terminals have no variable")
        return self._var[node]

    def low(self, node: int) -> int:
        """Low (else, var=0) child of an internal node."""
        return self._low[node]

    def high(self, node: int) -> int:
        """High (then, var=1) child of an internal node."""
        return self._high[node]

    def var(self, i: int) -> int:
        """BDD of the projection function ``x_i``."""
        if not 0 <= i < self.num_vars:
            raise ValueError(f"unknown variable {i}")
        return self._make(i, self.FALSE, self.TRUE)

    def nvar(self, i: int) -> int:
        """BDD of the negated projection function ``not x_i``."""
        return self._make(i, self.TRUE, self.FALSE)

    # ------------------------------------------------------------------
    # Core: if-then-else
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """``if f then g else h`` — the universal ternary operator."""
        self._ite_calls += 1
        if self._fault_ite is not None:
            self._fault_ite()  # chaos site: bdd.ite
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = ("ite", f, g, h)
        res = self._cache.get(key)
        if res is not None:
            self._cache_hits += 1
            return res
        self._cache_misses += 1
        lvl = min(self.level(f), self.level(g), self.level(h))
        top = self._var_at_level[lvl]
        f0, f1 = self._branch(f, top, lvl)
        g0, g1 = self._branch(g, top, lvl)
        h0, h1 = self._branch(h, top, lvl)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        res = self._make(top, low, high)
        self._cache_put(key, res)
        return res

    def _branch(self, node: int, var: int, lvl: int) -> Tuple[int, int]:
        """Cofactors of ``node`` w.r.t. ``var`` when ``var`` is at or above
        the node's top level."""
        if self.level(node) == lvl and self._var[node] == var:
            return self._low[node], self._high[node]
        return node, node

    # ------------------------------------------------------------------
    # Derived Boolean operations
    # ------------------------------------------------------------------

    def apply_not(self, f: int) -> int:
        """Negation."""
        return self.ite(f, self.FALSE, self.TRUE)

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, self.FALSE)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, self.TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.apply_not(g), g)

    def apply_xnor(self, f: int, g: int) -> int:
        """Equivalence."""
        return self.ite(f, g, self.apply_not(g))

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.ite(f, g, self.TRUE)

    def apply_diff(self, f: int, g: int) -> int:
        """Difference ``f and not g``."""
        return self.ite(g, self.FALSE, f)

    def conjoin(self, nodes: Iterable[int]) -> int:
        """AND of an iterable of nodes (TRUE for empty input)."""
        result = self.TRUE
        for node in nodes:
            result = self.apply_and(result, node)
            if result == self.FALSE:
                break
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        """OR of an iterable of nodes (FALSE for empty input)."""
        result = self.FALSE
        for node in nodes:
            result = self.apply_or(result, node)
            if result == self.TRUE:
                break
        return result

    def leq(self, f: int, g: int) -> bool:
        """Does ``f`` imply ``g`` (i.e. is the interval ``[f, g]`` ordered)?"""
        return self.apply_diff(f, g) == self.FALSE

    # ------------------------------------------------------------------
    # Cofactors, composition, quantification
    # ------------------------------------------------------------------

    def restrict(self, f: int, var: int, value: int) -> int:
        """Cofactor ``f`` with ``var`` fixed to ``value`` (0 or 1)."""
        self._restrict_calls += 1
        key = ("res", f, var, value)
        res = self._cache.get(key)
        if res is not None:
            self._cache_hits += 1
            return res
        self._cache_misses += 1
        res = self._restrict_rec(f, var, self._level_of_var[var], value)
        self._cache_put(key, res)
        return res

    def _restrict_rec(self, f: int, var: int, vlvl: int, value: int) -> int:
        lvl = self.level(f)
        if lvl > vlvl:
            return f
        if lvl == vlvl:
            return self._high[f] if value else self._low[f]
        key = ("res", f, var, value)
        res = self._cache.get(key)
        if res is not None:
            self._cache_hits += 1
            return res
        self._cache_misses += 1
        low = self._restrict_rec(self._low[f], var, vlvl, value)
        high = self._restrict_rec(self._high[f], var, vlvl, value)
        res = self._make(self._var[f], low, high)
        self._cache_put(key, res)
        return res

    def cofactor(self, f: int, assignment: Dict[int, int]) -> int:
        """Cofactor w.r.t. a partial assignment ``{var: value}``.

        Variables are fixed from the bottom of the order upward so that
        intermediate results stay small.
        """
        for var in sorted(assignment, key=self._level_of_var.__getitem__,
                          reverse=True):
            f = self.restrict(f, var, assignment[var])
        return f

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        f0 = self.restrict(f, var, 0)
        f1 = self.restrict(f, var, 1)
        return self.ite(g, f1, f0)

    def vector_compose(self, f: int, substitution: Dict[int, int]) -> int:
        """Simultaneously substitute ``substitution[var]`` for each variable.

        Unlisted variables are left unchanged.
        """
        memo: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1:
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            var = self._var[node]
            low = walk(self._low[node])
            high = walk(self._high[node])
            replacement = substitution.get(var)
            if replacement is None:
                replacement = self.var(var)
            res = self.ite(replacement, high, low)
            memo[node] = res
            return res

        return walk(f)

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables: substitute variable ``mapping[v]`` for ``v``."""
        return self.vector_compose(
            f, {v: self.var(w) for v, w in mapping.items()}
        )

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification over ``variables``."""
        for var in sorted(variables, key=self._level_of_var.__getitem__,
                          reverse=True):
            f = self.apply_or(self.restrict(f, var, 0),
                              self.restrict(f, var, 1))
        return f

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal quantification over ``variables``."""
        for var in sorted(variables, key=self._level_of_var.__getitem__,
                          reverse=True):
            f = self.apply_and(self.restrict(f, var, 0),
                               self.restrict(f, var, 1))
        return f

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def support(self, f: int) -> set:
        """Set of variable ids ``f`` genuinely depends on.

        Cached per root node (nodes are immutable once created).
        """
        cached = self._support_cache.get(f)
        if cached is not None:
            return set(cached)
        seen = set()
        supp = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            supp.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        self._support_cache[f] = frozenset(supp)
        return supp

    def node_count(self, *roots: int) -> int:
        """Number of distinct nodes (terminals included) reachable from roots."""
        seen = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node > 1:
                stack.append(self._low[node])
                stack.append(self._high[node])
        return len(seen)

    def eval(self, f: int, assignment: Dict[int, int]) -> bool:
        """Evaluate ``f`` under a total assignment ``{var: 0/1}``."""
        node = f
        while node > 1:
            node = (self._high[node] if assignment[self._var[node]]
                    else self._low[node])
        return node == self.TRUE

    def sat_count(self, f: int, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        if nvars is None:
            nvars = self.num_vars
        if f <= 1:
            return (1 << nvars) if f == self.TRUE else 0
        # count(node) = number of satisfying assignments over the variables
        # at levels [level(node), nvars); terminal levels clamp to nvars.
        memo: Dict[int, int] = {}

        def clamped_level(node: int) -> int:
            return nvars if node <= 1 else self.level(node)

        def count(node: int) -> int:
            if node == self.FALSE:
                return 0
            if node == self.TRUE:
                return 1
            cached = memo.get(node)
            if cached is not None:
                return cached
            lvl = clamped_level(node)
            low, high = self._low[node], self._high[node]
            res = (count(low) << (clamped_level(low) - lvl - 1)) + \
                  (count(high) << (clamped_level(high) - lvl - 1))
            memo[node] = res
            return res

        return count(f) << clamped_level(f)

    def pick(self, f: int) -> Optional[Dict[int, int]]:
        """One satisfying partial assignment of ``f`` or None if unsat."""
        if f == self.FALSE:
            return None
        assignment: Dict[int, int] = {}
        node = f
        while node > 1:
            var = self._var[node]
            if self._low[node] != self.FALSE:
                assignment[var] = 0
                node = self._low[node]
            else:
                assignment[var] = 1
                node = self._high[node]
        return assignment

    def iter_minterms(self, f: int,
                      variables: Sequence[int]) -> Iterator[Tuple[int, ...]]:
        """Yield all minterms of ``f`` over the given variable tuple."""
        nvars = len(variables)
        for bits in range(1 << nvars):
            assignment = {
                variables[i]: (bits >> (nvars - 1 - i)) & 1
                for i in range(nvars)
            }
            if self.eval(f, {**{v: 0 for v in range(self.num_vars)},
                             **assignment}):
                yield tuple(assignment[v] for v in variables)

    # ------------------------------------------------------------------
    # Truth tables and cubes
    # ------------------------------------------------------------------

    def from_truth_table(self, bits: Sequence[int],
                         variables: Sequence[int]) -> int:
        """Build a BDD from a truth table.

        ``bits[k]`` is the value for the assignment where ``variables[0]``
        is the most significant bit of ``k``.
        """
        nvars = len(variables)
        if len(bits) != (1 << nvars):
            raise ValueError("truth table length must be 2**len(variables)")

        levels = sorted(variables, key=self._level_of_var.__getitem__)

        def build(index_bits: Dict[int, int], depth: int) -> int:
            if depth == nvars:
                k = 0
                for i, v in enumerate(variables):
                    k = (k << 1) | index_bits[v]
                return self.TRUE if bits[k] else self.FALSE
            var = levels[depth]
            index_bits[var] = 0
            low = build(index_bits, depth + 1)
            index_bits[var] = 1
            high = build(index_bits, depth + 1)
            del index_bits[var]
            return self._make(var, low, high)

        return build({}, 0)

    def to_truth_table(self, f: int,
                       variables: Sequence[int]) -> List[int]:
        """Truth table of ``f`` over ``variables`` (MSB-first indexing)."""
        nvars = len(variables)
        table = []
        for k in range(1 << nvars):
            assignment = {v: 0 for v in self.support(f)}
            for i, v in enumerate(variables):
                assignment[v] = (k >> (nvars - 1 - i)) & 1
            table.append(1 if self.eval(f, assignment) else 0)
        return table

    def cube(self, literals: Dict[int, int]) -> int:
        """BDD of the cube given by ``{var: polarity}``."""
        result = self.TRUE
        for var in sorted(literals, key=self._level_of_var.__getitem__,
                          reverse=True):
            lit = self.var(var) if literals[var] else self.nvar(var)
            result = self.apply_and(result, lit)
        return result

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop the computed table (unique table is kept)."""
        self._cache.clear()

    @property
    def cache_limit(self) -> Optional[int]:
        """Computed-table entry cap (None = unbounded)."""
        return self._cache_limit

    @cache_limit.setter
    def cache_limit(self, limit: Optional[int]) -> None:
        self._cache_limit = limit
        if limit is not None and len(self._cache) > limit:
            self._cache.clear()
            self._cache_evictions += 1

    def metrics(self) -> BddMetrics:
        """Snapshot of the manager's hot-path counters."""
        return BddMetrics(
            num_vars=self.num_vars,
            nodes=len(self._var),
            peak_nodes=self._peak_nodes,
            unique_table_size=len(self._unique),
            computed_table_size=len(self._cache),
            computed_table_capacity=self._cache_limit,
            computed_hits=self._cache_hits,
            computed_misses=self._cache_misses,
            computed_evictions=self._cache_evictions,
            ite_calls=self._ite_calls,
            restrict_calls=self._restrict_calls,
        )

    def reset_counters(self) -> None:
        """Zero the hot-path counters (table contents are untouched).

        Lets one run's metrics be isolated when several runs share a
        manager (e.g. the CLI's ``compare`` command).
        """
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._ite_calls = 0
        self._restrict_calls = 0
        self._peak_nodes = len(self._var)

    def __len__(self) -> int:
        return len(self._var)

    def __repr__(self) -> str:
        return (f"<BDD vars={self.num_vars} nodes={len(self._var)} "
                f"cache={len(self._cache)}>")
