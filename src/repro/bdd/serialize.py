"""BDD and MultiFunction serialisation.

Functions are dumped as a compact JSON-able node list (children-first,
so loading is a single forward pass) together with the variable names.
Useful for caching expensive builds and for shipping test fixtures.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF, MultiFunction


def dump_functions(bdd: BDD, roots: Sequence[int]) -> dict:
    """Serialise the graphs of ``roots`` into a JSON-able dict."""
    order: List[int] = []
    seen = set()
    expanded = set()
    for root in roots:
        stack = [(root, False)]
        while stack:
            node, done = stack.pop()
            if node <= 1 or node in seen:
                continue
            if done:
                seen.add(node)
                order.append(node)
            elif node not in expanded:
                expanded.add(node)
                stack.append((node, True))
                stack.append((bdd.low(node), False))
                stack.append((bdd.high(node), False))
    index: Dict[int, int] = {BDD.FALSE: 0, BDD.TRUE: 1}
    nodes: List[Tuple[int, int, int]] = []
    for node in order:
        index[node] = len(nodes) + 2
        nodes.append((bdd.var_of(node), index[bdd.low(node)],
                      index[bdd.high(node)]))
    return {
        "num_vars": bdd.num_vars,
        "var_names": [bdd.var_name(v) for v in range(bdd.num_vars)],
        "order": bdd.order(),
        "nodes": nodes,
        "roots": [index[r] if r > 1 else r for r in roots],
    }


def load_functions(data: dict, bdd: BDD = None) -> Tuple[BDD, List[int]]:
    """Rebuild functions from :func:`dump_functions` output.

    A fresh manager is created (with the dumped order) unless one is
    given — a given manager must already contain at least the dumped
    variables.
    """
    if bdd is None:
        bdd = BDD(0)
        for name in data["var_names"]:
            bdd.add_var(name)
        bdd.set_order(list(data["order"]))
    elif bdd.num_vars < data["num_vars"]:
        raise ValueError("target manager is missing variables")
    ids: List[int] = [BDD.FALSE, BDD.TRUE]
    for var, low_idx, high_idx in data["nodes"]:
        low = ids[low_idx]
        high = ids[high_idx]
        ids.append(bdd.ite(bdd.var(var), high, low))
    roots = [ids[r] for r in data["roots"]]
    return bdd, roots


def dump_multifunction(func: MultiFunction) -> str:
    """JSON text for a :class:`MultiFunction` (both interval ends)."""
    roots: List[int] = []
    for isf in func.outputs:
        roots.append(isf.lo)
        roots.append(isf.hi)
    payload = dump_functions(func.bdd, roots)
    payload["inputs"] = list(func.inputs)
    payload["input_names"] = list(func.input_names)
    payload["output_names"] = list(func.output_names)
    return json.dumps(payload)


def load_multifunction(text: str) -> MultiFunction:
    """Inverse of :func:`dump_multifunction` (fresh manager)."""
    data = json.loads(text)
    bdd, roots = load_functions(data)
    outputs = [ISF.create(bdd, roots[2 * i], roots[2 * i + 1])
               for i in range(len(roots) // 2)]
    return MultiFunction(bdd, data["inputs"], outputs,
                         input_names=data["input_names"],
                         output_names=data["output_names"])
