"""Export helpers for BDDs: Graphviz dot and simple expression strings."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bdd.manager import BDD


def to_dot(bdd: BDD, roots: Dict[str, int]) -> str:
    """Graphviz description of the graphs rooted at ``roots``.

    ``roots`` maps labels to node ids; solid edges are high (then) edges,
    dashed edges are low (else) edges.
    """
    lines = ["digraph BDD {", '  rankdir=TB;']
    seen = set()
    stack = list(roots.values())
    for label, node in roots.items():
        lines.append(f'  "r_{label}" [shape=plaintext, label="{label}"];')
        lines.append(f'  "r_{label}" -> "n{node}";')
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node <= 1:
            lines.append(f'  "n{node}" [shape=box, label="{node}"];')
            continue
        lines.append(
            f'  "n{node}" [shape=circle, '
            f'label="{bdd.var_name(bdd.var_of(node))}"];')
        lines.append(f'  "n{node}" -> "n{bdd.low(node)}" [style=dashed];')
        lines.append(f'  "n{node}" -> "n{bdd.high(node)}";')
        stack.append(bdd.low(node))
        stack.append(bdd.high(node))
    lines.append("}")
    return "\n".join(lines)


def to_expr(bdd: BDD, f: int, variables: Sequence[int] = None) -> str:
    """Sum-of-products expression from the BDD's one-paths.

    Small functions only — the number of one-paths can be exponential.
    """
    if f == BDD.FALSE:
        return "0"
    if f == BDD.TRUE:
        return "1"
    terms = []

    def walk(node: int, literals: list) -> None:
        if node == BDD.FALSE:
            return
        if node == BDD.TRUE:
            terms.append(" & ".join(literals) if literals else "1")
            return
        name = bdd.var_name(bdd.var_of(node))
        walk(bdd.low(node), literals + [f"~{name}"])
        walk(bdd.high(node), literals + [name])

    walk(f, [])
    return " | ".join(terms)
