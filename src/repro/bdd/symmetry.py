"""Symmetry detection for completely specified functions.

The paper exploits two kinds of two-variable symmetry (Edwards/Hurst):

* **Nonequivalence symmetry** (classical total symmetry, ``T1``):
  ``f`` is unchanged when ``x_i`` and ``x_j`` are exchanged, which holds
  iff the mixed cofactors agree: ``f|01 == f|10``.
* **Equivalence symmetry** (``T2``): ``f`` is unchanged under the sequence
  *negate x_i, exchange, negate x_i* — equivalently ``f|00 == f|11``.

Nonequivalence symmetry is an equivalence relation on the variables of a
completely specified function, so the variables fall into *symmetry
groups*; strict decomposition functions inherit these groups (Section 4 of
the paper), and a bound set aligned with the groups keeps ``ncc`` small
(a fully symmetric bound set of size ``p`` has ``ncc <= p + 1``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.bdd.manager import BDD
from repro.bdd.ops import cofactor2


def _trivial_by_support(bdd: BDD, f: int, var_i: int, var_j: int):
    """Decide symmetry by support membership alone, or ``None``.

    Both kinds compare a pair of double cofactors that differ only in
    the assignments to ``var_i``/``var_j``; when neither variable is in
    ``f``'s support all four cofactors equal ``f`` (symmetric), and when
    exactly one is, the compared cofactors are that variable's two
    opposite single cofactors (not symmetric, since it is genuinely in
    the support).  ``support`` is cached per root, so wide multi-output
    scans skip most cofactor work: each output touches few of the
    candidate variables.
    """
    supp = bdd.support(f)
    in_i, in_j = var_i in supp, var_j in supp
    if in_i and in_j:
        return None
    return in_i == in_j


def symmetric_in(bdd: BDD, f: int, var_i: int, var_j: int) -> bool:
    """Nonequivalence (classical) symmetry: ``f|01 == f|10``.

    Memoised in the manager's computed table: candidate bound-set
    ranking asks the same ``(f, var_i, var_j)`` question many times
    across overlapping windows, so repeated checks are one dict lookup
    (counted under the existing ``computed_hits``/``computed_misses``).
    """
    if var_i == var_j:
        return True
    if var_j < var_i:
        var_i, var_j = var_j, var_i
    key = ("sym1", f, var_i, var_j)
    cached = bdd._cache.get(key)
    if cached is not None:
        bdd._cache_hits += 1
        return bool(cached)
    bdd._cache_misses += 1
    res = _trivial_by_support(bdd, f, var_i, var_j)
    if res is None:
        res = (cofactor2(bdd, f, var_i, var_j, 0, 1)
               == cofactor2(bdd, f, var_i, var_j, 1, 0))
    bdd._cache_put(key, int(res))
    return res


def equivalence_symmetric_in(bdd: BDD, f: int, var_i: int, var_j: int) -> bool:
    """Equivalence symmetry: ``f|00 == f|11`` (memoised like
    :func:`symmetric_in`)."""
    if var_i == var_j:
        return True
    if var_j < var_i:
        var_i, var_j = var_j, var_i
    key = ("sym2", f, var_i, var_j)
    cached = bdd._cache.get(key)
    if cached is not None:
        bdd._cache_hits += 1
        return bool(cached)
    bdd._cache_misses += 1
    res = _trivial_by_support(bdd, f, var_i, var_j)
    if res is None:
        res = (cofactor2(bdd, f, var_i, var_j, 0, 0)
               == cofactor2(bdd, f, var_i, var_j, 1, 1))
    bdd._cache_put(key, int(res))
    return res


def symmetric_pairs(bdd: BDD, f: int,
                    variables: Sequence[int]) -> List[tuple]:
    """All nonequivalence-symmetric variable pairs of ``f``."""
    pairs = []
    for a in range(len(variables)):
        for b in range(a + 1, len(variables)):
            if symmetric_in(bdd, f, variables[a], variables[b]):
                pairs.append((variables[a], variables[b]))
    return pairs


def symmetry_groups(bdd: BDD, functions: Iterable[int],
                    variables: Sequence[int]) -> List[List[int]]:
    """Partition ``variables`` into maximal symmetry groups.

    A group contains variables that are pairwise nonequivalence-symmetric
    in *every* function of ``functions`` (for a multi-output function the
    useful symmetries are the common ones).  For completely specified
    functions symmetry is transitive, so a greedy grouping is exact.
    """
    functions = list(functions)
    groups: List[List[int]] = []
    for var in variables:
        placed = False
        for group in groups:
            rep = group[0]
            if all(symmetric_in(bdd, f, rep, var) for f in functions):
                group.append(var)
                placed = True
                break
        if not placed:
            groups.append([var])
    return groups


def is_totally_symmetric(bdd: BDD, f: int, variables: Sequence[int]) -> bool:
    """Is ``f`` symmetric in every pair of the given variables?"""
    groups = symmetry_groups(bdd, [f], variables)
    return len(groups) == 1
