"""Reduced Ordered Binary Decision Diagram (ROBDD) package.

This is a from-scratch BDD implementation supporting everything the
decomposition flow of Scholl (DATE 1998) needs:

* a :class:`~repro.bdd.manager.BDD` manager with unique and computed
  tables, ITE-based Boolean operations, cofactors, composition and
  quantification (:mod:`repro.bdd.manager`, :mod:`repro.bdd.ops`);
* static variable-ordering heuristics including sifting and *symmetric
  sifting* (:mod:`repro.bdd.reorder`);
* symmetry detection for completely specified functions
  (:mod:`repro.bdd.symmetry`);
* export helpers (:mod:`repro.bdd.io`).

Nodes are plain integers owned by their manager; ``BDD.FALSE == 0`` and
``BDD.TRUE == 1`` are the terminals.
"""

from repro.bdd.manager import BDD
from repro.bdd.symmetry import (
    symmetric_in,
    equivalence_symmetric_in,
    symmetry_groups,
)
from repro.bdd.reorder import sift, symmetric_sift, window_permute

__all__ = [
    "BDD",
    "symmetric_in",
    "equivalence_symmetric_in",
    "symmetry_groups",
    "sift",
    "symmetric_sift",
    "window_permute",
]
