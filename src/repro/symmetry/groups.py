"""Don't-care assignment for symmetry maximisation (paper step 1).

The difficulty the paper points out: assigning don't cares to create
symmetry in ``(x_i, x_j)`` can destroy *potential* symmetry in another
pair ``(x_j, x_k)``.  Following the ED&TC'97 heuristic we therefore grow
*symmetry groups* greedily with verification and rollback:

1. compute all potentially symmetric pairs;
2. repeatedly try to extend a group by one variable (or merge two
   groups), preferring the extension that keeps the most other pairs
   potentially symmetric;
3. after each tentative assignment, verify that the whole group is still
   strongly symmetric — if not, roll back and blacklist the merge.

Both nonequivalence (T1) and equivalence (T2) symmetry are treated; a
group carries the kind it was built with (T1 groups are the ones the
bound-set search exploits directly).

The algorithms are generic over an *ops adapter* — either the BDD-domain
:class:`repro.symmetry.isf_symmetry.BddIsfOps` or the word-parallel
:class:`repro.kernel.symmetry.BitsIsfOps` — selected per call by
:func:`symmetry_domain`; both domains execute the identical decision
sequence, so the narrowed ISFs and groups are bit-identical (the
differential suite in ``tests/kernel/`` enforces this).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, List, Optional, Sequence, Tuple

from repro.bdd.manager import BDD
from repro.boolfunc.spec import ISF
from repro.kernel import STATS as KERNEL_STATS
from repro.kernel import kernel_symmetry_min_vars
from repro.symmetry.isf_symmetry import (
    BddIsfOps,
    SymmetryKind,
    potentially_symmetric,
)

try:
    from repro.kernel.symmetry import bits_domain
except ImportError:  # pragma: no cover - numpy unavailable
    bits_domain = None


def symmetry_domain(bdd: BDD, isfs: Sequence[ISF],
                    variables: Sequence[int], op: str
                    ) -> Tuple[Any, List[Any]]:
    """Pick the execution domain for a step-1 style computation.

    Returns ``(ops, handles)``: the kernel adapter with lifted handles
    when the live support of ``isfs`` plus ``variables`` fits the
    kernel's cap *and* clears the measured crossover
    (:func:`repro.kernel.kernel_symmetry_min_vars` — below it the BDD
    path usually wins because the lift/lower conversion dominates,
    unless the operands are dense enough that per-node BDD cost rivals
    the packed table; see
    :func:`repro.kernel.kernel_symmetry_density_factor`), otherwise
    the BDD adapter with the ISFs unchanged.  Misses are counted under
    ``op``; declining below the crossover is not a miss.
    """
    if bits_domain is not None:
        domain = bits_domain(bdd, isfs, variables, op,
                             min_vars=kernel_symmetry_min_vars())
        if domain is not None:
            return domain
    return BddIsfOps(bdd), list(isfs)


def isf_symmetry_groups(bdd: BDD, isf: ISF,
                        variables: Sequence[int],
                        kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                        ) -> List[List[int]]:
    """Partition ``variables`` into groups that are *strongly* pairwise
    symmetric in the ISF (no assignment performed)."""
    ops, handles = symmetry_domain(bdd, [isf], variables,
                                   "symmetry_groups")
    start = perf_counter()
    groups = _symmetry_groups(ops, handles[0], variables, kind)
    if ops.domain == "kernel":
        KERNEL_STATS.record_hit("symmetry_groups", perf_counter() - start)
    return groups


def _symmetry_groups(ops: Any, f: Any, variables: Sequence[int],
                     kind: SymmetryKind) -> List[List[int]]:
    groups: List[List[int]] = []
    for var in variables:
        placed = False
        for group in groups:
            if all(ops.strongly_symmetric(f, g, var, kind)
                   for g in group):
                group.append(var)
                placed = True
                break
        if not placed:
            groups.append([var])
    return groups


def potential_pairs(bdd: BDD, isf: ISF, variables: Sequence[int],
                    kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                    ) -> int:
    """Number of potentially symmetric pairs — a cheap indicator of how
    much the step-1 assignment could achieve on this function."""
    count = 0
    for a in range(len(variables)):
        for b in range(a + 1, len(variables)):
            if potentially_symmetric(bdd, isf, variables[a], variables[b],
                                     kind):
                count += 1
    return count


def _try_merge_ops(ops: Any, f: Any, group: List[int], var: int,
                   kind: SymmetryKind) -> Optional[Any]:
    """Assign don't cares so ``var`` joins ``group``; None on failure.

    The assignment is applied pairwise against every group member and
    then verified: all pairs of the extended group must end up strongly
    symmetric (a pairwise assignment can destroy an earlier one — the
    conflict the paper describes — in which case we report failure so the
    caller rolls back).
    """
    candidate = f
    for member in group:
        if not ops.potentially_symmetric(candidate, member, var, kind):
            return None
        candidate = ops.make_symmetric(candidate, member, var, kind)
    extended = group + [var]
    for i in range(len(extended)):
        for j in range(i + 1, len(extended)):
            if not ops.strongly_symmetric(candidate, extended[i],
                                          extended[j], kind):
                return None
    return candidate


def _try_merge(bdd: BDD, isf: ISF, group: List[int], var: int,
               kind: SymmetryKind) -> Optional[ISF]:
    """BDD-domain :func:`_try_merge_ops` (kept for tests/direct callers)."""
    return _try_merge_ops(BddIsfOps(bdd), isf, group, var, kind)


def _assign_for_symmetry(ops: Any, f: Any, variables: Sequence[int],
                         kinds: Sequence[SymmetryKind],
                         max_pair_checks: int,
                         protected_groups: Sequence[Sequence[int]]
                         ) -> Tuple[Any, List[List[int]]]:
    """Domain-generic body of :func:`assign_for_symmetry`."""
    variables = [v for v in variables if v in ops.support(f)]
    if len(variables) < 2:
        return f, [[v] for v in variables]

    def protected_ok(candidate: Any) -> bool:
        for group in protected_groups:
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    if not ops.strongly_symmetric(
                            candidate, group[i], group[j],
                            SymmetryKind.NONEQUIVALENCE):
                        return False
        return True

    checks = 0
    for kind in kinds:
        # Greedy group growth for this symmetry kind.
        groups: List[List[int]] = [[v] for v in variables]
        changed = True
        while changed and checks < max_pair_checks:
            changed = False
            # Try to merge the two "closest" groups: pick the pair of
            # groups whose representative pair is potentially symmetric
            # and whose merge survives verification.
            for a in range(len(groups)):
                merged_into = None
                for b in range(a + 1, len(groups)):
                    checks += 1
                    if checks >= max_pair_checks:
                        break
                    if not ops.potentially_symmetric(
                            f, groups[a][0], groups[b][0], kind):
                        continue
                    candidate = f
                    ok = True
                    new_group = list(groups[a])
                    for var in groups[b]:
                        result = _try_merge_ops(ops, candidate, new_group,
                                                var, kind)
                        if result is None:
                            ok = False
                            break
                        candidate = result
                        new_group.append(var)
                    if ok and not protected_ok(candidate):
                        ok = False
                    if ok:
                        f = candidate
                        groups[a] = new_group
                        merged_into = b
                        changed = True
                        break
                if merged_into is not None:
                    del groups[merged_into]
                    break

    final_groups = _symmetry_groups(ops, f, variables,
                                    SymmetryKind.NONEQUIVALENCE)
    return f, final_groups


def assign_for_symmetry(bdd: BDD, isf: ISF, variables: Sequence[int],
                        kinds: Sequence[SymmetryKind] = (
                            SymmetryKind.NONEQUIVALENCE,
                            SymmetryKind.EQUIVALENCE),
                        max_pair_checks: int = 4000,
                        protected_groups: Sequence[Sequence[int]] = (),
                        ) -> Tuple[ISF, List[List[int]]]:
    """Assign don't cares to maximise symmetries (paper step 1).

    Returns the narrowed ISF and the resulting nonequivalence symmetry
    groups.  ``kinds`` selects which symmetry types are created, in
    priority order; ``max_pair_checks`` bounds the total pair evaluations
    so very wide functions stay cheap (the remaining pairs are then simply
    left unassigned — the procedure is a heuristic anyway).
    ``protected_groups`` lists variable groups whose strong symmetry must
    survive every accepted assignment (used to keep the common groups of a
    multi-output step intact — the compatibility requirement of the paper).
    """
    ops, handles = symmetry_domain(bdd, [isf], variables,
                                   "symmetry_assign")
    start = perf_counter()
    f, groups = _assign_for_symmetry(ops, handles[0], variables, kinds,
                                     max_pair_checks, protected_groups)
    result = ops.lower(f)
    if ops.domain == "kernel":
        KERNEL_STATS.record_hit("symmetry_assign", perf_counter() - start)
    return result, groups


def _assign_for_symmetry_multi(ops: Any, handles: List[Any],
                               variables: Sequence[int],
                               kinds: Sequence[SymmetryKind],
                               max_pair_checks: int
                               ) -> Tuple[List[Any], List[List[int]]]:
    """Domain-generic body of :func:`assign_for_symmetry_multi`."""
    outputs = list(handles)
    support = set()
    for f in outputs:
        support |= ops.support(f)
    variables = [v for v in variables if v in support]
    if len(variables) < 2:
        return outputs, [[v] for v in variables]
    # Each pair check below costs O(len(outputs)) cofactor comparisons;
    # normalise the budget so wide bundles stay cheap.
    max_pair_checks = max(60, max_pair_checks // max(1, len(outputs)))

    # Phase 1: common pairs across all outputs.  Each pair check costs
    # O(outputs) cofactor comparisons, so wide bundles are budgeted.
    kind = SymmetryKind.NONEQUIVALENCE
    common_groups: List[List[int]] = [[v] for v in variables]
    checks = 0
    changed = True
    while changed and checks < max_pair_checks:
        changed = False
        for a in range(len(common_groups)):
            merged_into = None
            for b in range(a + 1, len(common_groups)):
                checks += 1
                if checks >= max_pair_checks:
                    break
                va, vb = common_groups[a][0], common_groups[b][0]
                if not all(ops.potentially_symmetric(o, va, vb, kind)
                           for o in outputs):
                    continue
                candidates = []
                ok = True
                for f in outputs:
                    candidate = f
                    new_group = list(common_groups[a])
                    for var in common_groups[b]:
                        result = _try_merge_ops(ops, candidate, new_group,
                                                var, kind)
                        if result is None:
                            ok = False
                            break
                        candidate = result
                        new_group.append(var)
                    if not ok:
                        break
                    candidates.append(candidate)
                if ok:
                    outputs = candidates
                    common_groups[a] = common_groups[a] + common_groups[b]
                    merged_into = b
                    changed = True
                    break
            if merged_into is not None:
                del common_groups[merged_into]
                break

    # Phase 2: per-output residual symmetrisation.  The common groups of
    # phase 1 are protected: an assignment that would break their strong
    # symmetry is rejected (the "compatible steps" requirement).  Skipped
    # when the remaining budget is exhausted (wide bundles).
    protected = [g for g in common_groups if len(g) > 1]
    budget = max(0, max_pair_checks - checks) // max(1, len(outputs))
    refined = []
    for f in outputs:
        if budget > 10:
            f, _ = _assign_for_symmetry(ops, f, variables, kinds,
                                        max_pair_checks=budget,
                                        protected_groups=protected)
        refined.append(f)
    return refined, common_groups


def assign_for_symmetry_multi(bdd: BDD, outputs: Sequence[ISF],
                              variables: Sequence[int],
                              kinds: Sequence[SymmetryKind] = (
                                  SymmetryKind.NONEQUIVALENCE,
                                  SymmetryKind.EQUIVALENCE),
                              max_pair_checks: int = 3000,
                              ) -> Tuple[List[ISF], List[List[int]]]:
    """Step 1 for a multi-output function.

    Each output's don't cares are assigned independently (they have
    independent DC sets), but pairs that are potentially symmetric in
    *every* output are processed first so that the outputs develop
    *common* symmetry groups — these are the groups the shared bound-set
    selection can exploit.
    """
    ops, handles = symmetry_domain(bdd, list(outputs), variables,
                                   "symmetry_assign")
    start = perf_counter()
    refined, groups = _assign_for_symmetry_multi(ops, handles, variables,
                                                 kinds, max_pair_checks)
    result = [ops.lower(f) for f in refined]
    if ops.domain == "kernel":
        KERNEL_STATS.record_hit("symmetry_assign", perf_counter() - start)
    return result, groups


__all__ = [
    "assign_for_symmetry",
    "assign_for_symmetry_multi",
    "isf_symmetry_groups",
    "potential_pairs",
    "symmetry_domain",
]
