"""Symmetries of incompletely specified functions and don't-care
assignment for symmetry maximisation (step 1 of the paper's concept;
Scholl/Melchior/Hotz/Molitor, ED&TC 1997).
"""

from repro.symmetry.isf_symmetry import (
    SymmetryKind,
    strongly_symmetric,
    potentially_symmetric,
    make_symmetric,
)
from repro.symmetry.groups import (
    assign_for_symmetry,
    assign_for_symmetry_multi,
    isf_symmetry_groups,
)

__all__ = [
    "SymmetryKind",
    "strongly_symmetric",
    "potentially_symmetric",
    "make_symmetric",
    "assign_for_symmetry",
    "assign_for_symmetry_multi",
    "isf_symmetry_groups",
]
