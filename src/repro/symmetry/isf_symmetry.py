"""Two-variable symmetries of incompletely specified functions.

For a completely specified function, nonequivalence (classical) symmetry
in ``(x_i, x_j)`` means ``f|01 == f|10``; equivalence symmetry means
``f|00 == f|11`` (Edwards/Hurst).  For an ISF ``[lo, hi]`` the paper's
step-1 don't-care assignment needs two notions:

* **strong symmetry** — both interval ends satisfy the cofactor equation;
  every subsequent *narrowing* of the interval that treats the two merged
  cofactors identically keeps the symmetry;
* **potential symmetry** — some extension of the ISF is symmetric, which
  holds iff the two relevant cofactor intervals intersect
  (``lo_a <= hi_b`` and ``lo_b <= hi_a``).

:func:`make_symmetric` performs the assignment: both cofactors are
replaced by their interval intersection, which is exactly the least
committing assignment making the pair strongly symmetric.
"""

from __future__ import annotations

import enum
from typing import Set, Tuple

from repro.bdd.manager import BDD
from repro.bdd.symmetry import equivalence_symmetric_in, symmetric_in
from repro.boolfunc.spec import ISF


class SymmetryKind(enum.Enum):
    """Which pair of cofactors is merged."""

    #: Classical symmetry: exchange x_i and x_j (merge the 01/10 cofactors).
    NONEQUIVALENCE = "T1"
    #: Equivalence symmetry: exchange with double negation (merge 00/11).
    EQUIVALENCE = "T2"


def _merged_cofactors(kind: SymmetryKind) -> Tuple[Tuple[int, int],
                                                   Tuple[int, int]]:
    if kind is SymmetryKind.NONEQUIVALENCE:
        return (0, 1), (1, 0)
    return (0, 0), (1, 1)


def _cof(bdd: BDD, f: int, var_i: int, var_j: int, vi: int, vj: int) -> int:
    return bdd.restrict(bdd.restrict(f, var_i, vi), var_j, vj)


def strongly_symmetric(bdd: BDD, isf: ISF, var_i: int, var_j: int,
                       kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                       ) -> bool:
    """Are both interval ends symmetric in the pair?"""
    if var_i == var_j:
        return True
    if isf.lo == isf.hi:
        # Complete function: one memoised check instead of four
        # restrict-chains (see repro.bdd.symmetry).
        if kind is SymmetryKind.NONEQUIVALENCE:
            return symmetric_in(bdd, isf.lo, var_i, var_j)
        return equivalence_symmetric_in(bdd, isf.lo, var_i, var_j)
    (ai, aj), (bi, bj) = _merged_cofactors(kind)
    return (_cof(bdd, isf.lo, var_i, var_j, ai, aj)
            == _cof(bdd, isf.lo, var_i, var_j, bi, bj)
            and _cof(bdd, isf.hi, var_i, var_j, ai, aj)
            == _cof(bdd, isf.hi, var_i, var_j, bi, bj))


def potentially_symmetric(bdd: BDD, isf: ISF, var_i: int, var_j: int,
                          kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                          ) -> bool:
    """Does some extension of the ISF have the symmetry?

    Holds iff the two merged cofactor intervals intersect.
    """
    if var_i == var_j:
        return True
    (ai, aj), (bi, bj) = _merged_cofactors(kind)
    lo_a = _cof(bdd, isf.lo, var_i, var_j, ai, aj)
    hi_a = _cof(bdd, isf.hi, var_i, var_j, ai, aj)
    lo_b = _cof(bdd, isf.lo, var_i, var_j, bi, bj)
    hi_b = _cof(bdd, isf.hi, var_i, var_j, bi, bj)
    return bdd.leq(lo_a, hi_b) and bdd.leq(lo_b, hi_a)


def make_symmetric(bdd: BDD, isf: ISF, var_i: int, var_j: int,
                   kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE) -> ISF:
    """Assign don't cares so the pair becomes strongly symmetric.

    The two merged cofactors are replaced by their interval intersection;
    the other two cofactors are untouched.  Raises ``ValueError`` if the
    pair is not potentially symmetric.
    """
    if var_i == var_j:
        return isf
    if not potentially_symmetric(bdd, isf, var_i, var_j, kind):
        raise ValueError("pair is not potentially symmetric")
    (ai, aj), (bi, bj) = _merged_cofactors(kind)
    lo_m = bdd.apply_or(_cof(bdd, isf.lo, var_i, var_j, ai, aj),
                        _cof(bdd, isf.lo, var_i, var_j, bi, bj))
    hi_m = bdd.apply_and(_cof(bdd, isf.hi, var_i, var_j, ai, aj),
                         _cof(bdd, isf.hi, var_i, var_j, bi, bj))

    def rebuild(end_old: int, merged: int) -> int:
        # Reassemble the four cofactors of the end, with the two merged
        # ones replaced by `merged`.
        pieces = BDD.FALSE
        for vi in (0, 1):
            for vj in (0, 1):
                if (vi, vj) in ((ai, aj), (bi, bj)):
                    piece = merged
                else:
                    piece = _cof(bdd, end_old, var_i, var_j, vi, vj)
                cube = bdd.cube({var_i: vi, var_j: vj})
                pieces = bdd.apply_or(pieces, bdd.apply_and(cube, piece))
        return pieces

    return ISF.create(bdd, rebuild(isf.lo, lo_m), rebuild(isf.hi, hi_m))


class BddIsfOps:
    """BDD-domain adapter for the generic step-1 machinery.

    :mod:`repro.symmetry.groups` runs its algorithms against this
    interface; :class:`repro.kernel.symmetry.BitsIsfOps` is the
    word-parallel twin.  Handles here are plain :class:`ISF` objects, so
    lift/lower are the identity.
    """

    domain = "bdd"

    def __init__(self, bdd: BDD) -> None:
        self.bdd = bdd

    def lift(self, isf: ISF) -> ISF:
        return isf

    def lower(self, isf: ISF) -> ISF:
        return isf

    def support(self, isf: ISF) -> Set[int]:
        return isf.support(self.bdd)

    def strongly_symmetric(self, isf: ISF, var_i: int, var_j: int,
                           kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                           ) -> bool:
        return strongly_symmetric(self.bdd, isf, var_i, var_j, kind)

    def potentially_symmetric(self, isf: ISF, var_i: int, var_j: int,
                              kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                              ) -> bool:
        return potentially_symmetric(self.bdd, isf, var_i, var_j, kind)

    def make_symmetric(self, isf: ISF, var_i: int, var_j: int,
                       kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                       ) -> ISF:
        return make_symmetric(self.bdd, isf, var_i, var_j, kind)
