"""The public facade of the reproduction library."""

from repro.core.api import (
    FpgaMappingResult,
    decompose_to_luts,
    map_to_xc3000,
    synthesize_two_input_gates,
)

__all__ = [
    "FpgaMappingResult",
    "decompose_to_luts",
    "map_to_xc3000",
    "synthesize_two_input_gates",
]
