"""High-level API: one-call flows matching the paper's experiments.

Typical usage::

    from repro import core, boolfunc
    func = boolfunc.parse_pla(open("adder.pla").read())
    result = core.map_to_xc3000(func)            # the paper's mulop-dc
    print(result.clb_count, result.lut_count)

    baseline = core.map_to_xc3000(func, use_dontcares=False)   # mulopII
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.boolfunc.spec import MultiFunction
from repro.decomp.recursive import DecompositionEngine, DecompositionStats
from repro.mapping.clb import (
    EXACT_MATCHING_LIMIT,
    merge_luts_indexed,
    merge_luts_xc3000,
)
from repro.mapping.gatelevel import GateNetwork, gate_synthesize
from repro.mapping.lutnet import LutNetwork


@dataclass
class FpgaMappingResult:
    """Outcome of an FPGA mapping run."""

    network: LutNetwork
    lut_count: int
    clb_count: int
    depth: int
    clbs: List[Tuple[str, ...]]
    stats: DecompositionStats

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.lut_count} LUTs, {self.clb_count} CLBs, "
                f"depth {self.depth} "
                f"({self.stats.decomposition_steps} decomposition steps, "
                f"{self.stats.shannon_steps} Shannon steps, "
                f"{self.stats.alphas_shared} alphas saved by sharing)")

    def to_record(self) -> dict:
        """JSON-able record of the run: counts, the mapped network as
        BLIF text, and the engine counters.  This is what the runtime
        layer ships between processes and persists in the result cache
        (the live network/BDD objects do not cross process boundaries).
        """
        return {
            "lut_count": self.lut_count,
            "clb_count": self.clb_count,
            "depth": self.depth,
            "blif": self.network.to_blif(),
            "engine": {
                "decomposition_steps": self.stats.decomposition_steps,
                "shannon_steps": self.stats.shannon_steps,
                "alphas_created": self.stats.alphas_created,
                "alphas_shared": self.stats.alphas_shared,
                "max_recursion_depth": self.stats.max_recursion_depth,
                "budget_exhausted": self.stats.budget_exhausted,
                "quarantined_outputs": list(
                    self.stats.quarantined_outputs),
            },
        }


def decompose_to_luts(func: MultiFunction, n_lut: int = 5,
                      use_dontcares: bool = True,
                      **engine_kwargs) -> LutNetwork:
    """Recursive multi-output decomposition into ``n_lut``-input LUTs.

    ``use_dontcares=True`` runs the paper's ``mulop-dc`` (three-step
    don't-care assignment); ``False`` runs the ``mulopII`` baseline.
    """
    engine = DecompositionEngine(n_lut=n_lut,
                                 use_dontcares=use_dontcares,
                                 **engine_kwargs)
    return engine.run(func)


def map_to_xc3000(func: MultiFunction, use_dontcares: bool = True,
                  **engine_kwargs) -> FpgaMappingResult:
    """The paper's full XC3000 flow: decompose to 5-input LUTs, then
    merge LUT pairs into CLBs by maximum-cardinality matching."""
    engine = DecompositionEngine(n_lut=5, use_dontcares=use_dontcares,
                                 **engine_kwargs)
    net = engine.run(func)
    if net.lut_count > EXACT_MATCHING_LIMIT:
        clbs = merge_luts_indexed(net)  # the exact matching is cubic
    else:
        clbs = merge_luts_xc3000(net)
    return FpgaMappingResult(
        network=net,
        lut_count=net.lut_count,
        clb_count=len(clbs),
        depth=net.depth(),
        clbs=clbs,
        stats=engine.stats,
    )


def synthesize_two_input_gates(func: MultiFunction,
                               use_dontcares: bool = True,
                               **engine_kwargs) -> GateNetwork:
    """The paper's gate-level flow (Figures 2/3): balanced decomposition
    to 3-input blocks, then minimal two-input-gate trees per block."""
    return gate_synthesize(func, use_dontcares=use_dontcares,
                           **engine_kwargs)
