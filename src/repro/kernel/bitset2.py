"""Tier-2 packed truth tables: multi-word ``numpy.uint64`` bitsets.

Tier 1 (:mod:`repro.kernel.bitset`) holds a truth-table mask as one
Python bignum — unbeatable up to ~2**16 bits, where CPython's C-level
bignum AND/OR outruns numpy's per-call overhead.  Past that the bignum
shift/invert costs grow superlinearly (every operation copies the whole
integer), so tier 2 holds the same mask as a ``uint64`` word array and
:class:`Words` gives it *bignum-compatible operator semantics*: ``&``,
``|``, ``^``, ``~`` (tail-masked), ``<<``/``>>`` by arbitrary bit
counts, truthiness, equality and hashing.  The clique cover and the
symmetry predicates are written against exactly that operator set, so
one code path serves both tiers and the results are identical by
construction.

Bit layout matches :func:`repro.kernel.bitset.pack_bools`: minterm ``k``
is bit ``k % 64`` of word ``k // 64`` (little-endian within the word),
so a :class:`Words` and the tier-1 mask of the same table agree bit for
bit.  Bits at or above ``nbits`` are kept zero by every operation
(canonical padding — equal tables hash equal).
"""

from __future__ import annotations

import numpy as np

from repro.kernel.bitset import pack_bools, popcount_words, unpack_words

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: ``width ->`` word-constant selecting ``width`` ones every ``2*width``
#: bits (the field masks of the sub-word gather in :func:`split_words`).
_FIELD_MASKS = {
    w: np.uint64(((1 << w) - 1)
                 * (((1 << 64) - 1) // ((1 << (2 * w)) - 1)))
    for w in (1, 2, 4, 8, 16, 32)
}


class Words:
    """A truth-table mask as ``uint64`` words with bignum-like operators.

    Instances are value objects: operations return new arrays, the
    wrapped array is never mutated (several may share memory with a
    packed row matrix).
    """

    __slots__ = ("nbits", "words", "_hash")

    def __init__(self, nbits: int, words: np.ndarray) -> None:
        self.nbits = nbits
        self.words = words
        self._hash = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_bools(cls, arr) -> "Words":
        arr = np.asarray(arr, dtype=bool).reshape(-1)
        return cls(arr.size, pack_bools(arr))

    @classmethod
    def from_int(cls, mask: int, nbits: int) -> "Words":
        """A tier-1 bignum mask as tier-2 words (used for selectors)."""
        nwords = max(1, (nbits + 63) >> 6)
        raw = mask.to_bytes(nwords * 8, "little")
        # "<u8" pins little-endian regardless of platform; astype lands
        # on the native dtype the operators expect.
        return cls(nbits, np.frombuffer(raw, dtype="<u8").astype(np.uint64))

    def to_bools(self) -> np.ndarray:
        return unpack_words(self.words, self.nbits)

    def to_int(self) -> int:
        return int.from_bytes(
            self.words.astype("<u8").tobytes(), "little")

    # -- helpers ---------------------------------------------------------

    def _tail_masked(self, words: np.ndarray) -> np.ndarray:
        tail = self.nbits & 63
        if tail:
            words[-1] &= np.uint64((1 << tail) - 1)
        return words

    # -- operators (the contract shared with tier-1 bignums) -------------

    def __and__(self, other: "Words") -> "Words":
        return Words(self.nbits, self.words & other.words)

    def __or__(self, other: "Words") -> "Words":
        return Words(self.nbits, self.words | other.words)

    def __xor__(self, other: "Words") -> "Words":
        return Words(self.nbits, self.words ^ other.words)

    def __invert__(self) -> "Words":
        # Bignum ~x has infinite leading ones; every use site ANDs the
        # result with an in-range mask, so truncating at nbits is exact.
        return Words(self.nbits, self._tail_masked(self.words ^ _ALL_ONES))

    def __rshift__(self, n: int) -> "Words":
        if n <= 0:
            return self if n == 0 else NotImplemented
        word_shift, bit_shift = divmod(n, 64)
        w = self.words
        if word_shift >= w.size:
            return Words(self.nbits, np.zeros_like(w))
        if word_shift:
            out = np.zeros_like(w)
            out[:w.size - word_shift] = w[word_shift:]
        else:
            out = w.copy()
        if bit_shift:
            carry = out[1:] << np.uint64(64 - bit_shift)
            out >>= np.uint64(bit_shift)
            out[:-1] |= carry
        return Words(self.nbits, out)

    def __lshift__(self, n: int) -> "Words":
        # Bignum x << n grows; here bits past nbits drop.  Exact for the
        # use sites: every `x << n` is ANDed against an in-range mask or
        # ORed into one (the partner plane of a selector), and the table
        # is 2**nvars bits, so nothing meaningful crosses the top.
        if n <= 0:
            return self if n == 0 else NotImplemented
        word_shift, bit_shift = divmod(n, 64)
        w = self.words
        if word_shift >= w.size:
            return Words(self.nbits, np.zeros_like(w))
        if word_shift:
            out = np.zeros_like(w)
            out[word_shift:] = w[:w.size - word_shift]
        else:
            out = w.copy()
        if bit_shift:
            carry = out[:-1] >> np.uint64(64 - bit_shift)
            out <<= np.uint64(bit_shift)
            out[1:] |= carry
        return Words(self.nbits, self._tail_masked(out))

    def __bool__(self) -> bool:
        return bool(self.words.any())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Words):
            return NotImplemented
        return self.nbits == other.nbits and \
            bool(np.array_equal(self.words, other.words))

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash((self.nbits, self.words.tobytes()))
        return h

    # -- queries ---------------------------------------------------------

    def popcount(self) -> int:
        return popcount_words(self.words)

    def __repr__(self) -> str:
        return f"<Words nbits={self.nbits} popcount={self.popcount()}>"


def words_rows(packed: np.ndarray, nbits: int) -> list:
    """Wrap each row of a :func:`repro.kernel.bitset.pack_rows` matrix.

    The rows share the matrix's memory (no copy); :class:`Words` never
    mutates, so sharing is safe.
    """
    return [Words(nbits, packed[v]) for v in range(packed.shape[0])]


def split_words(mask: Words, stride: int) -> tuple:
    """Cofactor halves of a packed table along one variable axis.

    ``stride`` is the variable's bit stride in the table (``2**k`` for
    the ``k``-th axis from the right, MSB-first layout): entries come in
    alternating blocks of ``stride`` bits with the variable 0 then 1.
    Returns ``(mask0, mask1)``, each compacted to ``nbits // 2`` —
    exactly the tables a fresh extraction over the reduced variable
    tuple would produce.
    """
    half = mask.nbits >> 1
    if stride >= 64:
        swords = stride >> 6
        blocks = mask.words.reshape(-1, 2, swords)
        return (Words(half, np.ascontiguousarray(blocks[:, 0, :]).reshape(-1)),
                Words(half, np.ascontiguousarray(blocks[:, 1, :]).reshape(-1)))
    # Sub-word strides: gather the alternating stride-blocks with a
    # log-step field compaction (each step merges adjacent fields), then
    # splice the compacted low halves of word pairs.  A round-trip
    # through unpacked bools costs ~13x more at tier-2 table sizes.
    out = []
    w = mask.words
    for phase in (0, 1):
        t = w & _FIELD_MASKS[stride] if phase == 0 \
            else (w >> np.uint64(stride)) & _FIELD_MASKS[stride]
        width = stride
        while width < 32:
            t = (t | (t >> np.uint64(width))) & _FIELD_MASKS[2 * width]
            width <<= 1
        low = t & np.uint64(0xFFFFFFFF)
        if w.size == 1:
            out.append(Words(half, low))
        else:
            out.append(Words(half,
                             low[0::2] | (low[1::2] << np.uint64(32))))
    return out[0], out[1]


def split_int(mask: int, nbits: int, stride: int) -> tuple:
    """Tier-1 counterpart of :func:`split_words` over a bignum mask."""
    # Round-trip through numpy: gathering alternating stride-blocks of a
    # bignum has no O(n) pure-Python form, and tier-1 tables are tiny
    # (<= 2**16 bits), so pack/unpack cost is negligible.
    nbytes = max(1, (nbits + 7) >> 3)
    raw = np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint8)
    arr = np.unpackbits(raw, bitorder="little")[:nbits].reshape(-1, 2, stride)
    lo = np.packbits(arr[:, 0, :].reshape(-1), bitorder="little")
    hi = np.packbits(arr[:, 1, :].reshape(-1), bitorder="little")
    return (int.from_bytes(lo.tobytes(), "little"),
            int.from_bytes(hi.tobytes(), "little"))


__all__ = ["Words", "split_int", "split_words", "words_rows"]
