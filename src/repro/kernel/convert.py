"""Lossless, canonical conversion between BDD nodes and truth tables.

Both directions preserve canonicity, which is the keystone of the
kernel's bit-identicality guarantee:

* :func:`bdd_to_bools` — equal functions (equal node ids, by ROBDD
  canonicity) produce byte-identical tables;
* :func:`bools_to_bdd` — equal tables produce the *same* node id the
  BDD path would have computed, because nodes are built bottom-up
  through the manager's unique table.

Tables are MSB-first over the given variable tuple (the package-wide
convention, see :meth:`repro.bdd.manager.BDD.from_truth_table`).
Conversions are memoised per manager in ``BDD._kernel_cache``, which
the manager clears on :meth:`~repro.bdd.manager.BDD.set_order` (node
ids go stale there, so the cached tables would lie).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bdd.manager import BDD

#: Entry cap for the per-manager conversion cache (clear-on-threshold,
#: like the manager's computed table).
CACHE_LIMIT = 512

#: Byte budget for the same cache.  Tier-1 entries are at most 2**16
#: bools so the entry cap alone bounded memory; tier-2 tables reach
#: 2**24 bools (16 MB each), so the cache also tracks payload bytes and
#: clears on whichever threshold trips first.
CACHE_BYTES_LIMIT = 256 * 1024 * 1024

_BYTES_KEY = "__bytes__"


class TableMismatchError(ValueError):
    """A conversion was asked for a table whose variable tuple does not
    cover the function's support.

    This happens when a caller hands the kernel a *stale or shrunk*
    ordering — typically a support list computed from a DC-narrowed
    interval that no longer covers the raw node actually being
    converted.  Kernel dispatch sites catch this and degrade to the BDD
    route with a recorded miss instead of crashing the run.
    """

_FALSE1 = np.zeros(1, dtype=bool)
_TRUE1 = np.ones(1, dtype=bool)
_FALSE1.setflags(write=False)
_TRUE1.setflags(write=False)


def _conversion_cache(bdd: BDD) -> dict:
    cache = getattr(bdd, "_kernel_cache", None)
    if cache is None:
        cache = bdd._kernel_cache = {}
    return cache


def cache_put(cache: dict, key, value, nbytes: int = 0) -> None:
    """Insert with clear-on-threshold on both entry count and bytes."""
    total = cache.get(_BYTES_KEY, 0) + nbytes
    if len(cache) >= CACHE_LIMIT or total > CACHE_BYTES_LIMIT:
        cache.clear()
        total = nbytes
    cache[key] = value
    cache[_BYTES_KEY] = total


def bdd_to_bools(bdd: BDD, f: int, variables: Sequence[int]) -> np.ndarray:
    """Truth table of node ``f`` over ``variables`` as a boolean array.

    ``variables`` must cover the support of ``f``.  The returned array
    is read-only (it is shared through the per-manager cache).
    """
    variables = tuple(variables)
    nvars = len(variables)
    extra = bdd.support(f) - set(variables)
    if extra:
        raise TableMismatchError(
            f"function depends on variables outside the table: "
            f"{sorted(extra)}")
    cache = _conversion_cache(bdd)
    key = (f, variables)
    hit = cache.get(key)
    if hit is not None:
        return hit

    # Expand in level order (one concatenation per node/depth pair,
    # memoised), then transpose to the requested variable order.
    lvars = sorted(variables, key=bdd.var_level)
    memo: dict = {}

    def expand(node: int, depth: int) -> np.ndarray:
        if depth == nvars:
            return _TRUE1 if node == BDD.TRUE else _FALSE1
        mkey = (node, depth)
        res = memo.get(mkey)
        if res is None:
            if node > 1 and bdd.var_of(node) == lvars[depth]:
                res = np.concatenate((expand(bdd.low(node), depth + 1),
                                      expand(bdd.high(node), depth + 1)))
            else:
                half = expand(node, depth + 1)
                res = np.concatenate((half, half))
            memo[mkey] = res
        return res

    arr = expand(f, 0)
    if nvars and list(variables) != lvars:
        perm = [lvars.index(v) for v in variables]
        arr = arr.reshape((2,) * nvars).transpose(perm).reshape(-1)
    arr = np.ascontiguousarray(arr)
    arr.setflags(write=False)
    cache_put(cache, key, arr, arr.nbytes)
    return arr


def bools_to_bdd(bdd: BDD, table, variables: Sequence[int]) -> int:
    """Canonical BDD node of a boolean truth table over ``variables``.

    Built bottom-up one level at a time, with each level's node pairs
    deduplicated so the manager's ``_make`` runs once per *distinct*
    pair — at most the BDD's width at that level — instead of once per
    table entry.  Wide levels dedupe through :func:`numpy.unique`;
    narrow ones use a plain dict (the numpy call overhead dominates on
    small arrays).
    """
    variables = tuple(variables)
    nvars = len(variables)
    arr = np.asarray(table, dtype=bool).reshape(-1)
    if arr.size != 1 << nvars:
        raise ValueError("truth table length must be 2**len(variables)")
    if len(bdd) >= (1 << 31):  # pragma: no cover - pairing needs 31-bit ids
        return bdd.from_truth_table([int(b) for b in arr], list(variables))

    lvars = sorted(variables, key=bdd.var_level)
    if nvars and list(variables) != lvars:
        perm = [variables.index(v) for v in lvars]
        arr = arr.reshape((2,) * nvars).transpose(perm).reshape(-1)

    make = bdd._make
    nodes = arr.astype(np.int64)
    depth = nvars - 1
    while depth >= 0 and nodes.size > 2048:
        var = lvars[depth]
        keys = (nodes[0::2] << 32) | nodes[1::2]
        uniq, inverse = np.unique(keys, return_inverse=True)
        made = np.empty(uniq.size, dtype=np.int64)
        for i, key in enumerate(uniq.tolist()):
            made[i] = make(var, key >> 32, key & 0xFFFFFFFF)
        nodes = made[inverse]
        depth -= 1
    lst = nodes.tolist()
    for d in range(depth, -1, -1):
        var = lvars[d]
        memo: dict = {}
        nxt = []
        for i in range(0, len(lst), 2):
            pair = (lst[i], lst[i + 1])
            node = memo.get(pair)
            if node is None:
                node = memo[pair] = make(var, pair[0], pair[1])
            nxt.append(node)
        lst = nxt
    return int(lst[0])
