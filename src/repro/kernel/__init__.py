"""Word-parallel truth-table kernel for the decomposition hot paths.

The ``--profile`` data in ``docs/PERFORMANCE.md`` shows the engine
spending most of its time in three phases — ``dc_step1_symmetry``,
``cofactors`` and ``clique_cover`` — all of which walk the pure-Python
ROBDD store one restrict/ITE call at a time, even though at the
recursion depths where they fire the live support is small.  This
package re-expresses those phases over *packed truth tables*
(``numpy.uint64`` words, 64 minterms per word):

* :mod:`repro.kernel.bitset` — the packed representation and the
  pack/unpack primitives (:class:`~repro.kernel.bitset.Bits`, row
  packing, mask integers);
* :mod:`repro.kernel.convert` — lossless, canonical ``BDD <-> bitset``
  conversion (equal functions convert to byte-identical tables and
  back to the *same* node ids, which is what makes the kernel results
  bit-identical to the BDD path);
* :mod:`repro.kernel.compat` — bound-set vertex cofactor extraction as
  strided slicing plus the ISF compatibility / running-intersection /
  greedy-cover pipeline as bitwise AND/OR over ``(lo, hi)`` mask pairs;
* :mod:`repro.kernel.symmetry` — (non)equivalence symmetry checks and
  the ``make_symmetric`` narrowing as shifted mask algebra against
  precomputed cofactor-plane selectors.

Dispatch is transparent and *tiered*: the call sites in
:mod:`repro.decomp.compat`, :mod:`repro.decomp.bound_set` and
:mod:`repro.symmetry.groups` route through the kernel when the live
support fits :func:`kernel_max_vars` (default 24, override with
``REPRO_KERNEL_MAX_VARS``) and fall back to the BDD path otherwise.
Within the kernel, supports up to :func:`kernel_tier1_max_vars`
(default 16) use Python bignum masks (tier 1 — CPython's C bignum ops
beat numpy call overhead on small tables) and wider supports use
multi-word ``numpy.uint64`` arrays (tier 2, :mod:`repro.kernel.bitset2`)
— both tiers run the *same* cover/predicate code, so results are
bit-identical by construction.  ``REPRO_KERNEL=off`` disables the
kernel entirely (escape hatch; the differential test suite in
``tests/kernel/`` proves all paths produce identical results).

The symmetry ops additionally apply a *measured crossover*
(:func:`kernel_symmetry_min_vars`, default 16): below it the BDD path
is faster (the table<->BDD conversion at the wrapper boundary dominates
the predicate algebra), so dispatch declines without counting a miss.

Every dispatch decision is counted in a module-level
:class:`KernelStats` (reset per engine run); the snapshot lands in the
versioned metrics document under ``"kernel"``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict

try:  # numpy is a declared dependency, but the BDD path works without it.
    import numpy  # noqa: F401
    AVAILABLE = True
except ImportError:  # pragma: no cover - exercised only on broken installs
    AVAILABLE = False

#: Default live-support cap for kernel dispatch (2**24 minterm tables,
#: served by the tier-2 numpy word arrays past the tier-1 boundary).
DEFAULT_MAX_VARS = 24

#: Default tier-1 (bignum mask) boundary; wider supports go tier-2.
DEFAULT_TIER1_MAX_VARS = 16

#: Measured crossover for the symmetry ops: below this live-support
#: width the BDD path is *usually* faster than lift/predicate/lower
#: through the kernel (the conversion at the wrapper boundary
#: dominates), so symmetry dispatch declines without counting a miss —
#: unless the operands are dense enough that the BDD path pays per-node
#: costs rivalling the whole packed table (see
#: :data:`DEFAULT_SYMMETRY_DENSITY_FACTOR`).
DEFAULT_SYMMETRY_MIN_VARS = 16

#: Below-crossover profitability factor for the symmetry ops: a
#: sub-``min_vars`` support is still served word-parallel when
#: ``node_count * factor >= 2**num_live`` (table bits).  Dense small
#: functions (a 10-var random table is ~400 joint nodes against 1024
#: bits) win on masks — measured 1.2-1.3x over the BDD path — while
#: sparse ones (where the BDD path is near-free) keep declining.  ``0``
#: disables the rule, restoring the pure threshold crossover.
DEFAULT_SYMMETRY_DENSITY_FACTOR = 3

#: Tier-2 profitability factor: a tier-2 dispatch is served only when
#: ``node_count * DEFAULT_COST_FACTOR >= table_words * num_outputs``.
#: BDD-path cost scales with the operands' node counts while table cost
#: scales with 2**n regardless of sparsity, so wide-but-sparse functions
#: (duke2's 22-input outputs are ~727 joint nodes) stay on the BDD path
#: where they are orders of magnitude cheaper, and wide dense functions
#: (where the BDD path is the catastrophe the benchmarks show) go word-
#: parallel.  64 approximates the measured per-node/per-word cost ratio
#: (~0.24 ms/knode BDD vs ~5.5 us/kword numpy on 20-var scoring).
DEFAULT_COST_FACTOR = 64

_OFF_VALUES = {"off", "0", "false", "no"}


def _env_int(name: str) -> int:
    """Integer env override, ``-1`` when unset or unparsable (callers
    substitute their default).

    Explicit negative values clamp to ``0`` — the smallest meaningful
    cap — so a degenerate setting like ``REPRO_KERNEL_MAX_VARS=-5``
    deterministically disables dispatch instead of silently restoring
    the default (which would *widen* what the user tried to narrow).
    """
    raw = os.environ.get(name, "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return -1


def kernel_enabled() -> bool:
    """Is kernel dispatch enabled?  (``REPRO_KERNEL=off`` disables it.)

    The environment is read on every call so tests and the CLI's
    ``--no-kernel`` can flip the switch mid-process.
    """
    if not AVAILABLE:
        return False
    return os.environ.get("REPRO_KERNEL", "").strip().lower() \
        not in _OFF_VALUES


def kernel_max_vars() -> int:
    """Live-support cap for dispatch (``REPRO_KERNEL_MAX_VARS`` override).

    Degenerate overrides get a sane clamp instead of misdispatch:
    negative values behave as ``0`` (kernel never serves), unparsable
    values fall back to the default.  A tier-1 override *larger* than
    this cap is clamped down by :func:`kernel_tier1_max_vars`, so
    ``tier_for`` always honours ``tier1 <= max``.
    """
    value = _env_int("REPRO_KERNEL_MAX_VARS")
    return value if value >= 0 else DEFAULT_MAX_VARS


def kernel_tier1_max_vars() -> int:
    """Tier-1 (bignum) boundary; ``REPRO_KERNEL_TIER1_MAX_VARS`` override.

    Never exceeds :func:`kernel_max_vars`, so lowering the overall cap
    (e.g. ``REPRO_KERNEL_MAX_VARS=4``) keeps its historical meaning.
    Setting the override to ``0`` forces every dispatch onto tier 2 —
    the lever the three-way differential tests use.
    """
    value = _env_int("REPRO_KERNEL_TIER1_MAX_VARS")
    if value < 0:
        value = DEFAULT_TIER1_MAX_VARS
    return min(value, kernel_max_vars())


def kernel_symmetry_min_vars() -> int:
    """Measured symmetry-op crossover
    (``REPRO_KERNEL_SYMMETRY_MIN_VARS`` override; ``0`` = always kernel).
    """
    value = _env_int("REPRO_KERNEL_SYMMETRY_MIN_VARS")
    return value if value >= 0 else DEFAULT_SYMMETRY_MIN_VARS


def kernel_symmetry_density_factor() -> int:
    """Below-crossover density rule for the symmetry ops
    (``REPRO_KERNEL_SYMMETRY_DENSITY`` override; ``0`` disables the
    rule and restores the pure ``min_vars`` threshold)."""
    value = _env_int("REPRO_KERNEL_SYMMETRY_DENSITY")
    return value if value >= 0 else DEFAULT_SYMMETRY_DENSITY_FACTOR


def kernel_cost_model() -> bool:
    """Is the tier-2 profitability model active?
    (``REPRO_KERNEL_COST_MODEL=off`` serves every fitting support —
    the lever the forced-tier-2 differential tests use.)
    """
    return os.environ.get("REPRO_KERNEL_COST_MODEL", "").strip().lower() \
        not in _OFF_VALUES


def tier_for(num_live_vars: int) -> int:
    """Kernel tier serving a live support: ``1`` (bignum masks), ``2``
    (numpy word arrays) or ``0`` (too wide — BDD fallback)."""
    if num_live_vars <= kernel_tier1_max_vars():
        return 1
    if num_live_vars <= kernel_max_vars():
        return 2
    return 0


@dataclass
class KernelStats:
    """Dispatch counters and per-operation kernel time.

    ``hits`` counts calls served by the kernel, ``misses`` calls that
    fell back to the BDD path while the kernel was enabled (support too
    wide).  ``ops`` breaks hits and wall time down by operation
    (``classes_for``, ``reduction_score``, ``assign_by_classes``,
    ``symmetry_assign``, ``symmetry_groups``).
    """

    hits: int = 0
    misses: int = 0
    #: Bound-set scores recomputed from scratch (full ``classes_for``)
    #: because the incremental partition refinement could not serve.
    scratch: int = 0
    op_time: Dict[str, float] = field(default_factory=dict)
    op_hits: Dict[str, int] = field(default_factory=dict)
    op_misses: Dict[str, int] = field(default_factory=dict)

    def record_hit(self, op: str, seconds: float) -> None:
        self.hits += 1
        self.op_hits[op] = self.op_hits.get(op, 0) + 1
        self.op_time[op] = self.op_time.get(op, 0.0) + seconds

    def record_miss(self, op: str) -> None:
        self.misses += 1
        self.op_misses[op] = self.op_misses.get(op, 0) + 1

    def record_scratch(self) -> None:
        self.scratch += 1

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict form for the metrics document (additive, schema 1)."""
        ops = {}
        for op in sorted(set(self.op_hits) | set(self.op_misses)):
            ops[op] = {
                "time_s": round(self.op_time.get(op, 0.0), 6),
                "hits": self.op_hits.get(op, 0),
                "misses": self.op_misses.get(op, 0),
            }
        return {
            "enabled": kernel_enabled(),
            "max_vars": kernel_max_vars(),
            "tier1_max_vars": kernel_tier1_max_vars(),
            "symmetry_min_vars": kernel_symmetry_min_vars(),
            "cost_model": kernel_cost_model(),
            "kernel_hits": self.hits,
            "kernel_misses": self.misses,
            "kernel_refine": self.op_hits.get("kernel_refine", 0),
            "classes_from_scratch": self.scratch,
            "ops": ops,
        }


#: Module-level stats instance the dispatch sites report into (reset per
#: engine run by DecompositionEngine.run).
STATS = KernelStats()


def reset_kernel_stats() -> None:
    """Zero the dispatch counters (engine does this at run start)."""
    STATS.hits = 0
    STATS.misses = 0
    STATS.scratch = 0
    STATS.op_time.clear()
    STATS.op_hits.clear()
    STATS.op_misses.clear()


def kernel_metrics() -> Dict[str, Any]:
    """Snapshot of the current dispatch counters."""
    return STATS.snapshot()


__all__ = [
    "AVAILABLE",
    "DEFAULT_COST_FACTOR",
    "DEFAULT_MAX_VARS",
    "DEFAULT_SYMMETRY_DENSITY_FACTOR",
    "DEFAULT_SYMMETRY_MIN_VARS",
    "DEFAULT_TIER1_MAX_VARS",
    "KernelStats",
    "STATS",
    "kernel_cost_model",
    "kernel_enabled",
    "kernel_max_vars",
    "kernel_metrics",
    "kernel_symmetry_density_factor",
    "kernel_symmetry_min_vars",
    "kernel_tier1_max_vars",
    "reset_kernel_stats",
    "tier_for",
]
