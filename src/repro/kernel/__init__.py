"""Word-parallel truth-table kernel for the decomposition hot paths.

The ``--profile`` data in ``docs/PERFORMANCE.md`` shows the engine
spending most of its time in three phases — ``dc_step1_symmetry``,
``cofactors`` and ``clique_cover`` — all of which walk the pure-Python
ROBDD store one restrict/ITE call at a time, even though at the
recursion depths where they fire the live support is small.  This
package re-expresses those phases over *packed truth tables*
(``numpy.uint64`` words, 64 minterms per word):

* :mod:`repro.kernel.bitset` — the packed representation and the
  pack/unpack primitives (:class:`~repro.kernel.bitset.Bits`, row
  packing, mask integers);
* :mod:`repro.kernel.convert` — lossless, canonical ``BDD <-> bitset``
  conversion (equal functions convert to byte-identical tables and
  back to the *same* node ids, which is what makes the kernel results
  bit-identical to the BDD path);
* :mod:`repro.kernel.compat` — bound-set vertex cofactor extraction as
  strided slicing plus the ISF compatibility / running-intersection /
  greedy-cover pipeline as bitwise AND/OR over ``(lo, hi)`` mask pairs;
* :mod:`repro.kernel.symmetry` — (non)equivalence symmetry checks and
  the ``make_symmetric`` narrowing as shifted mask algebra against
  precomputed cofactor-plane selectors.

Dispatch is transparent: the call sites in :mod:`repro.decomp.compat`,
:mod:`repro.decomp.bound_set` and :mod:`repro.symmetry.groups` route
through the kernel when the live support fits :func:`kernel_max_vars`
(default 16, override with ``REPRO_KERNEL_MAX_VARS``) and fall back to
the BDD path otherwise.  ``REPRO_KERNEL=off`` disables the kernel
entirely (escape hatch; the differential test suite in
``tests/kernel/`` proves both paths produce identical results).

Every dispatch decision is counted in a module-level
:class:`KernelStats` (reset per engine run); the snapshot lands in the
versioned metrics document under ``"kernel"``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict

try:  # numpy is a declared dependency, but the BDD path works without it.
    import numpy  # noqa: F401
    AVAILABLE = True
except ImportError:  # pragma: no cover - exercised only on broken installs
    AVAILABLE = False

#: Default live-support cap for kernel dispatch (2**16 minterm tables).
DEFAULT_MAX_VARS = 16

_OFF_VALUES = {"off", "0", "false", "no"}


def kernel_enabled() -> bool:
    """Is kernel dispatch enabled?  (``REPRO_KERNEL=off`` disables it.)

    The environment is read on every call so tests and the CLI's
    ``--no-kernel`` can flip the switch mid-process.
    """
    if not AVAILABLE:
        return False
    return os.environ.get("REPRO_KERNEL", "").strip().lower() \
        not in _OFF_VALUES


def kernel_max_vars() -> int:
    """Live-support cap for dispatch (``REPRO_KERNEL_MAX_VARS`` override)."""
    raw = os.environ.get("REPRO_KERNEL_MAX_VARS", "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return DEFAULT_MAX_VARS


@dataclass
class KernelStats:
    """Dispatch counters and per-operation kernel time.

    ``hits`` counts calls served by the kernel, ``misses`` calls that
    fell back to the BDD path while the kernel was enabled (support too
    wide).  ``ops`` breaks hits and wall time down by operation
    (``classes_for``, ``reduction_score``, ``assign_by_classes``,
    ``symmetry_assign``, ``symmetry_groups``).
    """

    hits: int = 0
    misses: int = 0
    op_time: Dict[str, float] = field(default_factory=dict)
    op_hits: Dict[str, int] = field(default_factory=dict)
    op_misses: Dict[str, int] = field(default_factory=dict)

    def record_hit(self, op: str, seconds: float) -> None:
        self.hits += 1
        self.op_hits[op] = self.op_hits.get(op, 0) + 1
        self.op_time[op] = self.op_time.get(op, 0.0) + seconds

    def record_miss(self, op: str) -> None:
        self.misses += 1
        self.op_misses[op] = self.op_misses.get(op, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict form for the metrics document (additive, schema 1)."""
        ops = {}
        for op in sorted(set(self.op_hits) | set(self.op_misses)):
            ops[op] = {
                "time_s": round(self.op_time.get(op, 0.0), 6),
                "hits": self.op_hits.get(op, 0),
                "misses": self.op_misses.get(op, 0),
            }
        return {
            "enabled": kernel_enabled(),
            "max_vars": kernel_max_vars(),
            "kernel_hits": self.hits,
            "kernel_misses": self.misses,
            "ops": ops,
        }


#: Module-level stats instance the dispatch sites report into (reset per
#: engine run by DecompositionEngine.run).
STATS = KernelStats()


def reset_kernel_stats() -> None:
    """Zero the dispatch counters (engine does this at run start)."""
    STATS.hits = 0
    STATS.misses = 0
    STATS.op_time.clear()
    STATS.op_hits.clear()
    STATS.op_misses.clear()


def kernel_metrics() -> Dict[str, Any]:
    """Snapshot of the current dispatch counters."""
    return STATS.snapshot()


__all__ = [
    "AVAILABLE",
    "DEFAULT_MAX_VARS",
    "KernelStats",
    "STATS",
    "kernel_enabled",
    "kernel_max_vars",
    "kernel_metrics",
    "reset_kernel_stats",
]
