"""Packed truth tables: 64 minterms per ``numpy.uint64`` word.

Tables follow the package-wide MSB-first convention (entry ``k`` has the
first variable as the most significant bit of ``k``); within the packed
form, minterm ``k`` lives in bit ``k % 64`` of word ``k // 64``
(little-endian bit order), so the pure-Python cross-check in
:func:`repro.boolfunc.truthtable.pack64` produces identical words.

Two packed flavours are used:

* ``numpy`` word arrays (:func:`pack_bools` / :func:`pack_rows`) for the
  bulk slicing the cofactor extraction does;
* arbitrary-precision *mask integers* (:func:`mask_rows` /
  :func:`mask_to_bools`) for the per-vertex ``(lo, hi)`` interval
  algebra of the clique cover, where CPython's C-level bignum AND/OR
  beats per-call numpy overhead on the tiny tables involved.

:class:`Bits` wraps the word-array form with set-algebra operators for
tests and benchmarks.
"""

from __future__ import annotations

from typing import List

import numpy as np

_BYTE_SHIFTS = np.arange(8, dtype=np.uint64) * np.uint64(8)


def pack_bools(arr) -> np.ndarray:
    """Pack a 1-D boolean table into ``uint64`` words (zero-padded)."""
    arr = np.asarray(arr, dtype=np.uint8).reshape(-1)
    nwords = max(1, (arr.size + 63) >> 6)
    packed = np.packbits(arr, bitorder="little")
    buf = np.zeros(nwords * 8, dtype=np.uint8)
    buf[:packed.size] = packed
    # Combine bytes explicitly (shift + OR) so the result is independent
    # of the platform's endianness, unlike a raw uint8->uint64 view.
    return np.bitwise_or.reduce(
        buf.reshape(nwords, 8).astype(np.uint64) << _BYTE_SHIFTS, axis=1)


def pack_rows(rows) -> np.ndarray:
    """Pack a ``(r, c)`` boolean matrix row-wise into ``(r, words)``."""
    rows = np.asarray(rows, dtype=np.uint8)
    nrows, ncols = rows.shape
    nwords = max(1, (ncols + 63) >> 6)
    packed = np.packbits(rows, axis=1, bitorder="little")
    buf = np.zeros((nrows, nwords * 8), dtype=np.uint8)
    buf[:, :packed.shape[1]] = packed
    return np.bitwise_or.reduce(
        buf.reshape(nrows, nwords, 8).astype(np.uint64) << _BYTE_SHIFTS,
        axis=2)


def unpack_words(words, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_bools`: the first ``nbits`` as booleans."""
    words = np.asarray(words, dtype=np.uint64).reshape(-1)
    by = ((words[:, None] >> _BYTE_SHIFTS) & np.uint64(0xFF)).astype(np.uint8)
    return np.unpackbits(by.reshape(-1), bitorder="little")[:nbits] \
        .astype(bool)


def popcount_words(words) -> int:
    """Total number of set bits across a word array."""
    words = np.asarray(words, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return int(np.bitwise_count(words).sum())
    return int(unpack_words(words, words.size * 64).sum())


def mask_rows(rows) -> List[int]:
    """Pack each row of a boolean matrix into one Python mask integer.

    Bit ``k`` of the mask is entry ``k`` of the row — the same bit
    order as :func:`pack_bools`, just materialised as a bignum.
    """
    rows = np.asarray(rows, dtype=np.uint8)
    packed = np.packbits(rows, axis=1, bitorder="little")
    data = packed.tobytes()
    step = packed.shape[1]
    return [int.from_bytes(data[i * step:(i + 1) * step], "little")
            for i in range(packed.shape[0])]


def mask_to_bools(mask: int, nbits: int) -> np.ndarray:
    """Inverse of one :func:`mask_rows` row: a boolean array of ``nbits``."""
    nbytes = max(1, (nbits + 7) >> 3)
    raw = np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:nbits].astype(bool)


class Bits:
    """A truth table packed into ``uint64`` words, with set algebra.

    Bits beyond ``nbits`` in the last word are kept at zero (the
    operators preserve this, :meth:`invert` masks the tail), so
    :meth:`key` is a canonical byte string: equal tables, equal keys.
    """

    __slots__ = ("nbits", "words")

    def __init__(self, nbits: int, words: np.ndarray) -> None:
        self.nbits = nbits
        self.words = words

    @classmethod
    def from_bools(cls, arr) -> "Bits":
        arr = np.asarray(arr, dtype=bool).reshape(-1)
        return cls(arr.size, pack_bools(arr))

    def to_bools(self) -> np.ndarray:
        return unpack_words(self.words, self.nbits)

    def _tail_mask(self) -> np.ndarray:
        mask = np.full(self.words.shape, np.uint64(0xFFFFFFFFFFFFFFFF))
        tail = self.nbits & 63
        if tail:
            mask[-1] = np.uint64((1 << tail) - 1)
        return mask

    def __and__(self, other: "Bits") -> "Bits":
        return Bits(self.nbits, self.words & other.words)

    def __or__(self, other: "Bits") -> "Bits":
        return Bits(self.nbits, self.words | other.words)

    def invert(self) -> "Bits":
        return Bits(self.nbits, ~self.words & self._tail_mask())

    def subset_of(self, other: "Bits") -> bool:
        return not np.any(self.words & ~other.words)

    def is_zero(self) -> bool:
        return not self.words.any()

    def popcount(self) -> int:
        return popcount_words(self.words)

    def key(self) -> bytes:
        return self.words.tobytes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bits):
            return NotImplemented
        return self.nbits == other.nbits and \
            bool(np.array_equal(self.words, other.words))

    def __hash__(self) -> int:
        return hash((self.nbits, self.key()))

    def __repr__(self) -> str:
        return f"<Bits nbits={self.nbits} popcount={self.popcount()}>"
