"""Word-parallel split predicates for the tier-0 DSD pre-pass.

The structural pre-pass in :mod:`repro.decomp.dsd` probes an ISF for
cheap top-decompositions — dead variables, AND/OR/XOR literal peels,
single-variable MUX splits — before the compatible-class search ever
runs.  Each probe is generic over an *ops adapter* (the idiom of
:mod:`repro.kernel.symmetry`); this module provides the kernel-side
adapter, where an ISF lives as a pair of packed truth-table masks and
every split check is a handful of word-wide compares:

* the two cofactor halves of the interval along a variable come from
  one :func:`~repro.kernel.bitset2.split_int` /
  :func:`~repro.kernel.bitset2.split_words` gather, already compacted
  to the reduced variable tuple;
* ``f = x AND g`` holds for *some* extension iff the onset of the
  ``x = 0`` half is empty (``not lo0``), ``f = x OR g`` iff the
  ``x = 1`` half's upper bound is full, ``f = x XOR g`` iff the
  remainder interval ``[lo0 | ~hi1, hi0 & ~lo1]`` is non-empty, and a
  variable is (DC-)dead iff the cofactor intervals intersect.

Handles carry their own (shrinking) variable tuple, so a probe that
peels ten literals does ten mask splits, never touching the BDD; only
the irreducible cores are lowered back — through the canonical
:func:`~repro.kernel.convert.bools_to_bdd`, so the engine sees exactly
the node ids the BDD route would have produced and the emitted network
is bit-identical either way.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.boolfunc.spec import ISF
from repro.kernel import AVAILABLE, STATS, kernel_enabled, tier_for

if AVAILABLE:
    from repro.kernel.bitset import mask_rows, mask_to_bools, pack_bools
    from repro.kernel.bitset2 import Words, split_int, split_words
    from repro.kernel.compat import tier2_profitable
    from repro.kernel.convert import (
        TableMismatchError,
        _conversion_cache,
        bdd_to_bools,
        bools_to_bdd,
        cache_put,
    )
    from repro.kernel.symmetry import _sel0, _sel2


class MaskIsf:
    """An ISF as interval masks over an explicit variable tuple.

    Unlike :class:`repro.kernel.symmetry.BitsISF` the variable tuple is
    part of the handle — peels shrink it, and the masks are always
    ``2**len(variables)`` bits, compacted by the split gathers.
    ``hi is lo`` for completely specified functions.
    """

    __slots__ = ("variables", "lo", "hi")

    def __init__(self, variables: Tuple[int, ...], lo, hi) -> None:
        self.variables = variables
        self.lo = lo
        self.hi = hi


class MaskDsdOps:
    """Kernel-domain DSD split checks over :class:`MaskIsf` handles.

    Tier-blind: masks are bignums (tier 1) or :class:`Words` (tier 2);
    the predicates only use the operator set both share, plus the two
    tier-specific helpers ``_full`` and ``_split``.  The decision
    sequence mirrors :class:`repro.decomp.dsd.BddDsdOps` check for
    check, so both domains shatter a function identically.
    """

    domain = "kernel"

    def __init__(self, bdd, tier: int) -> None:
        self.bdd = bdd
        self.tier = tier
        self._full_cache: dict = {}

    # -- tier dispatch ---------------------------------------------------

    def _full(self, nbits: int):
        """The all-ones mask of ``nbits`` bits (``~x`` via ``full ^ x``:
        bignum ``~`` is negative, so inversion goes through XOR)."""
        full = self._full_cache.get(nbits)
        if full is None:
            if self.tier == 1:
                full = (1 << nbits) - 1
            else:
                full = ~Words.from_int(0, nbits)
            self._full_cache[nbits] = full
        return full

    def _split(self, mask, nbits: int, stride: int):
        if self.tier == 1:
            return split_int(mask, nbits, stride)
        return split_words(mask, stride)

    def _sel(self, nvars: int, axis: int):
        return _sel0(nvars, axis) if self.tier == 1 else _sel2(nvars, axis)

    # -- conversion ------------------------------------------------------

    def _mask(self, node: int, variables: Tuple[int, ...]):
        cache = _conversion_cache(self.bdd)
        key = ("mask", node, variables, self.tier)
        hit = cache.get(key)
        if hit is not None:
            return hit
        arr = bdd_to_bools(self.bdd, node, variables)
        if self.tier == 1:
            mask = mask_rows(arr.reshape(1, -1))[0]
            nbytes = max(1, (1 << len(variables)) >> 3)
        else:
            mask = Words(arr.size, pack_bools(arr))
            nbytes = mask.words.nbytes
        cache_put(cache, key, mask, nbytes)
        cache_put(cache, ("node", variables, mask), node)
        return mask

    def _node_of(self, mask, variables: Tuple[int, ...]) -> int:
        cache = _conversion_cache(self.bdd)
        key = ("node", variables, mask)
        hit = cache.get(key)
        if hit is not None:
            return hit
        nbits = 1 << len(variables)
        bools = mask_to_bools(mask, nbits) if self.tier == 1 \
            else mask.to_bools()
        node = bools_to_bdd(self.bdd, bools, variables)
        cache_put(cache, key, node)
        return node

    def lift(self, isf: ISF, variables: Tuple[int, ...]) -> MaskIsf:
        lo = self._mask(isf.lo, variables)
        hi = lo if isf.hi == isf.lo else self._mask(isf.hi, variables)
        return MaskIsf(variables, lo, hi)

    def lower(self, h: MaskIsf) -> ISF:
        lo = self._node_of(h.lo, h.variables)
        hi = lo if h.hi is h.lo or h.hi == h.lo \
            else self._node_of(h.hi, h.variables)
        return ISF.create(self.bdd, lo, hi)

    # -- split predicates ------------------------------------------------

    def admits_const(self, h: MaskIsf) -> Optional[int]:
        """0/1 when some extension of the interval is constant."""
        if not h.lo:
            return 0
        if h.hi == self._full(1 << len(h.variables)):
            return 1
        return None

    def support_vars(self, h: MaskIsf) -> Tuple[int, ...]:
        """Variables at least one end of the interval depends on,
        ascending (matches ``sorted(ISF.support)`` on the BDD side)."""
        n = len(h.variables)
        complete = h.hi is h.lo or h.hi == h.lo
        out = []
        for axis, var in enumerate(h.variables):
            stride = 1 << (n - 1 - axis)
            sel = self._sel(n, axis)
            if (h.lo ^ (h.lo >> stride)) & sel:
                out.append(var)
            elif not complete and (h.hi ^ (h.hi >> stride)) & sel:
                out.append(var)
        return tuple(out)

    def _halves(self, h: MaskIsf, var: int):
        n = len(h.variables)
        axis = h.variables.index(var)
        stride = 1 << (n - 1 - axis)
        nbits = 1 << n
        lo0, lo1 = self._split(h.lo, nbits, stride)
        if h.hi is h.lo or h.hi == h.lo:
            hi0, hi1 = lo0, lo1
        else:
            hi0, hi1 = self._split(h.hi, nbits, stride)
        rest = h.variables[:axis] + h.variables[axis + 1:]
        return rest, lo0, hi0, lo1, hi1

    def try_peel(self, h: MaskIsf, var: int):
        """``(kind, positive, remainder)`` for the first applicable peel
        of ``var`` — dead, AND, OR, XOR in that order — or ``None``."""
        rest, lo0, hi0, lo1, hi1 = self._halves(h, var)
        full = self._full(1 << len(rest))
        if not (lo0 & (full ^ hi1)) and not (lo1 & (full ^ hi0)):
            # Cofactor intervals intersect: some extension ignores var.
            return ("dead", True, MaskIsf(rest, lo0 | lo1, hi0 & hi1))
        if not lo0:
            return ("and", True, MaskIsf(rest, lo1, hi1))
        if not lo1:
            return ("and", False, MaskIsf(rest, lo0, hi0))
        if hi1 == full:
            return ("or", True, MaskIsf(rest, lo0, hi0))
        if hi0 == full:
            return ("or", False, MaskIsf(rest, lo1, hi1))
        # f = var XOR g admits an extension iff the g-interval
        # [lo0 | ~hi1, hi0 & ~lo1] is non-empty.
        g_lo = lo0 | (full ^ hi1)
        g_hi = hi0 & (full ^ lo1)
        if not (g_lo & (full ^ g_hi)):
            return ("xor", True, MaskIsf(rest, g_lo, g_hi))
        return None

    def cofactors(self, h: MaskIsf, var: int) -> Tuple[MaskIsf, MaskIsf]:
        rest, lo0, hi0, lo1, hi1 = self._halves(h, var)
        return MaskIsf(rest, lo0, hi0), MaskIsf(rest, lo1, hi1)


def dsd_mask_domain(bdd, isf: ISF, op: str = "dsd_probe"
                    ) -> Optional[Tuple[MaskDsdOps, MaskIsf]]:
    """Kernel ops + lifted handle when the ISF's live support fits a
    tier, else ``None`` (miss counted under ``op``, except when the
    kernel is simply disabled)."""
    if not AVAILABLE or not kernel_enabled():
        return None
    live = bdd.support(isf.lo)
    if isf.hi != isf.lo:
        live = live | bdd.support(isf.hi)
    tier = tier_for(len(live))
    if tier == 0 or (tier == 2 and not tier2_profitable(bdd, [isf],
                                                        len(live))):
        STATS.record_miss(op)
        return None
    ops = MaskDsdOps(bdd, tier)
    try:
        return ops, ops.lift(isf, tuple(sorted(live)))
    except TableMismatchError:
        STATS.record_miss(op)
        return None


__all__ = ["MaskDsdOps", "MaskIsf", "dsd_mask_domain"]
