"""Word-parallel compatible-class computation (Roth/Karp hot path).

Mirrors :func:`repro.decomp.compat.compute_classes` *exactly* — same
dedup insertion order, same onset-keyed seeds, same first-fit-decreasing
greedy cover, same class numbering — but over packed truth tables
instead of BDD nodes:

* vertex cofactor extraction is one reshape/moveaxis/slice per output
  instead of ``2**p * outputs`` chains of ``bdd.restrict``;
* interval compatibility, running intersection and the cover's guards
  are bignum AND/OR over ``(lo, hi)`` mask pairs;
* only the few *merged* class intervals (and narrowed outputs) are
  converted back to BDD nodes, through the canonical
  :func:`repro.kernel.convert.bools_to_bdd`, so the resulting
  ``Classes`` carries exactly the node ids the BDD path would produce.

Every entry point returns ``None`` when the kernel is disabled or the
live support exceeds :func:`repro.kernel.kernel_max_vars`; callers then
take the BDD path (and the miss is counted).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from repro.boolfunc.spec import ISF
from repro.faults import fault_point
from repro.kernel import (
    AVAILABLE,
    DEFAULT_COST_FACTOR,
    STATS,
    kernel_cost_model,
    kernel_enabled,
    tier_for,
)
from repro.obs.profiler import profile_phase

if AVAILABLE:
    import numpy as np

    from repro.kernel.bitset import mask_rows, mask_to_bools, pack_rows
    from repro.kernel.bitset2 import words_rows
    from repro.kernel.convert import (
        TableMismatchError,
        _conversion_cache,
        bdd_to_bools,
        bools_to_bdd,
        cache_put,
    )

#: A vertex's cofactor vector: ``[(lo_mask, hi_mask)] * outputs``.
#: Masks are bignums (tier 1) or :class:`repro.kernel.bitset2.Words`
#: (tier 2); both carry the operator set the cover relies on.
MaskVector = List[Tuple[int, int]]

#: Deferred mask->ISF conversion of the merged class intervals.
MergedThunk = Callable[[], List[List[ISF]]]


def tier2_profitable(bdd, outputs: Sequence[ISF], num_live: int) -> bool:
    """Should a tier-2-wide call actually go word-parallel?

    BDD-path cost scales with the operands' node counts; table cost
    scales with ``2**num_live`` regardless of sparsity.  Wide-but-sparse
    functions (small BDDs) therefore stay on the BDD path — serving them
    densely would be orders of magnitude *slower* — while wide dense
    functions (the 16-var cliff the benchmarks show) go tier 2.
    ``REPRO_KERNEL_COST_MODEL=off`` always serves (test lever).
    """
    if not kernel_cost_model():
        return True
    roots = set()
    for isf in outputs:
        roots.add(isf.lo)
        roots.add(isf.hi)
    cache = _conversion_cache(bdd)
    key = ("nodes", tuple(sorted(roots)))
    nodes = cache.get(key)
    if nodes is None:
        nodes = bdd.node_count(*roots)
        cache_put(cache, key, nodes)
    words = 1 << max(0, num_live - 6)
    return nodes * DEFAULT_COST_FACTOR >= words * max(1, len(outputs))


def _fit_variables(bdd, outputs: Sequence[ISF], bound: Sequence[int],
                   op: str) -> Optional[Tuple[Tuple[int, ...], int]]:
    """``(table_vars, tier)`` for the call, or ``None`` (miss counted)
    when the kernel is off, the live support is too wide, or a tier-2
    width is predicted cheaper on the BDD path."""
    if not kernel_enabled():
        return None
    live = set(bound)
    for isf in outputs:
        live |= bdd.support(isf.lo)
        if isf.hi != isf.lo:
            live |= bdd.support(isf.hi)
    tier = tier_for(len(live))
    if tier == 0 or (tier == 2
                     and not tier2_profitable(bdd, outputs, len(live))):
        STATS.record_miss(op)
        return None
    fault_point("kernel.dispatch")  # chaos site: armed kernel hand-off
    return tuple(sorted(live)), tier


def _as_bools(mask, nbits: int):
    """Boolean table of a tier-1 bignum or tier-2 ``Words`` mask."""
    if isinstance(mask, int):
        return mask_to_bools(mask, nbits)
    return mask.to_bools()


def _vertex_masks(bdd, outputs: Sequence[ISF], bound: Sequence[int],
                  table_vars: Tuple[int, ...], tier: int
                  ) -> List[MaskVector]:
    """Per-vertex cofactor mask vectors, vertex order = ``vertex_bits``.

    Row ``v`` of each output's sliced table is the cofactor of bound-set
    vertex ``v`` over the free variables (MSB-first on both sides, with
    ``bound[0]`` the most significant vertex bit — the same convention
    as :func:`repro.decomp.compat.vertex_cofactors`).
    """
    nvars = len(table_vars)
    p = len(bound)
    positions = [table_vars.index(b) for b in bound]
    bound_t = tuple(bound)
    cache = _conversion_cache(bdd)

    def rows(node: int) -> list:
        # Keyed alongside the bdd_to_bools entries (5-tuples vs their
        # 2-tuples); re-scored bound sets reuse the packed rows.
        key = ("rows", node, table_vars, bound_t, tier)
        hit = cache.get(key)
        if hit is not None:
            return hit
        arr = bdd_to_bools(bdd, node, table_vars).reshape((2,) * nvars)
        flat = np.moveaxis(arr, positions, range(p)).reshape(1 << p, -1)
        if tier == 1:
            packed = mask_rows(flat)
            nbytes = (1 << p) * max(1, flat.shape[1] >> 3)
        else:
            matrix = pack_rows(flat)
            packed = words_rows(matrix, flat.shape[1])
            nbytes = matrix.nbytes
        cache_put(cache, key, packed, nbytes)
        return packed

    per_output: List[Tuple[List[int], List[int]]] = []
    for isf in outputs:
        lo_rows = rows(isf.lo)
        hi_rows = lo_rows if isf.hi == isf.lo else rows(isf.hi)
        per_output.append((lo_rows, hi_rows))
    return [[(lo[v], hi[v]) for lo, hi in per_output]
            for v in range(1 << p)]


def _compatible(a: MaskVector, b: MaskVector) -> bool:
    for (alo, ahi), (blo, bhi) in zip(a, b):
        if alo & ~bhi or blo & ~ahi:
            return False
    return True


def _intersect(a: MaskVector, b: MaskVector) -> Optional[MaskVector]:
    out = []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo = alo | blo
        hi = ahi & bhi
        if lo & ~hi:
            return None
        out.append((lo, hi))
    return out


def _dedup(vectors: List[MaskVector]
           ) -> Tuple[List[MaskVector], List[List[int]], bool]:
    """First-occurrence dedup of the vertex cofactor vectors.

    Returns ``(unique_vectors, members, all_complete)`` — the partition
    the cover (and the incremental refinement in
    :mod:`repro.kernel.refine`) operates on.  Group order is by first
    occurrence, which equals ascending minimum member; members are
    appended in ascending vertex order.
    """
    rep_of: dict = {}
    unique_vectors: List[MaskVector] = []
    members: List[List[int]] = []
    all_complete = True
    for v, vec in enumerate(vectors):
        key = tuple(vec)
        if key in rep_of:
            members[rep_of[key]].append(v)
        else:
            rep_of[key] = len(unique_vectors)
            unique_vectors.append(vec)
            members.append([v])
            if all_complete and any(lo != hi for lo, hi in vec):
                all_complete = False
    return unique_vectors, members, all_complete


def _cover(vectors: List[MaskVector]
           ) -> Tuple[List[List[int]], List[int], List[MaskVector]]:
    """The clique cover of :func:`repro.decomp.compat._compute_classes`,
    step for step, over mask vectors.  Returns
    ``(classes, class_of, merged_mask_vectors)``."""
    unique_vectors, members, all_complete = _dedup(vectors)
    return _cover_from_partition(unique_vectors, members, all_complete,
                                 len(vectors))


def _cover_from_partition(unique_vectors: List[MaskVector],
                          members: List[List[int]], all_complete: bool,
                          num_vertices: int
                          ) -> Tuple[List[List[int]], List[int],
                                     List[MaskVector]]:
    """Clique cover over an already-deduplicated vertex partition."""
    if all_complete:
        pairs = sorted(zip(members, unique_vectors),
                       key=lambda pair: min(pair[0]))
        classes = [sorted(m) for m, _ in pairs]
        merged = [list(vec) for _, vec in pairs]
        class_of = [0] * num_vertices
        for c, vertices in enumerate(classes):
            for v in vertices:
                class_of[v] = c
        return classes, class_of, merged

    seed_of: dict = {}
    seed_members: List[List[int]] = []
    seed_intersection: List[MaskVector] = []
    for i, vec in enumerate(unique_vectors):
        lo_key = tuple(lo for lo, _ in vec)
        s = seed_of.get(lo_key)
        if s is None:
            seed_of[lo_key] = len(seed_members)
            seed_members.append(list(members[i]))
            seed_intersection.append(list(vec))
        else:
            seed_members[s].extend(members[i])
            # Cannot be None: intervals sharing a lo always intersect.
            seed_intersection[s] = _intersect(seed_intersection[s], vec)

    n = len(seed_members)
    if n > 1:
        degree = [0] * n
        for i in range(n):
            for j in range(i + 1, n):
                if not _compatible(seed_intersection[i],
                                   seed_intersection[j]):
                    degree[i] += 1
                    degree[j] += 1
        order = sorted(range(n), key=lambda i: (-degree[i], i))
    else:
        order = list(range(n))

    clique_members: List[List[int]] = []
    clique_intersection: List[MaskVector] = []
    for i in order:
        vec = seed_intersection[i]
        placed = False
        for c in range(len(clique_members)):
            merged = _intersect(clique_intersection[c], vec)
            if merged is not None:
                clique_members[c].extend(seed_members[i])
                clique_intersection[c] = merged
                placed = True
                break
        if not placed:
            clique_members.append(list(seed_members[i]))
            clique_intersection.append(list(vec))

    pairs = sorted(zip(clique_members, clique_intersection),
                   key=lambda pair: min(pair[0]))
    classes = [sorted(m) for m, _ in pairs]
    merged = [inter for _, inter in pairs]
    class_of = [0] * num_vertices
    for c, vertices in enumerate(classes):
        for v in vertices:
            class_of[v] = c
    return classes, class_of, merged


def kernel_classes_for(bdd, outputs: Sequence[ISF], bound: Sequence[int]
                       ) -> Optional[Tuple[Tuple[int, ...], List[List[int]],
                                           List[int], "MergedThunk"]]:
    """Cofactors + clique cover; ``(bound, classes, class_of, thunk)``
    or ``None`` on fallback.

    ``thunk()`` converts the merged class intervals back to real
    (canonical) ISFs.  The conversion is deferred because the bulk of
    the callers — bound-set scoring — only read the class *counts*; the
    few callers that narrow or encode pay for it exactly once (see
    :class:`repro.decomp.compat.LazyClasses`).
    """
    fit = _fit_variables(bdd, outputs, bound, "classes_for")
    if fit is None:
        return None
    table_vars, tier = fit
    start = perf_counter()
    try:
        with profile_phase("cofactors"):
            vectors = _vertex_masks(bdd, outputs, bound, table_vars, tier)
        with profile_phase("clique_cover"):
            classes, class_of, merged_masks = _cover(vectors)
    except TableMismatchError:
        # Stale/shrunk ordering from the caller: degrade to the BDD
        # route instead of crashing the run.
        STATS.record_miss("classes_for")
        return None
    STATS.record_hit("classes_for", perf_counter() - start)
    bound_set = set(bound)
    free = [v for v in table_vars if v not in bound_set]

    def materialise() -> List[List[ISF]]:
        begin = perf_counter()
        nfree_bits = 1 << len(free)
        with profile_phase("clique_cover"):
            merged: List[List[ISF]] = []
            for vec in merged_masks:
                row = []
                for lo_mask, hi_mask in vec:
                    lo = bools_to_bdd(
                        bdd, _as_bools(lo_mask, nfree_bits), free)
                    hi = lo if hi_mask == lo_mask else bools_to_bdd(
                        bdd, _as_bools(hi_mask, nfree_bits), free)
                    row.append(ISF(lo, hi))
                merged.append(row)
        STATS.record_hit("merged_convert", perf_counter() - begin)
        return merged

    return tuple(bound), classes, class_of, materialise


def kernel_reduction_score(bdd, outputs: Sequence[ISF],
                           bound: Sequence[int]
                           ) -> Optional[Tuple[int, int, int]]:
    """The ranking score of :func:`repro.decomp.bound_set.reduction_score`
    without any BDD materialisation (class *counts* only)."""
    fit = _fit_variables(bdd, outputs, bound, "reduction_score")
    if fit is None:
        return None
    table_vars, tier = fit
    start = perf_counter()
    try:
        with profile_phase("cofactors"):
            vectors = _vertex_masks(bdd, outputs, bound, table_vars, tier)
    except TableMismatchError:
        STATS.record_miss("reduction_score")
        return None
    with profile_phase("clique_cover"):
        bound_set = set(bound)
        reduction = 0
        for k, isf in enumerate(outputs):
            inter = len(isf.support(bdd) & bound_set)
            if inter == 0:
                continue
            column = [[vec[k]] for vec in vectors]
            classes, _, _ = _cover(column)
            reduction += max(0, inter - _min_r(len(classes)))
        joint_classes, _, _ = _cover(vectors)
        joint_ncc = len(joint_classes)
        score = (-reduction, _min_r(joint_ncc), joint_ncc)
    STATS.record_hit("reduction_score", perf_counter() - start)
    return score


def _min_r(num_classes: int) -> int:
    # ceil(log2) without importing repro.decomp.compat (cycle).
    return max(0, (num_classes - 1).bit_length())


def kernel_assign_by_classes(bdd, outputs: Sequence[ISF],
                             classes) -> Optional[List[ISF]]:
    """The narrowing of :func:`repro.decomp.compat.assign_by_classes`:
    every vertex's cofactor is replaced by its class's merged interval.

    ``classes`` is a :class:`repro.decomp.compat.Classes` (duck-typed).
    The caller handles the all-complete early return.
    """
    merged_isfs = [isf for row in classes.merged for isf in row]
    fit = _fit_variables(bdd, list(outputs) + merged_isfs,
                         classes.bound, "assign_by_classes")
    if fit is None:
        return None
    table_vars, _ = fit
    nvars = len(table_vars)
    p = len(classes.bound)
    bound_set = set(classes.bound)
    positions = [table_vars.index(b) for b in classes.bound]
    free = [v for v in table_vars if v not in bound_set]
    free_set = set(free)
    # Merged intervals normally live over the free variables only; a
    # hand-built Classes violating that goes down the BDD path instead.
    for isf in merged_isfs:
        if (bdd.support(isf.lo) | bdd.support(isf.hi)) - free_set:
            STATS.record_miss("assign_by_classes")
            return None
    start = perf_counter()
    nfree_bits = 1 << (nvars - p)

    new_outputs = []
    for k in range(len(outputs)):
        lo_rows = np.empty((1 << p, nfree_bits), dtype=bool)
        hi_rows = np.empty((1 << p, nfree_bits), dtype=bool)
        for c, vertices in enumerate(classes.classes):
            merged = classes.merged[c][k]
            try:
                lo_tab = bdd_to_bools(bdd, merged.lo, free)
                hi_tab = lo_tab if merged.hi == merged.lo else \
                    bdd_to_bools(bdd, merged.hi, free)
            except TableMismatchError:
                STATS.record_miss("assign_by_classes")
                return None
            idx = np.asarray(vertices)
            lo_rows[idx] = lo_tab
            hi_rows[idx] = hi_tab
        # Undo the bound-first axis layout, back to table_vars order.
        lo_arr = np.moveaxis(lo_rows.reshape((2,) * nvars),
                             range(p), positions).reshape(-1)
        hi_arr = np.moveaxis(hi_rows.reshape((2,) * nvars),
                             range(p), positions).reshape(-1)
        lo = bools_to_bdd(bdd, lo_arr, table_vars)
        hi = lo if np.array_equal(lo_arr, hi_arr) else \
            bools_to_bdd(bdd, hi_arr, table_vars)
        new_outputs.append(ISF.create(bdd, lo, hi))
    STATS.record_hit("assign_by_classes", perf_counter() - start)
    return new_outputs
