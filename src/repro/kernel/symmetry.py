"""Word-parallel ISF symmetry checks over packed truth-table masks.

The DC step-1 machinery in :mod:`repro.symmetry.groups` is generic over
an *ops adapter* (see :class:`repro.symmetry.isf_symmetry.BddIsfOps`).
This module provides the kernel-side adapter: an ISF is held as a pair
of Python bignum masks (bit ``k`` = truth-table entry ``k``, the layout
of :func:`repro.boolfunc.truthtable.pack64`), and every symmetry
predicate is a handful of word-wide shift/AND/XOR operations against
*selector masks* precomputed per variable pair:

* entry ``k`` has ``x_a = (k // stride_a) & 1`` with
  ``stride_a = 2**(n-1-a)`` (MSB-first tables), so the cofactor plane
  ``x_a = 0`` is a periodic bit pattern — ``stride_a`` ones,
  ``stride_a`` zeros — constructible with one repunit multiplication;
* the T1 (nonequivalence) partner of an ``(x_i, x_j) = (0, 1)`` entry
  sits exactly ``stride_i - stride_j`` positions higher, the T2
  (equivalence) partner of a ``(0, 0)`` entry ``stride_i + stride_j``
  higher — so "merged cofactors equal" is one shifted XOR under the
  selector, for the *whole* plane at once.

Functions are lifted once per dispatch (through the cached, canonical
:func:`repro.kernel.convert.bdd_to_bools`) and lowered back to
node-identical ISFs at the wrapper boundary, so the narrowed outputs
and the group structure are bit-identical to the BDD path.  Masks and
mask->node results are memoised in the manager's conversion cache, so
an assignment pass that changes nothing (the common case) lowers by
dictionary lookup instead of rebuilding the BDD bottom-up — profiling
showed that rebuild dominating the whole dispatch at small supports.

Past :func:`repro.kernel.kernel_tier1_max_vars` live variables the
masks are tier-2 :class:`repro.kernel.bitset2.Words` arrays instead of
bignums; the selector/shift algebra is written against the operator set
both share, so the predicate code below is tier-blind.  Below
:func:`repro.kernel.kernel_symmetry_min_vars` (the measured crossover)
the wrapper-level dispatch declines — the BDD path is usually faster
there — without counting a miss, unless the operands are dense enough
(:func:`repro.kernel.kernel_symmetry_density_factor`) that per-node BDD
cost rivals the whole packed table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.boolfunc.spec import ISF
from repro.kernel import (
    AVAILABLE,
    STATS,
    kernel_enabled,
    kernel_symmetry_density_factor,
    tier_for,
)
from repro.symmetry.isf_symmetry import SymmetryKind

if AVAILABLE:
    import numpy as np

    from repro.kernel.bitset import mask_rows, mask_to_bools, pack_bools
    from repro.kernel.bitset2 import Words
    from repro.kernel.compat import tier2_profitable
    from repro.kernel.convert import (
        TableMismatchError,
        _conversion_cache,
        bdd_to_bools,
        bools_to_bdd,
        cache_put,
    )

#: ``(nvars, axis) -> `` selector mask of the entries with ``x_axis = 0``.
_SEL_CACHE: Dict[Tuple[int, int], int] = {}

#: Tier-2 (``Words``) form of the same selectors.
_SEL2_CACHE: Dict[Tuple[int, int], "Words"] = {}


def _sel0(nvars: int, axis: int) -> int:
    """Mask selecting the table entries where variable ``axis`` is 0."""
    sel = _SEL_CACHE.get((nvars, axis))
    if sel is None:
        stride = 1 << (nvars - 1 - axis)
        period = stride << 1
        reps = (1 << nvars) // period
        block = (1 << stride) - 1
        # Repeat `block` every `period` bits, `reps` times (repunit).
        sel = block * (((1 << (period * reps)) - 1) // ((1 << period) - 1))
        _SEL_CACHE[(nvars, axis)] = sel
    return sel


def _sel2(nvars: int, axis: int) -> "Words":
    """Tier-2 form of :func:`_sel0` (same bits, word-array carrier).

    Built directly in word space — the bignum repunit division of
    :func:`_sel0` is quadratic in the table size, which at tier-2 widths
    (multi-megabit tables) would take minutes.
    """
    sel = _SEL2_CACHE.get((nvars, axis))
    if sel is None:
        nbits = 1 << nvars
        stride = 1 << (nvars - 1 - axis)
        if nbits < 64:
            sel = Words.from_int(_sel0(nvars, axis), nbits)
        elif stride >= 64:
            swords = stride >> 6
            block = np.zeros(2 * swords, dtype=np.uint64)
            block[:swords] = np.uint64(0xFFFFFFFFFFFFFFFF)
            sel = Words(nbits, np.tile(block, nbits // (stride << 1)))
        else:
            # The period divides 64, so every word carries the same
            # pattern: `stride` ones every `2*stride` bits.
            period = stride << 1
            word = ((1 << stride) - 1) * \
                (((1 << 64) - 1) // ((1 << period) - 1))
            sel = Words(nbits, np.full(nbits >> 6, np.uint64(word)))
        _SEL2_CACHE[(nvars, axis)] = sel
    return sel


class BitsISF:
    """An ISF as a pair of packed truth-table masks.

    ``hi == lo`` for completely specified functions (mask equality *is*
    function equality, so the complete case keeps its cheap check).
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi


class BitsIsfOps:
    """Kernel-domain symmetry operations over :class:`BitsISF` handles."""

    domain = "kernel"

    def __init__(self, bdd, variables: Sequence[int], tier: int = 1) -> None:
        self.bdd = bdd
        self.variables = tuple(variables)
        self.axis = {v: i for i, v in enumerate(self.variables)}
        self.nvars = len(self.variables)
        self.nbits = 1 << self.nvars
        self.tier = tier
        self._pair_cache: Dict[Tuple[int, int, SymmetryKind],
                               Tuple[object, int]] = {}

    def _sel(self, axis: int):
        return _sel0(self.nvars, axis) if self.tier == 1 \
            else _sel2(self.nvars, axis)

    # -- conversion ------------------------------------------------------

    def _mask(self, node: int):
        cache = _conversion_cache(self.bdd)
        key = ("mask", node, self.variables, self.tier)
        hit = cache.get(key)
        if hit is not None:
            return hit
        arr = bdd_to_bools(self.bdd, node, self.variables)
        if self.tier == 1:
            mask = mask_rows(arr.reshape(1, -1))[0]
            nbytes = max(1, self.nbits >> 3)
        else:
            mask = Words(self.nbits, pack_bools(arr))
            nbytes = mask.words.nbytes
        cache_put(cache, key, mask, nbytes)
        # Reverse entry: lowering an unchanged mask (the common case for
        # assignment passes that narrow nothing) becomes a dict lookup
        # instead of a bottom-up BDD rebuild.
        cache_put(cache, ("node", self.variables, mask), node)
        return mask

    def _node_of(self, mask) -> int:
        cache = _conversion_cache(self.bdd)
        key = ("node", self.variables, mask)
        hit = cache.get(key)
        if hit is not None:
            return hit
        bools = mask_to_bools(mask, self.nbits) if self.tier == 1 \
            else mask.to_bools()
        node = bools_to_bdd(self.bdd, bools, self.variables)
        cache_put(cache, key, node)
        return node

    def lift(self, isf: ISF) -> BitsISF:
        lo = self._mask(isf.lo)
        hi = lo if isf.hi == isf.lo else self._mask(isf.hi)
        return BitsISF(lo, hi)

    def lower(self, f: BitsISF) -> ISF:
        lo = self._node_of(f.lo)
        hi = lo if f.hi == f.lo else self._node_of(f.hi)
        return ISF.create(self.bdd, lo, hi)

    # -- plane algebra ---------------------------------------------------

    def _pair(self, var_i: int, var_j: int,
              kind: SymmetryKind) -> Tuple[object, int]:
        """``(sel, delta)``: selector of the first merged cofactor's
        entries and the bit distance to each entry's merge partner."""
        ai, aj = self.axis[var_i], self.axis[var_j]
        if ai > aj:
            ai, aj = aj, ai  # both kinds merge an unordered cofactor pair
        cached = self._pair_cache.get((ai, aj, kind))
        if cached is not None:
            return cached
        si = 1 << (self.nvars - 1 - ai)
        sj = 1 << (self.nvars - 1 - aj)
        if kind is SymmetryKind.NONEQUIVALENCE:
            # (0, 1) entries; partner (1, 0) is +si - sj away.
            sel = self._sel(ai) & (self._sel(aj) << sj)
            delta = si - sj
        else:
            # (0, 0) entries; partner (1, 1) is +si + sj away.
            sel = self._sel(ai) & self._sel(aj)
            delta = si + sj
        self._pair_cache[(ai, aj, kind)] = (sel, delta)
        return sel, delta

    # -- predicates ------------------------------------------------------

    def support(self, f: BitsISF) -> Set[int]:
        supp = set()
        for var in self.variables:
            ax = self.axis[var]
            stride = 1 << (self.nvars - 1 - ax)
            sel = self._sel(ax)
            if (f.lo ^ (f.lo >> stride)) & sel:
                supp.add(var)
            elif f.hi != f.lo and (f.hi ^ (f.hi >> stride)) & sel:
                supp.add(var)
        return supp

    def strongly_symmetric(self, f: BitsISF, var_i: int, var_j: int,
                           kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                           ) -> bool:
        if var_i == var_j:
            return True
        sel, delta = self._pair(var_i, var_j, kind)
        if (f.lo ^ (f.lo >> delta)) & sel:
            return False
        if f.hi == f.lo:
            return True
        return not (f.hi ^ (f.hi >> delta)) & sel

    def potentially_symmetric(self, f: BitsISF, var_i: int, var_j: int,
                              kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                              ) -> bool:
        if var_i == var_j:
            return True
        sel, delta = self._pair(var_i, var_j, kind)
        # lo of each merged cofactor must fit under the hi of the other.
        return not (f.lo & ~(f.hi >> delta) & sel
                    or f.lo & ~(f.hi << delta) & (sel << delta))

    # -- narrowing -------------------------------------------------------

    def make_symmetric(self, f: BitsISF, var_i: int, var_j: int,
                       kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                       ) -> BitsISF:
        if var_i == var_j:
            return f
        if not self.potentially_symmetric(f, var_i, var_j, kind):
            raise ValueError("pair is not potentially symmetric")
        sel, delta = self._pair(var_i, var_j, kind)
        keep = ~(sel | (sel << delta))
        lo_m = (f.lo | (f.lo >> delta)) & sel
        new_lo = (f.lo & keep) | lo_m | (lo_m << delta)
        if f.hi == f.lo:
            # Complete + potentially symmetric means the merged cofactors
            # were already equal, so the interval stays a point.
            return BitsISF(new_lo, new_lo)
        hi_m = (f.hi & (f.hi >> delta)) & sel
        new_hi = (f.hi & keep) | hi_m | (hi_m << delta)
        return BitsISF(new_lo, new_hi)


def _dense_enough(bdd, isfs: Sequence[ISF], num_live: int) -> bool:
    """Below-crossover density override: serve a sub-``min_vars``
    support word-parallel when the operands' joint node count rivals the
    table size (``nodes * factor >= 2**num_live * num_isfs``).  The BDD
    path costs per *node* while the masks cost per *table*, so dense
    small functions — where the crossover's worst case never happens —
    are faster lifted (measured 1.2-1.3x at 10 vars) while sparse ones
    keep declining.  Factor ``0`` disables the override."""
    factor = kernel_symmetry_density_factor()
    if not factor:
        return False
    roots = set()
    for isf in isfs:
        roots.add(isf.lo)
        roots.add(isf.hi)
    cache = _conversion_cache(bdd)
    key = ("nodes", tuple(sorted(roots)))
    nodes = cache.get(key)
    if nodes is None:
        nodes = bdd.node_count(*roots)
        cache_put(cache, key, nodes)
    return nodes * factor >= (1 << num_live) * max(1, len(isfs))


def bits_domain(bdd, isfs: Sequence[ISF], variables: Sequence[int],
                op: str, min_vars: int = 0
                ) -> Optional[Tuple[BitsIsfOps, List[BitsISF]]]:
    """Kernel ops + lifted handles when the live support fits, else
    ``None`` (miss counted under ``op``).  ``variables`` and every ISF
    support are covered by the table axes.

    ``min_vars`` is the measured BDD/kernel crossover: below it the
    caller's BDD path is *usually* faster than lifting through the
    kernel, so the dispatch declines *without* counting a miss (the
    kernel could serve; it just should not) — unless the operands are
    dense enough (``node_count * density_factor >= table_bits *
    num_isfs``, mirroring :func:`tier2_profitable`) that the per-node
    BDD predicates rival the whole packed table, where the masks win.
    """
    if not kernel_enabled():
        return None
    live = set(variables)
    for isf in isfs:
        live |= bdd.support(isf.lo)
        if isf.hi != isf.lo:
            live |= bdd.support(isf.hi)
    if min_vars and len(live) < min_vars \
            and not _dense_enough(bdd, isfs, len(live)):
        return None
    tier = tier_for(len(live))
    if tier == 0 or (tier == 2
                     and not tier2_profitable(bdd, isfs, len(live))):
        STATS.record_miss(op)
        return None
    ops = BitsIsfOps(bdd, sorted(live), tier)
    try:
        return ops, [ops.lift(isf) for isf in isfs]
    except TableMismatchError:
        # A caller-supplied `variables` narrower than the raw supports
        # (stale/DC-shrunk ordering): degrade to the BDD route.
        STATS.record_miss(op)
        return None
