"""Word-parallel ISF symmetry checks over packed truth-table masks.

The DC step-1 machinery in :mod:`repro.symmetry.groups` is generic over
an *ops adapter* (see :class:`repro.symmetry.isf_symmetry.BddIsfOps`).
This module provides the kernel-side adapter: an ISF is held as a pair
of Python bignum masks (bit ``k`` = truth-table entry ``k``, the layout
of :func:`repro.boolfunc.truthtable.pack64`), and every symmetry
predicate is a handful of word-wide shift/AND/XOR operations against
*selector masks* precomputed per variable pair:

* entry ``k`` has ``x_a = (k // stride_a) & 1`` with
  ``stride_a = 2**(n-1-a)`` (MSB-first tables), so the cofactor plane
  ``x_a = 0`` is a periodic bit pattern — ``stride_a`` ones,
  ``stride_a`` zeros — constructible with one repunit multiplication;
* the T1 (nonequivalence) partner of an ``(x_i, x_j) = (0, 1)`` entry
  sits exactly ``stride_i - stride_j`` positions higher, the T2
  (equivalence) partner of a ``(0, 0)`` entry ``stride_i + stride_j``
  higher — so "merged cofactors equal" is one shifted XOR under the
  selector, for the *whole* plane at once.

Functions are lifted once per dispatch (through the cached, canonical
:func:`repro.kernel.convert.bdd_to_bools`) and lowered back to
node-identical ISFs at the wrapper boundary, so the narrowed outputs
and the group structure are bit-identical to the BDD path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.boolfunc.spec import ISF
from repro.kernel import AVAILABLE, STATS, kernel_enabled, kernel_max_vars
from repro.symmetry.isf_symmetry import SymmetryKind

if AVAILABLE:
    from repro.kernel.bitset import mask_rows, mask_to_bools
    from repro.kernel.convert import bdd_to_bools, bools_to_bdd

#: ``(nvars, axis) -> `` selector mask of the entries with ``x_axis = 0``.
_SEL_CACHE: Dict[Tuple[int, int], int] = {}


def _sel0(nvars: int, axis: int) -> int:
    """Mask selecting the table entries where variable ``axis`` is 0."""
    sel = _SEL_CACHE.get((nvars, axis))
    if sel is None:
        stride = 1 << (nvars - 1 - axis)
        period = stride << 1
        reps = (1 << nvars) // period
        block = (1 << stride) - 1
        # Repeat `block` every `period` bits, `reps` times (repunit).
        sel = block * (((1 << (period * reps)) - 1) // ((1 << period) - 1))
        _SEL_CACHE[(nvars, axis)] = sel
    return sel


class BitsISF:
    """An ISF as a pair of packed truth-table masks.

    ``hi == lo`` for completely specified functions (mask equality *is*
    function equality, so the complete case keeps its cheap check).
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi


class BitsIsfOps:
    """Kernel-domain symmetry operations over :class:`BitsISF` handles."""

    domain = "kernel"

    def __init__(self, bdd, variables: Sequence[int]) -> None:
        self.bdd = bdd
        self.variables = tuple(variables)
        self.axis = {v: i for i, v in enumerate(self.variables)}
        self.nvars = len(self.variables)
        self._pair_cache: Dict[Tuple[int, int, SymmetryKind],
                               Tuple[int, int]] = {}

    # -- conversion ------------------------------------------------------

    def _mask(self, node: int) -> int:
        arr = bdd_to_bools(self.bdd, node, self.variables)
        return mask_rows(arr.reshape(1, -1))[0]

    def lift(self, isf: ISF) -> BitsISF:
        lo = self._mask(isf.lo)
        hi = lo if isf.hi == isf.lo else self._mask(isf.hi)
        return BitsISF(lo, hi)

    def lower(self, f: BitsISF) -> ISF:
        nbits = 1 << self.nvars
        lo = bools_to_bdd(self.bdd, mask_to_bools(f.lo, nbits),
                          self.variables)
        hi = lo if f.hi == f.lo else bools_to_bdd(
            self.bdd, mask_to_bools(f.hi, nbits), self.variables)
        return ISF.create(self.bdd, lo, hi)

    # -- plane algebra ---------------------------------------------------

    def _pair(self, var_i: int, var_j: int,
              kind: SymmetryKind) -> Tuple[int, int]:
        """``(sel, delta)``: selector of the first merged cofactor's
        entries and the bit distance to each entry's merge partner."""
        ai, aj = self.axis[var_i], self.axis[var_j]
        if ai > aj:
            ai, aj = aj, ai  # both kinds merge an unordered cofactor pair
        cached = self._pair_cache.get((ai, aj, kind))
        if cached is not None:
            return cached
        si = 1 << (self.nvars - 1 - ai)
        sj = 1 << (self.nvars - 1 - aj)
        if kind is SymmetryKind.NONEQUIVALENCE:
            # (0, 1) entries; partner (1, 0) is +si - sj away.
            sel = _sel0(self.nvars, ai) & (_sel0(self.nvars, aj) << sj)
            delta = si - sj
        else:
            # (0, 0) entries; partner (1, 1) is +si + sj away.
            sel = _sel0(self.nvars, ai) & _sel0(self.nvars, aj)
            delta = si + sj
        self._pair_cache[(ai, aj, kind)] = (sel, delta)
        return sel, delta

    # -- predicates ------------------------------------------------------

    def support(self, f: BitsISF) -> Set[int]:
        supp = set()
        for var in self.variables:
            ax = self.axis[var]
            stride = 1 << (self.nvars - 1 - ax)
            sel = _sel0(self.nvars, ax)
            if (f.lo ^ (f.lo >> stride)) & sel:
                supp.add(var)
            elif f.hi != f.lo and (f.hi ^ (f.hi >> stride)) & sel:
                supp.add(var)
        return supp

    def strongly_symmetric(self, f: BitsISF, var_i: int, var_j: int,
                           kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                           ) -> bool:
        if var_i == var_j:
            return True
        sel, delta = self._pair(var_i, var_j, kind)
        if (f.lo ^ (f.lo >> delta)) & sel:
            return False
        if f.hi == f.lo:
            return True
        return not (f.hi ^ (f.hi >> delta)) & sel

    def potentially_symmetric(self, f: BitsISF, var_i: int, var_j: int,
                              kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                              ) -> bool:
        if var_i == var_j:
            return True
        sel, delta = self._pair(var_i, var_j, kind)
        # lo of each merged cofactor must fit under the hi of the other.
        return not (f.lo & ~(f.hi >> delta) & sel
                    or f.lo & ~(f.hi << delta) & (sel << delta))

    # -- narrowing -------------------------------------------------------

    def make_symmetric(self, f: BitsISF, var_i: int, var_j: int,
                       kind: SymmetryKind = SymmetryKind.NONEQUIVALENCE
                       ) -> BitsISF:
        if var_i == var_j:
            return f
        if not self.potentially_symmetric(f, var_i, var_j, kind):
            raise ValueError("pair is not potentially symmetric")
        sel, delta = self._pair(var_i, var_j, kind)
        keep = ~(sel | (sel << delta))
        lo_m = (f.lo | (f.lo >> delta)) & sel
        new_lo = (f.lo & keep) | lo_m | (lo_m << delta)
        if f.hi == f.lo:
            # Complete + potentially symmetric means the merged cofactors
            # were already equal, so the interval stays a point.
            return BitsISF(new_lo, new_lo)
        hi_m = (f.hi & (f.hi >> delta)) & sel
        new_hi = (f.hi & keep) | hi_m | (hi_m << delta)
        return BitsISF(new_lo, new_hi)


def bits_domain(bdd, isfs: Sequence[ISF], variables: Sequence[int],
                op: str) -> Optional[Tuple[BitsIsfOps, List[BitsISF]]]:
    """Kernel ops + lifted handles when the live support fits, else
    ``None`` (miss counted under ``op``).  ``variables`` and every ISF
    support are covered by the table axes."""
    if not kernel_enabled():
        return None
    live = set(variables)
    for isf in isfs:
        live |= bdd.support(isf.lo)
        if isf.hi != isf.lo:
            live |= bdd.support(isf.hi)
    if len(live) > kernel_max_vars():
        STATS.record_miss(op)
        return None
    ops = BitsIsfOps(bdd, sorted(live))
    return ops, [ops.lift(isf) for isf in isfs]
