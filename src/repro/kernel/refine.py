"""Incremental bound-set partition refinement.

The bound-set search evaluates *families* of closely related candidate
sets: :func:`repro.decomp.bound_set.greedy_bound_set` scores
``B ∪ {v}`` for every pool variable ``v`` at every growth round, and
:func:`repro.decomp.bound_set.rank_bound_sets` scores sliding windows
that share long sorted prefixes.  Recomputing ``classes_for`` from
scratch re-extracts and re-deduplicates the full ``2**n`` truth table
per candidate; this module instead *refines* a cached vertex partition:

appending ``v`` to a bound ``B`` makes it the least significant vertex
bit (``bound[0]`` is the MSB), so every old vertex ``β`` splits into
``2β`` (``v = 0``) and ``2β + 1`` (``v = 1``), and the cofactor table
of each new vertex is one *half* of its parent's — obtained by slicing
the packed mask at ``v``'s bit stride, never touching the full table.
Equal-cofactor groups of ``B ∪ {v}`` are re-deduplicated among the (at
most ``2·u``) split group vectors, ``u`` the parent's group count.

Bit-identicality: ordering the refined groups by minimum member index
reproduces the first-occurrence order of a from-scratch dedup exactly
(a group's first occurrence *is* its minimum member), members map
monotonically (``β -> 2β + b``), and completeness is preserved by
splitting — so the refined partition is *equal* to the from-scratch
partition and the shared clique cover
(:func:`repro.kernel.compat._cover_from_partition`) then runs step for
step identically.  Scores derived here are therefore byte-identical to
:func:`repro.decomp.bound_set.reduction_score`; the property suite in
``tests/kernel/test_refine.py`` enforces it.

Every refinement is counted under the ``kernel_refine`` op (and
fallbacks to full recomputation under ``classes_from_scratch``), so
``--profile`` shows the search performing O(1) refinements per
candidate variable instead of full ``classes_for`` calls.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.boolfunc.spec import ISF
from repro.kernel import AVAILABLE, STATS
from repro.kernel.compat import (
    MaskVector,
    _cover_from_partition,
    _dedup,
    _fit_variables,
    _min_r,
    _vertex_masks,
)
from repro.obs.profiler import profile_phase

if AVAILABLE:
    from repro.kernel.bitset2 import split_int, split_words

#: Retained-mask byte budget per cache; past it the chain cache clears
#: (correctness is unaffected — the next candidate re-refines from the
#: root).  Tier-2 partitions can hold megabytes of masks each.
CACHE_BYTES_LIMIT = 128 * 1024 * 1024


class Partition:
    """Dedup partition of the ``2**p`` bound-set vertices of ``bound``.

    ``unique_vectors[i]`` is the cofactor mask vector shared by the
    vertices in ``members[i]`` (ascending); groups are ordered by their
    minimum member — exactly the state after the dedup stage of
    :func:`repro.kernel.compat._cover`.
    """

    __slots__ = ("bound", "free", "unique_vectors", "members",
                 "all_complete")

    def __init__(self, bound: Tuple[int, ...], free: Tuple[int, ...],
                 unique_vectors: List[MaskVector],
                 members: List[List[int]], all_complete: bool) -> None:
        self.bound = bound
        self.free = free
        self.unique_vectors = unique_vectors
        self.members = members
        self.all_complete = all_complete

    @property
    def num_vertices(self) -> int:
        return 1 << len(self.bound)

    def nbytes(self) -> int:
        """Rough retained-mask footprint (for the cache byte budget)."""
        per_mask = max(1, (1 << len(self.free)) >> 3)
        width = len(self.unique_vectors[0]) if self.unique_vectors else 0
        return len(self.unique_vectors) * width * 2 * per_mask


class PartitionCache:
    """Refinement chains over one ``(outputs, table)`` context.

    Keys are bound *tuples* (order matters: it fixes the vertex
    numbering and hence the greedy cover's processing order, which must
    match what a from-scratch ``classes_for`` of the same tuple would
    use).  ``partition_for`` extends the longest cached prefix of the
    requested tuple, so sorted sliding-window candidates and greedy
    growth rounds pay one refinement per new variable.
    """

    def __init__(self, bdd, outputs: Sequence[ISF],
                 table_vars: Tuple[int, ...], tier: int) -> None:
        self.bdd = bdd
        self.outputs = list(outputs)
        self.table_vars = table_vars
        self.tier = tier
        self._chains: Dict[Tuple[int, ...], Partition] = {}
        self._bytes = 0

    @classmethod
    def for_call(cls, bdd, outputs: Sequence[ISF],
                 variables: Sequence[int], op: str
                 ) -> Optional["PartitionCache"]:
        """A cache for scoring subsets of ``variables``, or ``None``
        (miss counted under ``op``) when the kernel cannot serve."""
        fit = _fit_variables(bdd, outputs, variables, op)
        if fit is None:
            return None
        table_vars, tier = fit
        return cls(bdd, outputs, table_vars, tier)

    # -- chain management -------------------------------------------------

    def _remember(self, part: Partition) -> None:
        nbytes = part.nbytes()
        if self._bytes + nbytes > CACHE_BYTES_LIMIT:
            self._chains.clear()
            self._bytes = 0
        self._chains[part.bound] = part
        self._bytes += nbytes

    def _root(self) -> Partition:
        part = self._chains.get(())
        if part is None:
            with profile_phase("cofactors"):
                vectors = _vertex_masks(self.bdd, self.outputs, (),
                                        self.table_vars, self.tier)
            uniq, mem, complete = _dedup(vectors)
            part = Partition((), self.table_vars, uniq, mem, complete)
            self._remember(part)
        return part

    def partition_for(self, bound: Tuple[int, ...]) -> Partition:
        """The partition of ``bound`` (tuple order = vertex numbering),
        refined from the longest cached prefix."""
        part = self._chains.get(bound)
        if part is not None:
            return part
        for k in range(len(bound) - 1, 0, -1):
            part = self._chains.get(bound[:k])
            if part is not None:
                break
        else:
            part = self._root()
        for var in bound[len(part.bound):]:
            part = self.refine(part, var)
            self._remember(part)
        return part

    # -- the refinement step ----------------------------------------------

    def refine(self, part: Partition, var: int) -> Partition:
        """Partition of ``part.bound + (var,)`` by splitting each group
        at ``var``'s cofactor axis."""
        start = perf_counter()
        fidx = part.free.index(var)
        stride = 1 << (len(part.free) - 1 - fidx)
        nbits = 1 << len(part.free)
        if self.tier == 1:
            def split(mask):
                return split_int(mask, nbits, stride)
        else:
            def split(mask):
                return split_words(mask, stride)

        rep: dict = {}
        uniq: List[MaskVector] = []
        mem: List[List[int]] = []
        for vec, members in zip(part.unique_vectors, part.members):
            halves0: MaskVector = []
            halves1: MaskVector = []
            for lo, hi in vec:
                lo0, lo1 = split(lo)
                if hi is lo or hi == lo:
                    hi0, hi1 = lo0, lo1
                else:
                    hi0, hi1 = split(hi)
                halves0.append((lo0, hi0))
                halves1.append((lo1, hi1))
            for b, newvec in ((0, halves0), (1, halves1)):
                key = tuple(newvec)
                idx = rep.get(key)
                if idx is None:
                    rep[key] = len(uniq)
                    uniq.append(newvec)
                    mem.append([2 * m + b for m in members])
                else:
                    mem[idx].extend(2 * m + b for m in members)
        for members in mem:
            members.sort()
        order = sorted(range(len(uniq)), key=lambda i: mem[i][0])
        new = Partition(part.bound + (var,),
                        part.free[:fidx] + part.free[fidx + 1:],
                        [uniq[i] for i in order], [mem[i] for i in order],
                        part.all_complete)
        STATS.record_hit("kernel_refine", perf_counter() - start)
        return new

    # -- scoring ----------------------------------------------------------

    def ncc_for(self, bound: Tuple[int, ...]) -> int:
        """Joint compatible-class count of ``bound`` — the greedy growth
        metric — via one refinement per new variable."""
        part = self.partition_for(bound)
        with profile_phase("clique_cover"):
            classes, _, _ = _cover_from_partition(
                part.unique_vectors, part.members, part.all_complete,
                part.num_vertices)
        return len(classes)

    def score_for(self, bound: Tuple[int, ...]) -> Tuple[int, int, int]:
        """The ranking score of
        :func:`repro.decomp.bound_set.reduction_score`, byte-identical,
        from the refined partition (joint cover + per-output projected
        covers)."""
        part = self.partition_for(bound)
        start = perf_counter()
        with profile_phase("clique_cover"):
            bound_set = set(bound)
            reduction = 0
            for k, isf in enumerate(self.outputs):
                inter = len(isf.support(self.bdd) & bound_set)
                if inter == 0:
                    continue
                uniq, mem, complete = _project(part, k)
                classes, _, _ = _cover_from_partition(
                    uniq, mem, complete, part.num_vertices)
                reduction += max(0, inter - _min_r(len(classes)))
            joint_classes, _, _ = _cover_from_partition(
                part.unique_vectors, part.members, part.all_complete,
                part.num_vertices)
            ncc = len(joint_classes)
            score = (-reduction, _min_r(ncc), ncc)
        STATS.record_hit("reduction_score", perf_counter() - start)
        return score


def _project(part: Partition, k: int
             ) -> Tuple[List[MaskVector], List[List[int]], bool]:
    """The single-output partition for output ``k``: joint groups whose
    ``k``-components agree merge (no mask copying).  Iterating joint
    groups in stored order keeps first-occurrence (= ascending minimum
    member) group order, matching a from-scratch column dedup."""
    rep: dict = {}
    uniq: List[MaskVector] = []
    mem: List[List[int]] = []
    all_complete = True
    for vec, members in zip(part.unique_vectors, part.members):
        pair = vec[k]
        idx = rep.get(pair)
        if idx is None:
            rep[pair] = len(uniq)
            uniq.append([pair])
            mem.append(list(members))
            if all_complete:
                lo, hi = pair
                if not (hi is lo or hi == lo):
                    all_complete = False
        else:
            mem[idx].extend(members)
    for members in mem:
        members.sort()
    return uniq, mem, all_complete


__all__ = ["Partition", "PartitionCache"]
