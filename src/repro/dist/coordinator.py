"""Shard a batch across worker nodes, steal from stragglers, survive
node loss *and coordinator loss*, merge byte-identically.

The coordinator owns everything a single-host ``repro batch`` parent
owns — the manifest, the cache, the journal — and delegates only
*execution*:

1. **Prepare** — every job's function is built parent-side (under
   :func:`repro.faults.suppressed`, like the scheduler's cache path);
   its :func:`~repro.runtime.cache.cache_key` both addresses the shared
   store and, hashed, picks the job's home shard, so shard placement is
   content-stable across runs.  Cache hits settle here and never ship.
2. **Shard + window** — remaining jobs split into per-node deques by
   key hash.  Each node holds a small in-flight *window* (twice its
   worker count), refilled one job per result — pull-based flow
   control, so a slow node never queues work a fast node could take.
3. **Steal** — a node whose own shard ran dry refills from the *tail*
   of the longest remaining shard.  The claim record is the
   coordinator's ``in_flight`` index->node map; the first result row
   for an index wins, a duplicate (stolen *and* finished by its owner)
   is dropped and counted, and the shared cache dedupes the work itself
   by key.
4. **Retry before loss** — a broken link to a *dialed* node is first
   treated as a transient blip: the unacknowledged in-flight jobs go
   back to the head of the node's own shard and a bounded seeded-jitter
   redial (``rpc_tries`` × ``rpc_backoff_s``) tries to re-establish the
   session.  Only when the budget is exhausted does the loss ladder
   run.
5. **Node loss** — a dead connection past its redial budget moves the
   node's unfinished window and remaining shard to the surviving nodes;
   with no survivors the coordinator runs the remainder through a local
   :class:`~repro.runtime.scheduler.BatchScheduler`.  The batch always
   completes.
6. **Dynamic membership** — a registration listener accepts late
   joiners mid-batch (``repro dist serve-node --join host:port``): a
   fresh ``node_id`` becomes a new link and an immediate steal target,
   a known ``node_id`` whose link already dropped re-registers in place
   (its stale claims were requeued/reassigned at loss time; a row that
   somehow raced through anyway is deduped by the first-claim-wins
   index map).
7. **Journal** — given a :class:`~repro.runtime.journal.BatchJournal`,
   the coordinator writes the single-host ``start``/``done`` records
   plus ``claim``/``reassign`` records binding each in-flight index to
   its node, every append fsync'd through the ``coord.journal`` fault
   site.  A SIGKILL'd coordinator resumes with ``--resume``: journaled
   ``done`` rows are spliced verbatim (``presettled``), only incomplete
   jobs are re-prepared and re-sharded — by the same content-stable key
   hash, so the merged output is byte-identical (under
   ``--stable-rows``) to an uninterrupted run.  Journal I/O failure
   degrades to journal-less, exactly like the single-host tier.

Rows are exactly :meth:`~repro.runtime.scheduler.JobResult.as_dict`
(the nodes run the same scheduler), merged in submission order —
byte-identical to a single-host run up to the volatile timing fields
(``repro batch --stable-rows`` zeroes those for comparison).  One
caveat: if a node dies *after* finishing a job but before its row
lands, the reassigned run settles from the shared cache and the row
says ``cache_hit: true`` where a single-host run would have executed —
receipt-time loss (the ``node.loss`` site) cannot hit this window.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import faults
from repro.dist.cachenet import CacheServer
from repro.dist.wire import (
    WireError,
    backoff_rng,
    connect,
    recv_frame,
    retry_backoff,
    send_frame,
)
from repro.runtime import jobspec
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.journal import BatchJournal
from repro.runtime.pool import EventSink, ProgressEvent, emit_event
from repro.runtime.scheduler import BatchScheduler, JobResult

#: In-flight window per node, as a multiple of its worker count.
WINDOW_FACTOR = 2

#: Handshake budget for a registering joiner — a hung joiner must not
#: wedge a listener thread.
JOIN_HANDSHAKE_TIMEOUT_S = 10.0


def parse_nodes(spec: str) -> List[Tuple[str, int]]:
    """``host:port,host:port`` -> ``[(host, port), ...]``."""
    nodes = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(f"malformed node address {part!r} "
                             f"(use host:port)")
        nodes.append((host or "127.0.0.1", int(port)))
    if not nodes:
        raise ValueError("empty node list")
    return nodes


class _Link:
    """Coordinator-side state for one node connection.

    Dialed nodes carry ``host``/``port`` (the coordinator can redial
    them); joined nodes carry ``node_id`` (they redial *us*).
    """

    def __init__(self, label: str, host: Optional[str] = None,
                 port: Optional[int] = None,
                 node_id: Optional[str] = None) -> None:
        self.label = label
        self.host = host
        self.port = port
        self.node_id = node_id
        self.sock = None
        self.workers = 1
        self.window = WINDOW_FACTOR
        self.alive = False
        #: A redial thread currently owns this link (dialed nodes only).
        self.redialing = False
        #: Remaining mid-run redial attempts before the loss ladder.
        self.redial_budget = 0
        #: Home shard: manifest indices not yet sent anywhere.
        self.shard: "deque[int]" = deque()
        self.shard_size = 0
        #: Claim records: indices sent to this node, no row yet.
        self.in_flight: set = set()
        self.executed = 0
        self.sessions = 0
        self.reader: Optional[threading.Thread] = None


class DistCoordinator:
    """Run a job list across remote nodes; same contract as
    :meth:`BatchScheduler.run` but returning JSONL-shaped rows."""

    def __init__(self, nodes: List[Tuple[str, int]],
                 cache: Optional[ResultCache] = None,
                 cache_host: str = "127.0.0.1",
                 timeout: Optional[float] = None, retries: int = 1,
                 degrade: bool = True,
                 heartbeat_s: Optional[float] = 1.0,
                 hang_grace_s: Optional[float] = None,
                 connect_timeout_s: float = 10.0,
                 journal: Optional[BatchJournal] = None,
                 join_host: str = "127.0.0.1",
                 join_port: Optional[int] = 0,
                 rpc_tries: int = 3,
                 rpc_backoff_s: float = 0.2,
                 backoff_seed: int = 0,
                 on_listen: Optional[Callable[[str, int], None]] = None
                 ) -> None:
        self.cache = cache
        self.cache_host = cache_host
        self.timeout = timeout
        self.retries = retries
        self.degrade = degrade
        self.heartbeat_s = heartbeat_s
        self.hang_grace_s = hang_grace_s
        self.connect_timeout_s = connect_timeout_s
        self.journal = journal
        self.join_host = join_host
        self.join_port = join_port
        self.rpc_tries = max(1, rpc_tries)
        self.rpc_backoff_s = rpc_backoff_s
        self.backoff_seed = backoff_seed
        self.on_listen = on_listen
        self._links = [_Link(f"{host}:{port}", host=host, port=port)
                       for host, port in nodes]
        self._by_node_id: Dict[str, _Link] = {}
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self._rows: Dict[int, Dict[str, Any]] = {}
        self._spliced: set = set()
        self._jobs: List[Dict[str, Any]] = []
        self._overflow: "deque[int]" = deque()
        self._draining = False
        self._on_event: Optional[EventSink] = None
        self._on_row: Optional[Callable[[Dict[str, Any]], None]] = None
        self.steals = 0
        self.reassigned = 0
        self.node_losses = 0
        self.dup_results = 0
        self.local_fallback_jobs = 0
        self.joins = 0
        self.reconnects = 0
        self.rpc_retries = 0
        self._cache_server: Optional[CacheServer] = None
        self._join_sock: Optional[socket.socket] = None
        self._join_thread: Optional[threading.Thread] = None

    # -- public entry ---------------------------------------------------

    def run(self, jobs: List[Dict[str, Any]],
            on_row: Optional[Callable[[Dict[str, Any]], None]] = None,
            on_event: Optional[EventSink] = None,
            presettled: Optional[Dict[int, Dict[str, Any]]] = None
            ) -> List[Dict[str, Any]]:
        """Execute ``jobs`` across the nodes; rows in submission order.

        ``on_row`` fires as each row settles (out of order); ``on_event``
        receives the relayed :class:`ProgressEvent` stream from every
        node — the same callback API as the local scheduler.
        ``presettled`` maps job indices to journal-replayed ``done``
        rows: they are spliced into the output verbatim (no re-probe,
        no re-execution, no ``on_row``), which is the ``--resume``
        contract.
        """
        self._jobs = jobs
        self._on_event = on_event
        self._on_row = on_row
        for index, row in (presettled or {}).items():
            self._rows[int(index)] = row
            self._spliced.add(int(index))
        to_run = self._prepare(jobs)
        if to_run and self._links:
            self._shard(to_run)
            try:
                self._start_cache_server()
                self._start_join_listener()
                self._connect_all()
                self._pump()
            finally:
                self._teardown()
        missing = [i for i in to_run if i not in self._rows]
        if missing:
            self._run_locally(missing)
        return [self._rows[i] for i in sorted(self._rows)]

    # -- phase 1: prepare (build, probe, key) ---------------------------

    def _prepare(self, jobs: List[Dict[str, Any]]) -> List[int]:
        """Settle build failures and cache hits coordinator-side;
        attach wire payloads and shard keys to the rest.  Indices with
        a spliced (journal-replayed) row are skipped entirely."""
        to_run = []
        for index, job in enumerate(jobs):
            if index in self._rows:
                continue
            try:
                with faults.suppressed():
                    func = jobspec.build_function(job["source"])
            except Exception as exc:  # noqa: BLE001 — bad source
                self._settle_local(index, JobResult(
                    job_id=job["job_id"],
                    source=jobspec.source_label(job["source"]),
                    flow=job["flow"], status="failed",
                    error=f"{type(exc).__name__}: {exc}"))
                continue
            key = cache_key(func.canonical_key(), job["flow"],
                            job["config"])
            job["_dist_key"] = key
            record = self.cache.get(key) if self.cache is not None \
                else None
            if record is not None:
                self._settle_local(index, JobResult(
                    job_id=job["job_id"],
                    source=jobspec.source_label(job["source"]),
                    flow=job["flow"], status="ok", result=record,
                    cache_hit=True))
                continue
            job["wire"] = func.to_wire()
            to_run.append(index)
        return to_run

    def _settle_local(self, index: int, result: JobResult) -> None:
        result.index = index
        emit_event(self._on_event, ProgressEvent(
            kind="result", job_id=result.job_id, index=index,
            status=result.status, detail=result.error))
        self._record_row(index, result.as_dict())

    def _record_row(self, index: int, row: Dict[str, Any]) -> None:
        self._rows[index] = row
        if self.journal is not None:
            self.journal.record_done(index, row)
        if self._on_row is not None:
            self._on_row(row)

    # -- phase 2: shard -------------------------------------------------

    def _shard(self, to_run: List[int]) -> None:
        n = len(self._links)
        for index in to_run:
            key = self._jobs[index]["_dist_key"]
            link = self._links[int(key[:8], 16) % n]
            link.shard.append(index)
        for link in self._links:
            link.shard_size = len(link.shard)

    # -- connections ----------------------------------------------------

    def _start_cache_server(self) -> None:
        if self.cache is not None:
            self._cache_server = CacheServer(
                self.cache, host=self.cache_host).start()

    def _cache_spec(self) -> Optional[Dict[str, Any]]:
        if self._cache_server is None:
            return None
        return {"host": self.cache_host,
                "port": self._cache_server.port}

    def _scheduler_cfg(self) -> Dict[str, Any]:
        return {
            "timeout": self.timeout, "retries": self.retries,
            "degrade": self.degrade, "heartbeat_s": self.heartbeat_s,
            "hang_grace_s": self.hang_grace_s,
        }

    def _open_session(self, link: _Link) -> None:
        """Dial ``link`` and run the hello handshake (raises
        ``OSError``/:class:`WireError` on any failure)."""
        sock = connect(link.host, link.port,
                       timeout=self.connect_timeout_s)
        try:
            send_frame(sock, {"op": "hello", "cache": self._cache_spec(),
                              "scheduler": self._scheduler_cfg()})
            hello = recv_frame(sock)
            if not hello or not hello.get("ok"):
                raise WireError(f"bad hello from {link.label}")
        except (OSError, WireError):
            try:
                sock.close()
            except OSError:
                pass
            raise
        sock.settimeout(None)
        link.sock = sock
        link.workers = max(1, int(hello.get("workers", 1)))
        link.window = max(1, WINDOW_FACTOR * link.workers)
        link.sessions += 1

    def _establish(self, link: _Link) -> None:
        """Initial dial with bounded seeded-jitter retry — a node
        still booting (or mid-blip) costs a short sleep, not its whole
        shard."""
        rng = backoff_rng(self.backoff_seed, link.label)
        for attempt in range(1, self.rpc_tries + 1):
            try:
                self._open_session(link)
                return
            except (OSError, WireError):
                if attempt >= self.rpc_tries:
                    raise
                with self._lock:
                    self.rpc_retries += 1
                time.sleep(retry_backoff(attempt, self.rpc_backoff_s,
                                         rng))

    def _connect_all(self) -> None:
        # Snapshot the *dialed* links only: a joiner registering while
        # we are still dialing has already appended its (host=None,
        # reader-running) link to ``_links``, and it must not be
        # re-dialed, marked dead, or given a second reader here.
        with self._lock:
            dialed = [link for link in self._links
                      if link.host is not None]
        for link in dialed:
            try:
                self._establish(link)
                link.alive = True
                # ``rpc_tries`` counts total attempts: 1 means "no
                # mid-run redial, declare loss on first break".
                link.redial_budget = self.rpc_tries - 1
            except (OSError, WireError):
                # A node that never answers is a node lost before its
                # first job: its whole shard redistributes.
                link.alive = False
        with self._lock:
            for link in dialed:
                if not link.alive and link.shard:
                    self._reassign(link)
        for link in dialed:
            if link.alive:
                self._start_reader(link)

    def _start_reader(self, link: _Link) -> None:
        link.reader = threading.Thread(
            target=self._read_loop, args=(link, link.sock),
            name=f"repro-dist-read-{link.label}", daemon=True)
        link.reader.start()

    # -- dynamic membership ---------------------------------------------

    def _start_join_listener(self) -> None:
        """Bind the registration listener late nodes dial into."""
        if self.join_port is None:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.join_host, self.join_port))
        sock.listen(8)
        self.join_port = sock.getsockname()[1]
        self._join_sock = sock
        self._join_thread = threading.Thread(
            target=self._join_accept_loop,
            name="repro-dist-join-accept", daemon=True)
        self._join_thread.start()
        if self.on_listen is not None:
            self.on_listen(self.join_host, self.join_port)

    def _join_accept_loop(self) -> None:
        while not self._draining:
            try:
                conn, addr = self._join_sock.accept()
            except OSError:
                return  # closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._register, args=(conn, addr),
                name="repro-dist-register", daemon=True).start()

    def _register(self, conn: socket.socket, addr: Tuple[str, int]
                  ) -> None:
        """One joiner's registration handshake::

            node -> coordinator  {"op": "join", "workers": W,
                                  "node_id": "..."}
            coordinator -> node  {"op": "hello", "ok": true,
                                  "cache": ..., "scheduler": ...}

        then the connection is an ordinary link.  A known ``node_id``
        whose link already dropped re-registers in place (reconnect); a
        live duplicate is refused with ``ok: false`` — the standing
        link keeps its claims, and the joiner's bounded backoff covers
        the gap until the coordinator observes the loss.
        """
        try:
            conn.settimeout(JOIN_HANDSHAKE_TIMEOUT_S)
            join = recv_frame(conn)
            if (not isinstance(join, dict)
                    or join.get("op") != "join"):
                raise WireError("not a join frame")
        except (OSError, WireError):
            try:
                conn.close()
            except OSError:
                pass
            return
        node_id = str(join.get("node_id") or "")
        with self._lock:
            link = self._by_node_id.get(node_id) if node_id else None
            refusal = None
            if self._draining:
                refusal = "batch is draining"
            elif link is not None and (link.alive or link.redialing):
                refusal = f"node_id {node_id!r} already registered"
        if refusal is not None:
            try:
                send_frame(conn, {"op": "hello", "ok": False,
                                  "error": refusal})
            except (OSError, WireError):
                pass
            try:
                conn.close()
            except OSError:
                pass
            return
        try:
            send_frame(conn, {"op": "hello", "ok": True,
                              "cache": self._cache_spec(),
                              "scheduler": self._scheduler_cfg()})
            conn.settimeout(None)
        except (OSError, WireError):
            try:
                conn.close()
            except OSError:
                pass
            return
        with self._lock:
            # Re-check under the lock: a racing duplicate (or a drain
            # that started during the reply) loses cleanly.
            link = self._by_node_id.get(node_id) if node_id else None
            if self._draining or (link is not None
                                  and (link.alive or link.redialing)):
                try:
                    conn.close()
                except OSError:
                    pass
                return
            if link is not None:
                self.reconnects += 1
            else:
                label = node_id or f"{addr[0]}:{addr[1]}"
                link = _Link(label, node_id=node_id or None)
                self._links.append(link)
                if node_id:
                    self._by_node_id[node_id] = link
                self.joins += 1
            link.sock = conn
            link.workers = max(1, int(join.get("workers", 1)))
            link.window = max(1, WINDOW_FACTOR * link.workers)
            link.alive = True
            link.sessions += 1
            self._start_reader(link)
            # An empty-shard joiner becomes a steal target right here.
            self._refill(link)
            self._done.notify_all()

    # -- the pump -------------------------------------------------------

    def _pump(self) -> None:
        """Fill every window, then wait for rows until done or dead."""
        with self._lock:
            # Under the lock: a joiner registering between connect and
            # pump is already stealing from these shards.
            need = {i for link in self._links for i in link.shard}
            need |= set(self._overflow)
            for link in self._links:
                need |= link.in_flight
            for link in self._links:
                self._refill(link)
            while any(link.alive or link.redialing
                      for link in self._links):
                if all(i in self._rows for i in need):
                    break
                self._done.wait(0.25)
            self._draining = True

    def _refill(self, link: _Link) -> None:
        """Top the node's window up from its shard, the overflow of
        dead nodes, or — stealing — the tail of the longest remaining
        shard.  Caller holds the lock."""
        while link.alive and len(link.in_flight) < link.window:
            index = self._next_index(link)
            if index is None:
                return
            link.in_flight.add(index)
            if self.journal is not None:
                # WAL ordering: the claim is durable before the job can
                # possibly execute anywhere.
                self.journal.record_start(
                    index, self._jobs[index]["job_id"], 1)
                self.journal.record_claim(index, link.label)
            try:
                send_frame(link.sock, {
                    "op": "job", "index": index,
                    "job": self._wire_job(self._jobs[index])})
            except (OSError, WireError):
                self._node_lost(link)
                return

    def _next_index(self, link: _Link) -> Optional[int]:
        if link.shard:
            return link.shard.popleft()
        if self._overflow:
            return self._overflow.popleft()
        # Steal from redialing shards too: a node mid-redial should not
        # strand its queue while other nodes idle.
        victim = max(
            (other for other in self._links
             if (other.alive or other.redialing) and other is not link
             and other.shard),
            key=lambda other: len(other.shard), default=None)
        if victim is None:
            return None
        self.steals += 1
        # Tail, not head: the head is what the victim itself dispatches
        # next, so stealing from the tail minimizes claim collisions.
        return victim.shard.pop()

    def _wire_job(self, job: Dict[str, Any]) -> Dict[str, Any]:
        return {k: v for k, v in job.items() if k != "_dist_key"}

    # -- per-node reader ------------------------------------------------

    def _read_loop(self, link: _Link, sock) -> None:
        while True:
            try:
                frame = recv_frame(sock)
            except (OSError, WireError):
                frame = None
            if frame is None:
                # Only the reader of the *current* session may declare
                # the link down — a stale reader of a replaced session
                # must not kill its successor.
                if link.sock is sock:
                    self._node_lost(link)
                return
            op = frame.get("op")
            if op == "event":
                emit_event(self._on_event,
                           ProgressEvent.from_dict(frame.get("event")
                                                   or {}))
            elif op == "result":
                self._claim(link, int(frame["index"]),
                            dict(frame["row"]))

    def _claim(self, link: _Link, index: int,
               row: Dict[str, Any]) -> None:
        with self._lock:
            link.in_flight.discard(index)
            if index in self._rows:
                # Stolen and also finished by its original owner: the
                # first row won the claim, this one is a duplicate (the
                # shared cache made it cheap).
                self.dup_results += 1
            else:
                link.executed += 1
                self._record_row(index, row)
            self._refill(link)
            # Top up every underfilled live link, not just the one that
            # settled: a joiner whose registration raced the initial
            # dial (no steal victims were alive yet) would otherwise
            # starve with an empty window for the rest of the batch.
            for other in self._links:
                if (other is not link and other.alive
                        and len(other.in_flight) < other.window):
                    self._refill(other)
            self._done.notify_all()

    # -- loss, retry, reassignment --------------------------------------

    def _node_lost(self, link: _Link) -> None:
        with self._lock:
            if not link.alive:
                return
            link.alive = False
            if self._draining:
                return
            if link.host is not None and link.redial_budget > 0:
                # Maybe just a blip: requeue the unacknowledged
                # in-flight at the head of the node's own shard and try
                # to re-establish before running the loss ladder.
                for index in sorted(
                        (i for i in link.in_flight
                         if i not in self._rows), reverse=True):
                    link.shard.appendleft(index)
                link.in_flight.clear()
                link.redialing = True
                threading.Thread(
                    target=self._redial, args=(link,),
                    name=f"repro-dist-redial-{link.label}",
                    daemon=True).start()
                self._done.notify_all()
                return
            self._declare_lost(link)

    def _declare_lost(self, link: _Link) -> None:
        """The loss ladder proper.  Caller holds the lock."""
        self.node_losses += 1
        self._reassign(link)
        for other in self._links:
            if other.alive:
                self._refill(other)
        self._done.notify_all()

    def _redial(self, link: _Link) -> None:
        """Bounded seeded-jitter re-establishment of a dialed node's
        session; falls through to the loss ladder when the budget is
        spent."""
        rng = backoff_rng(self.backoff_seed,
                          f"redial:{link.label}")
        attempt = 0
        while True:
            with self._lock:
                if self._draining:
                    link.redialing = False
                    self._done.notify_all()
                    return
                if link.redial_budget <= 0:
                    break
                link.redial_budget -= 1
                self.rpc_retries += 1
            attempt += 1
            time.sleep(retry_backoff(attempt, self.rpc_backoff_s, rng))
            try:
                self._open_session(link)
            except (OSError, WireError):
                continue
            with self._lock:
                link.redialing = False
                if self._draining:
                    try:
                        link.sock.close()
                    except OSError:
                        pass
                    self._done.notify_all()
                    return
                link.alive = True
                self._start_reader(link)
                self._refill(link)
                self._done.notify_all()
            return
        with self._lock:
            link.redialing = False
            if not self._draining:
                self._declare_lost(link)
            else:
                self._done.notify_all()

    def _reassign(self, link: _Link) -> None:
        """Move a dead node's claims and remaining shard to overflow.
        Caller holds the lock."""
        moved = [i for i in link.in_flight if i not in self._rows]
        moved.extend(link.shard)
        link.in_flight.clear()
        link.shard.clear()
        self.reassigned += len(moved)
        if self.journal is not None:
            for index in moved:
                self.journal.record_reassign(index, link.label)
        self._overflow.extend(moved)

    # -- endgame --------------------------------------------------------

    def _run_locally(self, missing: List[int]) -> None:
        """All nodes are gone and rows are missing: finish the batch
        with the local failure ladder (same scheduler, same rows)."""
        self.local_fallback_jobs = len(missing)
        scheduler = BatchScheduler(
            workers=None, timeout=self.timeout, retries=self.retries,
            cache=self.cache, degrade=self.degrade,
            heartbeat_s=self.heartbeat_s,
            hang_grace_s=self.hang_grace_s)
        remaining = [self._wire_job(self._jobs[i]) for i in missing]

        def on_dispatch(local_index: int, attempt: int) -> None:
            if self.journal is not None:
                index = missing[local_index]
                self.journal.record_start(
                    index, self._jobs[index]["job_id"], attempt)

        results = scheduler.run(remaining, on_event=self._on_event,
                                on_dispatch=on_dispatch)
        for local_pos, result in zip(missing, results):
            result.index = local_pos
            self._record_row(local_pos, result.as_dict())

    def _teardown(self) -> None:
        with self._lock:
            self._draining = True
        if self._join_sock is not None:
            # shutdown() before close(): close() alone does not wake
            # the accept loop parked in accept() on the listener.
            try:
                self._join_sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._join_sock.close()
            except OSError:
                pass
        for link in list(self._links):
            if link.sock is not None:
                try:
                    send_frame(link.sock, {"op": "bye"})
                except (OSError, WireError):
                    pass
                # shutdown() before close(): close() alone does not
                # interrupt a reader thread parked in recv().
                try:
                    link.sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    link.sock.close()
                except OSError:
                    pass
        for link in list(self._links):
            if link.reader is not None:
                link.reader.join(timeout=2.0)
        if self._join_thread is not None:
            self._join_thread.join(timeout=2.0)
        if self._cache_server is not None:
            self._cache_server.close()

    # -- observability --------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``dist`` section of the batch metrics document."""
        data: Dict[str, Any] = {
            "nodes": [{
                "node": link.label, "workers": link.workers,
                "alive": link.alive, "shard_jobs": link.shard_size,
                "executed": link.executed,
                "joined": link.host is None,
                "sessions": link.sessions,
            } for link in self._links],
            "steals": self.steals,
            "reassigned": self.reassigned,
            "node_losses": self.node_losses,
            "dup_results": self.dup_results,
            "local_fallback_jobs": self.local_fallback_jobs,
            "joins": self.joins,
            "reconnects": self.reconnects,
            "rpc_retries": self.rpc_retries,
            "spliced_rows": len(self._spliced),
        }
        if self._cache_server is not None:
            data["cache_server"] = dict(self._cache_server.counters)
        return data


__all__ = ["DistCoordinator", "parse_nodes", "WINDOW_FACTOR",
           "JOIN_HANDSHAKE_TIMEOUT_S"]
