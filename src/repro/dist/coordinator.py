"""Shard a batch across worker nodes, steal from stragglers, survive
node loss, merge byte-identically.

The coordinator owns everything a single-host ``repro batch`` parent
owns — the manifest, the cache, the journal rows — and delegates only
*execution*:

1. **Prepare** — every job's function is built parent-side (under
   :func:`repro.faults.suppressed`, like the scheduler's cache path);
   its :func:`~repro.runtime.cache.cache_key` both addresses the shared
   store and, hashed, picks the job's home shard, so shard placement is
   content-stable across runs.  Cache hits settle here and never ship.
2. **Shard + window** — remaining jobs split into per-node deques by
   key hash.  Each node holds a small in-flight *window* (twice its
   worker count), refilled one job per result — pull-based flow
   control, so a slow node never queues work a fast node could take.
3. **Steal** — a node whose own shard ran dry refills from the *tail*
   of the longest remaining shard.  The claim record is the
   coordinator's ``in_flight`` index->node map; the first result row
   for an index wins, a duplicate (stolen *and* finished by its owner)
   is dropped and counted, and the shared cache dedupes the work itself
   by key.
4. **Node loss** — a dead connection (EOF, wire error, socket error)
   moves the node's unfinished window and remaining shard to the
   surviving nodes; with no survivors the coordinator runs the
   remainder through a local :class:`~repro.runtime.scheduler
   .BatchScheduler`.  The batch always completes.

Rows are exactly :meth:`~repro.runtime.scheduler.JobResult.as_dict`
(the nodes run the same scheduler), merged in submission order —
byte-identical to a single-host run up to the volatile timing fields
(``repro batch --stable-rows`` zeroes those for comparison).  One
caveat: if a node dies *after* finishing a job but before its row
lands, the reassigned run settles from the shared cache and the row
says ``cache_hit: true`` where a single-host run would have executed —
receipt-time loss (the ``node.loss`` site) cannot hit this window.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import faults
from repro.dist.cachenet import CacheServer
from repro.dist.wire import WireError, connect, recv_frame, send_frame
from repro.runtime import jobspec
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.pool import EventSink, ProgressEvent, emit_event
from repro.runtime.scheduler import BatchScheduler, JobResult

#: In-flight window per node, as a multiple of its worker count.
WINDOW_FACTOR = 2


def parse_nodes(spec: str) -> List[Tuple[str, int]]:
    """``host:port,host:port`` -> ``[(host, port), ...]``."""
    nodes = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(f"malformed node address {part!r} "
                             f"(use host:port)")
        nodes.append((host or "127.0.0.1", int(port)))
    if not nodes:
        raise ValueError("empty node list")
    return nodes


class _Link:
    """Coordinator-side state for one node connection."""

    def __init__(self, label: str, host: str, port: int) -> None:
        self.label = label
        self.host = host
        self.port = port
        self.sock = None
        self.workers = 1
        self.window = WINDOW_FACTOR
        self.alive = False
        #: Home shard: manifest indices not yet sent anywhere.
        self.shard: "deque[int]" = deque()
        self.shard_size = 0
        #: Claim records: indices sent to this node, no row yet.
        self.in_flight: set = set()
        self.executed = 0
        self.reader: Optional[threading.Thread] = None


class DistCoordinator:
    """Run a job list across remote nodes; same contract as
    :meth:`BatchScheduler.run` but returning JSONL-shaped rows."""

    def __init__(self, nodes: List[Tuple[str, int]],
                 cache: Optional[ResultCache] = None,
                 cache_host: str = "127.0.0.1",
                 timeout: Optional[float] = None, retries: int = 1,
                 degrade: bool = True,
                 heartbeat_s: Optional[float] = 1.0,
                 hang_grace_s: Optional[float] = None,
                 connect_timeout_s: float = 10.0) -> None:
        self.cache = cache
        self.cache_host = cache_host
        self.timeout = timeout
        self.retries = retries
        self.degrade = degrade
        self.heartbeat_s = heartbeat_s
        self.hang_grace_s = hang_grace_s
        self.connect_timeout_s = connect_timeout_s
        self._links = [_Link(f"{host}:{port}", host, port)
                       for host, port in nodes]
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self._rows: Dict[int, Dict[str, Any]] = {}
        self._jobs: List[Dict[str, Any]] = []
        self._overflow: "deque[int]" = deque()
        self._draining = False
        self._on_event: Optional[EventSink] = None
        self._on_row: Optional[Callable[[Dict[str, Any]], None]] = None
        self.steals = 0
        self.reassigned = 0
        self.node_losses = 0
        self.dup_results = 0
        self.local_fallback_jobs = 0
        self._cache_server: Optional[CacheServer] = None

    # -- public entry ---------------------------------------------------

    def run(self, jobs: List[Dict[str, Any]],
            on_row: Optional[Callable[[Dict[str, Any]], None]] = None,
            on_event: Optional[EventSink] = None) -> List[Dict[str, Any]]:
        """Execute ``jobs`` across the nodes; rows in submission order.

        ``on_row`` fires as each row settles (out of order); ``on_event``
        receives the relayed :class:`ProgressEvent` stream from every
        node — the same callback API as the local scheduler.
        """
        self._jobs = jobs
        self._on_event = on_event
        self._on_row = on_row
        to_run = self._prepare(jobs)
        if to_run and self._links:
            self._shard(to_run)
            try:
                self._start_cache_server()
                self._connect_all()
                self._pump()
            finally:
                self._teardown()
        missing = [i for i in to_run if i not in self._rows]
        if missing:
            self._run_locally(missing)
        return [self._rows[i] for i in sorted(self._rows)]

    # -- phase 1: prepare (build, probe, key) ---------------------------

    def _prepare(self, jobs: List[Dict[str, Any]]) -> List[int]:
        """Settle build failures and cache hits coordinator-side;
        attach wire payloads and shard keys to the rest."""
        to_run = []
        for index, job in enumerate(jobs):
            try:
                with faults.suppressed():
                    func = jobspec.build_function(job["source"])
            except Exception as exc:  # noqa: BLE001 — bad source
                self._settle_local(index, JobResult(
                    job_id=job["job_id"],
                    source=jobspec.source_label(job["source"]),
                    flow=job["flow"], status="failed",
                    error=f"{type(exc).__name__}: {exc}"))
                continue
            key = cache_key(func.canonical_key(), job["flow"],
                            job["config"])
            job["_dist_key"] = key
            record = self.cache.get(key) if self.cache is not None \
                else None
            if record is not None:
                self._settle_local(index, JobResult(
                    job_id=job["job_id"],
                    source=jobspec.source_label(job["source"]),
                    flow=job["flow"], status="ok", result=record,
                    cache_hit=True))
                continue
            job["wire"] = func.to_wire()
            to_run.append(index)
        return to_run

    def _settle_local(self, index: int, result: JobResult) -> None:
        result.index = index
        emit_event(self._on_event, ProgressEvent(
            kind="result", job_id=result.job_id, index=index,
            status=result.status, detail=result.error))
        self._record_row(index, result.as_dict())

    def _record_row(self, index: int, row: Dict[str, Any]) -> None:
        self._rows[index] = row
        if self._on_row is not None:
            self._on_row(row)

    # -- phase 2: shard -------------------------------------------------

    def _shard(self, to_run: List[int]) -> None:
        n = len(self._links)
        for index in to_run:
            key = self._jobs[index]["_dist_key"]
            link = self._links[int(key[:8], 16) % n]
            link.shard.append(index)
        for link in self._links:
            link.shard_size = len(link.shard)

    # -- connections ----------------------------------------------------

    def _start_cache_server(self) -> None:
        if self.cache is not None:
            self._cache_server = CacheServer(
                self.cache, host=self.cache_host).start()

    def _connect_all(self) -> None:
        cache_spec = None
        if self._cache_server is not None:
            cache_spec = {"host": self.cache_host,
                          "port": self._cache_server.port}
        scheduler_cfg = {
            "timeout": self.timeout, "retries": self.retries,
            "degrade": self.degrade, "heartbeat_s": self.heartbeat_s,
            "hang_grace_s": self.hang_grace_s,
        }
        for link in self._links:
            try:
                sock = connect(link.host, link.port,
                               timeout=self.connect_timeout_s)
                send_frame(sock, {"op": "hello", "cache": cache_spec,
                                  "scheduler": scheduler_cfg})
                hello = recv_frame(sock)
                if not hello or not hello.get("ok"):
                    raise WireError(f"bad hello from {link.label}")
                sock.settimeout(None)
                link.sock = sock
                link.workers = max(1, int(hello.get("workers", 1)))
                link.window = max(1, WINDOW_FACTOR * link.workers)
                link.alive = True
            except (OSError, WireError):
                # A node that never answers is a node lost before its
                # first job: its whole shard redistributes.
                link.alive = False
        with self._lock:
            for link in self._links:
                if not link.alive and link.shard:
                    self._reassign(link)
        for link in self._links:
            if link.alive:
                link.reader = threading.Thread(
                    target=self._read_loop, args=(link,),
                    name=f"repro-dist-read-{link.label}", daemon=True)
                link.reader.start()

    # -- the pump -------------------------------------------------------

    def _pump(self) -> None:
        """Fill every window, then wait for rows until done or dead."""
        need = {i for link in self._links for i in link.shard}
        need |= set(self._overflow)
        for link in self._links:
            need |= link.in_flight
        with self._lock:
            for link in self._links:
                self._refill(link)
            while any(link.alive for link in self._links):
                if all(i in self._rows for i in need):
                    break
                self._done.wait(0.25)
            self._draining = True

    def _refill(self, link: _Link) -> None:
        """Top the node's window up from its shard, the overflow of
        dead nodes, or — stealing — the tail of the longest live shard.
        Caller holds the lock."""
        while link.alive and len(link.in_flight) < link.window:
            index = self._next_index(link)
            if index is None:
                return
            link.in_flight.add(index)
            try:
                send_frame(link.sock, {
                    "op": "job", "index": index,
                    "job": self._wire_job(self._jobs[index])})
            except (OSError, WireError):
                self._node_lost(link)
                return

    def _next_index(self, link: _Link) -> Optional[int]:
        if link.shard:
            return link.shard.popleft()
        if self._overflow:
            return self._overflow.popleft()
        victim = max(
            (other for other in self._links
             if other.alive and other is not link and other.shard),
            key=lambda other: len(other.shard), default=None)
        if victim is None:
            return None
        self.steals += 1
        # Tail, not head: the head is what the victim itself dispatches
        # next, so stealing from the tail minimizes claim collisions.
        return victim.shard.pop()

    def _wire_job(self, job: Dict[str, Any]) -> Dict[str, Any]:
        return {k: v for k, v in job.items() if k != "_dist_key"}

    # -- per-node reader ------------------------------------------------

    def _read_loop(self, link: _Link) -> None:
        while True:
            try:
                frame = recv_frame(link.sock)
            except (OSError, WireError):
                frame = None
            if frame is None:
                self._node_lost(link)
                return
            op = frame.get("op")
            if op == "event":
                emit_event(self._on_event,
                           ProgressEvent.from_dict(frame.get("event")
                                                   or {}))
            elif op == "result":
                self._claim(link, int(frame["index"]),
                            dict(frame["row"]))

    def _claim(self, link: _Link, index: int,
               row: Dict[str, Any]) -> None:
        with self._lock:
            link.in_flight.discard(index)
            if index in self._rows:
                # Stolen and also finished by its original owner: the
                # first row won the claim, this one is a duplicate (the
                # shared cache made it cheap).
                self.dup_results += 1
            else:
                link.executed += 1
                self._record_row(index, row)
            self._refill(link)
            self._done.notify_all()

    def _node_lost(self, link: _Link) -> None:
        with self._lock:
            if not link.alive:
                return
            link.alive = False
            if self._draining:
                return
            self.node_losses += 1
            self._reassign(link)
            for other in self._links:
                if other.alive:
                    self._refill(other)
            self._done.notify_all()

    def _reassign(self, link: _Link) -> None:
        """Move a dead node's claims and remaining shard to overflow.
        Caller holds the lock."""
        moved = [i for i in link.in_flight if i not in self._rows]
        moved.extend(link.shard)
        link.in_flight.clear()
        link.shard.clear()
        self.reassigned += len(moved)
        self._overflow.extend(moved)

    # -- endgame --------------------------------------------------------

    def _run_locally(self, missing: List[int]) -> None:
        """All nodes are gone and rows are missing: finish the batch
        with the local failure ladder (same scheduler, same rows)."""
        self.local_fallback_jobs = len(missing)
        scheduler = BatchScheduler(
            workers=None, timeout=self.timeout, retries=self.retries,
            cache=self.cache, degrade=self.degrade,
            heartbeat_s=self.heartbeat_s,
            hang_grace_s=self.hang_grace_s)
        remaining = [self._wire_job(self._jobs[i]) for i in missing]
        results = scheduler.run(remaining, on_event=self._on_event)
        for local_pos, result in zip(missing, results):
            result.index = local_pos
            self._record_row(local_pos, result.as_dict())

    def _teardown(self) -> None:
        self._draining = True
        for link in self._links:
            if link.sock is not None:
                try:
                    send_frame(link.sock, {"op": "bye"})
                except (OSError, WireError):
                    pass
                # shutdown() before close(): close() alone does not
                # interrupt a reader thread parked in recv().
                try:
                    link.sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    link.sock.close()
                except OSError:
                    pass
        for link in self._links:
            if link.reader is not None:
                link.reader.join(timeout=2.0)
        if self._cache_server is not None:
            self._cache_server.close()

    # -- observability --------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``dist`` section of the batch metrics document."""
        data: Dict[str, Any] = {
            "nodes": [{
                "node": link.label, "workers": link.workers,
                "alive": link.alive, "shard_jobs": link.shard_size,
                "executed": link.executed,
            } for link in self._links],
            "steals": self.steals,
            "reassigned": self.reassigned,
            "node_losses": self.node_losses,
            "dup_results": self.dup_results,
            "local_fallback_jobs": self.local_fallback_jobs,
        }
        if self._cache_server is not None:
            data["cache_server"] = dict(self._cache_server.counters)
        return data


__all__ = ["DistCoordinator", "parse_nodes", "WINDOW_FACTOR"]
